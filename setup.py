"""Build script: everything lives in pyproject.toml except the optional
compiled ``accel`` event core.

The extension is best-effort by design: ``optional=True`` means a missing
or broken C toolchain degrades the install to pure Python (the ``accel``
backend then falls back to its tightened Python implementation with a
logged warning — see repro/sim/backends/__init__.py).  Set
``REPRO_BUILD_ACCEL=0`` to skip the compile entirely.

Developer in-place build (drops the .so next to the sources so the
``PYTHONPATH=src`` workflow picks it up)::

    python setup.py build_ext --inplace
"""

import os

from setuptools import Extension, setup

ext_modules = []
if os.environ.get("REPRO_BUILD_ACCEL", "1") != "0":
    ext_modules.append(
        Extension(
            "repro.sim.backends._accel_core",
            sources=["src/repro/sim/backends/_accel_core.c"],
            optional=True,
            extra_compile_args=["-O2"],
        )
    )

setup(ext_modules=ext_modules)
