"""Unit tests for the set-associative cache."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.state import LineState
from repro.config.parameters import CacheConfig


def small_cache(ways=2, sets=4, line=128):
    return SetAssociativeCache(CacheConfig(size_bytes=ways * sets * line,
                                           ways=ways, line_bytes=line,
                                           latency_cycles=1))


def addr_for(set_index, tag, cache):
    return (tag * cache.n_sets + set_index) * cache.line_bytes


def test_lookup_miss_then_install_hit():
    c = small_cache()
    assert c.lookup(0x80) is None
    c.install(0x80, LineState.SHARED, {0x80: 7})
    line = c.lookup(0x80)
    assert line is not None
    assert line.read_word(0x80) == 7
    assert line.state is LineState.SHARED


def test_words_within_line_share_entry():
    c = small_cache()
    c.install(0x0, LineState.EXCLUSIVE, {0x0: 1, 0x8: 2})
    assert c.lookup(0x78) is c.lookup(0x0)     # last word of the line
    assert c.lookup(0x80) is None              # next line


def test_lru_eviction_order():
    c = small_cache(ways=2)
    a = addr_for(0, 0, c)
    b = addr_for(0, 1, c)
    d = addr_for(0, 2, c)
    c.install(a, LineState.SHARED)
    c.install(b, LineState.SHARED)
    c.lookup(a)                       # a is now MRU
    _line, victim = c.install(d, LineState.SHARED)
    assert victim is not None
    assert victim.line_addr == b      # b was LRU
    assert c.lookup(a) is not None
    assert c.lookup(b) is None
    assert c.evictions == 1


def test_probe_does_not_touch_lru():
    c = small_cache(ways=2)
    a, b, d = (addr_for(0, t, c) for t in range(3))
    c.install(a, LineState.SHARED)
    c.install(b, LineState.SHARED)
    c.probe(a)                        # non-touching: a stays LRU
    _line, victim = c.install(d, LineState.SHARED)
    assert victim.line_addr == a


def test_install_existing_line_updates_state():
    c = small_cache()
    c.install(0x0, LineState.SHARED, {0x0: 1})
    line, victim = c.install(0x0, LineState.EXCLUSIVE, {0x8: 2})
    assert victim is None
    assert line.state is LineState.EXCLUSIVE
    assert line.read_word(0x0) == 1 and line.read_word(0x8) == 2


def test_invalidate_removes_line():
    c = small_cache()
    c.install(0x0, LineState.SHARED)
    assert c.invalidate(0x0) is not None
    assert c.lookup(0x0) is None
    assert c.invalidate(0x0) is None      # second time is a no-op
    assert c.invalidations == 1


def test_downgrade_exclusive_to_shared():
    c = small_cache()
    line, _ = c.install(0x0, LineState.EXCLUSIVE)
    line.dirty = True
    out = c.downgrade(0x0)
    assert out.state is LineState.SHARED
    assert not out.dirty
    # downgrading a shared line is harmless
    assert c.downgrade(0x0).state is LineState.SHARED


def test_word_update_patches_in_place():
    c = small_cache()
    c.install(0x0, LineState.SHARED, {0x0: 1})
    assert c.apply_word_update(0x8, 99) is True
    line = c.lookup(0x0)
    assert line.read_word(0x8) == 99
    assert line.state is LineState.SHARED     # no state change
    assert c.word_updates == 1
    assert c.apply_word_update(0x800, 5) is False   # absent line


def test_sets_isolate_addresses():
    c = small_cache(ways=1, sets=4)
    for s in range(4):
        c.install(addr_for(s, 0, c), LineState.SHARED)
    assert c.occupancy() == 4
    assert c.evictions == 0


def test_resident_lines_listing():
    c = small_cache()
    c.install(0x0, LineState.SHARED)
    c.install(0x80, LineState.EXCLUSIVE)
    assert {ln.line_addr for ln in c.resident_lines()} == {0x0, 0x80}


def test_hit_rate_tracking():
    c = small_cache()
    c.record_miss()
    c.record_hit()
    c.record_hit()
    assert c.hit_rate == pytest.approx(2 / 3)


def test_state_properties():
    assert LineState.SHARED.readable
    assert not LineState.SHARED.writable
    assert LineState.EXCLUSIVE.writable
    assert not LineState.INVALID.readable


def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, ways=3, line_bytes=128,
                    latency_cycles=1)
    assert CacheConfig.l2_default().n_sets == 2 * 1024 * 1024 // (4 * 128)
