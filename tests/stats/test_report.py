"""Tests for table formatting and the linear fit."""

import pytest

from repro.stats.report import TableFormatter, fit_linear


def test_text_table_alignment():
    t = TableFormatter(["CPUs", "AMO"])
    t.add_row([4, 2.1])
    t.add_row([256, 61.94])
    text = t.to_text()
    lines = text.splitlines()
    assert lines[0].endswith("AMO")
    assert "61.94" in text
    # all rows same width
    assert len({len(line) for line in lines}) == 1


def test_markdown_table_structure():
    t = TableFormatter(["a", "b"], title="T")
    t.add_row([1, 2.5])
    md = t.to_markdown()
    assert "| a | b |" in md
    assert "|---:|---:|" in md
    assert "| 1 | 2.50 |" in md
    assert md.startswith("**T**")


def test_row_arity_checked():
    t = TableFormatter(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


def test_float_format_override():
    t = TableFormatter(["x"], float_format="{:.0f}")
    t.add_row([3.7])
    assert "4" in t.to_text()


def test_fit_linear_exact():
    a, b, r2 = fit_linear([1, 2, 3, 4], [10, 12, 14, 16])
    assert a == pytest.approx(8.0)
    assert b == pytest.approx(2.0)
    assert r2 == pytest.approx(1.0)


def test_fit_linear_needs_two_points():
    with pytest.raises(ValueError):
        fit_linear([1], [1])


def test_fit_linear_constant_series():
    a, b, r2 = fit_linear([1, 2, 3], [5, 5, 5])
    assert b == pytest.approx(0.0)
    assert r2 == 1.0
