"""Tests for latency statistics."""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.stats.collector import (
    LatencyStats, fairness_across_cpus, op_latency_stats,
)
from repro.trace import TraceRecorder


def test_basic_statistics():
    st = LatencyStats("t")
    st.extend([10, 20, 30, 40, 50])
    assert st.mean == 30
    assert st.minimum == 10 and st.maximum == 50
    assert st.p50 == 30
    assert len(st) == 5


def test_percentile_bounds_checked():
    st = LatencyStats()
    st.record(1)
    with pytest.raises(ValueError):
        st.percentile(101)
    empty = LatencyStats()
    with pytest.raises(ValueError):
        empty.percentile(50)


def test_cv_zero_for_constant():
    st = LatencyStats()
    st.extend([7, 7, 7])
    assert st.coefficient_of_variation() == 0.0


def test_summary_text():
    st = LatencyStats("acq")
    st.extend(range(100))
    text = st.summary()
    assert "acq" in text and "p99" in text
    assert "no samples" in LatencyStats("x").summary()


def test_trace_derived_op_latencies():
    machine = Machine(SystemConfig.table1(4))
    tracer = TraceRecorder.attach(machine)
    var = machine.alloc("v", home_node=1)

    def thread(proc):
        for _ in range(3):
            yield from proc.load(var.addr)
            yield from proc.delay(50)

    machine.run_threads(thread, cpus=[0])
    st = op_latency_stats(tracer, "load")
    assert len(st) == 3
    # the first (miss) load dominates the cached ones
    assert st.maximum > st.minimum


def test_fairness_metric_on_symmetric_workload():
    machine = Machine(SystemConfig.table1(4))
    tracer = TraceRecorder.attach(machine)
    var = machine.alloc("ctr", home_node=0)

    def thread(proc):
        yield from proc.atomic_rmw(var.addr, lambda v: v + 1)

    machine.run_threads(thread)
    cv = fairness_across_cpus(tracer, "atomic_rmw", 4)
    assert cv >= 0.0


def test_lock_acquisition_fairness_ticket_vs_mcs():
    """FIFO locks must be reasonably fair in per-CPU acquire time."""
    from repro.sync.ticket_lock import TicketLock
    machine = Machine(SystemConfig.table1(8))
    tracer = TraceRecorder.attach(machine)
    lock = TicketLock(machine, Mechanism.AMO)

    def thread(proc):
        for _ in range(2):
            yield from lock.acquire(proc)
            yield from proc.delay(60)
            yield from lock.release(proc)
            yield from proc.delay(100)

    machine.run_threads(thread, max_events=4_000_000)
    cv = fairness_across_cpus(tracer, "spin_until", 8)
    assert cv < 1.5
