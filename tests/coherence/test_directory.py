"""Unit tests for directory state, bitmask sharer encoding, and invariants."""

import pytest

from repro.coherence.directory import (Directory, DirectoryEntry, DirState,
                                       iter_sharers, sharer_mask_of)


def test_entry_created_unowned():
    d = Directory(node=0)
    ent = d.entry(0x100)
    assert ent.state is DirState.UNOWNED
    assert ent.sharers == set()
    assert ent.sharer_mask == 0
    assert ent.owner is None
    ent.check()


def test_entry_is_memoized():
    d = Directory(node=0)
    assert d.entry(0x100) is d.entry(0x100)
    assert d.entry(0x100) is not d.entry(0x200)


def test_exclusive_invariants():
    ent = DirectoryEntry(line_addr=0x100)
    ent.state = DirState.EXCLUSIVE
    with pytest.raises(AssertionError):
        ent.check()                         # no owner
    ent.owner = 3
    ent.check()
    ent.add_sharer(1)
    with pytest.raises(AssertionError):
        ent.check()                         # sharers under EXCLUSIVE


def test_shared_invariants():
    ent = DirectoryEntry(line_addr=0x100)
    ent.state = DirState.SHARED
    with pytest.raises(AssertionError):
        ent.check()                         # empty sharer set
    ent.add_sharer(0)
    ent.check()
    ent.owner = 1
    with pytest.raises(AssertionError):
        ent.check()                         # owner under SHARED


def test_amu_sharer_satisfies_shared():
    ent = DirectoryEntry(line_addr=0x100)
    ent.state = DirState.SHARED
    ent.amu_sharer = True
    ent.check()


def test_unowned_with_copies_rejected():
    ent = DirectoryEntry(line_addr=0x100)
    ent.add_sharer(2)
    with pytest.raises(AssertionError):
        ent.check()


def test_check_all_sweeps_entries():
    d = Directory(node=0)
    good = d.entry(0x100)
    good.state = DirState.SHARED
    good.add_sharer(0)
    bad = d.entry(0x200)
    bad.state = DirState.EXCLUSIVE            # no owner: invalid
    with pytest.raises(AssertionError):
        d.check_all()
    assert len(d.known_entries()) == 2


# ---------------------------------------------------------------------------
# bitmask sharer encoding
# ---------------------------------------------------------------------------
def test_sharer_mask_round_trip():
    ent = DirectoryEntry(line_addr=0x100)
    ent.sharers = {0, 5, 255}                 # setter folds into the mask
    assert ent.sharer_mask == (1 << 0) | (1 << 5) | (1 << 255)
    assert ent.sharers == {0, 5, 255}         # getter rebuilds the set view
    assert ent.sharer_count() == 3


def test_add_remove_has_sharer():
    ent = DirectoryEntry(line_addr=0x100)
    ent.add_sharer(7)
    ent.add_sharer(7)                          # idempotent
    ent.add_sharer(2)
    assert ent.has_sharer(7) and ent.has_sharer(2)
    assert not ent.has_sharer(3)
    ent.remove_sharer(7)
    assert not ent.has_sharer(7)
    ent.remove_sharer(7)                       # removing absent id is a no-op
    assert ent.sharers == {2}


def test_iter_sharers_ascending_matches_sorted_set():
    ids = [200, 3, 64, 0, 17]
    mask = sharer_mask_of(ids)
    assert list(iter_sharers(mask)) == sorted(ids)
    assert list(iter_sharers(0)) == []


def test_sharers_view_is_derived_not_aliased():
    """Mutating the set view must not silently corrupt directory state."""
    ent = DirectoryEntry(line_addr=0x100)
    ent.add_sharer(1)
    view = ent.sharers
    view.add(9)                                # mutates a throwaway copy
    assert ent.sharers == {1}
    assert ent.sharer_mask == 1 << 1
