"""Unit tests for directory state and invariants."""

import pytest

from repro.coherence.directory import Directory, DirectoryEntry, DirState


def test_entry_created_unowned():
    d = Directory(node=0)
    ent = d.entry(0x100)
    assert ent.state is DirState.UNOWNED
    assert ent.sharers == set()
    assert ent.owner is None
    ent.check()


def test_entry_is_memoized():
    d = Directory(node=0)
    assert d.entry(0x100) is d.entry(0x100)
    assert d.entry(0x100) is not d.entry(0x200)


def test_exclusive_invariants():
    ent = DirectoryEntry(line_addr=0x100)
    ent.state = DirState.EXCLUSIVE
    with pytest.raises(AssertionError):
        ent.check()                         # no owner
    ent.owner = 3
    ent.check()
    ent.sharers.add(1)
    with pytest.raises(AssertionError):
        ent.check()                         # sharers under EXCLUSIVE


def test_shared_invariants():
    ent = DirectoryEntry(line_addr=0x100)
    ent.state = DirState.SHARED
    with pytest.raises(AssertionError):
        ent.check()                         # empty sharer set
    ent.sharers.add(0)
    ent.check()
    ent.owner = 1
    with pytest.raises(AssertionError):
        ent.check()                         # owner under SHARED


def test_amu_sharer_satisfies_shared():
    ent = DirectoryEntry(line_addr=0x100)
    ent.state = DirState.SHARED
    ent.amu_sharer = True
    ent.check()


def test_unowned_with_copies_rejected():
    ent = DirectoryEntry(line_addr=0x100)
    ent.sharers.add(2)
    with pytest.raises(AssertionError):
        ent.check()


def test_check_all_sweeps_entries():
    d = Directory(node=0)
    good = d.entry(0x100)
    good.state = DirState.SHARED
    good.sharers.add(0)
    bad = d.entry(0x200)
    bad.state = DirState.EXCLUSIVE            # no owner: invalid
    with pytest.raises(AssertionError):
        d.check_all()
    assert len(d.known_entries()) == 2
