"""Integration tests of the coherence protocol through small machines.

Each test builds a 4- or 8-CPU machine and drives loads/stores/atomics
from thread coroutines, then checks both functional results and the
directory/cache cross-invariants.
"""

import pytest

from repro.cache.state import LineState
from repro.coherence.directory import DirState
from repro.config.parameters import CacheConfig, SystemConfig
from repro.core.machine import Machine
from repro.network.message import MessageKind


def run(machine, thread, cpus=None):
    return machine.run_threads(thread, cpus=cpus, max_events=2_000_000)


def dir_entry(machine, var):
    hub = machine.hubs[var.home_node]
    from repro.mem.address import line_base
    return hub.home_engine.directory.entry(line_base(var.addr))


# ---------------------------------------------------------------------------
# loads
# ---------------------------------------------------------------------------

def test_load_returns_initialized_value(machine4):
    var = machine4.alloc("v", home_node=1)
    machine4.poke(var.addr, 1234)

    def thread(proc):
        value = yield from proc.load(var.addr)
        return value

    assert run(machine4, thread) == [1234] * 4
    ent = dir_entry(machine4, var)
    assert ent.state is DirState.SHARED
    assert ent.sharers == {0, 1, 2, 3}
    machine4.check_coherence_invariants()


def test_second_load_hits_cache_no_traffic(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.load(var.addr)
        before = machine4.net.stats.total_messages
        yield from proc.load(var.addr)
        return machine4.net.stats.total_messages - before

    deltas = run(machine4, thread, cpus=[2])
    assert deltas == [0]


# ---------------------------------------------------------------------------
# stores & ownership movement
# ---------------------------------------------------------------------------

def test_store_gains_exclusive_ownership(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.store(var.addr, 77)

    run(machine4, thread, cpus=[3])
    ent = dir_entry(machine4, var)
    assert ent.state is DirState.EXCLUSIVE
    assert ent.owner == 3
    line = machine4.cpus[3].controller.l2.probe(var.addr)
    assert line.state is LineState.EXCLUSIVE
    assert line.dirty
    assert machine4.peek(var.addr) == 77
    machine4.check_coherence_invariants()


def test_store_invalidates_sharers(machine4):
    var = machine4.alloc("v", home_node=0)

    def reader(proc):
        yield from proc.load(var.addr)

    run(machine4, reader, cpus=[0, 1, 2])

    def writer(proc):
        yield from proc.store(var.addr, 5)

    run(machine4, writer, cpus=[3])
    for cpu in (0, 1, 2):
        assert machine4.cpus[cpu].controller.l2.probe(var.addr) is None
    assert machine4.net.stats.messages[MessageKind.INVALIDATE] >= 1
    machine4.check_coherence_invariants()


def test_read_after_remote_dirty_write_is_coherent(machine4):
    """3-hop intervention: reader gets the dirty owner's data."""
    var = machine4.alloc("v", home_node=0)

    def writer(proc):
        yield from proc.store(var.addr, 991)

    run(machine4, writer, cpus=[2])        # cpu2 (node 1) owns dirty line

    def reader(proc):
        value = yield from proc.load(var.addr)
        return value

    assert run(machine4, reader, cpus=[0]) == [991]
    ent = dir_entry(machine4, var)
    assert ent.state is DirState.SHARED
    assert ent.sharers == {0, 2}
    # memory was refreshed by the sharing writeback
    assert machine4.backing.read_word(var.addr) == 991
    assert machine4.net.stats.messages[MessageKind.INTERVENTION] == 1
    machine4.check_coherence_invariants()


def test_write_after_remote_write_transfers_ownership(machine4):
    var = machine4.alloc("v", home_node=0)
    order = []

    def writer(tag, value):
        def thread(proc):
            yield from proc.store(var.addr, value)
            order.append(tag)
        return thread

    run(machine4, writer("a", 1), cpus=[0])
    run(machine4, writer("b", 2), cpus=[2])
    ent = dir_entry(machine4, var)
    assert ent.owner == 2
    assert machine4.cpus[0].controller.l2.probe(var.addr) is None
    assert machine4.peek(var.addr) == 2
    machine4.check_coherence_invariants()


# ---------------------------------------------------------------------------
# evictions / writebacks
# ---------------------------------------------------------------------------

def test_dirty_eviction_writes_back():
    # Tiny L2 (2 sets x 2 ways) forces conflict evictions quickly.
    cfg = SystemConfig.table1(4).replace(
        l2=CacheConfig(size_bytes=4 * 128, ways=2, line_bytes=128,
                       latency_cycles=10))
    machine = Machine(cfg)
    hot = machine.alloc("hot", home_node=0)
    fillers = [machine.alloc(f"f{i}", home_node=0) for i in range(8)]

    def thread(proc):
        yield from proc.store(hot.addr, 321)
        for f in fillers:          # conflict-evict the dirty line
            yield from proc.load(f.addr)

    run(machine, thread, cpus=[1])
    assert machine.cpus[1].controller.l2.probe(hot.addr) is None
    assert machine.backing.read_word(hot.addr) == 321
    ent = dir_entry(machine, hot)
    assert ent.state is DirState.UNOWNED
    machine.check_coherence_invariants()


# ---------------------------------------------------------------------------
# uncached accesses
# ---------------------------------------------------------------------------

def test_uncached_read_write(machine4):
    var = machine4.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.uncached_write(var.addr, 55)
        value = yield from proc.uncached_read(var.addr)
        return value

    assert run(machine4, thread, cpus=[0]) == [55]
    # nothing was cached
    assert machine4.cpus[0].controller.l2.probe(var.addr) is None


def test_uncached_read_sees_dirty_cache_copy(machine4):
    var = machine4.alloc("v", home_node=0)

    def writer(proc):
        yield from proc.store(var.addr, 808)

    run(machine4, writer, cpus=[2])

    def reader(proc):
        value = yield from proc.uncached_read(var.addr)
        return value

    assert run(machine4, reader, cpus=[0]) == [808]


# ---------------------------------------------------------------------------
# atomic instructions
# ---------------------------------------------------------------------------

def test_atomic_rmw_serializes_correctly(machine8):
    var = machine8.alloc("ctr", home_node=0)

    def thread(proc):
        old = yield from proc.atomic_rmw(var.addr, lambda v: v + 1)
        return old

    olds = run(machine8, thread)
    assert sorted(olds) == list(range(8))
    assert machine8.peek(var.addr) == 8
    machine8.check_coherence_invariants()
