"""LL/SC semantics tests: atomicity, reservation clearing, retries."""

from repro.network.message import MessageKind


def run(machine, thread, cpus=None):
    return machine.run_threads(thread, cpus=cpus, max_events=2_000_000)


def test_uncontended_ll_sc_succeeds(machine4):
    var = machine4.alloc("v", home_node=0)
    machine4.poke(var.addr, 10)

    def thread(proc):
        old = yield from proc.load_linked(var.addr)
        ok = yield from proc.store_conditional(var.addr, old + 1)
        return (old, ok)

    assert run(machine4, thread, cpus=[0]) == [(10, True)]
    assert machine4.peek(var.addr) == 11


def test_sc_without_ll_fails(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        ok = yield from proc.store_conditional(var.addr, 5)
        return ok

    assert run(machine4, thread, cpus=[0]) == [False]
    assert machine4.peek(var.addr) == 0


def test_remote_store_between_ll_and_sc_fails_sc(machine4):
    var = machine4.alloc("v", home_node=0)
    machine4.poke(var.addr, 1)

    def victim(proc):
        old = yield from proc.load_linked(var.addr)
        yield from proc.delay(5_000)      # lose the race on purpose
        ok = yield from proc.store_conditional(var.addr, old + 1)
        return ok

    def intruder(proc):
        yield from proc.delay(500)
        yield from proc.store(var.addr, 100)

    def thread(proc):
        if proc.cpu_id == 0:
            result = yield from victim(proc)
        else:
            result = yield from intruder(proc)
        return result

    results = run(machine4, thread, cpus=[0, 2])
    assert results[0] is False            # SC must fail
    assert machine4.peek(var.addr) == 100  # intruder's value survives


def test_llsc_rmw_loop_is_atomic_under_contention(machine8):
    var = machine8.alloc("ctr", home_node=0)

    def thread(proc):
        for _ in range(3):
            yield from proc.llsc_rmw(var.addr, lambda v: v + 1)

    run(machine8, thread)
    assert machine8.peek(var.addr) == 24
    machine8.check_coherence_invariants()


def test_contention_causes_sc_failures_and_retry_traffic(machine8):
    var = machine8.alloc("ctr", home_node=0)

    def thread(proc):
        yield from proc.llsc_rmw(var.addr, lambda v: v + 1)

    run(machine8, thread)
    failures = sum(p.controller.sc_failures for p in machine8.cpus)
    successes = sum(p.controller.sc_successes for p in machine8.cpus)
    assert successes == 8
    assert failures > 0, "8-way contention must produce failed SCs"
    stats = machine8.net.stats
    getx_total = (stats.messages[MessageKind.GET_X]
                  + stats.local_messages[MessageKind.GET_X])
    # a failed-after-upgrade SC leaves the line exclusive, so the retry
    # can succeed locally — but most of the 8 RMWs still need a GET_X
    assert getx_total >= 6


def test_word_update_clears_reservation(machine4):
    """An AMU update push to a reserved line must kill the reservation."""
    var = machine4.alloc("v", home_node=0)

    def victim(proc):
        old = yield from proc.load_linked(var.addr)
        yield from proc.delay(5_000)
        ok = yield from proc.store_conditional(var.addr, old + 1)
        return ok

    def amo_writer(proc):
        yield from proc.delay(200)
        yield from proc.amo_fetchadd(var.addr, 10)

    def thread(proc):
        if proc.cpu_id == 0:
            r = yield from victim(proc)
        else:
            r = yield from amo_writer(proc)
        return r

    results = run(machine4, thread, cpus=[0, 2])
    assert results[0] is False
    assert machine4.peek(var.addr) == 10


def test_sc_fail_fast_costs_no_traffic(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        # no LL at all: the SC fails on the cleared LLbit without
        # issuing any coherence transaction
        before = machine4.net.stats.total_messages
        ok = yield from proc.store_conditional(var.addr, 1)
        return (ok, machine4.net.stats.total_messages - before)

    assert run(machine4, thread, cpus=[1]) == [(False, 0)]
