"""Protocol corner cases: writebacks racing interventions.

When an exclusive owner evicts a dirty line, its WRITEBACK may still be
in flight when the home — which still believes it is the owner —
forwards an intervention.  The owner must answer from its writeback
buffer.  We sweep the reader's start time to hit the race window (the
simulator is deterministic, so some delay in the sweep lands inside it)
and assert the reader always observes the dirty value.
"""

from repro.config.parameters import CacheConfig, SystemConfig
from repro.core.machine import Machine


def tiny_l2_config(n_cpus=4):
    """4-line L2 so a handful of loads force conflict evictions."""
    return SystemConfig.table1(n_cpus).replace(
        l2=CacheConfig(size_bytes=4 * 128, ways=2, line_bytes=128,
                       latency_cycles=10))


def run_race(reader_delay: int):
    machine = Machine(tiny_l2_config())
    # home the hot line on node 1 so cpu0's writeback crosses the network
    # while cpu2 (node 1) can reach the home quickly.
    hot = machine.alloc("hot", home_node=1)
    fillers = [machine.alloc(f"f{i}", home_node=1) for i in range(8)]

    def writer(proc):        # cpu0, node 0
        yield from proc.store(hot.addr, 4242)
        for f in fillers:    # conflict-evict the dirty line
            yield from proc.load(f.addr)

    def reader(proc):        # cpu2, node 1
        yield from proc.delay(reader_delay)
        value = yield from proc.load(hot.addr)
        return value

    def thread(proc):
        if proc.cpu_id == 0:
            yield from writer(proc)
            return None
        result = yield from reader(proc)
        return result

    machine.run_threads(thread, cpus=[0, 2], max_events=2_000_000)
    value = machine.peek(hot.addr)
    races = machine.cpus[0].controller.wb_race_interventions
    machine.check_coherence_invariants()
    return value, races


def test_reader_always_sees_dirty_value_across_race_window():
    total_races = 0
    for delay in range(400, 7000, 50):
        value, races = run_race(delay)
        assert value == 4242, f"lost write at reader_delay={delay}"
        total_races += races
    assert total_races > 0, (
        "the sweep never landed in the writeback/intervention race "
        "window — widen the delay range")


def test_eviction_of_clean_exclusive_notifies_home():
    """Clean-E victims must notify (no silent owner loss)."""
    machine = Machine(tiny_l2_config())
    hot = machine.alloc("hot", home_node=1)
    fillers = [machine.alloc(f"f{i}", home_node=1) for i in range(8)]

    def thread(proc):
        # GET_X without dirtying: atomic_rmw writes, so use store then
        # re-fetch shared... simplest clean-E source: fetch exclusive via
        # store, write back, reload exclusively — instead just assert
        # the dirty path plus directory consistency after eviction.
        yield from proc.store(hot.addr, 1)
        for f in fillers:
            yield from proc.load(f.addr)

    machine.run_threads(thread, cpus=[0], max_events=2_000_000)
    from repro.coherence.directory import DirState
    from repro.mem.address import line_base
    ent = machine.hubs[1].home_engine.directory.entry(line_base(hot.addr))
    assert ent.state is not DirState.EXCLUSIVE
    machine.check_coherence_invariants()
