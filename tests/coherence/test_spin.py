"""Tests of the event-driven spin model: wake-ups, traffic, races."""

from repro.network.message import MessageKind


def run(machine, thread, cpus=None):
    return machine.run_threads(thread, cpus=cpus, max_events=2_000_000)


def test_spin_satisfied_immediately_costs_one_load(machine4):
    var = machine4.alloc("v", home_node=0)
    machine4.poke(var.addr, 7)

    def thread(proc):
        value = yield from proc.spin_until(var.addr, lambda v: v == 7)
        return value

    assert run(machine4, thread, cpus=[0]) == [7]


def test_spin_woken_by_remote_store(machine4):
    var = machine4.alloc("flag", home_node=0)
    wake_time = {}

    def spinner(proc):
        value = yield from proc.spin_until(var.addr, lambda v: v == 1)
        wake_time["t"] = proc.sim.now
        return value

    def writer(proc):
        yield from proc.delay(3_000)
        yield from proc.store(var.addr, 1)

    def thread(proc):
        if proc.cpu_id == 0:
            r = yield from spinner(proc)
        else:
            r = yield from writer(proc)
        return r

    results = run(machine4, thread, cpus=[0, 2])
    assert results[0] == 1
    assert wake_time["t"] > 3_000


def test_spin_woken_by_word_update_without_reload(machine4):
    """The AMO wake-up path: update patches the cache in place — the
    spinner must NOT issue a reload (GET_S) after waking."""
    # home on node 1 so the spinner's (cpu0, node 0) loads are remote
    # and therefore visible in the network counters
    var = machine4.alloc("flag", home_node=1)

    def spinner(proc):
        yield from proc.spin_until(var.addr, lambda v: v >= 1)
        return machine4.net.stats.messages[MessageKind.GET_S]

    def amo_writer(proc):
        yield from proc.delay(2_000)
        yield from proc.amo_fetchadd(var.addr, 1)

    def thread(proc):
        if proc.cpu_id == 0:
            r = yield from spinner(proc)
        else:
            r = yield from amo_writer(proc)
        return r

    results = run(machine4, thread, cpus=[0, 2])
    gets_at_wake = results[0]
    # exactly one GET_S: the spinner's initial load; the wake-up was
    # an in-place patch
    assert gets_at_wake == 1
    assert machine4.cpus[0].controller.l2.probe(var.addr) is not None


def test_spin_after_invalidation_reloads(machine4):
    """The conventional wake-up path: invalidate + reload."""
    var = machine4.alloc("flag", home_node=1)

    def spinner(proc):
        yield from proc.spin_until(var.addr, lambda v: v >= 1)
        return None

    def writer(proc):
        yield from proc.delay(2_000)
        yield from proc.store(var.addr, 1)

    def thread(proc):
        if proc.cpu_id == 0:
            yield from spinner(proc)
        else:
            yield from writer(proc)

    run(machine4, thread, cpus=[0, 2])
    # spinner loaded twice: initial + post-invalidation reload
    assert machine4.net.stats.messages[MessageKind.GET_S] >= 2
    assert machine4.net.stats.messages[MessageKind.INVALIDATE] >= 1
    assert machine4.cpus[0].controller.spin_wakeups >= 1


def test_no_lost_wakeup_with_many_spinners(machine8):
    var = machine8.alloc("flag", home_node=0)

    def thread(proc):
        if proc.cpu_id == 7:
            yield from proc.delay(1_000)
            yield from proc.store(var.addr, 1)
            return 1
        value = yield from proc.spin_until(var.addr, lambda v: v == 1)
        return value

    assert run(machine8, thread) == [1] * 8


def test_interleaved_updates_all_observed_eventually(machine4):
    """Spin on a threshold while the value is bumped repeatedly."""
    var = machine4.alloc("ctr", home_node=0)

    def bumper(proc):
        for _ in range(5):
            yield from proc.amo_fetchadd(var.addr, 1)
            yield from proc.delay(300)

    def waiter(proc):
        value = yield from proc.spin_until(var.addr, lambda v: v >= 10)
        return value

    def thread(proc):
        if proc.cpu_id in (1, 2):
            yield from bumper(proc)
            return None
        r = yield from waiter(proc)
        return r

    results = run(machine4, thread, cpus=[0, 1, 2])
    assert results[0] >= 10
    assert machine4.peek(var.addr) == 10
