"""Tests for the Jacobi application kernel."""

import pytest

from repro.apps.jacobi import run_jacobi
from repro.config.mechanism import Mechanism

ALL = list(Mechanism)


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_jacobi_verifies_under_every_mechanism(mech):
    result = run_jacobi(4, mech, n_points=32, sweeps=3)
    assert result.verified, result.detail
    assert result.total_cycles > 0
    assert result.sync_overhead_cycles > 0


def test_jacobi_more_sweeps_more_cycles():
    short = run_jacobi(4, Mechanism.AMO, n_points=32, sweeps=2)
    long = run_jacobi(4, Mechanism.AMO, n_points=32, sweeps=6)
    assert long.verified and short.verified
    assert long.total_cycles > short.total_cycles


def test_jacobi_amo_sync_overhead_smallest():
    results = {m: run_jacobi(8, m, n_points=64, sweeps=3) for m in ALL}
    amo = results[Mechanism.AMO]
    assert all(r.verified for r in results.values())
    for mech, r in results.items():
        if mech is not Mechanism.AMO:
            assert amo.sync_overhead_cycles < r.sync_overhead_cycles, mech


def test_jacobi_input_validation():
    with pytest.raises(ValueError, match="divide"):
        run_jacobi(4, Mechanism.AMO, n_points=30)
    with pytest.raises(ValueError, match="two points"):
        run_jacobi(8, Mechanism.AMO, n_points=8)


def test_jacobi_sync_fraction_reported():
    r = run_jacobi(4, Mechanism.LLSC, n_points=32, sweeps=2)
    assert 0.0 < r.sync_fraction < 1.0
