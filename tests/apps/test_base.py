"""Tests for application-result accounting and fixed-point helpers."""

from hypothesis import given, settings, strategies as st

from repro.apps.base import FIXED_POINT, AppResult, from_fixed, to_fixed
from repro.config.mechanism import Mechanism
from repro.network.stats import TrafficStats


def make_result(total=1000, work=400):
    return AppResult(app="t", mechanism=Mechanism.AMO, n_processors=4,
                     total_cycles=total, work_cycles_per_cpu=work,
                     traffic=TrafficStats(), verified=True)


def test_sync_overhead_accounting():
    r = make_result(total=1000, work=400)
    assert r.sync_overhead_cycles == 600
    assert r.sync_fraction == 0.6


def test_zero_cycles_sync_fraction():
    r = make_result(total=0, work=0)
    assert r.sync_fraction == 0.0


def test_speedup_direction():
    fast = make_result(total=500)
    slow = make_result(total=2000)
    assert fast.speedup_over(slow) == 4.0
    assert slow.speedup_over(fast) == 0.25


@given(st.floats(min_value=0.0, max_value=1000.0,
                 allow_nan=False, allow_infinity=False))
@settings(max_examples=200, deadline=None)
def test_fixed_point_round_trip_error_bounded(x):
    assert abs(from_fixed(to_fixed(x)) - x) <= 0.5 / FIXED_POINT + 1e-12


@given(st.integers(min_value=0, max_value=10**9))
@settings(max_examples=100, deadline=None)
def test_fixed_point_integers_exact(v):
    assert from_fixed(to_fixed(float(v))) == float(v) or v > 2**40
