"""Tests for the task-farm application kernel."""

import pytest

from repro.apps.task_farm import run_task_farm, task_cost
from repro.config.mechanism import Mechanism

ALL = list(Mechanism)


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_every_task_runs_exactly_once(mech):
    result = run_task_farm(4, mech, n_tasks=32)
    assert result.verified
    # the claim counter overshoots by at most one chunk per CPU
    assert 32 <= result.detail["claims"] <= 32 + 4 * result.detail["chunk"]


def test_task_costs_deterministic_and_heterogeneous():
    costs = [task_cost(i) for i in range(64)]
    assert min(costs) >= 40
    assert len(set(costs)) > 32       # genuinely varied


def test_dynamic_scheduling_balances_load():
    """Self-scheduling keeps the finish-time spread small despite
    heterogeneous tasks."""
    result = run_task_farm(8, Mechanism.AMO, n_tasks=64, chunk=1)
    assert result.verified
    assert result.detail["imbalance"] < 0.35


def test_bigger_chunks_fewer_claims():
    fine = run_task_farm(4, Mechanism.AMO, n_tasks=32, chunk=1)
    coarse = run_task_farm(4, Mechanism.AMO, n_tasks=32, chunk=8)
    assert fine.verified and coarse.verified
    assert coarse.traffic.total_messages < fine.traffic.total_messages


def test_chunk_validation():
    with pytest.raises(ValueError):
        run_task_farm(4, Mechanism.AMO, chunk=0)


def test_speedup_helper():
    a = run_task_farm(4, Mechanism.AMO, n_tasks=32)
    b = run_task_farm(4, Mechanism.LLSC, n_tasks=32)
    assert a.speedup_over(b) > 0
