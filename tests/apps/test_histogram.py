"""Tests for the histogram application kernel."""

import pytest

from repro.apps.histogram import run_histogram
from repro.config.mechanism import Mechanism

ALL = list(Mechanism)


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_atomic_strategy_exact_counts(mech):
    result = run_histogram(4, mech, samples_per_cpu=16)
    assert result.verified
    assert result.detail["total_samples"] == 64


@pytest.mark.parametrize("mech", [Mechanism.LLSC, Mechanism.AMO],
                         ids=["llsc", "amo"])
def test_lock_strategy_exact_counts(mech):
    result = run_histogram(4, mech, samples_per_cpu=12, strategy="lock")
    assert result.verified


def test_atomic_beats_lock_strategy():
    """Direct atomics dodge the whole lock protocol."""
    atomic = run_histogram(8, Mechanism.AMO, samples_per_cpu=16)
    locked = run_histogram(8, Mechanism.AMO, samples_per_cpu=16,
                           strategy="lock")
    assert atomic.verified and locked.verified
    assert atomic.total_cycles < locked.total_cycles


def test_amo_histogram_traffic_least():
    """Memory-side mechanisms (AMO/MAO/ActMsg) all ship two packets per
    sample; AMO must tie them and clearly beat the cache-line-bouncing
    mechanisms."""
    results = {m: run_histogram(8, m, samples_per_cpu=16) for m in ALL}
    amo_bytes = results[Mechanism.AMO].traffic.total_bytes
    for mech in ALL:
        assert amo_bytes <= results[mech].traffic.total_bytes, mech
    for mech in (Mechanism.LLSC, Mechanism.ATOMIC):
        assert amo_bytes < 0.5 * results[mech].traffic.total_bytes, mech


def test_buckets_distributed_across_homes():
    from repro.config.parameters import SystemConfig
    from repro.core.machine import Machine
    # indirectly: more buckets than AMU words still verifies
    result = run_histogram(4, Mechanism.AMO, samples_per_cpu=8,
                           n_buckets=20)
    assert result.verified


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        run_histogram(4, Mechanism.AMO, strategy="quantum")
