"""Unit tests for signals, gates, resources and queues."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.primitives import (
    FifoQueue, Gate, Resource, Signal, Timeout, all_of,
)


# ---------------------------------------------------------------------------
# Signal
# ---------------------------------------------------------------------------

def test_signal_wakes_all_waiters_with_value():
    sim = Simulator()
    sig = Signal()
    got = []

    def waiter(tag):
        value = yield sig.wait()
        got.append((tag, value))

    for i in range(3):
        sim.spawn(waiter(i))
    sim.schedule(10, sig.fire, sim, "hello")
    sim.run()
    assert got == [(0, "hello"), (1, "hello"), (2, "hello")]


def test_wait_after_fire_resumes_immediately():
    sim = Simulator()
    sig = Signal()

    def late():
        yield Timeout(20)
        value = yield sig.wait()
        return (sim.now, value)

    sim.schedule(5, sig.fire, sim, 99)
    proc = sim.spawn(late())
    sim.run()
    assert proc.result == (20, 99)


def test_double_fire_raises():
    sim = Simulator()
    sig = Signal()
    sig.fire(sim, 1)
    with pytest.raises(RuntimeError, match="twice"):
        sig.fire(sim, 2)


def test_try_fire_reports_outcome():
    sim = Simulator()
    sig = Signal()
    assert sig.try_fire(sim, "a") is True
    assert sig.try_fire(sim, "b") is False
    assert sig.value == "a"


# ---------------------------------------------------------------------------
# Gate
# ---------------------------------------------------------------------------

def test_gate_release_passes_future_waits():
    sim = Simulator()
    gate = Gate()
    order = []

    def early():
        yield gate.wait()
        order.append(("early", sim.now))

    def late():
        yield Timeout(50)
        yield gate.wait()
        order.append(("late", sim.now))

    sim.spawn(early())
    sim.spawn(late())
    sim.schedule(10, gate.release, sim, None)
    sim.run()
    assert order == [("early", 10), ("late", 50)]


def test_gate_pulse_wakes_only_current_waiters():
    sim = Simulator()
    gate = Gate()
    woken = []

    def waiter():
        yield gate.wait()
        woken.append(sim.now)
        yield gate.wait()       # must block again after a pulse
        woken.append(sim.now)

    sim.spawn(waiter())
    sim.schedule(5, gate.pulse, sim, None)
    sim.schedule(30, gate.pulse, sim, None)
    sim.run()
    assert woken == [5, 30]


def test_gate_close_rearms():
    sim = Simulator()
    gate = Gate()
    gate.release(sim)
    gate.close()
    hits = []

    def waiter():
        yield gate.wait()
        hits.append(sim.now)

    sim.spawn(waiter())
    sim.schedule(7, gate.release, sim, None)
    sim.run()
    assert hits == [7]


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_serializes_fifo():
    sim = Simulator()
    res = Resource("r")
    order = []

    def user(tag):
        yield res.acquire()
        order.append(("in", tag, sim.now))
        yield Timeout(10)
        order.append(("out", tag, sim.now))
        res.release()

    for i in range(3):
        sim.spawn(user(i))
    sim.run()
    assert order == [("in", 0, 0), ("out", 0, 10),
                     ("in", 1, 10), ("out", 1, 20),
                     ("in", 2, 20), ("out", 2, 30)]
    assert res.grants == 3
    assert res.busy_cycles == 30
    assert not res.busy


def test_resource_release_idle_raises():
    res = Resource("r")
    with pytest.raises(RuntimeError, match="idle"):
        res.release()


def test_resource_queue_length_visible():
    sim = Simulator()
    res = Resource("r")

    def holder():
        yield res.acquire()
        yield Timeout(100)
        res.release()

    def waiter():
        yield res.acquire()
        res.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.run(until=50)
    assert res.queue_length == 2
    sim.run()
    assert res.queue_length == 0


# ---------------------------------------------------------------------------
# FifoQueue
# ---------------------------------------------------------------------------

def test_queue_get_blocks_until_put():
    sim = Simulator()
    q = FifoQueue("q")
    got = []

    def consumer():
        item = yield q.get()
        got.append((item, sim.now))

    sim.spawn(consumer())
    sim.schedule(25, q.put, sim, "x")
    sim.run()
    assert got == [("x", 25)]


def test_queue_preserves_order_and_depth_stats():
    sim = Simulator()
    q = FifoQueue("q")
    got = []

    def producer():
        for i in range(5):
            q.put(sim, i)
            yield Timeout(1)

    def consumer():
        yield Timeout(10)        # let items accumulate
        for _ in range(5):
            item = yield q.get()
            got.append(item)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]
    assert q.max_depth == 5
    assert q.puts == 5


def test_queue_multiple_getters_fifo():
    sim = Simulator()
    q = FifoQueue("q")
    got = []

    def consumer(tag):
        item = yield q.get()
        got.append((tag, item))

    for i in range(3):
        sim.spawn(consumer(i))
    sim.schedule(5, q.put, sim, "a")
    sim.schedule(6, q.put, sim, "b")
    sim.schedule(7, q.put, sim, "c")
    sim.run()
    assert got == [(0, "a"), (1, "b"), (2, "c")]


# ---------------------------------------------------------------------------
# all_of
# ---------------------------------------------------------------------------

def test_all_of_collects_results_in_order():
    sim = Simulator()

    def worker(tag, delay):
        yield Timeout(delay)
        return tag

    def main():
        procs = [sim.spawn(worker(i, 10 - i)) for i in range(5)]
        results = yield from all_of(sim, procs)
        return results

    assert sim.run_process(main()) == [0, 1, 2, 3, 4]
