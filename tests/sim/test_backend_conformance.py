"""Backend-conformance suite: every registered kernel backend must
satisfy the full :class:`repro.sim.kernel.Simulator` contract.

Each test below runs once per registered backend (``reference``,
``accel``, and anything a future PR registers), covering the parts of
the contract the golden parity fingerprints exercise only indirectly:
two-tier dispatch ordering, same-cycle delivery-phase ``(src, seq)``
order, the ``max_events`` ceiling, every documented error path, and
run-twice determinism.  A second group checks the ``accel`` selection
machinery itself — the logged compiled→Python fallback, the
``REPRO_ACCEL_REQUIRE_COMPILED`` refusal, unknown-name errors — and a
12-seed fuzz smoke drives the sanitizer stack on the accel core.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.sim.backends import (
    BackendError,
    available_backends,
    create_simulator,
    resolve_backend_name,
)
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.primitives import (
    Acquire,
    FifoQueue,
    Gate,
    GateWait,
    QueueGet,
    Resource,
    Signal,
    Timeout,
    Wait,
)

BACKENDS = available_backends()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def make_sim(backend, trace=False):
    return create_simulator(backend, trace=trace)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_registry_has_reference_and_accel():
    assert {"reference", "accel"} <= set(BACKENDS)


def test_unknown_backend_name_refused():
    with pytest.raises(BackendError, match="unknown kernel backend"):
        resolve_backend_name("no-such-core")
    with pytest.raises(BackendError, match="no-such-core"):
        create_simulator("no-such-core")


def test_env_var_typo_refused(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "acel")
    with pytest.raises(BackendError, match="acel"):
        resolve_backend_name()


def test_backend_never_in_cache_key():
    from repro.runner.spec import RunSpec
    plain = RunSpec.barrier(n_processors=8, mechanism="amo")
    tagged = RunSpec.barrier(n_processors=8, mechanism="amo",
                             backend="accel")
    assert plain.canonical() == tagged.canonical()
    assert plain == tagged


# ---------------------------------------------------------------------------
# dispatch ordering
# ---------------------------------------------------------------------------

def test_time_order(backend):
    sim = make_sim(backend)
    out = []
    sim.schedule(30, out.append, "c")
    sim.schedule(10, out.append, "a")
    sim.schedule(20, out.append, "b")
    sim.run()
    assert out == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_fifo(backend):
    sim = make_sim(backend)
    out = []
    for tag in range(10):
        sim.schedule(5, out.append, tag)
    sim.run()
    assert out == list(range(10))


def test_delivery_phase_precedes_regular_bucket(backend):
    """Two-tier contract: at one cycle, ``_push_delivery`` entries fire
    before regular bucket events, regardless of insertion order."""
    sim = make_sim(backend)
    out = []
    sim.schedule(5, out.append, "regular-1")
    sim._push_delivery(5, (1, 0), (out.append, ("delivery-b",)))
    sim.schedule(5, out.append, "regular-2")
    sim._push_delivery(5, (0, 0), (out.append, ("delivery-a",)))
    sim.run()
    assert out == ["delivery-a", "delivery-b", "regular-1", "regular-2"]


def test_delivery_phase_src_seq_order(backend):
    """Same-cycle deliveries dispatch in ``(src, seq)`` key order even
    when pushed shuffled — the canonical arrival order sharding relies
    on."""
    sim = make_sim(backend)
    keys = [(2, 0), (0, 1), (1, 0), (0, 0), (1, 7), (2, 3)]
    out = []
    for key in keys:
        sim._push_delivery(9, key, (out.append, (key,)))
    sim.run()
    assert out == sorted(keys)
    assert sim.now == 9


def test_zero_delay_runs_after_current_queue(backend):
    sim = make_sim(backend)
    out = []

    def first():
        out.append("first")
        sim.schedule(0, out.append, "nested")

    sim.schedule(1, first)
    sim.schedule(1, out.append, "second")
    sim.run()
    assert out == ["first", "second", "nested"]


def test_run_until_inclusive_boundary(backend):
    sim = make_sim(backend)
    out = []
    sim.schedule(10, out.append, "early")
    sim.schedule(100, out.append, "late")
    assert sim.run(until=50) == 50
    assert out == ["early"]
    assert sim.now == 50
    sim.run()
    assert out == ["early", "late"]


def test_pending_events_and_next_event_time(backend):
    sim = make_sim(backend)
    assert sim.pending_events() == 0
    assert sim.next_event_time() is None
    sim.schedule(0, lambda: None)
    assert sim.next_event_time() == 0
    sim.schedule(7, lambda: None)
    sim._push_delivery(7, (0, 0), ((lambda: None), ()))
    assert sim.pending_events() == 3
    sim.run()
    assert sim.pending_events() == 0
    assert sim.next_event_time() is None
    assert sim.events_dispatched == 3


# ---------------------------------------------------------------------------
# bounds and error paths
# ---------------------------------------------------------------------------

def test_max_events_allows_exactly_the_bound(backend):
    sim = make_sim(backend)
    for i in range(100):
        sim.schedule(i, lambda: None)
    sim.run(max_events=100)
    assert sim.events_dispatched == 100


def test_max_events_is_a_true_ceiling(backend):
    sim = make_sim(backend)
    ran = []
    for i in range(101):
        sim.schedule(i, ran.append, i)
    with pytest.raises(SimulationError, match="max_events=100"):
        sim.run(max_events=100)
    assert len(ran) == 100


def test_negative_delay_rejected(backend):
    sim = make_sim(backend)
    with pytest.raises(SimulationError, match="negative delay"):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected(backend):
    sim = make_sim(backend)
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError, match="cannot schedule in the past"):
        sim.schedule_at(5, lambda: None)


def test_delivery_must_be_future(backend):
    sim = make_sim(backend)
    with pytest.raises(SimulationError, match="delivery must be in the future"):
        sim._push_delivery(0, (0, 0), ((lambda: None), ()))


def test_negative_timeout_rejected(backend):
    sim = make_sim(backend)

    def bad():
        yield Timeout(-3)

    with pytest.raises(SimulationError, match="negative delay"):
        sim.run_process(bad())


def test_yielding_garbage_is_an_error(backend):
    sim = make_sim(backend)

    def bad():
        yield 12345

    with pytest.raises(SimulationError, match="non-primitive"):
        sim.run_process(bad())


def test_deadlock_detected(backend):
    sim = make_sim(backend)

    def blocked():
        yield Signal().wait()

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(blocked())


def test_run_not_reentrant(backend):
    sim = make_sim(backend)
    sim.schedule(1, sim.run)
    with pytest.raises(SimulationError, match="not reentrant"):
        sim.run()


def test_process_exception_propagates(backend):
    sim = make_sim(backend)

    def boom():
        yield Timeout(1)
        raise ValueError("kaboom")

    with pytest.raises(ValueError, match="kaboom"):
        sim.run_process(boom())


def test_exception_runs_inner_finally(backend):
    """An exception thrown through a yielded sub-coroutine must unwind
    the caller's try/finally, exactly like ``yield from``."""
    sim = make_sim(backend)
    cleaned = []

    def inner():
        yield Timeout(1)
        raise RuntimeError("inner failed")

    def outer():
        try:
            yield inner()
        finally:
            cleaned.append(sim.now)

    with pytest.raises(RuntimeError, match="inner failed"):
        sim.run_process(outer())
    assert cleaned == [1]


# ---------------------------------------------------------------------------
# determinism and cross-backend equivalence
# ---------------------------------------------------------------------------

def _primitive_gauntlet(sim):
    """One scenario touching every waitable primitive, both the blocked
    and the fire-immediately paths.  Returns a fully ordered tuple."""

    def worker(res, q, out, i):
        yield Acquire(res)
        yield Timeout(2)
        res.release()
        q.put(sim, i)
        out.append((sim.now, i))
        yield Timeout(0)

    def main():
        res = Resource("r")
        q = FifoQueue("q")
        sig = Signal("s")
        gate = Gate("g")
        pre_sig = Signal("pre")
        pre_sig.fire(sim, "early")
        pre_gate = Gate("pg")
        pre_gate.release(sim, "open")
        out = []
        procs = [sim.spawn(worker(res, q, out, i), name=f"w{i}")
                 for i in range(4)]

        def collector():
            got = []
            for _ in range(4):
                got.append((yield QueueGet(q)))
            gate.release(sim, tuple(got))
            sig.fire(sim, "done")
            return got

        coll = sim.spawn(collector())
        a = yield Wait(pre_sig)          # already fired
        b = yield GateWait(pre_gate)     # already open
        v = yield Wait(sig)              # blocks
        gv = yield GateWait(gate)        # opened while running
        joined = []
        for p in procs:
            joined.append((yield p.join()))
        got = yield coll.join()          # already done
        return (sim.now, a, b, v, gv, tuple(got), tuple(out),
                res.grants, q.puts)

    result = sim.run_process(main())
    return result, sim.events_dispatched, sim.now


def test_run_twice_determinism(backend):
    first = _primitive_gauntlet(make_sim(backend))
    second = _primitive_gauntlet(make_sim(backend))
    assert first == second


def test_primitives_match_reference(backend):
    got = _primitive_gauntlet(make_sim(backend))
    want = _primitive_gauntlet(Simulator())
    assert got == want


def test_trace_times_match_reference(backend):
    """Trace mode must log every dispatch at the same times (the
    description text may differ between implementations)."""

    def run(sim):
        def ticker():
            for _ in range(3):
                yield Timeout(4)

        sim.spawn(ticker())
        sim.schedule(6, lambda: None)
        sim.run()
        return [t for t, _ in sim.trace_log]

    assert run(make_sim(backend, trace=True)) == run(Simulator(trace=True))


def test_workload_results_identical_across_backends(backend):
    """End-to-end: one barrier workload cell produces byte-identical
    cycles and event counts on every backend."""
    from repro.config.mechanism import Mechanism
    from repro.workloads.barrier import run_barrier_workload

    res = run_barrier_workload(16, Mechanism.LLSC, episodes=2,
                               backend=backend)
    ref = run_barrier_workload(16, Mechanism.LLSC, episodes=2,
                               backend="reference")
    assert (res.cycles_per_episode, res.events_dispatched) == \
        (ref.cycles_per_episode, ref.events_dispatched)


@pytest.mark.parametrize("lock_type,mech", [("mcs", "amo"), ("cna", "llsc"),
                                            ("rw", "atomic")],
                         ids=["mcs-amo", "cna-llsc", "rw-atomic"])
def test_qlock_results_identical_across_backends(backend, lock_type, mech):
    """Queue-lock workloads (spin_until wake-ups, CAS retry loops, CNA
    secondary-queue scans) on every backend vs reference, including the
    offline grant-history verification which runs in both."""
    from repro.config.mechanism import Mechanism
    from repro.workloads.qlocks import run_qlock_workload

    kw = dict(lock_type=lock_type, acquisitions_per_cpu=2, warmup_per_cpu=1)
    res = run_qlock_workload(16, Mechanism(mech), backend=backend, **kw)
    ref = run_qlock_workload(16, Mechanism(mech), backend="reference", **kw)
    assert (res.total_cycles, res.events_dispatched) == \
        (ref.total_cycles, ref.events_dispatched)
    assert res.traffic.messages == ref.traffic.messages


# ---------------------------------------------------------------------------
# accel selection machinery
# ---------------------------------------------------------------------------

_SUBPROC_SNIPPET = """\
import logging, sys
logging.basicConfig(level=logging.WARNING, stream=sys.stderr)
from repro.sim.backends import accel_implementation, create_simulator
from repro.sim.primitives import Timeout
impl = accel_implementation()
sim = create_simulator("accel")
def p():
    yield Timeout(3)
    return 11
assert sim.run_process(p()) == 11 and sim.now == 3
print("impl:", impl)
"""


def _run_subprocess(extra_env):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env)
    return subprocess.run([sys.executable, "-c", _SUBPROC_SNIPPET],
                          capture_output=True, text=True, env=env,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.dirname(os.path.abspath(__file__)))))


def test_accel_python_fallback_is_logged():
    """Without the compiled core the accel backend must still work —
    via the pure-Python implementation, with a logged warning."""
    out = _run_subprocess({"REPRO_ACCEL_DISABLE_COMPILED": "1"})
    assert out.returncode == 0, out.stderr
    assert "impl: python" in out.stdout
    assert "falling back to the pure-Python accel implementation" \
        in out.stderr


def test_accel_require_compiled_refuses_fallback():
    code = ("from repro.sim.backends import accel_implementation, "
            "BackendError\n"
            "try:\n"
            "    accel_implementation()\n"
            "except BackendError as err:\n"
            "    print('refused:', err)\n"
            "else:\n"
            "    raise SystemExit('fallback was not refused')\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_ACCEL_DISABLE_COMPILED"] = "1"
    env["REPRO_ACCEL_REQUIRE_COMPILED"] = "1"
    out = subprocess.run([sys.executable, "-c", code],
                         capture_output=True, text=True, env=env,
                         cwd=os.path.dirname(os.path.dirname(
                             os.path.dirname(os.path.abspath(__file__)))))
    assert out.returncode == 0, out.stderr
    assert "refused:" in out.stdout


# ---------------------------------------------------------------------------
# ported-handler message-trace equality (model-layer port)
# ---------------------------------------------------------------------------
#
# The accel backend compiles whole protocol handlers (egress waves, the
# cache-client load/spin/invalidate chain, the GET_S clean-read path and
# its DATA_S read-fill).  Golden parity pins aggregate counts; these
# tests pin the *full message trace* — every packet's kind, endpoints,
# address, requester, size, and send cycle — for one scenario per ported
# handler, reference vs accel.

def _scenario_get_s_clean(machine):
    """Clean-read GET_S fan: every CPU misses on an unowned line
    (compiled CORO_GETS + CORO_RF read-fill on accel)."""
    var = machine.alloc("v", home_node=1)
    machine.poke(var.addr, 1234)

    def thread(proc):
        return (yield from proc.load(var.addr))

    machine.run_threads(thread, max_events=2_000_000)


def _scenario_get_s_owned(machine):
    """3-hop GET_S: reads of a dirty remote line go through the
    intervention tail (`_get_s_owned` stays Python on both backends)."""
    var = machine.alloc("v", home_node=0)

    def writer(proc):
        yield from proc.store(var.addr, 99)

    machine.run_threads(writer, cpus=[3], max_events=2_000_000)

    def reader(proc):
        return (yield from proc.load(var.addr))

    machine.run_threads(reader, cpus=[0, 1, 2], max_events=2_000_000)


def _scenario_get_x_release_wave(machine):
    """Upgrade of a widely shared line: one GET_X triggers a full
    invalidation wave (compiled per-packet wave callbacks on accel) and
    the INV_ACK collection."""
    var = machine.alloc("v", home_node=1)

    def reader(proc):
        return (yield from proc.load(var.addr))

    machine.run_threads(reader, max_events=2_000_000)

    def writer(proc):
        yield from proc.store(var.addr, 5)

    machine.run_threads(writer, cpus=[0], max_events=2_000_000)


def _scenario_writeback(machine):
    """Dirty-line conflict evictions: WRITEBACK/WRITEBACK_ACK traffic
    (the tiny L2 below forces them) plus re-reads of evicted lines."""
    hot = machine.alloc("hot", home_node=1)
    fillers = [machine.alloc(f"f{i}", home_node=1) for i in range(8)]

    # single writer: a concurrent second store would demote the dirty
    # line via intervention and the eviction would be silent
    def thread(proc):
        yield from proc.store(hot.addr, 4242)
        for f in fillers:
            yield from proc.load(f.addr)
        return (yield from proc.load(hot.addr))

    machine.run_threads(thread, cpus=[0], max_events=2_000_000)


def _scenario_word_update(machine):
    """AMO with the put mechanism: the home AMU pushes WORD_UPDATEs into
    sharer caches (compiled word-update delivery chain on accel)."""
    var = machine.alloc("ctr", home_node=1)

    def reader(proc):
        return (yield from proc.load(var.addr))

    machine.run_threads(reader, max_events=2_000_000)

    def bumper(proc):
        old = yield from proc.amo("fetchadd", var.addr, 1, push=True)
        return old

    machine.run_threads(bumper, cpus=[0], max_events=2_000_000)

    machine.run_threads(reader, max_events=2_000_000)


def _tiny_l2():
    from repro.config.parameters import CacheConfig
    return dict(l2=CacheConfig(size_bytes=4 * 128, ways=2, line_bytes=128,
                               latency_cycles=10))


_TRACE_SCENARIOS = {
    "get_s_clean": (_scenario_get_s_clean, {}, {"GET_S", "DATA_S"}),
    "get_s_owned": (_scenario_get_s_owned, {},
                    {"GET_X", "INTERVENTION", "INTERVENTION_REPLY"}),
    "get_x_release_wave": (_scenario_get_x_release_wave, {},
                           {"INVALIDATE", "INV_ACK"}),
    "writeback": (_scenario_writeback, _tiny_l2,
                  {"WRITEBACK", "WRITEBACK_ACK"}),
    "word_update": (_scenario_word_update, {},
                    {"AMO_REQUEST", "WORD_UPDATE"}),
}


def _message_trace(backend, scenario_name):
    from repro.config.parameters import SystemConfig
    from repro.core.machine import Machine

    scenario, overrides, _ = _TRACE_SCENARIOS[scenario_name]
    if callable(overrides):
        overrides = overrides()
    machine = Machine(SystemConfig.table1(
        8, kernel_backend=backend, **overrides))
    trace = []

    def hook(msg, dst):
        trace.append((machine.sim.now, msg.kind.name, msg.src_node, dst,
                      msg.addr, msg.requester, msg.size_bytes))

    machine.net.subscribe_send(hook)
    scenario(machine)
    machine.check_coherence_invariants()
    return trace, machine.sim.now, machine.sim.events_dispatched


@pytest.mark.parametrize("scenario", sorted(_TRACE_SCENARIOS))
def test_ported_handler_message_traces_match_reference(backend, scenario):
    got = _message_trace(backend, scenario)
    want = _message_trace("reference", scenario)
    expected_kinds = _TRACE_SCENARIOS[scenario][2]
    seen = {entry[1] for entry in got[0]}
    assert expected_kinds <= seen, (
        f"scenario {scenario} did not exercise {expected_kinds - seen}")
    assert got == want


def test_accel_handlers_return_compiled_coroutines():
    """When the compiled model paths are armed, the ported entry points
    return ModelCoro state machines, not Python generators — the
    is-the-port-actually-active check the trace equality above relies
    on."""
    from repro.config.parameters import SystemConfig
    from repro.core.machine import Machine
    from repro.network.message import Message, MessageKind
    from repro.sim.backends.model import model_core

    core = model_core()
    if core is None:
        pytest.skip("compiled model paths not armed")
    from repro.sim.backends._accel_core import ModelCoro

    machine = Machine(SystemConfig.table1(4, kernel_backend="accel"))
    hub = machine.hubs[0]
    assert type(hub).__name__ == "AccelHub"
    assert type(hub.home_engine).__name__ == "AccelHomeEngine"
    assert type(machine.cpus[0].controller).__name__ == "AccelCacheController"

    var = machine.alloc("v", home_node=0)
    get_s = Message(MessageKind.GET_S, 1, 0, addr=var.addr, requester=1)
    coros = [
        hub.home_engine._serve_get_s(get_s),
        hub.egress_send(Message(MessageKind.GET_S, 0, 1, addr=var.addr,
                                requester=0)),
        machine.cpus[0].controller.load(var.addr),
    ]
    try:
        for coro in coros:
            assert isinstance(coro, ModelCoro), coro
    finally:
        for coro in coros:
            coro.close()


# ---------------------------------------------------------------------------
# fuzz smoke on the accel core
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(12))
def test_fuzz_smoke_accel(seed):
    """12-seed sanitizer-armed fuzz smoke on the accel backend: random
    per-message delays must never produce a coherence violation, and the
    outcome must equal the reference backend's byte for byte."""
    from repro.check.fuzz import run_fuzz_schedule

    accel = run_fuzz_schedule(n_processors=8, workload="counter",
                              seed=seed, ops_per_cpu=2, backend="accel")
    assert accel["ok"], accel
    ref = run_fuzz_schedule(n_processors=8, workload="counter",
                            seed=seed, ops_per_cpu=2, backend="reference")
    assert (accel["cycles"], accel["events_dispatched"]) == \
        (ref["cycles"], ref["events_dispatched"])


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_smoke_accel_qlock_reorder(seed):
    """Queue-lock fuzz points in the relaxed-ordering universe on the
    accel core: the ReorderInjector's jittered delivery keys must land
    identically on both backends."""
    from repro.check.fuzz import run_fuzz_schedule

    kw = dict(n_processors=8, workload="qlock_cna", seed=seed,
              ops_per_cpu=2, max_extra=120, reorder_window=40)
    accel = run_fuzz_schedule(backend="accel", **kw)
    assert accel["ok"], accel
    ref = run_fuzz_schedule(backend="reference", **kw)
    assert accel == ref
