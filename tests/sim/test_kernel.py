"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.primitives import Signal, Timeout


def test_events_fire_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(30, out.append, "c")
    sim.schedule(10, out.append, "a")
    sim.schedule(20, out.append, "b")
    sim.run()
    assert out == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_events_fire_fifo():
    sim = Simulator()
    out = []
    for tag in range(10):
        sim.schedule(5, out.append, tag)
    sim.run()
    assert out == list(range(10))


def test_zero_delay_runs_after_current_queue():
    sim = Simulator()
    out = []

    def first():
        out.append("first")
        sim.schedule(0, out.append, "nested")

    sim.schedule(1, first)
    sim.schedule(1, out.append, "second")
    sim.run()
    assert out == ["first", "second", "nested"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    out = []
    sim.schedule(10, out.append, "early")
    sim.schedule(100, out.append, "late")
    sim.run(until=50)
    assert out == ["early"]
    assert sim.now == 50
    sim.run()
    assert out == ["early", "late"]


def test_run_until_inclusive_boundary():
    sim = Simulator()
    out = []
    sim.schedule(50, out.append, "exact")
    sim.run(until=50)
    assert out == ["exact"]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(1, forever)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_max_events_allows_exactly_the_bound():
    """A run needing exactly max_events events completes cleanly."""
    sim = Simulator()
    for i in range(100):
        sim.schedule(i, lambda: None)
    sim.run(max_events=100)
    assert sim.events_dispatched == 100


def test_max_events_stops_before_the_excess_event():
    """Regression: the guard used to fire only after max_events + 1
    events had already run; the bound must be a true ceiling."""
    sim = Simulator()
    ran = []
    for i in range(101):
        sim.schedule(i, ran.append, i)
    with pytest.raises(SimulationError, match="max_events=100"):
        sim.run(max_events=100)
    assert len(ran) == 100, "the 101st event must not have executed"


def test_process_returns_value():
    sim = Simulator()

    def proc():
        yield Timeout(5)
        return 42

    assert sim.run_process(proc()) == 42
    assert sim.now == 5


def test_nested_coroutines_compose():
    sim = Simulator()

    def inner():
        yield Timeout(3)
        return "inner-done"

    def outer():
        result = yield from inner()
        yield Timeout(4)
        return result + "/outer-done"

    assert sim.run_process(outer()) == "inner-done/outer-done"
    assert sim.now == 7


def test_deadlock_detected():
    sim = Simulator()

    def blocked():
        yield Signal().wait()   # nobody will ever fire this

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(blocked())


def test_process_exception_propagates():
    sim = Simulator()

    def boom():
        yield Timeout(1)
        raise ValueError("kaboom")

    with pytest.raises(ValueError, match="kaboom"):
        sim.run_process(boom())


def test_yielding_garbage_is_an_error():
    sim = Simulator()

    def bad():
        yield 12345

    with pytest.raises(SimulationError, match="non-primitive"):
        sim.run_process(bad())


def test_determinism_across_runs():
    def build_and_run():
        sim = Simulator()
        trace = []

        def worker(tag, delay):
            yield Timeout(delay)
            trace.append((sim.now, tag))
            yield Timeout(delay * 2)
            trace.append((sim.now, tag))

        for i in range(5):
            sim.spawn(worker(i, 3 + i))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()


def test_join_returns_result():
    sim = Simulator()

    def child():
        yield Timeout(10)
        return "payload"

    def parent():
        proc = sim.spawn(child())
        result = yield proc.join()
        return result

    assert sim.run_process(parent()) == "payload"


def test_join_already_finished_process():
    sim = Simulator()

    def child():
        yield Timeout(1)
        return 7

    def parent():
        proc = sim.spawn(child())
        yield Timeout(100)           # child long done
        result = yield proc.join()
        return result

    assert sim.run_process(parent()) == 7


def test_events_dispatched_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_dispatched == 7
