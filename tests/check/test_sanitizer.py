"""Coherence sanitizer: arming, hooks, oracle, and zero-cost-off tests."""

import pytest

from repro.check import CoherenceSanitizer, CoherenceViolation, MemoryOracle
from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.barrier import CentralizedBarrier
from repro.sync.rmw import fetch_add
from repro.sync.ticket_lock import TicketLock

MECHANISMS = list(Mechanism)


def _machine(n=8):
    return Machine(SystemConfig.table1(n))


# ----------------------------------------------------------------------
# arming / disarming
# ----------------------------------------------------------------------
def test_unattached_machine_has_no_sanitizer():
    assert _machine(4).sanitizer is None


def test_attach_detach_lifecycle():
    machine = _machine(4)
    san = CoherenceSanitizer.attach(machine, mode="raise")
    assert machine.sanitizer is san
    assert san.ok
    san.detach()
    assert machine.sanitizer is None


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        CoherenceSanitizer(_machine(4), mode="whatever")


# ----------------------------------------------------------------------
# clean runs stay clean, across every mechanism, with mode="raise"
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mechanism", MECHANISMS, ids=lambda m: m.value)
def test_barrier_clean_under_sanitizer(mechanism):
    machine = _machine(8)
    san = CoherenceSanitizer.attach(machine, mode="raise")
    barrier = CentralizedBarrier(machine, mechanism)

    def thread(proc):
        for _ in range(2):
            yield from barrier.wait(proc)

    machine.run_threads(thread)
    san.finalize()
    assert san.ok
    assert san.messages_checked > 0
    assert san.line_checks > 0


@pytest.mark.parametrize("mechanism", MECHANISMS, ids=lambda m: m.value)
def test_lock_clean_under_sanitizer(mechanism):
    machine = _machine(8)
    san = CoherenceSanitizer.attach(machine, mode="raise")
    lock = TicketLock(machine, mechanism)

    def thread(proc):
        for _ in range(2):
            yield from lock.acquire(proc)
            yield from proc.delay(30)
            yield from lock.release(proc)

    machine.run_threads(thread)
    san.finalize()
    assert san.ok


@pytest.mark.parametrize("mechanism", MECHANISMS, ids=lambda m: m.value)
def test_counter_oracle_tracks_every_rmw(mechanism):
    machine = _machine(8)
    san = CoherenceSanitizer.attach(machine, mode="raise")
    var = machine.alloc("ctr", home_node=0)

    def thread(proc):
        for _ in range(3):
            yield from fetch_add(proc, mechanism, var.addr, 1)

    machine.run_threads(thread)
    san.finalize()
    assert san.ok
    assert san.oracle.tracks(var.addr)
    assert san.oracle.value(var.addr) == 24
    assert machine.peek(var.addr) == 24


def test_full_sweep_every_message():
    machine = _machine(4)
    san = CoherenceSanitizer.attach(machine, mode="raise", full_sweep_every=1)
    barrier = CentralizedBarrier(machine, Mechanism.AMO)

    def thread(proc):
        yield from barrier.wait(proc)

    machine.run_threads(thread)
    san.finalize()
    assert san.ok
    assert san.full_sweeps >= san.messages_checked


# ----------------------------------------------------------------------
# armed vs unarmed parity: observation must not perturb the simulation
# ----------------------------------------------------------------------
def test_sanitizer_does_not_perturb_timing():
    def run(armed):
        machine = _machine(8)
        if armed:
            CoherenceSanitizer.attach(machine, mode="raise")
        lock = TicketLock(machine, Mechanism.AMO)

        def thread(proc):
            for _ in range(2):
                yield from lock.acquire(proc)
                yield from lock.release(proc)

        machine.run_threads(thread)
        return machine.last_completion_time, machine.sim.events_dispatched

    assert run(False) == run(True)


# ----------------------------------------------------------------------
# violations are detected and reported
# ----------------------------------------------------------------------
def test_raise_mode_raises_on_oracle_break():
    machine = _machine(4)
    san = CoherenceSanitizer.attach(machine, mode="raise")
    var = machine.alloc("x", home_node=0)
    san.note_rmw(0, var.addr, old=0, new=1, site="test")
    with pytest.raises(CoherenceViolation):
        san.note_rmw(1, var.addr, old=0, new=1, site="test")


def test_collect_mode_collects():
    machine = _machine(4)
    san = CoherenceSanitizer.attach(machine, mode="collect")
    var = machine.alloc("x", home_node=0)
    san.note_rmw(0, var.addr, old=0, new=1, site="test")
    san.note_rmw(1, var.addr, old=0, new=1, site="test")
    assert not san.ok
    assert san.violation_count == 1
    assert "observed old value 0" in san.violations[0]


def test_undelivered_put_flagged_at_finalize():
    machine = _machine(4)
    san = CoherenceSanitizer.attach(machine, mode="collect")
    var = machine.alloc("x", home_node=0)
    san.note_amu_op(0, var.addr, old=0, new=1, coherent=True, will_push=True)
    san.finalize()
    assert any("never reached the home write path" in v
               for v in san.violations)


def test_poke_keeps_oracle_in_sync():
    machine = _machine(4)
    san = CoherenceSanitizer.attach(machine, mode="raise")
    var = machine.alloc("x", home_node=0)
    assert san.oracle.value(var.addr) == 0  # lazy-seeded from backing
    machine.poke(var.addr, 7)
    assert san.oracle.value(var.addr) == 7


# ----------------------------------------------------------------------
# oracle unit behavior
# ----------------------------------------------------------------------
def test_oracle_lazy_seed_and_final_check():
    machine = _machine(4)
    oracle = MemoryOracle(machine)
    var = machine.alloc("y", home_node=0)
    machine.poke(var.addr, 5)
    assert oracle.value(var.addr) == 5
    assert oracle.rmw(var.addr, old=5, new=6) is None
    assert oracle.rmw(var.addr, old=5, new=7) is not None  # stale old
    machine.poke(var.addr, 7)
    assert oracle.final_check() == []
    machine.poke(var.addr, 99)
    assert len(oracle.final_check()) == 1
