"""Offline history verifiers: good histories pass, bad histories don't."""

from repro.check.linearize import (
    BarrierRecord,
    FetchAddEvent,
    LockSpan,
    check_barrier_epochs,
    check_fetchadd_history,
    check_mutual_exclusion,
)


# ----------------------------------------------------------------------
# fetch-and-add
# ----------------------------------------------------------------------
def test_fetchadd_clean_history():
    events = [FetchAddEvent(cpu=i % 2, start=10 * i, end=10 * i + 5, old=i)
              for i in range(6)]
    assert check_fetchadd_history(events, initial=0, final=6) == []


def test_fetchadd_clean_out_of_order_completion():
    # overlapping intervals may observe olds in any order
    events = [
        FetchAddEvent(cpu=0, start=0, end=100, old=1),
        FetchAddEvent(cpu=1, start=0, end=90, old=0),
    ]
    assert check_fetchadd_history(events, initial=0, final=2) == []


def test_fetchadd_empty_history():
    assert check_fetchadd_history([], initial=0, final=None) == []


def test_fetchadd_lost_update():
    # two ops observed the same old value — one increment was lost
    events = [
        FetchAddEvent(cpu=0, start=0, end=10, old=0),
        FetchAddEvent(cpu=1, start=20, end=30, old=0),
    ]
    problems = check_fetchadd_history(events, initial=0, final=2)
    assert any("duplicate" in p for p in problems)
    assert any("chain" in p for p in problems)


def test_fetchadd_broken_chain():
    events = [
        FetchAddEvent(cpu=0, start=0, end=10, old=0),
        FetchAddEvent(cpu=1, start=20, end=30, old=5),
    ]
    problems = check_fetchadd_history(events, initial=0)
    assert any("chain broken" in p for p in problems)


def test_fetchadd_wrong_final():
    events = [FetchAddEvent(cpu=0, start=0, end=10, old=0)]
    problems = check_fetchadd_history(events, initial=0, final=5)
    assert any("final value" in p for p in problems)


def test_fetchadd_real_time_violation():
    # cpu0 finished (t=10) before cpu1 started (t=20) yet saw the larger old
    events = [
        FetchAddEvent(cpu=0, start=0, end=10, old=1),
        FetchAddEvent(cpu=1, start=20, end=30, old=0),
    ]
    problems = check_fetchadd_history(events, initial=0, final=2)
    assert any("real-time" in p for p in problems)


# ----------------------------------------------------------------------
# mutual exclusion
# ----------------------------------------------------------------------
def test_lock_clean_spans():
    spans = [LockSpan(cpu=i % 3, ticket=i, acquired=100 * i,
                      released=100 * i + 50) for i in range(6)]
    assert check_mutual_exclusion(spans) == []


def test_lock_overlap_detected():
    spans = [
        LockSpan(cpu=0, ticket=0, acquired=0, released=100),
        LockSpan(cpu=1, ticket=1, acquired=50, released=150),
    ]
    problems = check_mutual_exclusion(spans)
    assert any("mutual exclusion" in p for p in problems)


def test_lock_ticket_order_violation():
    spans = [
        LockSpan(cpu=0, ticket=1, acquired=0, released=10),
        LockSpan(cpu=1, ticket=0, acquired=20, released=30),
    ]
    problems = check_mutual_exclusion(spans)
    assert any("ticket order" in p for p in problems)


def test_lock_duplicate_tickets():
    spans = [
        LockSpan(cpu=0, ticket=0, acquired=0, released=10),
        LockSpan(cpu=1, ticket=0, acquired=20, released=30),
    ]
    problems = check_mutual_exclusion(spans)
    assert any("duplicate tickets" in p for p in problems)


# ----------------------------------------------------------------------
# barrier epochs
# ----------------------------------------------------------------------
def _clean_barrier_records(n_cpus=4, episodes=3):
    records = []
    for episode in range(episodes):
        base = 1000 * episode
        for cpu in range(n_cpus):
            records.append(BarrierRecord(cpu=cpu, episode=episode,
                                         entered=base + 10 * cpu,
                                         exited=base + 100 + cpu))
    return records


def test_barrier_clean():
    assert check_barrier_epochs(_clean_barrier_records(), n_cpus=4) == []


def test_barrier_early_exit():
    # cpu0 exits episode 0 before cpu3 has entered it
    records = _clean_barrier_records(n_cpus=4, episodes=1)
    records[0] = BarrierRecord(cpu=0, episode=0, entered=0, exited=5)
    problems = check_barrier_epochs(records, n_cpus=4)
    assert any("exited" in p for p in problems)


def test_barrier_missing_participant():
    records = _clean_barrier_records(n_cpus=4, episodes=1)[:-1]
    problems = check_barrier_epochs(records, n_cpus=4)
    assert any("3 records" in p for p in problems)


def test_barrier_episode_overlap_per_cpu():
    records = _clean_barrier_records(n_cpus=2, episodes=2)
    # cpu0 enters episode 1 before it exited episode 0
    records = [r for r in records if not (r.cpu == 0 and r.episode == 1)]
    records.append(BarrierRecord(cpu=0, episode=1, entered=50, exited=1200))
    problems = check_barrier_epochs(records, n_cpus=2)
    assert any("before exiting" in p for p in problems)
