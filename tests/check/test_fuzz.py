"""Schedule fuzzer: clean runs, bug detection, shrinking, artifacts."""

import pytest

from repro.check.fuzz import (
    load_artifact,
    repro_command,
    run_fuzz_schedule,
    shrink_failure,
    write_artifact,
)
from repro.config.mechanism import Mechanism
from repro.runner.spec import RunSpec, execute_spec

FAILING_POINT = dict(
    n_processors=8,
    mechanism="llsc",
    workload="lock",
    seed=0,
    max_extra=100,
    episodes=2,
    ops_per_cpu=3,
    inject_bug="skip_invalidation",
)


# ----------------------------------------------------------------------
# clean schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mechanism", list(Mechanism), ids=lambda m: m.value)
@pytest.mark.parametrize("workload", ["counter", "barrier", "lock"])
def test_clean_schedules(mechanism, workload):
    out = run_fuzz_schedule(
        n_processors=8,
        mechanism=mechanism,
        workload=workload,
        seed=7,
        max_extra=250,
        episodes=2,
        ops_per_cpu=2,
    )
    assert out["ok"], (out["error"], out["violations"])
    assert out["events_dispatched"] > 0
    assert out["cycles"] > 0


def test_same_seed_reproduces_exactly():
    kwargs = dict(n_processors=8, mechanism="amo", workload="lock",
                  seed=3, max_extra=150)
    a = run_fuzz_schedule(**kwargs)
    b = run_fuzz_schedule(**kwargs)
    assert a == b


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        run_fuzz_schedule(workload="nope")


def test_unknown_bug_rejected():
    with pytest.raises(ValueError):
        run_fuzz_schedule(inject_bug="nope")


# ----------------------------------------------------------------------
# injected protocol bugs are caught
# ----------------------------------------------------------------------
def test_skipped_invalidation_is_caught():
    out = run_fuzz_schedule(**FAILING_POINT)
    assert not out["ok"]
    assert out["violations"]


def test_dropped_word_update_is_caught():
    out = run_fuzz_schedule(
        n_processors=8,
        mechanism="amo",
        workload="barrier",
        seed=0,
        max_extra=100,
        episodes=2,
        inject_bug="drop_word_update",
    )
    assert not out["ok"]
    assert out["error"] or out["violations"]


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def test_shrink_converges_to_minimal_reproducer():
    shrunk, outcome = shrink_failure(dict(FAILING_POINT))
    # this bug needs no timing perturbation at all: minimal reproducer
    # is the injector inert (bound 0, no kinds delayed)
    assert shrunk["max_extra"] == 0
    assert shrunk["kinds"] == []
    assert not outcome["ok"]
    # the shrunk point still replays to the same failure
    replay = run_fuzz_schedule(**shrunk)
    assert replay["violations"] == outcome["violations"]


def test_shrink_refuses_passing_point():
    good = dict(FAILING_POINT, inject_bug=None)
    with pytest.raises(ValueError):
        shrink_failure(good)


# ----------------------------------------------------------------------
# artifacts + repro commands
# ----------------------------------------------------------------------
def test_artifact_round_trip(tmp_path):
    shrunk, outcome = shrink_failure(dict(FAILING_POINT))
    path = tmp_path / "failure-0.json"
    write_artifact(path, FAILING_POINT, shrunk, outcome)
    params = load_artifact(path)
    assert params == shrunk
    replay = run_fuzz_schedule(**params)
    assert not replay["ok"]


def test_repro_command_is_one_line():
    cmd = repro_command(FAILING_POINT)
    assert "\n" not in cmd
    assert cmd.startswith("repro-experiments fuzz ")
    assert "--mechanism llsc" in cmd
    assert "--inject-bug skip_invalidation" in cmd


# ----------------------------------------------------------------------
# runner integration: fuzz points are ordinary sweep specs
# ----------------------------------------------------------------------
def test_runspec_fuzz_canonical_and_executable():
    spec = RunSpec.fuzz(8, Mechanism.AMO, "barrier", seed=4, max_extra=80)
    again = RunSpec.fuzz(8, Mechanism.AMO, "barrier", seed=4, max_extra=80)
    assert spec.canonical() == again.canonical()
    assert "fuzz" in spec.label()
    record = execute_spec(spec)
    assert record.result["ok"]
    assert record.sim_events == record.result["events_dispatched"] > 0


def test_runspec_fuzz_optional_params_stay_out_of_key():
    bare = RunSpec.fuzz(8, Mechanism.LLSC, "lock", seed=0, max_extra=10)
    assert "kinds" not in bare.kwargs
    assert "inject_bug" not in bare.kwargs
    assert "reorder_window" not in bare.kwargs
    restricted = RunSpec.fuzz(8, Mechanism.LLSC, "lock", seed=0, max_extra=10,
                              kinds=("word_update", "get_x"))
    assert restricted.kwargs["kinds"] == ("get_x", "word_update")
    assert bare.canonical() != restricted.canonical()
    relaxed = RunSpec.fuzz(8, Mechanism.LLSC, "lock", seed=0, max_extra=10,
                           reorder_window=60, reorder_kinds=("word_update",))
    assert relaxed.kwargs["reorder_window"] == 60
    assert relaxed.kwargs["reorder_kinds"] == ("word_update",)
    assert bare.canonical() != relaxed.canonical()


# ----------------------------------------------------------------------
# queue-lock workloads + the relaxed-ordering universe
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", ["qlock_mcs", "qlock_cna", "qlock_rw"])
@pytest.mark.parametrize("reorder", [0, 40], ids=["fifo", "reorder"])
def test_clean_qlock_schedules(workload, reorder):
    out = run_fuzz_schedule(
        n_processors=8,
        mechanism="amo",
        workload=workload,
        seed=5,
        max_extra=150,
        reorder_window=reorder,
        ops_per_cpu=2,
    )
    assert out["ok"], (out["error"], out["violations"])
    assert out["reorder_window"] == reorder


def test_qlock_rw_refuses_mao():
    with pytest.raises(ValueError, match="rw"):
        run_fuzz_schedule(mechanism="mao", workload="qlock_rw")


def test_reorder_universe_reproduces_exactly():
    kwargs = dict(n_processors=8, mechanism="llsc", workload="qlock_cna",
                  seed=2, max_extra=100, reorder_window=50)
    assert run_fuzz_schedule(**kwargs) == run_fuzz_schedule(**kwargs)


def test_workload_bug_requires_matching_workload():
    with pytest.raises(ValueError, match="requires workload"):
        run_fuzz_schedule(workload="barrier", inject_bug="qlock_skip_wait")
    with pytest.raises(ValueError, match="requires workload"):
        run_fuzz_schedule(workload="qlock_mcs", inject_bug="rw_early_release")


def test_qlock_skip_wait_is_caught():
    out = run_fuzz_schedule(8, "llsc", "qlock_mcs", seed=0, max_extra=150,
                            inject_bug="qlock_skip_wait")
    assert not out["ok"]
    assert any("mutual exclusion" in v or "FIFO" in v
               for v in out["violations"]), out


def test_cna_skip_flush_is_caught():
    out = run_fuzz_schedule(8, "amo", "qlock_cna", seed=0, max_extra=150,
                            inject_bug="cna_skip_flush")
    assert not out["ok"]
    assert any("fairness bound" in v for v in out["violations"]), out


def test_rw_early_release_is_caught():
    out = run_fuzz_schedule(8, "llsc", "qlock_rw", seed=0, max_extra=150,
                            inject_bug="rw_early_release")
    assert not out["ok"]
    assert any("exclusion violated" in v or "ticket order" in v
               for v in out["violations"]), out


def test_shrink_reports_reorder_universe():
    # a bug that fails regardless of universe: the shrinker must strip
    # the reorder universe from the reproducer and say so in the command
    point = dict(FAILING_POINT, reorder_window=80)
    shrunk, outcome = shrink_failure(dict(point))
    assert shrunk["reorder_window"] == 0
    assert not outcome["ok"]
    assert "--fuzz-reorder" not in repro_command(shrunk)


def test_repro_command_names_reorder_universe():
    cmd = repro_command(dict(FAILING_POINT, workload="qlock_cna",
                             reorder_window=64,
                             reorder_kinds=["word_update"]))
    assert "--workload qlock_cna" in cmd
    assert "--fuzz-reorder 64" in cmd
    assert "--fuzz-reorder-kinds word_update" in cmd
