"""Schedule fuzzer: clean runs, bug detection, shrinking, artifacts."""

import pytest

from repro.check.fuzz import (
    load_artifact,
    repro_command,
    run_fuzz_schedule,
    shrink_failure,
    write_artifact,
)
from repro.config.mechanism import Mechanism
from repro.runner.spec import RunSpec, execute_spec

FAILING_POINT = dict(
    n_processors=8,
    mechanism="llsc",
    workload="lock",
    seed=0,
    max_extra=100,
    episodes=2,
    ops_per_cpu=3,
    inject_bug="skip_invalidation",
)


# ----------------------------------------------------------------------
# clean schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mechanism", list(Mechanism), ids=lambda m: m.value)
@pytest.mark.parametrize("workload", ["counter", "barrier", "lock"])
def test_clean_schedules(mechanism, workload):
    out = run_fuzz_schedule(
        n_processors=8,
        mechanism=mechanism,
        workload=workload,
        seed=7,
        max_extra=250,
        episodes=2,
        ops_per_cpu=2,
    )
    assert out["ok"], (out["error"], out["violations"])
    assert out["events_dispatched"] > 0
    assert out["cycles"] > 0


def test_same_seed_reproduces_exactly():
    kwargs = dict(n_processors=8, mechanism="amo", workload="lock",
                  seed=3, max_extra=150)
    a = run_fuzz_schedule(**kwargs)
    b = run_fuzz_schedule(**kwargs)
    assert a == b


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        run_fuzz_schedule(workload="nope")


def test_unknown_bug_rejected():
    with pytest.raises(ValueError):
        run_fuzz_schedule(inject_bug="nope")


# ----------------------------------------------------------------------
# injected protocol bugs are caught
# ----------------------------------------------------------------------
def test_skipped_invalidation_is_caught():
    out = run_fuzz_schedule(**FAILING_POINT)
    assert not out["ok"]
    assert out["violations"]


def test_dropped_word_update_is_caught():
    out = run_fuzz_schedule(
        n_processors=8,
        mechanism="amo",
        workload="barrier",
        seed=0,
        max_extra=100,
        episodes=2,
        inject_bug="drop_word_update",
    )
    assert not out["ok"]
    assert out["error"] or out["violations"]


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def test_shrink_converges_to_minimal_reproducer():
    shrunk, outcome = shrink_failure(dict(FAILING_POINT))
    # this bug needs no timing perturbation at all: minimal reproducer
    # is the injector inert (bound 0, no kinds delayed)
    assert shrunk["max_extra"] == 0
    assert shrunk["kinds"] == []
    assert not outcome["ok"]
    # the shrunk point still replays to the same failure
    replay = run_fuzz_schedule(**shrunk)
    assert replay["violations"] == outcome["violations"]


def test_shrink_refuses_passing_point():
    good = dict(FAILING_POINT, inject_bug=None)
    with pytest.raises(ValueError):
        shrink_failure(good)


# ----------------------------------------------------------------------
# artifacts + repro commands
# ----------------------------------------------------------------------
def test_artifact_round_trip(tmp_path):
    shrunk, outcome = shrink_failure(dict(FAILING_POINT))
    path = tmp_path / "failure-0.json"
    write_artifact(path, FAILING_POINT, shrunk, outcome)
    params = load_artifact(path)
    assert params == shrunk
    replay = run_fuzz_schedule(**params)
    assert not replay["ok"]


def test_repro_command_is_one_line():
    cmd = repro_command(FAILING_POINT)
    assert "\n" not in cmd
    assert cmd.startswith("repro-experiments fuzz ")
    assert "--mechanism llsc" in cmd
    assert "--inject-bug skip_invalidation" in cmd


# ----------------------------------------------------------------------
# runner integration: fuzz points are ordinary sweep specs
# ----------------------------------------------------------------------
def test_runspec_fuzz_canonical_and_executable():
    spec = RunSpec.fuzz(8, Mechanism.AMO, "barrier", seed=4, max_extra=80)
    again = RunSpec.fuzz(8, Mechanism.AMO, "barrier", seed=4, max_extra=80)
    assert spec.canonical() == again.canonical()
    assert "fuzz" in spec.label()
    record = execute_spec(spec)
    assert record.result["ok"]
    assert record.sim_events == record.result["events_dispatched"] > 0


def test_runspec_fuzz_optional_params_stay_out_of_key():
    bare = RunSpec.fuzz(8, Mechanism.LLSC, "lock", seed=0, max_extra=10)
    assert "kinds" not in bare.kwargs
    assert "inject_bug" not in bare.kwargs
    restricted = RunSpec.fuzz(8, Mechanism.LLSC, "lock", seed=0, max_extra=10,
                              kinds=("word_update", "get_x"))
    assert restricted.kwargs["kinds"] == ("get_x", "word_update")
    assert bare.canonical() != restricted.canonical()
