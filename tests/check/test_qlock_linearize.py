"""Unit tests for the queue-lock and reader-writer linearizability
checkers — synthetic histories with known verdicts."""

from repro.check.linearize import (
    QueueLockSpan,
    RwSpan,
    check_cna_grant_order,
    check_mcs_fifo_order,
    check_rw_exclusion,
)


def q(cpu, handle, pred, acq, rel, node=None):
    return QueueLockSpan(cpu=cpu, node=cpu // 2 if node is None else node,
                         handle=handle, pred=pred, acquired=acq, released=rel)


# ---------------------------------------------------------------------------
# MCS FIFO
# ---------------------------------------------------------------------------

def test_mcs_clean_chain():
    spans = [
        q(0, 1, 0, 100, 160),     # empty queue
        q(1, 2, 1, 170, 230),     # behind 1
        q(2, 3, 2, 240, 300),     # behind 2
        q(0, 10, 0, 400, 460),    # fresh segment after drain
        q(3, 4, 10, 470, 530),
    ]
    assert check_mcs_fifo_order(spans) == []


def test_mcs_empty_history():
    assert check_mcs_fifo_order([]) == []


def test_mcs_overlap_detected():
    spans = [q(0, 1, 0, 100, 200), q(1, 2, 1, 150, 260)]
    problems = check_mcs_fifo_order(spans)
    assert any("mutual exclusion" in p for p in problems)


def test_mcs_overtake_detected():
    # 3 enqueued behind 2, but granted before it
    spans = [
        q(0, 1, 0, 100, 160),
        q(2, 3, 2, 170, 230),     # pred is handle 2, prev grant is handle 1
        q(1, 2, 1, 240, 300),
    ]
    problems = check_mcs_fifo_order(spans)
    assert any("FIFO violated" in p for p in problems)


def test_mcs_duplicate_handles_detected():
    spans = [q(0, 1, 0, 100, 160), q(1, 1, 0, 200, 260)]
    problems = check_mcs_fifo_order(spans)
    assert any("duplicate" in p for p in problems)


def test_mcs_first_grant_with_pred_detected():
    spans = [q(0, 2, 7, 100, 160)]
    problems = check_mcs_fifo_order(spans)
    assert any("empty queue" in p for p in problems)


# ---------------------------------------------------------------------------
# CNA bounded NUMA-local overtaking
# ---------------------------------------------------------------------------

def test_cna_fifo_history_is_clean():
    spans = [
        q(0, 1, 0, 100, 160),
        q(1, 2, 1, 170, 230),
        q(2, 3, 2, 240, 300),
    ]
    assert check_cna_grant_order(spans, batch_threshold=4) == []


def test_cna_local_overtake_within_bound_is_clean():
    # enqueue order: 1 (cpu0/node0), 2 (cpu2/node1), 3 (cpu1/node0)
    # grants: 1, then 3 (local overtake of 2 — cpu1 shares node 0 with
    # the holder cpu0), then 2
    spans = [
        q(0, 1, 0, 100, 160),
        q(1, 3, 2, 170, 230),
        q(2, 2, 1, 240, 300),
    ]
    assert check_cna_grant_order(spans, batch_threshold=2) == []


def test_cna_remote_overtake_detected():
    # grants: 1 (cpu0/node0), then 3 (cpu4/node2!) overtaking 2
    spans = [
        q(0, 1, 0, 100, 160),
        q(4, 3, 2, 170, 230),
        q(2, 2, 1, 240, 300),
    ]
    problems = check_cna_grant_order(spans, batch_threshold=2)
    assert any("non-local overtake" in p for p in problems)


def test_cna_unbounded_batching_detected():
    # node-0 cpus keep overtaking the parked node-1 waiter past the bound
    spans = [
        q(0, 1, 0, 100, 110),     # holder, node 0
        q(1, 3, 2, 120, 130),     # overtake 1 (node 0)
        q(0, 4, 3, 140, 150),     # overtake 2 (node 0)
        q(1, 5, 4, 160, 170),     # overtake 3 — past threshold 2
        q(2, 2, 1, 180, 190),     # the starved node-1 waiter, at last
    ]
    problems = check_cna_grant_order(spans, batch_threshold=2)
    assert any("fairness bound" in p for p in problems)
    # threshold 3 tolerates exactly this run
    assert check_cna_grant_order(spans, batch_threshold=3) == []


def test_cna_dangling_pred_detected():
    spans = [q(0, 1, 0, 100, 160), q(1, 2, 77, 170, 230)]
    problems = check_cna_grant_order(spans, batch_threshold=2)
    assert any("unknown handle" in p for p in problems)


def test_cna_promotion_fork_is_legal():
    # CNA's promote path CASes an old handle (the secondary tail) back
    # into the lock tail, so a later enqueuer records the same pred an
    # earlier one did — pred linkage forks without any fairness bug.
    # Enqueue: 1 (cpu0), 2 (cpu2, behind 1), 3 (cpu1, behind 2).
    # Holder 1 grants 3 locally (parks 2); 3's release promotes the
    # secondary (tail := handle 2) and grants 2; then 4 (cpu3) enqueues
    # behind the re-inserted handle 2 — forking pred 2 with span 3.
    spans = [
        q(0, 1, 0, 100, 160),
        q(1, 3, 2, 170, 230),     # local overtake of parked 2
        q(2, 2, 1, 240, 300),     # promoted secondary head
        q(3, 4, 2, 310, 370),     # pred 2 again: post-promotion enqueue
    ]
    assert check_cna_grant_order(spans, batch_threshold=2) == []


def test_cna_overtake_of_distant_ancestor_detected():
    # the ungranted waiter is two pred-links up the chain — the walk
    # must look past the immediate (already granted) pred
    spans = [
        q(0, 1, 0, 100, 110),     # holder, node 0
        q(1, 3, 2, 120, 130),     # overtakes parked 2 (node 0: legal)
        q(4, 4, 3, 140, 150),     # pred 3 granted, but ancestor 2 still
                                  # waits — and cpu4 is node 2: remote
        q(2, 2, 1, 160, 170),
    ]
    problems = check_cna_grant_order(spans, batch_threshold=4)
    assert any("non-local overtake" in p for p in problems)


# ---------------------------------------------------------------------------
# reader-writer exclusion
# ---------------------------------------------------------------------------

def rw(cpu, kind, ticket, acq, rel):
    return RwSpan(cpu=cpu, kind=kind, ticket=ticket, acquired=acq,
                  released=rel)


def test_rw_clean_history():
    spans = [
        rw(0, "w", 0, 100, 160),
        rw(1, "r", 1, 170, 240),
        rw(2, "r", 2, 175, 230),   # overlapping readers: fine
        rw(3, "w", 3, 250, 310),
    ]
    assert check_rw_exclusion(spans) == []


def test_rw_writer_overlaps_reader_detected():
    spans = [rw(1, "r", 0, 100, 200), rw(0, "w", 1, 150, 260)]
    problems = check_rw_exclusion(spans)
    assert any("exclusion violated" in p for p in problems)


def test_rw_reader_overlaps_writer_detected():
    spans = [rw(0, "w", 0, 100, 200), rw(1, "r", 1, 150, 260)]
    problems = check_rw_exclusion(spans)
    assert any("exclusion violated" in p for p in problems)


def test_rw_two_writers_detected():
    spans = [rw(0, "w", 0, 100, 200), rw(1, "w", 1, 150, 260)]
    problems = check_rw_exclusion(spans)
    assert any("exclusion violated" in p for p in problems)


def test_rw_ticket_order_violation_detected():
    spans = [rw(0, "w", 1, 100, 160), rw(1, "w", 0, 170, 230)]
    problems = check_rw_exclusion(spans)
    assert any("ticket order" in p for p in problems)


def test_rw_duplicate_tickets_detected():
    spans = [rw(0, "r", 0, 100, 160), rw(1, "r", 0, 105, 150)]
    problems = check_rw_exclusion(spans)
    assert any("duplicate tickets" in p for p in problems)


def test_rw_same_cycle_reader_grants_are_clean():
    spans = [rw(1, "r", 2, 100, 160), rw(0, "r", 1, 100, 150),
             rw(2, "r", 3, 100, 170)]
    assert check_rw_exclusion(spans) == []
