"""Executor semantics: ordering, parallel parity, crash retry, timeout."""

import multiprocessing
import os
import time

import pytest

from repro.config.mechanism import Mechanism
from repro.runner import (
    ParallelRunner, ResultCache, RunFailure, RunnerError, RunSpec,
    register_kind,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="crash/custom-kind tests need the fork context")


# ---------------------------------------------------------------------------
# helper kinds (top-level so they survive pickling into workers)
# ---------------------------------------------------------------------------

def _echo(value):
    return value


def _boom(message):
    raise ValueError(message)


def _sleep(seconds):
    time.sleep(seconds)
    return "slept"


def _crash_until(path, attempts_before_success, value):
    """Dies abruptly (no exception) until the attempt counter reaches n."""
    with open(path, "a") as fh:
        fh.write("x")
    with open(path) as fh:
        seen = len(fh.read())
    if seen <= attempts_before_success:
        os._exit(17)         # simulated segfault: no teardown, no excepthook
    return value


@pytest.fixture(autouse=True)
def _kinds():
    register_kind("t-echo", _echo)
    register_kind("t-boom", _boom)
    register_kind("t-sleep", _sleep)
    register_kind("t-crash", _crash_until)
    yield
    from repro.runner import spec as spec_mod
    for kind in ("t-echo", "t-boom", "t-sleep", "t-crash"):
        spec_mod._KIND_REGISTRY.pop(kind, None)


# ---------------------------------------------------------------------------
# ordering & parity
# ---------------------------------------------------------------------------

def test_serial_results_in_input_order():
    runner = ParallelRunner(jobs=1)
    specs = [RunSpec.make("t-echo", value=i) for i in (3, 1, 4, 1, 5)]
    assert runner.run(specs) == [3, 1, 4, 1, 5]


@needs_fork
def test_parallel_results_in_input_order():
    runner = ParallelRunner(jobs=2)
    specs = [RunSpec.make("t-echo", value=i) for i in range(10)]
    assert runner.run(specs) == list(range(10))


@needs_fork
@pytest.mark.slow
def test_parallel_simulation_matches_serial_exactly():
    """The acceptance bar: any --jobs value gives identical measurements."""
    specs = [RunSpec.barrier(n_processors=p, mechanism=m, episodes=1)
             for p in (4, 8) for m in Mechanism]
    serial = ParallelRunner(jobs=1).run(specs)
    parallel = ParallelRunner(jobs=2).run(specs)
    for s, q in zip(serial, parallel):
        assert s.total_cycles == q.total_cycles
        assert s.traffic.total_bytes == q.traffic.total_bytes
        assert s.traffic.total_messages == q.traffic.total_messages


def test_within_batch_duplicates_execute_once():
    runner = ParallelRunner(jobs=1)
    spec = RunSpec.barrier(n_processors=4, mechanism=Mechanism.AMO,
                           episodes=1)
    a, b = runner.run([spec, spec])
    assert a.total_cycles == b.total_cycles
    assert runner.stats.executed == 1
    assert runner.stats.cache_hits == 1     # the duplicate shared the run


# ---------------------------------------------------------------------------
# failure handling
# ---------------------------------------------------------------------------

def test_driver_exception_surfaces_as_runner_error():
    runner = ParallelRunner(jobs=1)
    with pytest.raises(RunnerError, match="kaput"):
        runner.run([RunSpec.make("t-boom", message="kaput")])


def test_run_outcomes_isolates_failures_from_successes():
    runner = ParallelRunner(jobs=1)
    outcomes = runner.run_outcomes([
        RunSpec.make("t-echo", value=1),
        RunSpec.make("t-boom", message="dead"),
        RunSpec.make("t-echo", value=2),
    ])
    assert outcomes[0].result == 1
    assert isinstance(outcomes[1], RunFailure)
    assert "dead" in outcomes[1].error
    assert outcomes[2].result == 2
    assert runner.stats.failures == 1
    assert runner.stats.executed == 2


@needs_fork
def test_worker_crash_is_retried_until_success(tmp_path):
    counter = tmp_path / "attempts"
    runner = ParallelRunner(jobs=2, retries=2)
    specs = [RunSpec.make("t-crash", path=str(counter),
                          attempts_before_success=1, value=99),
             RunSpec.make("t-echo", value=7)]
    assert runner.run(specs) == [99, 7]
    assert runner.stats.retries >= 1


@needs_fork
def test_worker_crash_exhausts_retries_into_failure(tmp_path):
    counter = tmp_path / "attempts"
    runner = ParallelRunner(jobs=2, retries=1)
    outcomes = runner.run_outcomes(
        [RunSpec.make("t-crash", path=str(counter),
                      attempts_before_success=99, value=0)])
    assert isinstance(outcomes[0], RunFailure)
    assert "crashed" in outcomes[0].error
    assert outcomes[0].attempts == 2        # first try + one retry


@needs_fork
def test_per_run_timeout_enforced_in_worker():
    runner = ParallelRunner(jobs=2, timeout=0.3)
    outcomes = runner.run_outcomes([RunSpec.make("t-sleep", seconds=30),
                                    RunSpec.make("t-echo", value=5)])
    assert isinstance(outcomes[0], RunFailure)
    assert "exceeded" in outcomes[0].error
    assert outcomes[1].result == 5


def test_per_run_timeout_enforced_serially():
    runner = ParallelRunner(jobs=1, timeout=0.3)
    outcomes = runner.run_outcomes([RunSpec.make("t-sleep", seconds=30)])
    assert isinstance(outcomes[0], RunFailure)
    assert "exceeded" in outcomes[0].error


@needs_fork
def test_pool_watchdog_enforces_timeout_without_sigalrm(monkeypatch):
    """On platforms where SIGALRM doesn't fire inside pool workers the
    parent-side watchdog must still kill a runaway run.  The env knob
    forces that path so the watchdog is exercised on every host."""
    monkeypatch.setenv("REPRO_DISABLE_SIGALRM", "1")
    runner = ParallelRunner(jobs=2, timeout=0.3, retries=0)
    start = time.monotonic()
    outcomes = runner.run_outcomes([RunSpec.make("t-sleep", seconds=30)])
    elapsed = time.monotonic() - start
    assert isinstance(outcomes[0], RunFailure)
    assert "watchdog" in outcomes[0].error
    assert outcomes[0].attempts == 1        # timeouts are terminal
    assert elapsed < 10                     # killed, not waited out


@needs_fork
def test_pool_watchdog_leaves_fast_runs_alone(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_SIGALRM", "1")
    runner = ParallelRunner(jobs=2, timeout=5.0)
    assert runner.run([RunSpec.make("t-echo", value=11)]) == [11]


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------

def test_progress_hook_sees_every_point_with_totals():
    seen = []
    runner = ParallelRunner(
        jobs=1, progress=lambda done, total, pt: seen.append((done, total,
                                                              pt.cached)))
    specs = [RunSpec.make("t-echo", value=i) for i in range(3)]
    runner.run(specs)
    assert [s[0] for s in seen] == [1, 2, 3]
    assert all(s[1] == 3 for s in seen)


def test_stats_track_cache_and_execution_split(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f")
    spec = RunSpec.barrier(n_processors=4, mechanism=Mechanism.AMO,
                           episodes=1)
    runner = ParallelRunner(jobs=1, cache=cache)
    runner.run([spec])
    runner.run([spec])
    assert runner.stats.total_points == 2
    assert runner.stats.executed == 1
    assert runner.stats.cache_hits == 1
    assert runner.stats.sim_events > 0
    assert runner.stats.events_per_second > 0
    summary = runner.stats.summary()
    assert "1 cache hits" in summary and "1 executed" in summary


def test_jobs_zero_means_all_cores():
    assert ParallelRunner(jobs=0).jobs == multiprocessing.cpu_count()
    assert ParallelRunner(jobs=None).jobs == multiprocessing.cpu_count()
