"""Runner integration with the metrics layer.

Covers: cache-key stability when metrics are off, metrics-point
collection across executed and cached points, and the registry-backed
``RunnerStats``.
"""

from repro.config.mechanism import Mechanism
from repro.obs import validate_export, build_export
from repro.runner import ParallelRunner, ResultCache
from repro.runner.spec import RunSpec
from repro.stats.runner import PointRecord, RunnerStats


def barrier_spec(metrics=False, interval=0):
    return RunSpec.barrier(4, Mechanism.LLSC, episodes=1,
                           warmup_episodes=0, metrics=metrics,
                           metrics_interval=interval)


# ----------------------------------------------------------------- specs
def test_metrics_off_leaves_cache_key_unchanged():
    """Pre-existing cache entries must keep their keys."""
    spec = barrier_spec(metrics=False)
    assert "metrics" not in spec.kwargs
    assert "metrics" not in spec.canonical()


def test_metrics_on_is_a_distinct_cache_key():
    assert barrier_spec(True).canonical() != barrier_spec().canonical()
    assert barrier_spec(True, 500).canonical() != \
        barrier_spec(True).canonical()


# ---------------------------------------------------------------- runner
def test_runner_collects_metrics_points():
    runner = ParallelRunner(jobs=1)
    results = runner.run([barrier_spec(metrics=True)])
    assert results[0].metrics is not None
    assert len(runner.metrics_points) == 1
    label, snapshot = runner.metrics_points[0]
    assert label == barrier_spec(metrics=True).label()
    assert snapshot == results[0].metrics


def test_unmetered_runs_collect_nothing():
    runner = ParallelRunner(jobs=1)
    runner.run([barrier_spec()])
    assert runner.metrics_points == []


def test_cache_hits_still_surface_snapshots(tmp_path):
    """Snapshots ride inside cached results, so a fully-cached sweep
    still produces a complete metrics export."""
    cache = ResultCache(root=str(tmp_path))
    spec = barrier_spec(metrics=True)
    first = ParallelRunner(jobs=1, cache=cache)
    first.run([spec])
    second = ParallelRunner(jobs=1, cache=cache)
    second.run([spec])
    assert second.stats.cache_hits == 1
    assert len(second.metrics_points) == 1
    assert second.metrics_points[0][1] == first.metrics_points[0][1]


def test_export_from_runner_points_validates():
    runner = ParallelRunner(jobs=1)
    runner.run([barrier_spec(metrics=True),
                RunSpec.barrier(8, Mechanism.AMO, episodes=1,
                                warmup_episodes=0, metrics=True)])
    doc = build_export(runner.metrics_points,
                       runner=runner.stats.snapshot()["counters"])
    assert validate_export(doc) == []
    assert len(doc["points"]) == 2


# ----------------------------------------------------------------- stats
def test_runner_stats_properties_back_registry_counters():
    stats = RunnerStats()
    stats.record(PointRecord(label="a", cached=False, wall_seconds=0.25,
                             sim_events=1000))
    stats.record(PointRecord(label="b", cached=True, wall_seconds=0.0,
                             sim_events=0))
    stats.record(PointRecord(label="c", cached=False, wall_seconds=0.1,
                             sim_events=500, attempts=2))
    stats.record(PointRecord(label="d", cached=False, wall_seconds=0.0,
                             sim_events=0, failed=True))
    assert stats.total_points == 4
    assert stats.cache_hits == 1
    assert stats.executed == 2
    assert stats.failures == 1
    assert stats.retries == 1
    assert stats.sim_events == 1500
    assert stats.wall_seconds == 0.35
    snap = stats.snapshot()
    assert snap["counters"]["runner.points_total"] == 4
    assert snap["counters"]["runner.cache_hits"] == 1
    assert snap["histograms"]["runner.point_wall_ms"]["count"] == 2


def test_runner_stats_add_elapsed():
    stats = RunnerStats()
    stats.add_elapsed(1.5)
    stats.add_elapsed(0.5)
    assert stats.elapsed_seconds == 2.0
