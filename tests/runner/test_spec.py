"""RunSpec canonicalization, registry dispatch, and execution."""

import pickle

import pytest

from repro.config.mechanism import Mechanism
from repro.runner import RunSpec, execute_spec, register_kind, registered_kinds


def test_canonical_is_order_independent():
    a = RunSpec.make("barrier", n_processors=8, mechanism=Mechanism.AMO)
    b = RunSpec.make("barrier", mechanism=Mechanism.AMO, n_processors=8)
    assert a == b
    assert a.canonical() == b.canonical()


def test_canonical_distinguishes_parameters():
    base = RunSpec.barrier(n_processors=8, mechanism=Mechanism.AMO)
    assert base.canonical() != RunSpec.barrier(
        n_processors=16, mechanism=Mechanism.AMO).canonical()
    assert base.canonical() != RunSpec.barrier(
        n_processors=8, mechanism=Mechanism.MAO).canonical()
    assert base.canonical() != RunSpec.barrier(
        n_processors=8, mechanism=Mechanism.AMO, episodes=7).canonical()


def test_canonical_encodes_mechanism_stably():
    spec = RunSpec.barrier(n_processors=4, mechanism=Mechanism.LLSC)
    assert '"__mechanism__":"LLSC"' in spec.canonical()


def test_unserializable_parameter_rejected():
    spec = RunSpec.make("barrier", fn=lambda: None)
    with pytest.raises(TypeError, match="not\\s+canonically serializable"):
        spec.canonical()


def test_spec_is_hashable_and_picklable():
    spec = RunSpec.lock(n_processors=8, mechanism=Mechanism.AMO)
    assert spec in {spec}
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_label_names_the_point():
    spec = RunSpec.barrier(n_processors=16, mechanism=Mechanism.AMO,
                           tree_branching=4)
    assert "P=16" in spec.label()
    assert "amo" in spec.label()
    assert "b=4" in spec.label()


def test_builtin_kinds_registered():
    assert "barrier" in registered_kinds()
    assert "lock" in registered_kinds()


def test_execute_spec_runs_the_driver_and_measures():
    record = execute_spec(RunSpec.barrier(n_processors=4,
                                          mechanism=Mechanism.AMO,
                                          episodes=1))
    assert record.result.cycles_per_episode > 0
    assert record.sim_events > 0
    assert record.wall_seconds > 0


def test_execute_unknown_kind_is_a_clear_error():
    with pytest.raises(KeyError, match="unknown run kind"):
        execute_spec(RunSpec.make("no-such-kind"))


def test_register_kind_dispatches():
    register_kind("test-echo", lambda value: value * 2)
    try:
        record = execute_spec(RunSpec.make("test-echo", value=21))
        assert record.result == 42
        assert record.sim_events == 0
    finally:
        from repro.runner import spec as spec_mod
        spec_mod._KIND_REGISTRY.pop("test-echo", None)
