"""Result-cache correctness: hits, misses, and corruption handling."""

import pytest

from repro.config.mechanism import Mechanism
from repro.harness.experiments import experiment_table2, run_barrier_suite
from repro.runner import ParallelRunner, ResultCache, RunSpec
from repro.runner.cache import _MAGIC


CPUS = (4, 8)
EPISODES = 1


def make_cache(tmp_path, fingerprint="test-fingerprint"):
    return ResultCache(root=tmp_path / "cache", fingerprint=fingerprint)


def barrier_specs():
    return [RunSpec.barrier(n_processors=p, mechanism=m, episodes=EPISODES)
            for p in CPUS for m in Mechanism]


def test_identical_config_hits_and_reproduces_identical_tables(tmp_path):
    cache = make_cache(tmp_path)
    r1 = ParallelRunner(jobs=1, cache=cache)
    suite1 = run_barrier_suite(CPUS, episodes=EPISODES, runner=r1)
    assert r1.stats.executed == len(barrier_specs())
    assert r1.stats.cache_hits == 0

    r2 = ParallelRunner(jobs=1, cache=make_cache(tmp_path))
    suite2 = run_barrier_suite(CPUS, episodes=EPISODES, runner=r2)
    assert r2.stats.executed == 0, "warm cache must skip all simulation"
    assert r2.stats.cache_hits == len(barrier_specs())

    # byte-identical experiment output from cached results
    assert (experiment_table2(suite1).format()
            == experiment_table2(suite2).format())


def test_changed_parameter_misses(tmp_path):
    cache = make_cache(tmp_path)
    spec = RunSpec.barrier(n_processors=4, mechanism=Mechanism.AMO,
                           episodes=1)
    ParallelRunner(jobs=1, cache=cache).run([spec])
    changed = RunSpec.barrier(n_processors=4, mechanism=Mechanism.AMO,
                              episodes=2)
    assert cache.key_for(spec) != cache.key_for(changed)
    assert cache.load(changed) is None


def test_changed_code_fingerprint_misses(tmp_path):
    cache_a = make_cache(tmp_path, fingerprint="code-v1")
    spec = RunSpec.barrier(n_processors=4, mechanism=Mechanism.AMO,
                           episodes=1)
    ParallelRunner(jobs=1, cache=cache_a).run([spec])
    assert cache_a.load(spec) is not None

    cache_b = make_cache(tmp_path, fingerprint="code-v2")
    assert cache_b.key_for(spec) != cache_a.key_for(spec)
    assert cache_b.load(spec) is None


@pytest.mark.parametrize("corruption", ["flip", "truncate", "garbage",
                                        "empty"])
def test_corrupted_entry_detected_and_recomputed(tmp_path, corruption):
    cache = make_cache(tmp_path)
    spec = RunSpec.barrier(n_processors=4, mechanism=Mechanism.AMO,
                           episodes=1)
    runner = ParallelRunner(jobs=1, cache=cache)
    (clean,) = runner.run([spec])

    path = cache._path_for(cache.key_for(spec))
    raw = path.read_bytes()
    if corruption == "flip":                  # payload bit-flip
        pos = len(raw) - 5
        path.write_bytes(raw[:pos] + bytes([raw[pos] ^ 0xFF])
                         + raw[pos + 1:])
    elif corruption == "truncate":
        path.write_bytes(raw[:len(raw) // 2])
    elif corruption == "garbage":
        path.write_bytes(b"not a cache entry at all")
    else:
        path.write_bytes(b"")

    assert cache.load(spec) is None, "corrupt entry must not be trusted"
    assert cache.stats.corrupt == 1
    assert not path.exists(), "corrupt entry must be evicted"

    (recomputed,) = ParallelRunner(jobs=1, cache=cache).run([spec])
    assert recomputed.cycles_per_episode == clean.cycles_per_episode
    assert path.exists(), "recomputed result must be re-stored"


def test_checksum_guards_payload(tmp_path):
    cache = make_cache(tmp_path)
    spec = RunSpec.barrier(n_processors=4, mechanism=Mechanism.AMO,
                           episodes=1)
    ParallelRunner(jobs=1, cache=cache).run([spec])
    path = cache._path_for(cache.key_for(spec))
    raw = path.read_bytes()
    assert raw.startswith(_MAGIC)
    # valid magic + checksum over a *different* payload still fails,
    # because the embedded digest no longer matches
    path.write_bytes(raw[:len(_MAGIC) + 32] + b"\x00" * 32)
    assert cache.load(spec) is None


def test_entry_answering_wrong_spec_is_rejected(tmp_path):
    """Hash-collision paranoia: a record must contain the asked-for spec."""
    cache = make_cache(tmp_path)
    spec_a = RunSpec.barrier(n_processors=4, mechanism=Mechanism.AMO,
                             episodes=1)
    spec_b = RunSpec.barrier(n_processors=8, mechanism=Mechanism.AMO,
                             episodes=1)
    ParallelRunner(jobs=1, cache=cache).run([spec_a])
    record_a_path = cache._path_for(cache.key_for(spec_a))
    # graft A's (valid, checksummed) entry onto B's key
    wrong = cache._path_for(cache.key_for(spec_b))
    wrong.parent.mkdir(parents=True, exist_ok=True)
    wrong.write_bytes(record_a_path.read_bytes())
    assert cache.load(spec_b) is None
    assert cache.stats.corrupt == 1


def test_clear_and_entry_count(tmp_path):
    cache = make_cache(tmp_path)
    specs = [RunSpec.barrier(n_processors=4, mechanism=m, episodes=1)
             for m in (Mechanism.AMO, Mechanism.MAO)]
    ParallelRunner(jobs=1, cache=cache).run(specs)
    assert cache.entry_count() == 2
    assert cache.clear() == 2
    assert cache.entry_count() == 0


def test_default_cache_dir_env_override(tmp_path, monkeypatch):
    from repro.runner import default_cache_dir
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    assert default_cache_dir() == tmp_path / "envcache"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir().name == "repro-runner"


def test_live_code_fingerprint_is_stable_and_content_sensitive(monkeypatch):
    from repro.runner.fingerprint import code_fingerprint
    a = code_fingerprint(refresh=True)
    assert a == code_fingerprint()
    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "pinned")
    assert code_fingerprint() == "pinned"
