"""Tests for the per-CPU programming interface."""

import pytest


def run(machine, thread, cpus=None):
    return machine.run_threads(thread, cpus=cpus, max_events=2_000_000)


def test_every_op_charges_issue_overhead(machine4):
    var = machine4.alloc("v", home_node=0)
    overhead = machine4.config.processor.op_overhead_cycles

    def thread(proc):
        t0 = proc.sim.now
        yield from proc.load(var.addr)
        return proc.sim.now - t0

    elapsed = run(machine4, thread, cpus=[0])[0]
    assert elapsed >= overhead + machine4.config.l1.latency_cycles


def test_delay_costs_exactly(machine4):
    def thread(proc):
        t0 = proc.sim.now
        yield from proc.delay(123)
        return proc.sim.now - t0

    assert run(machine4, thread, cpus=[0]) == [123]


def test_amo_without_wait_returns_none(machine4):
    var = machine4.alloc("v", home_node=1)

    def thread(proc):
        result = yield from proc.amo_fetchadd(var.addr, 5,
                                              wait_reply=False)
        return result

    assert run(machine4, thread, cpus=[0]) == [None]
    assert machine4.peek(var.addr) == 5


def test_fire_and_forget_is_faster_than_blocking(machine4):
    var = machine4.alloc("v", home_node=1)

    def timed(wait_reply):
        def thread(proc):
            t0 = proc.sim.now
            yield from proc.amo_inc(var.addr, wait_reply=wait_reply)
            return proc.sim.now - t0
        return thread

    blocking = run(machine4, timed(True), cpus=[0])[0]
    fire = run(machine4, timed(False), cpus=[0])[0]
    assert fire < blocking


def test_am_sequence_numbers_advance(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.am_call(0, "fetchadd", (var.addr, 1))
        yield from proc.am_call(0, "fetchadd", (var.addr, 1))
        return proc._am_seq

    assert run(machine4, thread, cpus=[2]) == [2]
    assert machine4.peek(var.addr) == 2


def test_amo_ops_counter(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.amo_inc(var.addr)
        yield from proc.amo_fetchadd(var.addr, 2)

    run(machine4, thread, cpus=[1])
    assert machine4.cpus[1].amo_ops == 2


def test_unknown_amo_op_fails_loudly(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.amo("not_an_op", var.addr)

    with pytest.raises(ValueError, match="unknown AMO op"):
        run(machine4, thread, cpus=[0])
