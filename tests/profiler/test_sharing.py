"""Tests for the sharing-pattern profiler."""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.profiler import SharingProfiler
from repro.sync.barrier import CentralizedBarrier


def test_symbol_attribution():
    machine = Machine(SystemConfig.table1(4))
    var = machine.alloc("my_hot_counter", home_node=1)
    profiler = SharingProfiler.attach(machine)

    def thread(proc):
        yield from proc.atomic_rmw(var.addr, lambda v: v + 1)

    machine.run_threads(thread)
    prof = profiler.profile_of(var.addr)
    assert prof is not None
    assert "my_hot_counter" in prof.symbols
    assert prof.ownership_transfers >= 4
    assert len(prof.requesters) == 4


def test_amo_traffic_classified_as_memory_side():
    machine = Machine(SystemConfig.table1(4))
    var = machine.alloc("v", home_node=1)
    profiler = SharingProfiler.attach(machine)

    def thread(proc):
        yield from proc.amo_inc(var.addr)

    machine.run_threads(thread)
    prof = profiler.profile_of(var.addr)
    assert prof.memory_side_ops == 4
    assert prof.ownership_transfers == 0


def test_barrier_hot_lines_show_up():
    machine = Machine(SystemConfig.table1(8))
    barrier = CentralizedBarrier(machine, Mechanism.LLSC)
    profiler = SharingProfiler.attach(machine)

    def thread(proc):
        for _ in range(2):
            yield from barrier.wait(proc)

    machine.run_threads(thread, max_events=4_000_000)
    hottest = profiler.hottest(2)
    hot_symbols = {s for p in hottest for s in p.symbols}
    assert any("barrier" in s for s in hot_symbols)
    report = profiler.report()
    assert "hot lines" in report


def test_false_sharing_detected_on_packed_line():
    """Two CPUs hammering distinct words of one line -> suspect."""
    machine = Machine(SystemConfig.table1(4))
    a = machine.address_space.alloc("packed_a", 0)
    b = machine.address_space.alloc_packed("packed_b", a)
    profiler = SharingProfiler.attach(machine)

    def thread(proc):
        target = a if proc.cpu_id == 0 else b
        for i in range(6):
            yield from proc.store(target.addr, i)
            yield from proc.delay(400)

    machine.run_threads(thread, cpus=[0, 2], max_events=4_000_000)
    prof = profiler.profile_of(a.addr)
    assert prof.false_sharing_suspect
    assert prof in profiler.false_sharing_suspects()
    assert "FALSE-SHARING" in prof.describe()


def test_well_separated_lines_not_suspect():
    machine = Machine(SystemConfig.table1(4))
    a = machine.alloc("sep_a", 0)
    b = machine.alloc("sep_b", 0)
    profiler = SharingProfiler.attach(machine)

    def thread(proc):
        target = a if proc.cpu_id == 0 else b
        for i in range(6):
            yield from proc.store(target.addr, i)
            yield from proc.delay(400)

    machine.run_threads(thread, cpus=[0, 2], max_events=4_000_000)
    assert profiler.false_sharing_suspects() == []


def test_composes_with_tracer():
    from repro.trace import TraceRecorder
    machine = Machine(SystemConfig.table1(4))
    tracer = TraceRecorder.attach(machine)
    profiler = SharingProfiler.attach(machine)    # chains tracer's hook
    var = machine.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.load(var.addr)

    machine.run_threads(thread, cpus=[0])
    assert profiler.profile_of(var.addr) is not None
    assert any(i.name == "get_s" for i in tracer.instants)
