"""Sampler behaviour: periodic gauge capture without observer effects."""

import pytest

from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.obs import MachineMetrics, MetricsRegistry, Sampler
from repro.sim.kernel import Simulator


def test_interval_must_be_positive():
    with pytest.raises(ValueError, match="positive"):
        Sampler(Simulator(), MetricsRegistry(), 0)


def test_samples_land_on_the_interval(machine4):
    obs = MachineMetrics.attach(machine4, sample_interval=1_000)
    obs.sampler.start()
    var = machine4.alloc("v", home_node=1)

    def thread(proc):
        for _ in range(4):
            yield from proc.delay(900)
            yield from proc.store(var.addr, proc.cpu_id)

    machine4.run_threads(thread)
    times = [s["t"] for s in obs.sampler.series]
    assert times and all(t % 1_000 == 0 for t in times)
    assert times == sorted(times)
    # every sample carries every gauge
    assert all("kernel.queue_depth" in s for s in obs.sampler.series)


def test_sampler_stops_when_queue_drains(machine4):
    """The re-arm guard must not wedge run-to-quiescence."""
    obs = MachineMetrics.attach(machine4, sample_interval=100)
    obs.sampler.start()
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.load(var.addr)

    machine4.run_threads(thread)          # returns => queue drained
    assert machine4.sim.pending_events() == 0


def test_start_rearms_for_a_second_window(machine4):
    obs = MachineMetrics.attach(machine4, sample_interval=200)
    var = machine4.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.store(var.addr, 1)
        yield from proc.delay(1_000)

    obs.sampler.start()
    machine4.run_threads(thread, cpus=[0])
    first = obs.sampler.n_samples
    assert first > 0
    obs.sampler.start()                   # second measurement window
    machine4.run_threads(thread, cpus=[1])
    assert obs.sampler.n_samples > first


def test_sampling_is_timing_neutral():
    """Identical cycle counts with and without a sampler attached."""
    def run(interval):
        machine = Machine(SystemConfig.table1(8))
        obs = MachineMetrics.attach(machine, sample_interval=interval)
        if obs.sampler:
            obs.sampler.start()
        var = machine.alloc("ctr", home_node=0)

        def thread(proc):
            yield from proc.llsc_rmw(var.addr, lambda v: v + 1)

        machine.run_threads(thread)
        return machine.last_completion_time

    assert run(0) == run(250)


def test_record_sample_manual(machine4):
    obs = MachineMetrics.attach(machine4, sample_interval=1_000)
    obs.sampler.record_sample()
    assert obs.sampler.n_samples == 1
    assert obs.sampler.series[0]["t"] == 0
