"""The dependency-free schema validator must catch malformed documents."""

import json
import subprocess
import sys

from repro.obs import build_export, validate_export, validate_snapshot
from repro.obs.registry import MetricsRegistry


def good_snapshot():
    reg = MetricsRegistry()
    reg.counter("a").inc(3)
    reg.gauge("g").set(1.5)
    reg.histogram("h").observe(12)
    return reg.snapshot()


def test_valid_snapshot_passes():
    assert validate_snapshot(good_snapshot()) == []


def test_snapshot_missing_section_rejected():
    snap = good_snapshot()
    del snap["counters"]
    assert validate_snapshot(snap)


def test_snapshot_wrong_schema_tag_rejected():
    snap = good_snapshot()
    snap["schema"] = "something/else"
    errors = validate_snapshot(snap)
    assert errors and "schema" in errors[0]


def test_snapshot_non_numeric_counter_rejected():
    snap = good_snapshot()
    snap["counters"]["bad"] = "NaN-ish string"
    assert validate_snapshot(snap)


def test_snapshot_malformed_histogram_rejected():
    snap = good_snapshot()
    snap["histograms"]["h"] = {"count": 1}      # missing sum/min/max/buckets
    assert validate_snapshot(snap)


def test_export_requires_aggregate_and_points():
    doc = build_export([("p", good_snapshot())])
    assert validate_export(doc) == []
    broken = dict(doc)
    del broken["aggregate"]
    assert validate_export(broken)


def test_export_rejects_bad_point_entry():
    doc = build_export([("p", good_snapshot())])
    doc["points"].append({"label": "no metrics key"})
    assert validate_export(doc)


def test_export_rejects_non_numeric_runner_value():
    doc = build_export([("p", good_snapshot())],
                       runner={"runner.cache_hits": "three"})
    assert validate_export(doc)


def test_cli_validator_accepts_good_export(tmp_path):
    doc = build_export([("p", good_snapshot())])
    path = tmp_path / "export.json"
    path.write_text(json.dumps(doc))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.schema", str(path)],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert "valid" in proc.stdout


def test_cli_validator_rejects_bad_export(tmp_path):
    path = tmp_path / "export.json"
    path.write_text(json.dumps({"schema": "repro.obs.export/1"}))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.schema", str(path)],
        capture_output=True, text=True)
    assert proc.returncode != 0
