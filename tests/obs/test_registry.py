"""Unit tests for the metrics registry instruments."""

from repro.obs import MetricsRegistry
from repro.obs.registry import Histogram, SNAPSHOT_SCHEMA


def test_counter_get_or_create_and_inc():
    reg = MetricsRegistry()
    c = reg.counter("cache.l1.hits")
    assert reg.counter("cache.l1.hits") is c
    c.inc()
    c.inc(41)
    assert c.value == 42


def test_gauge_set_and_callback():
    reg = MetricsRegistry()
    g = reg.gauge("queue.depth")
    g.set(7)
    assert g.read() == 7
    backing = {"v": 3}
    live = reg.gauge("kernel.now", fn=lambda: backing["v"])
    assert live.read() == 3
    backing["v"] = 9
    assert live.read() == 9


def test_histogram_log2_bucketing():
    h = Histogram("fanout")
    for v in (0, 1, 3, 4, 100):
        h.observe(v)
    assert (h.count, h.total) == (5, 108)
    assert h.min == 0 and h.max == 100
    # inclusive power-of-two upper bounds; 0 gets its own bucket
    assert sorted(h.buckets.items()) == [(0, 1), (1, 1), (4, 2), (128, 1)]
    assert h.mean == 108 / 5


def test_histogram_as_dict_empty():
    h = Histogram("empty")
    d = h.as_dict()
    assert d == {"count": 0, "sum": 0, "min": 0, "max": 0, "buckets": {}}


def test_collectors_report_as_counters():
    reg = MetricsRegistry()
    state = {"events": 0}
    reg.register_collector("kernel.events", lambda: state["events"])
    state["events"] = 123
    snap = reg.snapshot()
    assert snap["counters"]["kernel.events"] == 123


def test_snapshot_shape_and_sorting():
    reg = MetricsRegistry()
    reg.counter("b").inc(2)
    reg.counter("a").inc(1)
    reg.gauge("g").set(5)
    reg.histogram("h").observe(16)
    snap = reg.snapshot()
    assert snap["schema"] == SNAPSHOT_SCHEMA
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["gauges"] == {"g": 5}
    assert snap["histograms"]["h"]["buckets"] == {"16": 1}


def test_gauge_values_reads_every_gauge():
    reg = MetricsRegistry()
    reg.gauge("x").set(1)
    reg.gauge("y", fn=lambda: 2)
    assert reg.gauge_values() == {"x": 1, "y": 2}
