"""Structured JSONL event log."""

import io
import json

from repro.obs import EventLog


def records_of(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


def test_emit_round_trips_jsonl():
    buf = io.StringIO()
    log = EventLog(buf)
    log.emit("sweep.start", points=12, jobs=4)
    log.emit("sweep.done")
    recs = records_of(buf)
    assert recs == [
        {"t": None, "event": "sweep.start", "points": 12, "jobs": 4},
        {"t": None, "event": "sweep.done"},
    ]
    assert log.records_written == 2


def test_timestamps_track_the_simulator(machine4):
    buf = io.StringIO()
    log = EventLog(buf, sim=machine4.sim)
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.load(var.addr)
        log.emit("thread.done", cpu=proc.cpu_id)

    machine4.run_threads(thread, cpus=[0])
    recs = records_of(buf)
    assert recs[0]["event"] == "thread.done"
    assert recs[0]["t"] == machine4.last_completion_time


def test_attach_network_logs_sends(machine4):
    buf = io.StringIO()
    log = EventLog(buf)
    log.attach_network(machine4)
    assert log.sim is machine4.sim      # bound on attach
    var = machine4.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.load(var.addr)

    machine4.run_threads(thread, cpus=[0])
    sends = [r for r in records_of(buf) if r["event"] == "net.send"]
    assert sends
    first = sends[0]
    assert {"t", "kind", "src", "dst", "hops", "bytes", "addr"} \
        <= set(first)
    assert first["addr"] == hex(var.addr)


def test_non_json_values_are_stringified():
    buf = io.StringIO()
    EventLog(buf).emit("odd", value={1, 2})   # a set is not JSON-able
    assert isinstance(records_of(buf)[0]["value"], str)


def test_file_sink_and_context_manager(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(str(path)) as log:
        log.emit("one")
        log.emit("two")
    lines = path.read_text().splitlines()
    assert [json.loads(ln)["event"] for ln in lines] == ["one", "two"]
