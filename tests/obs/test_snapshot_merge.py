"""Merge semantics and export assembly across sweep points."""

from repro.obs import build_export, merge_snapshots, validate_export
from repro.obs.registry import SNAPSHOT_SCHEMA
from repro.obs.snapshot import EXPORT_SCHEMA


def snap(counters=None, gauges=None, histograms=None, **extra):
    d = {"schema": SNAPSHOT_SCHEMA, "counters": counters or {},
         "gauges": gauges or {}, "histograms": histograms or {}}
    d.update(extra)
    return d


def test_counters_sum():
    merged = merge_snapshots([snap(counters={"a": 1, "b": 2}),
                              snap(counters={"a": 10})])
    assert merged["counters"] == {"a": 11, "b": 2}


def test_gauges_take_max():
    merged = merge_snapshots([snap(gauges={"depth": 3}),
                              snap(gauges={"depth": 9}),
                              snap(gauges={"depth": 5})])
    assert merged["gauges"] == {"depth": 9}


def test_histograms_merge_bucketwise():
    h1 = {"count": 2, "sum": 5, "min": 1, "max": 4,
          "buckets": {"1": 1, "4": 1}}
    h2 = {"count": 1, "sum": 16, "min": 16, "max": 16,
          "buckets": {"16": 1}}
    merged = merge_snapshots([snap(histograms={"h": h1}),
                              snap(histograms={"h": h2})])
    out = merged["histograms"]["h"]
    assert out["count"] == 3 and out["sum"] == 21
    assert out["min"] == 1 and out["max"] == 16
    assert out["buckets"] == {"1": 1, "4": 1, "16": 1}


def test_histogram_merge_skips_empty_min_max():
    empty = {"count": 0, "sum": 0, "min": 0, "max": 0, "buckets": {}}
    real = {"count": 1, "sum": 7, "min": 7, "max": 7, "buckets": {"8": 1}}
    merged = merge_snapshots([snap(histograms={"h": empty}),
                              snap(histograms={"h": real})])
    out = merged["histograms"]["h"]
    # the empty point must not drag min down to 0
    assert out["min"] == 7 and out["max"] == 7


def test_critical_path_sums_and_series_stays_per_point():
    cp1 = {"episodes": 2, "total_cycles": 100, "segments": {"cpu": 60,
                                                            "wait": 40}}
    cp2 = {"episodes": 1, "total_cycles": 50, "segments": {"cpu": 50}}
    merged = merge_snapshots([
        snap(critical_path=cp1, series=[{"t": 0}]),
        snap(critical_path=cp2)])
    assert merged["critical_path"] == {
        "episodes": 3, "total_cycles": 150,
        "segments": {"cpu": 110, "wait": 40}}
    assert "series" not in merged


def test_build_export_shape_and_validity():
    points = [("barrier P=4 ll/sc", snap(counters={"x": 1})),
              ("barrier P=8 ll/sc", snap(counters={"x": 2}))]
    doc = build_export(points, runner={"runner.points_total": 2},
                       notes="unit test")
    assert doc["schema"] == EXPORT_SCHEMA
    assert [p["label"] for p in doc["points"]] == [
        "barrier P=4 ll/sc", "barrier P=8 ll/sc"]
    assert doc["aggregate"]["counters"] == {"x": 3}
    assert doc["runner"] == {"runner.points_total": 2}
    assert doc["notes"] == "unit test"
    assert validate_export(doc) == []


def test_build_export_empty_points_still_valid():
    doc = build_export([])
    assert doc["points"] == []
    assert validate_export(doc) == []
