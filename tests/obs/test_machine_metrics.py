"""MachineMetrics end-to-end: collectors wired to a real machine."""

from repro.obs import MachineMetrics, validate_snapshot


def run_counter_workload(machine):
    var = machine.alloc("ctr", home_node=1)

    def thread(proc):
        yield from proc.llsc_rmw(var.addr, lambda v: v + 1)
        yield from proc.amo_fetchadd(var.addr, 1)

    machine.run_threads(thread)
    return var


def test_attach_sets_machine_obs(machine4):
    assert machine4.obs is None
    obs = MachineMetrics.attach(machine4)
    assert machine4.obs is obs
    assert obs.sampler is None          # no interval requested


def test_snapshot_covers_all_layers(machine4):
    obs = MachineMetrics.attach(machine4)
    run_counter_workload(machine4)
    snap = obs.snapshot()
    c = snap["counters"]
    # kernel -> cache -> coherence -> amu -> network: every layer reports
    assert c["kernel.events_dispatched"] > 0
    assert c["cache.l2.misses"] > 0
    assert c["coherence.transactions"] > 0
    assert c["cpu.amo_ops"] == 4        # one amo per CPU
    assert c["amu.ops_executed"] == 4
    assert c["network.messages"] > 0
    # per-kind network counters exist for whatever kinds flowed
    assert any(name.startswith("network.msgs.") for name in c)


def test_snapshot_is_schema_valid(machine4):
    obs = MachineMetrics.attach(machine4, sample_interval=500)
    obs.sampler.start()
    run_counter_workload(machine4)
    snap = obs.snapshot()
    assert validate_snapshot(snap) == []


def test_fanout_histograms_populate_on_sharing(machine8):
    obs = MachineMetrics.attach(machine8)
    var = machine8.alloc("shared", home_node=0)

    def thread(proc):
        # everyone caches the line, then CPU 0 writes: invalidation wave
        yield from proc.load(var.addr)
        yield from proc.delay(2_000)
        if proc.cpu_id == 0:
            yield from proc.store(var.addr, 1)

    machine8.run_threads(thread)
    snap = obs.snapshot()
    inval = snap["histograms"]["coherence.inval_fanout"]
    assert inval["count"] >= 1
    assert inval["max"] >= 1


def test_gauges_read_live_kernel_state(machine4):
    obs = MachineMetrics.attach(machine4)
    run_counter_workload(machine4)
    snap = obs.snapshot()
    assert snap["gauges"]["kernel.now"] == machine4.sim.now
    assert snap["gauges"]["kernel.queue_depth"] == 0   # quiescent


def test_metrics_do_not_change_timing():
    """Observer-effect check: attaching metrics leaves cycles identical."""
    from repro.config.parameters import SystemConfig
    from repro.core.machine import Machine

    def run(with_metrics):
        machine = Machine(SystemConfig.table1(4))
        if with_metrics:
            MachineMetrics.attach(machine)
        run_counter_workload(machine)
        return machine.last_completion_time

    assert run(False) == run(True)


def test_unattached_machine_pays_nothing(machine4):
    run_counter_workload(machine4)
    assert machine4.obs is None
