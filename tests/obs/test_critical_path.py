"""Critical-path attribution from synthetic and real trace spans."""

from repro.obs import CriticalPathAnalyzer
from repro.obs.critical_path import EPISODE_SPAN, SEGMENTS
from repro.trace.recorder import TraceRecorder


def make_tracer():
    t = TraceRecorder()
    return t


def test_no_markers_no_episodes(machine4):
    analyzer = CriticalPathAnalyzer(machine4)
    assert analyzer.analyze(make_tracer()) == []


def test_critical_track_is_last_finisher(machine4):
    tracer = make_tracer()
    tracer.add_span("cpu0", EPISODE_SPAN, 0, 100)
    tracer.add_span("cpu1", EPISODE_SPAN, 0, 300)   # finishes last
    breakdowns = CriticalPathAnalyzer(machine4).analyze(tracer)
    assert len(breakdowns) == 1
    b = breakdowns[0]
    assert b.critical_track == "cpu1"
    assert (b.start, b.end, b.total_cycles) == (0, 300, 300)


def test_segments_sum_to_episode_length(machine4):
    tracer = make_tracer()
    tracer.add_span("cpu0", EPISODE_SPAN, 0, 1_000)
    tracer.add_span("cpu0", "spin_until", 100, 700)
    tracer.add_span("cpu0", "load", 700, 760)
    breakdowns = CriticalPathAnalyzer(machine4).analyze(tracer)
    b = breakdowns[0]
    assert b.segments["wait"] == 600
    assert b.segments["coherence"] == 60
    # uncovered time inside the marker lands in cpu
    assert b.segments["cpu"] == 1_000 - 600 - 60
    assert sum(b.segments.values()) == b.total_cycles


def test_amu_span_splits_network_transit(machine4):
    tracer = make_tracer()
    var = machine4.alloc("v", home_node=1)
    tracer.add_span("cpu0", EPISODE_SPAN, 0, 2_000)
    tracer.add_span("cpu0", "amo", 0, 1_000, addr=hex(var.addr))
    b = CriticalPathAnalyzer(machine4).analyze(tracer)[0]
    expected_transit = 2 * machine4.net.latency(machine4.node_of_cpu(0), 1)
    assert b.segments["network"] == expected_transit
    assert b.segments["amu"] == 1_000 - expected_transit
    assert sum(b.segments.values()) == b.total_cycles


def test_multi_episode_windows_pair_up(machine4):
    tracer = make_tracer()
    for cpu in ("cpu0", "cpu1"):
        tracer.add_span(cpu, EPISODE_SPAN, 0, 100)
        tracer.add_span(cpu, EPISODE_SPAN, 100, 250)
    breakdowns = CriticalPathAnalyzer(machine4).analyze(tracer)
    assert [b.index for b in breakdowns] == [0, 1]
    assert breakdowns[1].total_cycles == 150


def test_summarize_merges_episodes(machine4):
    tracer = make_tracer()
    tracer.add_span("cpu0", EPISODE_SPAN, 0, 100)
    tracer.add_span("cpu0", EPISODE_SPAN, 100, 300)
    analyzer = CriticalPathAnalyzer(machine4)
    summary = analyzer.summarize(analyzer.analyze(tracer))
    assert summary["episodes"] == 2
    assert summary["total_cycles"] == 300
    assert set(summary["segments"]) == set(SEGMENTS)
    assert sum(summary["segments"].values()) == 300


def test_describe_is_readable(machine4):
    tracer = make_tracer()
    tracer.add_span("cpu3", EPISODE_SPAN, 0, 50)
    b = CriticalPathAnalyzer(machine4).analyze(tracer)[0]
    text = b.describe()
    assert "cpu3" in text and "50 cycles" in text


def test_from_config_matches_machine_analyzer(machine4):
    """The config-only constructor (used by the shard parent, which has
    no machine) must reproduce the machine-based analyzer's latency
    model exactly — same node mapping, same transit estimates."""
    tracer = make_tracer()
    var = machine4.alloc("v", home_node=1)
    tracer.add_span("cpu0", EPISODE_SPAN, 0, 2_000)
    tracer.add_span("cpu0", "amo", 0, 1_000, addr=hex(var.addr))
    tracer.add_span("cpu3", EPISODE_SPAN, 0, 1_500)
    tracer.add_span("cpu3", "spin_until", 100, 900)
    by_machine = CriticalPathAnalyzer(machine4)
    by_config = CriticalPathAnalyzer.from_config(machine4.config)
    assert by_config.machine is None
    ref = by_machine.summarize(by_machine.analyze(tracer))
    got = by_config.summarize(by_config.analyze(tracer))
    assert got == ref
