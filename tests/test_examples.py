"""Every example script must run clean (they are part of the API surface)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", []),
    ("barrier_scaling.py", ["--cpus", "4", "8", "16", "--episodes", "1"]),
    ("lock_contention.py", ["--cpus", "4", "8", "--acq", "1"]),
    ("message_anatomy.py", []),
    ("custom_amo.py", []),
    ("openmp_reduction.py", ["--cpus", "8"]),
    ("trace_a_barrier.py", ["--out-dir", "/tmp"]),
    ("applications.py", ["--cpus", "4"]),
]


@pytest.mark.parametrize("script,args", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs_clean(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print something useful"


def test_examples_inventory_complete():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert {c[0] for c in CASES} == scripts, \
        "new example scripts must be added to the test matrix"
