"""Unit tests for the address map and allocator."""

import pytest

from repro.mem.address import (
    LINE_BYTES, WORD_BYTES, AddressSpace, home_of, line_base, line_of,
    word_base, word_index_in_line,
)


def test_home_of_round_trip():
    space = AddressSpace(8)
    for node in range(8):
        var = space.alloc(f"v{node}", home_node=node)
        assert home_of(var.addr) == node


def test_null_region_unmapped():
    with pytest.raises(ValueError):
        home_of(0x100)


def test_line_and_word_math():
    addr = 3 * LINE_BYTES + 2 * WORD_BYTES + 3
    assert line_of(addr) == 3
    assert line_base(addr) == 3 * LINE_BYTES
    assert word_base(addr) == 3 * LINE_BYTES + 2 * WORD_BYTES
    assert word_index_in_line(addr) == 2


def test_allocations_never_share_lines_by_default():
    space = AddressSpace(2)
    a = space.alloc("a", 0)
    b = space.alloc("b", 0)
    c = space.alloc("c", 0, words=5)
    d = space.alloc("d", 0)
    lines = {line_of(a.addr), line_of(b.addr), line_of(c.addr),
             line_of(d.addr)}
    assert len(lines) == 4


def test_multi_word_variable_contiguous():
    space = AddressSpace(1)
    arr = space.alloc("arr", 0, words=4)
    addrs = [arr.word_addr(i) for i in range(4)]
    assert addrs == [arr.addr + i * WORD_BYTES for i in range(4)]
    with pytest.raises(IndexError):
        arr.word_addr(4)


def test_strided_variable_one_line_per_word():
    space = AddressSpace(1)
    flags = space.alloc("flags", 0, words=6, stride_lines=True)
    lines = {line_of(flags.word_addr(i)) for i in range(6)}
    assert len(lines) == 6


def test_packed_allocation_shares_line():
    space = AddressSpace(1)
    a = space.alloc("a", 0)
    b = space.alloc_packed("b", a)
    assert line_of(a.addr) == line_of(b.addr)
    assert a.addr != b.addr


def test_packed_line_exhaustion():
    space = AddressSpace(1)
    a = space.alloc("a", 0)
    for i in range(LINE_BYTES // WORD_BYTES - 1):
        space.alloc_packed(f"p{i}", a)
    with pytest.raises(MemoryError):
        space.alloc_packed("overflow", a)


def test_duplicate_symbol_rejected():
    space = AddressSpace(1)
    space.alloc("x", 0)
    with pytest.raises(ValueError, match="already"):
        space.alloc("x", 0)


def test_lookup_by_name():
    space = AddressSpace(2)
    v = space.alloc("flag", 1)
    assert space.lookup("flag") is v


def test_bad_home_node_rejected():
    space = AddressSpace(2)
    with pytest.raises(ValueError):
        space.alloc("v", 2)
    with pytest.raises(ValueError):
        space.alloc("w", -1)


def test_zero_words_rejected():
    space = AddressSpace(1)
    with pytest.raises(ValueError):
        space.alloc("v", 0, words=0)


def test_unaligned_allocation_packs_words():
    space = AddressSpace(1)
    a = space.alloc("a", 0, line_aligned=False)
    b = space.alloc("b", 0, line_aligned=False)
    # without alignment, consecutive single words pack tightly
    assert b.addr == a.addr + WORD_BYTES


def test_element_line_stride_reporting():
    space = AddressSpace(1)
    single = space.alloc("s", 0)
    multi = space.alloc("m", 0, words=4)
    strided = space.alloc("t", 0, words=4, stride_lines=True)
    assert single.element_line_stride()
    assert not multi.element_line_stride()
    # strided variables place each word in its own line
    assert line_of(strided.word_addr(0)) != line_of(strided.word_addr(1))
