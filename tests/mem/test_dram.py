"""Unit tests for the DRAM timing model."""

from repro.config.parameters import DramConfig
from repro.mem.dram import Dram
from repro.sim.kernel import Simulator


def test_single_line_access_costs_latency():
    sim = Simulator()
    dram = Dram(sim, node=0, config=DramConfig(latency_cycles=60,
                                               occupancy_cycles=40))
    def proc():
        yield from dram.access_line()
        return sim.now
    assert sim.run_process(proc()) == 60
    assert dram.line_accesses == 1


def test_line_storm_serializes_at_occupancy():
    cfg = DramConfig(latency_cycles=60, occupancy_cycles=40)
    sim = Simulator()
    dram = Dram(sim, node=0, config=cfg)
    done = []

    def reader(tag):
        yield from dram.access_line()
        done.append((tag, sim.now))

    for i in range(4):
        sim.spawn(reader(i))
    sim.run()
    # request k occupies [40k, 40k+40), completes at 40k + 60
    assert done == [(0, 60), (1, 100), (2, 140), (3, 180)]


def test_word_access_cheaper_than_line():
    cfg = DramConfig(latency_cycles=60, occupancy_cycles=40,
                     word_occupancy_cycles=4)
    sim = Simulator()
    dram = Dram(sim, node=0, config=cfg)
    done = []

    def reader(tag):
        yield from dram.access_word()
        done.append(sim.now)

    for i in range(3):
        sim.spawn(reader(i))
    sim.run()
    assert done == [60, 64, 68]
    assert dram.word_accesses == 3


def test_utilization_reflects_busy_fraction():
    sim = Simulator()
    dram = Dram(sim, node=0, config=DramConfig(latency_cycles=60,
                                               occupancy_cycles=40))
    def proc():
        yield from dram.access_line()
    sim.run_process(proc())
    assert 0 < dram.utilization() <= 1.0
    assert dram.busy_cycles == 40
