"""Unit tests for the backing store."""

from repro.mem.address import LINE_BYTES, WORD_BYTES, AddressSpace
from repro.mem.backing import BackingStore


def test_default_zero():
    bs = BackingStore()
    assert bs.read_word(0x100000000) == 0


def test_write_read_round_trip():
    bs = BackingStore()
    bs.write_word(0x100000010, 42)
    assert bs.read_word(0x100000010) == 42
    # sub-word addresses alias to their word
    assert bs.read_word(0x100000013) == 42


def test_line_read_and_write():
    bs = BackingStore()
    base = 0x100000000
    bs.write_line(base, {base: 1, base + WORD_BYTES: 2})
    words = bs.read_line(base, LINE_BYTES)
    assert words == {base: 1, base + WORD_BYTES: 2}
    # zero words are omitted from the line image
    assert base + 2 * WORD_BYTES not in words


def test_home_audit_counts_per_node():
    space = AddressSpace(4)
    bs = BackingStore()
    for node in (0, 0, 2):
        var = space.alloc(f"v{node}{bs.writes}", home_node=node)
        bs.write_word(var.addr, 1)
    audit = bs.home_audit()
    assert audit[0] == 2
    assert audit[2] == 1


def test_access_counters():
    bs = BackingStore()
    bs.write_word(0x100000000, 5)
    bs.read_word(0x100000000)
    bs.read_line(0x100000000)
    assert bs.writes == 1
    assert bs.reads == 2


def test_nonzero_words_sorted():
    bs = BackingStore()
    bs.write_word(0x100000020, 2)
    bs.write_word(0x100000000, 1)
    assert list(bs.nonzero_words()) == [(0x100000000, 1), (0x100000020, 2)]
