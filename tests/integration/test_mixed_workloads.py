"""End-to-end integration: mixed synchronization patterns on one machine."""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.barrier import CentralizedBarrier
from repro.sync.ticket_lock import TicketLock

#: multi-million-event end-to-end runs — the long integration tier
pytestmark = pytest.mark.slow


def test_pipeline_of_barriers_and_locks():
    """Phases: locked accumulation -> barrier -> verification read."""
    n = 8
    machine = Machine(SystemConfig.table1(n))
    total = machine.alloc("total", home_node=1)
    lock = TicketLock(machine, Mechanism.AMO, home_node=1)
    barrier = CentralizedBarrier(machine, Mechanism.AMO, home_node=0)

    def thread(proc):
        for _ in range(2):
            yield from lock.acquire(proc)
            v = yield from proc.load(total.addr)
            yield from proc.store(total.addr, v + proc.cpu_id + 1)
            yield from lock.release(proc)
        yield from barrier.wait(proc)
        final = yield from proc.load(total.addr)
        return final

    results = machine.run_threads(thread, max_events=4_000_000)
    expected = 2 * sum(range(1, n + 1))
    assert results == [expected] * n
    machine.check_coherence_invariants()


def test_mixed_mechanisms_coexist():
    """AMO and LL/SC primitives on *different* variables in one run."""
    machine = Machine(SystemConfig.table1(4))
    amo_ctr = machine.alloc("amo_ctr", home_node=0)
    llsc_ctr = machine.alloc("llsc_ctr", home_node=1)

    def thread(proc):
        yield from proc.amo_inc(amo_ctr.addr)
        yield from proc.llsc_rmw(llsc_ctr.addr, lambda v: v + 1)

    machine.run_threads(thread, max_events=2_000_000)
    assert machine.peek(amo_ctr.addr) == 4
    assert machine.peek(llsc_ctr.addr) == 4
    machine.check_coherence_invariants()


def test_multiple_barriers_independent():
    machine = Machine(SystemConfig.table1(8))
    b_even = CentralizedBarrier(machine, Mechanism.AMO, n_participants=4,
                                home_node=0)
    b_odd = CentralizedBarrier(machine, Mechanism.MAO, n_participants=4,
                               home_node=1)

    def thread(proc):
        barrier = b_even if proc.cpu_id % 2 == 0 else b_odd
        for _ in range(3):
            yield from barrier.wait(proc)
        return True

    assert machine.run_threads(thread, max_events=4_000_000) == [True] * 8


def test_many_amo_variables_exceeding_amu_cache():
    """More hot words than the 8-word AMU cache: eviction traffic, but
    values stay exact."""
    machine = Machine(SystemConfig.table1(8))
    counters = [machine.alloc(f"c{i}", home_node=0) for i in range(12)]

    def thread(proc):
        for var in counters:
            yield from proc.amo_inc(var.addr)

    machine.run_threads(thread, max_events=4_000_000)
    for var in counters:
        assert machine.peek(var.addr) == 8
    assert machine.hubs[0].amu.cache.evictions > 0


def test_barrier_then_everyone_sees_all_updates():
    """Full-system release consistency: after an AMO barrier, every CPU
    reads every other CPU's pre-barrier write."""
    n = 8
    machine = Machine(SystemConfig.table1(n))
    slots = machine.alloc("slots", home_node=2, words=n, stride_lines=True)
    barrier = CentralizedBarrier(machine, Mechanism.AMO)

    def thread(proc):
        yield from proc.store(slots.word_addr(proc.cpu_id),
                              proc.cpu_id + 100)
        yield from barrier.wait(proc)
        seen = []
        for i in range(n):
            v = yield from proc.load(slots.word_addr(i))
            seen.append(v)
        return seen

    results = machine.run_threads(thread, max_events=4_000_000)
    expected = [i + 100 for i in range(n)]
    assert all(r == expected for r in results)
