"""Integration tests asserting the paper's qualitative results at
CI-friendly sizes (up to 32 CPUs).

These are the acceptance criteria of DESIGN.md §4 in executable form —
each test names the claim it guards.
"""

import pytest

from repro.config.mechanism import Mechanism
from repro.workloads.barrier import run_barrier_workload
from repro.workloads.locks import run_lock_workload

#: full-module sweep fixtures up to 32 CPUs — the long integration tier
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def barrier16():
    return {m: run_barrier_workload(16, m, episodes=2)
            for m in Mechanism}


@pytest.fixture(scope="module")
def barrier32():
    return {m: run_barrier_workload(32, m, episodes=2)
            for m in Mechanism}


def test_amo_barrier_fastest_of_all(barrier16):
    amo = barrier16[Mechanism.AMO].cycles_per_episode
    for mech, result in barrier16.items():
        if mech is not Mechanism.AMO:
            assert amo < result.cycles_per_episode, mech


def test_mao_beats_processor_centric(barrier16):
    assert barrier16[Mechanism.MAO].cycles_per_episode < \
        barrier16[Mechanism.ATOMIC].cycles_per_episode
    assert barrier16[Mechanism.MAO].cycles_per_episode < \
        barrier16[Mechanism.LLSC].cycles_per_episode


def test_amo_over_mao_factor_grows(barrier16, barrier32):
    """§4.2.1: the delayed-update advantage grows with P."""
    r16 = (barrier16[Mechanism.MAO].cycles_per_episode
           / barrier16[Mechanism.AMO].cycles_per_episode)
    r32 = (barrier32[Mechanism.MAO].cycles_per_episode
           / barrier32[Mechanism.AMO].cycles_per_episode)
    assert r16 > 1.5
    assert r32 >= r16 * 0.9      # non-shrinking, tolerance for noise


def test_amo_speedup_grows_with_machine_size(barrier16, barrier32):
    s16 = (barrier16[Mechanism.LLSC].cycles_per_episode
           / barrier16[Mechanism.AMO].cycles_per_episode)
    s32 = (barrier32[Mechanism.LLSC].cycles_per_episode
           / barrier32[Mechanism.AMO].cycles_per_episode)
    assert s32 > s16 > 4


def test_amo_per_processor_latency_flat(barrier16, barrier32):
    """Figure 5: AMO cycles/processor ~ constant."""
    c16 = barrier16[Mechanism.AMO].cycles_per_processor
    c32 = barrier32[Mechanism.AMO].cycles_per_processor
    assert c32 < c16 * 1.5
    llsc16 = barrier16[Mechanism.LLSC].cycles_per_processor
    llsc32 = barrier32[Mechanism.LLSC].cycles_per_processor
    assert llsc32 > llsc16       # LL/SC per-processor time grows


def test_amo_network_traffic_least(barrier16):
    amo_bytes = barrier16[Mechanism.AMO].bytes_per_episode
    for mech in (Mechanism.LLSC, Mechanism.ATOMIC, Mechanism.MAO):
        assert amo_bytes < barrier16[mech].bytes_per_episode, mech


def test_amo_barrier_message_budget_linear(barrier32):
    """AMO barrier messages ~ 3 per processor (cmd + reply + update)."""
    per_cpu = barrier32[Mechanism.AMO].messages_per_episode / 32
    assert per_cpu <= 4.0, f"{per_cpu:.2f} messages per CPU per episode"


def test_tree_helps_llsc_but_not_amo():
    flat_llsc = run_barrier_workload(32, Mechanism.LLSC, episodes=2)
    tree_llsc = run_barrier_workload(32, Mechanism.LLSC, episodes=2,
                                     tree_branching=8)
    flat_amo = run_barrier_workload(32, Mechanism.AMO, episodes=2)
    tree_amo = run_barrier_workload(32, Mechanism.AMO, episodes=2,
                                    tree_branching=8)
    assert tree_llsc.cycles_per_episode < flat_llsc.cycles_per_episode
    assert tree_amo.cycles_per_episode > flat_amo.cycles_per_episode


def test_amo_makes_ticket_and_array_locks_equivalent():
    ticket = run_lock_workload(16, Mechanism.AMO, "ticket",
                               acquisitions_per_cpu=2)
    array = run_lock_workload(16, Mechanism.AMO, "array",
                              acquisitions_per_cpu=2)
    ratio = (ticket.cycles_per_acquisition
             / array.cycles_per_acquisition)
    assert 0.5 <= ratio <= 2.0


def test_amo_lock_speedup_over_llsc():
    base = run_lock_workload(16, Mechanism.LLSC, "ticket",
                             acquisitions_per_cpu=2)
    amo = run_lock_workload(16, Mechanism.AMO, "ticket",
                            acquisitions_per_cpu=2)
    assert amo.speedup_over(base) > 1.5


def test_array_lock_slower_at_small_scale():
    """Table 4: array < ticket for small P (reset-store overhead)."""
    ticket = run_lock_workload(8, Mechanism.LLSC, "ticket",
                               acquisitions_per_cpu=2)
    array = run_lock_workload(8, Mechanism.LLSC, "array",
                              acquisitions_per_cpu=2)
    assert array.cycles_per_acquisition > ticket.cycles_per_acquisition


def test_actmsg_retransmission_traffic_under_contention():
    """Figure 7's driver at reduced size: with a timeout tight enough to
    trigger retransmission, ActMsg out-produces the cache-based
    mechanisms.  (Beating MAO's uncached per-op round trips too is a
    128/256-CPU effect — asserted by the full-size fig7 benchmark.)"""
    from repro.config.parameters import ActiveMessageConfig, SystemConfig
    cfg = SystemConfig.table1(32, actmsg=ActiveMessageConfig(
        invocation_overhead_cycles=350, timeout_cycles=4_000,
        max_retransmits=16))
    results = {}
    for mech in Mechanism:
        results[mech] = run_lock_workload(
            32, mech, "ticket", acquisitions_per_cpu=2,
            config=cfg if mech is Mechanism.ACTMSG else None)
    assert results[Mechanism.ACTMSG].traffic.retransmits > 0
    actmsg_bytes = results[Mechanism.ACTMSG].bytes_per_acquisition
    for mech in (Mechanism.LLSC, Mechanism.ATOMIC, Mechanism.AMO):
        assert actmsg_bytes > results[mech].bytes_per_acquisition, mech
