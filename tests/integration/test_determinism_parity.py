"""Determinism-parity gate for the event-queue kernel.

Three layers of protection for the invariant that kernel/protocol
*performance* work must never change simulated *behaviour*:

1. **Golden parity** — every mechanism's barrier and lock fingerprints
   (total cycles, per-kind message counts, kernel events dispatched) at
   32 CPUs must match ``golden/parity_32.json``, captured from the seed
   (sequence-numbered-heap) kernel.  Any reordering introduced by the
   two-tier dispatch queue, the bitmask directory, or the resume
   trampoline shows up here as a cycle or message-count drift.
2. **Run-twice identity** — the same configuration run twice in one
   process produces byte-identical fingerprints *and* identical trace
   spans, so there is no hidden dependence on iteration order of sets,
   object ids, or allocation timing.
3. **Snapshot-restored parity** — the same fingerprints produced through
   the warm-start path (machine restored from a
   :class:`repro.core.snapshot.MachineSnapshot` instead of built fresh)
   must match the goldens byte-for-byte; the second call per
   configuration replays from the post-warmup snapshot and is the run
   that actually exercises restore.
4. **Large-machine parity** (``slow``) — the full golden suite repeated
   at 512 CPUs against ``golden/parity_512.json`` (beyond the paper's
   256), plus a 256-CPU barrier smoke per mechanism.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.harness.parity import (barrier_fingerprint, lock_fingerprint,
                                  qlock_fingerprint)
from repro.sync.barrier import CentralizedBarrier
from repro.trace.recorder import TraceRecorder
from repro.workloads.barrier import run_barrier_workload
from repro.workloads.qlocks import QLOCK_TYPES, qlock_supported
from repro.workloads.warm import WarmCache

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "parity_32.json").read_text())
GOLDEN_512 = json.loads(
    (Path(__file__).parent / "golden" / "parity_512.json").read_text())

MECHS = list(Mechanism)


def _diff(golden: dict, got: dict) -> str:
    lines = [f"  {k}: golden={golden[k]!r} got={got.get(k)!r}"
             for k in golden if golden[k] != got.get(k)]
    return "\n".join(lines)


@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_barrier_matches_golden(mech):
    golden = GOLDEN["fingerprints"][mech.value]["barrier"]
    got = barrier_fingerprint(mech, GOLDEN["n_processors"])
    assert got == golden, (
        f"{mech.value} barrier fingerprint drifted from the seed kernel:\n"
        + _diff(golden, got))


@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_lock_matches_golden(mech):
    golden = GOLDEN["fingerprints"][mech.value]["lock"]
    got = lock_fingerprint(mech, GOLDEN["n_processors"])
    assert got == golden, (
        f"{mech.value} lock fingerprint drifted from the seed kernel:\n"
        + _diff(golden, got))


QLOCK_CELLS = [(m, lt) for m in MECHS for lt in QLOCK_TYPES
               if qlock_supported(lt, m)]
QLOCK_IDS = [f"{m.value}-{lt}" for m, lt in QLOCK_CELLS]


@pytest.mark.parametrize("mech,lock_type", QLOCK_CELLS, ids=QLOCK_IDS)
def test_qlock_matches_golden(mech, lock_type):
    golden = GOLDEN["fingerprints"][mech.value][f"qlock_{lock_type}"]
    got = qlock_fingerprint(mech, GOLDEN["n_processors"], lock_type)
    assert got == golden, (
        f"{mech.value} qlock_{lock_type} fingerprint drifted:\n"
        + _diff(golden, got))


def test_golden_omits_unsupported_qlock_cells():
    # rw over MAO is refused by construction — the golden must not
    # record a fingerprint for it (and must record every supported cell)
    for m in MECHS:
        recorded = {k for k in GOLDEN["fingerprints"][m.value]
                    if k.startswith("qlock_")}
        expected = {f"qlock_{lt}" for lt in QLOCK_TYPES
                    if qlock_supported(lt, m)}
        assert recorded == expected, m.value


def _traced_run(mech: Mechanism) -> tuple[dict, list]:
    """One traced barrier run: (result fingerprint, full span list)."""
    machine = Machine(SystemConfig.table1(32))
    tracer = TraceRecorder.attach(machine, capture_messages=True)
    barrier = CentralizedBarrier(machine, mech)

    def thread(proc):
        for _ in range(2):
            yield from barrier.wait(proc)

    machine.run_threads(thread)
    spans = [(s.track, s.name, s.start, s.end, s.args)
             for s in tracer.spans]
    instants = [(i.track, i.name, i.time) for i in tracer.instants]
    fp = {
        "cycles": machine.last_completion_time,
        "events": machine.sim.events_dispatched,
        "messages": {k.value: v
                     for k, v in machine.net.stats.messages.items()},
        "local": {k.value: v
                  for k, v in machine.net.stats.local_messages.items()},
    }
    return fp, (spans, instants)


@pytest.mark.parametrize("mech", [Mechanism.AMO, Mechanism.LLSC],
                         ids=["amo", "llsc"])
def test_run_twice_is_identical_including_trace(mech):
    fp1, spans1 = _traced_run(mech)
    fp2, spans2 = _traced_run(mech)
    assert fp1 == fp2
    assert spans1 == spans2


@pytest.fixture(scope="module")
def warm_cache():
    """One warm cache for the whole module: the pooled machine is built
    once per config and every subsequent run goes through restore."""
    return WarmCache()


@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_snapshot_restored_barrier_matches_golden(mech, warm_cache):
    golden = GOLDEN["fingerprints"][mech.value]["barrier"]
    # first call misses (build + warm + snapshot), second replays from
    # the snapshot — both must land exactly on the fresh-built golden
    first = barrier_fingerprint(mech, GOLDEN["n_processors"],
                                warm_cache=warm_cache)
    restored = barrier_fingerprint(mech, GOLDEN["n_processors"],
                                   warm_cache=warm_cache)
    assert first == golden, (
        f"{mech.value} warm-start (miss path) drifted:\n"
        + _diff(golden, first))
    assert restored == golden, (
        f"{mech.value} snapshot-restored run drifted from golden:\n"
        + _diff(golden, restored))


@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_snapshot_restored_lock_matches_golden(mech, warm_cache):
    golden = GOLDEN["fingerprints"][mech.value]["lock"]
    first = lock_fingerprint(mech, GOLDEN["n_processors"],
                             warm_cache=warm_cache)
    restored = lock_fingerprint(mech, GOLDEN["n_processors"],
                                warm_cache=warm_cache)
    assert first == golden, (
        f"{mech.value} warm-start (miss path) drifted:\n"
        + _diff(golden, first))
    assert restored == golden, (
        f"{mech.value} snapshot-restored run drifted from golden:\n"
        + _diff(golden, restored))


@pytest.mark.parametrize("mech,lock_type",
                         [(Mechanism.AMO, "cna"), (Mechanism.LLSC, "mcs")],
                         ids=["amo-cna", "llsc-mcs"])
def test_snapshot_restored_qlock_matches_golden(mech, lock_type, warm_cache):
    golden = GOLDEN["fingerprints"][mech.value][f"qlock_{lock_type}"]
    first = qlock_fingerprint(mech, GOLDEN["n_processors"], lock_type,
                              warm_cache=warm_cache)
    restored = qlock_fingerprint(mech, GOLDEN["n_processors"], lock_type,
                                 warm_cache=warm_cache)
    assert first == golden, (
        f"{mech.value} qlock_{lock_type} warm-start (miss path) drifted:\n"
        + _diff(golden, first))
    assert restored == golden, (
        f"{mech.value} qlock_{lock_type} snapshot-restored run drifted:\n"
        + _diff(golden, restored))


@pytest.mark.slow
@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_paper_scale_smoke_256(mech):
    """One barrier episode per mechanism at the paper's 256 CPUs."""
    res = run_barrier_workload(256, mech, episodes=1, warmup_episodes=0)
    assert res.episodes == 1
    assert res.total_cycles > 0
    assert res.events_dispatched > 0


@pytest.mark.slow
@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_barrier_matches_golden_512(mech):
    golden = GOLDEN_512["fingerprints"][mech.value]["barrier"]
    got = barrier_fingerprint(mech, GOLDEN_512["n_processors"])
    assert got == golden, (
        f"{mech.value} barrier fingerprint drifted at 512 CPUs:\n"
        + _diff(golden, got))


@pytest.mark.slow
@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_lock_matches_golden_512(mech):
    golden = GOLDEN_512["fingerprints"][mech.value]["lock"]
    got = lock_fingerprint(mech, GOLDEN_512["n_processors"])
    assert got == golden, (
        f"{mech.value} lock fingerprint drifted at 512 CPUs:\n"
        + _diff(golden, got))


@pytest.mark.slow
def test_snapshot_restored_matches_golden_512(warm_cache):
    """Snapshot-restored parity at 512 CPUs (one mechanism bounds time:
    the full warm sweep is covered by ``capture_parity --verify --warm``
    in CI's perf-smoke job)."""
    golden = GOLDEN_512["fingerprints"][Mechanism.AMO.value]["barrier"]
    first = barrier_fingerprint(Mechanism.AMO, GOLDEN_512["n_processors"],
                                warm_cache=warm_cache)
    restored = barrier_fingerprint(Mechanism.AMO, GOLDEN_512["n_processors"],
                                   warm_cache=warm_cache)
    assert first == golden, _diff(golden, first)
    assert restored == golden, _diff(golden, restored)
