"""Tests for the trace subsystem."""

import json

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.trace import TraceRecorder


def traced_machine(n=4):
    machine = Machine(SystemConfig.table1(n))
    tracer = TraceRecorder.attach(machine)
    return machine, tracer


def test_no_tracer_means_no_spans(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.load(var.addr)

    machine4.run_threads(thread, cpus=[0])
    assert machine4.tracer is None


def test_spans_capture_ops_with_timing():
    machine, tracer = traced_machine()
    var = machine.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.store(var.addr, 1)
        yield from proc.load(var.addr)

    machine.run_threads(thread, cpus=[0])
    spans = tracer.spans_on("cpu0")
    assert [s.name for s in spans] == ["store", "load"]
    store, load = spans
    assert store.start < store.end <= load.start < load.end
    assert store.args["addr"] == hex(var.addr)
    # the remote store dwarfs the local (cached) load
    assert store.duration > load.duration


def test_message_instants_captured():
    machine, tracer = traced_machine()
    var = machine.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.amo_inc(var.addr)

    machine.run_threads(thread, cpus=[0])
    names = {i.name for i in tracer.instants}
    assert "amo_request" in names and "amo_reply" in names
    req = next(i for i in tracer.instants if i.name == "amo_request")
    assert req.args["src"] == 0 and req.args["dst"] == 1
    assert req.args["hops"] == 2


def test_spin_span_covers_wait():
    machine, tracer = traced_machine()
    var = machine.alloc("flag", home_node=0)

    def thread(proc):
        if proc.cpu_id == 0:
            yield from proc.spin_until(var.addr, lambda v: v == 1)
        else:
            yield from proc.delay(5_000)
            yield from proc.store(var.addr, 1)

    machine.run_threads(thread, cpus=[0, 2])
    spin = tracer.spans_named("spin_until")[0]
    assert spin.duration >= 5_000


def test_chrome_trace_schema():
    machine, tracer = traced_machine()
    var = machine.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.amo_fetchadd(var.addr, 1)

    machine.run_threads(thread)
    trace = tracer.to_chrome_trace()
    events = trace["traceEvents"]
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i"}
    for e in events:
        if e["ph"] == "X":
            assert e["dur"] >= 1 and e["ts"] >= 0
    # every track has a metadata name record
    meta = [e for e in events if e["ph"] == "M"]
    named = {e["args"]["name"] for e in meta}
    assert "cpu0" in named and "net" in named


def test_save_round_trips(tmp_path):
    machine, tracer = traced_machine()
    var = machine.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.load(var.addr)

    machine.run_threads(thread, cpus=[0])
    path = tmp_path / "trace.json"
    tracer.save(str(path))
    loaded = json.loads(path.read_text())
    assert loaded["traceEvents"]


def test_total_time_accounting():
    machine, tracer = traced_machine()
    var = machine.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.load(var.addr)
        yield from proc.load(var.addr)

    machine.run_threads(thread, cpus=[0])
    assert tracer.total_time_in("cpu0") == \
        tracer.total_time_in("cpu0", "load")
    assert len(tracer.spans_named("load")) == 2


def test_summary_is_readable():
    machine, tracer = traced_machine()
    var = machine.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.atomic_rmw(var.addr, lambda v: v + 1)

    machine.run_threads(thread)
    text = tracer.summary()
    assert "cpu0" in text and "messages traced" in text


def test_tracing_does_not_change_timing():
    """Observer effect check: identical cycle counts with/without."""
    def run(with_tracer):
        machine = Machine(SystemConfig.table1(8))
        if with_tracer:
            TraceRecorder.attach(machine)
        var = machine.alloc("ctr", home_node=0)

        def thread(proc):
            yield from proc.llsc_rmw(var.addr, lambda v: v + 1)

        machine.run_threads(thread)
        return machine.last_completion_time

    assert run(False) == run(True)
