"""Round-trip guarantees of ``TraceRecorder.to_chrome_trace``.

The exported document must be loadable by chrome://tracing / Perfetto:
serializable JSON, exactly one ``thread_name`` metadata record per
track, every span/instant on a registered tid, and strictly positive
durations (the viewer drops ``dur == 0`` complete events).
"""

import json

from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.trace import TraceRecorder


def traced_run(n=4):
    machine = Machine(SystemConfig.table1(n))
    tracer = TraceRecorder.attach(machine)
    var = machine.alloc("ctr", home_node=1)

    def thread(proc):
        yield from proc.load(var.addr)
        yield from proc.amo_fetchadd(var.addr, 1)
        yield from proc.store(var.addr, 0)

    machine.run_threads(thread)
    return tracer


def test_export_is_serializable_json():
    trace = traced_run().to_chrome_trace()
    # full round trip: serialize and parse back without loss
    again = json.loads(json.dumps(trace))
    assert again == trace
    assert again["traceEvents"]


def test_one_thread_name_record_per_track():
    tracer = traced_run()
    events = tracer.to_chrome_trace()["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert all(e["name"] == "thread_name" for e in meta)
    names = [e["args"]["name"] for e in meta]
    assert len(names) == len(set(names))          # exactly one per track
    tracks = {s.track for s in tracer.spans} | \
        {i.track for i in tracer.instants}
    assert set(names) == tracks
    # one distinct tid per track
    assert len({e["tid"] for e in meta}) == len(meta)


def test_every_event_maps_to_a_registered_tid():
    events = traced_run().to_chrome_trace()["traceEvents"]
    tids = {e["tid"] for e in events if e["ph"] == "M"}
    for e in events:
        if e["ph"] in ("X", "i"):
            assert e["tid"] in tids


def test_durations_are_at_least_one():
    tracer = traced_run()
    # force a zero-length span: the exporter must clamp it to dur=1
    tracer.add_span("cpu0", "instant_op", 50, 50)
    events = tracer.to_chrome_trace()["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    assert xs and all(e["dur"] >= 1 and e["ts"] >= 0 for e in xs)
    clamped = [e for e in xs if e["name"] == "instant_op"]
    assert clamped[0]["dur"] == 1


def test_span_args_survive_the_round_trip(tmp_path):
    tracer = traced_run()
    path = tmp_path / "trace.json"
    tracer.save(str(path))
    loaded = json.loads(path.read_text())
    loads = [e for e in loaded["traceEvents"]
             if e["ph"] == "X" and e["name"] == "load"]
    assert loads and all(e["args"]["addr"].startswith("0x")
                         for e in loads)
