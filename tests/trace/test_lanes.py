"""Shard-lane trace merging and the multicast-delivery observer check.

``TraceRecorder.merged`` folds per-shard span/instant lists into one
timeline with one Chrome-trace process lane per part (pid = lane + 1;
part 0 is the parent's sync-round lane).  A recorder that never merged
anything must keep exporting the exact pre-lane document — single pid,
no process metadata — so existing traces stay byte-stable.
"""

import json

from repro.config.parameters import NetworkConfig, SystemConfig
from repro.core.machine import Machine
from repro.network.faults import DelayInjector
from repro.trace import TraceRecorder
from repro.trace.recorder import Instant, Span


def traced_amo_run(n=4):
    machine = Machine(SystemConfig.table1(n))
    tracer = TraceRecorder.attach(machine)
    var = machine.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.amo_fetchadd(var.addr, 1)

    machine.run_threads(thread)
    return tracer


def test_merged_assigns_lanes_in_part_order():
    a, b = traced_amo_run(), traced_amo_run()
    sync = [Span(track="sync", name="window", start=0, end=100,
                 args={"round": 0})]
    merged = TraceRecorder.merged([
        ("parent", sync, []),
        ("shard0", a.spans, a.instants),
        ("shard1", b.spans, b.instants),
    ])
    assert merged.lanes == {0: "parent", 1: "shard0", 2: "shard1"}
    assert {s.lane for s in merged.spans} == {0, 1, 2}
    assert all(i.lane in (1, 2) for i in merged.instants)
    assert len(merged.spans) == 1 + len(a.spans) + len(b.spans)


def test_merged_chrome_export_has_one_pid_per_lane():
    a, b = traced_amo_run(), traced_amo_run()
    merged = TraceRecorder.merged([
        ("parent", [Span(track="sync", name="window", start=0, end=50)],
         []),
        ("shard0", a.spans, a.instants),
        ("shard1", b.spans, b.instants),
    ])
    events = merged.to_chrome_trace()["traceEvents"]
    process_names = {e["pid"]: e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
    assert process_names == {1: "parent", 2: "shard0", 3: "shard1"}
    # every emitted span/instant lands on a registered (pid, tid) track
    tracks = {(e["pid"], e["tid"]) for e in events
              if e["ph"] == "M" and e["name"] == "thread_name"}
    for e in events:
        if e["ph"] in ("X", "i"):
            assert (e["pid"], e["tid"]) in tracks
    # the two shard lanes carry the same track set under different pids
    by_pid = {}
    for e in events:
        if e["ph"] == "M" and e["name"] == "thread_name":
            by_pid.setdefault(e["pid"], set()).add(e["args"]["name"])
    assert by_pid[2] == by_pid[3]
    assert by_pid[1] == {"sync"}
    json.dumps(merged.to_chrome_trace())  # serializable


def test_laneless_export_is_unchanged():
    """A recorder that never merged keeps the pre-lane document shape:
    every event on pid 1, no process_name metadata."""
    tracer = traced_amo_run()
    assert tracer.lanes == {}
    events = tracer.to_chrome_trace()["traceEvents"]
    assert {e["pid"] for e in events} == {1}
    assert not any(e["ph"] == "M" and e["name"] == "process_name"
                   for e in events)


def test_lane_default_is_zero():
    assert Span(track="t", name="n", start=0, end=1).lane == 0
    assert Instant(track="t", name="n", time=0).lane == 0


def multicast_trace(per_packet):
    """An update fan-out (3 sharers) with hardware multicast on; the
    inert zero-delay injector forces the per-packet ``send`` fallback
    without changing any delivery time."""
    cfg = SystemConfig.table1(
        8, network=NetworkConfig(multicast_updates=True))
    machine = Machine(cfg)
    tracer = TraceRecorder.attach(machine)
    if per_packet:
        DelayInjector.install(machine, seed=0, max_extra_cycles=0)
    var = machine.alloc("v", home_node=0)

    def loader(proc):
        yield from proc.load(var.addr)

    machine.run_threads(loader, cpus=[2, 4, 6])

    def pusher(proc):
        yield from proc.amo_fetchadd(var.addr, 1)

    machine.run_threads(pusher, cpus=[0])
    return tracer, machine


def test_multicast_wave_trace_matches_per_packet_fallback():
    """Grouped-wave multicast delivery and the fault-injection
    per-packet fallback must produce the identical Chrome trace: the
    tracer observes logical packets, not delivery batching."""
    wave_tracer, wave_machine = multicast_trace(per_packet=False)
    pkt_tracer, pkt_machine = multicast_trace(per_packet=True)
    assert wave_machine.last_completion_time == \
        pkt_machine.last_completion_time
    wave_doc = wave_tracer.to_chrome_trace()
    pkt_doc = pkt_tracer.to_chrome_trace()
    assert wave_doc == pkt_doc
    names = {e["name"] for e in wave_doc["traceEvents"]
             if e["ph"] == "i"}
    assert "word_update" in names
    # round-trips through JSON byte-identically
    assert json.dumps(wave_doc, sort_keys=True) == \
        json.dumps(pkt_doc, sort_keys=True)
