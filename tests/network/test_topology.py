"""Unit tests for the fat-tree topology."""

import networkx as nx
import pytest

from repro.network.topology import FatTreeTopology


def test_two_nodes_share_leaf_router():
    t = FatTreeTopology(2)
    assert t.n_levels == 1
    assert t.hops(0, 1) == 2
    assert t.hops(0, 0) == 0


def test_paper_machine_sizes():
    # 256 CPUs = 128 nodes: 16 leaf routers, 2 mid routers, 1 root.
    t = FatTreeTopology(128, radix=8)
    assert t.routers_per_level == [16, 2, 1]
    assert t.n_levels == 3
    assert t.hops(0, 7) == 2        # same leaf router
    assert t.hops(0, 8) == 4        # hmm: nodes 0..7 under router 0
    assert t.hops(0, 63) == 4       # same mid router (nodes 0-63)
    assert t.hops(0, 127) == 6      # across the root
    assert t.diameter_hops == 6


def test_hops_symmetric_and_zero_diagonal():
    t = FatTreeTopology(64, radix=8)
    for a in range(0, 64, 7):
        assert t.hops(a, a) == 0
        for b in range(0, 64, 5):
            assert t.hops(a, b) == t.hops(b, a)


def test_hops_even_and_bounded():
    t = FatTreeTopology(100, radix=8)
    for a in range(0, 100, 9):
        for b in range(0, 100, 11):
            if a == b:
                continue
            h = t.hops(a, b)
            assert h % 2 == 0
            assert 2 <= h <= 2 * t.n_levels


def test_router_of_levels():
    t = FatTreeTopology(128, radix=8)
    assert t.router_of(0, 0) == 0
    assert t.router_of(7, 0) == 0
    assert t.router_of(8, 0) == 1
    assert t.router_of(127, 0) == 15
    assert t.router_of(127, 1) == 1
    assert t.router_of(127, 2) == 0
    with pytest.raises(ValueError):
        t.router_of(128, 0)


def test_graph_matches_distance_matrix():
    t = FatTreeTopology(24, radix=8)
    g = t.as_graph()
    assert nx.is_connected(g)
    for a in range(0, 24, 5):
        for b in range(0, 24, 7):
            if a == b:
                continue
            expected = nx.shortest_path_length(g, ("node", a), ("node", b))
            assert t.hops(a, b) == expected


def test_single_node_degenerate():
    t = FatTreeTopology(1)
    assert t.diameter_hops == 0
    assert t.average_hops() == 0.0


def test_average_hops_monotone_in_size():
    sizes = [8, 16, 64, 128]
    avgs = [FatTreeTopology(n, radix=8).average_hops() for n in sizes]
    assert all(a <= b for a, b in zip(avgs, avgs[1:]))


def test_invalid_parameters():
    with pytest.raises(ValueError):
        FatTreeTopology(0)
    with pytest.raises(ValueError):
        FatTreeTopology(4, radix=1)
