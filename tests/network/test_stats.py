"""Unit tests for traffic statistics."""

from repro.network.message import Message, MessageKind
from repro.network.stats import TrafficStats


def _msg(kind=MessageKind.GET_S, retransmit=False):
    return Message(kind=kind, src_node=0, dst_node=1,
                   is_retransmit=retransmit)


def test_record_accumulates_by_kind():
    st = TrafficStats()
    st.record(0, _msg(), hops=2)
    st.record(5, _msg(), hops=4)
    st.record(9, _msg(MessageKind.DATA_S), hops=2)
    assert st.messages[MessageKind.GET_S] == 2
    assert st.bytes[MessageKind.GET_S] == 64
    assert st.hop_bytes[MessageKind.GET_S] == 32 * 2 + 32 * 4
    assert st.total_messages == 3
    assert st.total_bytes == 64 + 160


def test_local_messages_counted_separately():
    st = TrafficStats()
    st.record(0, _msg(), hops=0)
    assert st.total_messages == 0
    assert st.total_local_messages == 1
    assert st.total_bytes == 0


def test_retransmits_counted():
    st = TrafficStats()
    st.record(0, _msg(retransmit=True), hops=2)
    st.record(1, _msg(), hops=2)
    assert st.retransmits == 1


def test_snapshot_and_delta():
    st = TrafficStats()
    st.record(0, _msg(), hops=2)
    snap = st.snapshot()
    st.record(1, _msg(), hops=2)
    st.record(2, _msg(MessageKind.WORD_UPDATE), hops=2)
    delta = st.delta_since(snap)
    assert delta.messages[MessageKind.GET_S] == 1
    assert delta.messages[MessageKind.WORD_UPDATE] == 1
    assert delta.total_messages == 2
    # original untouched by snapshot
    assert st.total_messages == 3


def test_trace_capture():
    st = TrafficStats()
    st.trace_enabled = True
    st.record(42, _msg(), hops=2)
    assert len(st.trace) == 1
    entry = st.trace[0]
    assert entry.time == 42
    assert entry.kind is MessageKind.GET_S
    assert "get_s" in repr(entry)


def test_reset_clears_everything():
    st = TrafficStats()
    st.trace_enabled = True
    st.record(0, _msg(retransmit=True), hops=2)
    st.reset()
    assert st.total_messages == 0
    assert st.retransmits == 0
    assert st.trace == []


def test_format_report_contains_totals():
    st = TrafficStats()
    st.record(0, _msg(), hops=2)
    report = st.format_report()
    assert "get_s" in report
    assert "TOTAL" in report


def test_messages_of_selector():
    st = TrafficStats()
    st.record(0, _msg(MessageKind.GET_S), hops=2)
    st.record(0, _msg(MessageKind.GET_X), hops=2)
    st.record(0, _msg(MessageKind.DATA_X), hops=2)
    assert st.messages_of(MessageKind.GET_S, MessageKind.GET_X) == 2
