"""Unit and machine-level tests for the ReorderInjector.

The relaxed-ordering universe weakens the fabric's per-(src,dst) FIFO
guarantee to per-(src,dst,line).  These tests pin down the contract:

- the jitter stream is seed-deterministic and window-bounded, and kind
  filtering never perturbs the jitter of the kinds that remain;
- same-line traffic between a node pair is still delivered in injection
  order (the coherence state machines' requirement);
- cross-line traffic between a pair really does get reordered (the
  universe is not vacuous);
- functional outcomes (counter exactness, coherence invariants) survive
  the relaxation;
- with no injector installed the fabric takes the identical fast path,
  so runs are cycle-identical to baseline.
"""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.network.faults import ReorderInjector
from repro.network.message import Message, MessageKind


def _msg(kind, addr=None):
    return Message(kind=kind, src_node=0, dst_node=1, addr=addr)


KINDS = [MessageKind.GET_S, MessageKind.DATA_X, MessageKind.WORD_UPDATE,
         MessageKind.INVALIDATE, MessageKind.AMO_REQUEST]


def _stream(injector, n=64):
    return [injector.extra_delay(_msg(KINDS[i % len(KINDS)]))
            for i in range(n)]


# ---------------------------------------------------------------------------
# injector unit behaviour
# ---------------------------------------------------------------------------

def test_same_seed_same_jitter():
    a = _stream(ReorderInjector(seed=42, window_cycles=120))
    b = _stream(ReorderInjector(seed=42, window_cycles=120))
    assert a == b
    assert any(d > 0 for d in a)


def test_different_seeds_diverge():
    a = _stream(ReorderInjector(seed=1, window_cycles=120))
    b = _stream(ReorderInjector(seed=2, window_cycles=120))
    assert a != b


def test_jitter_bounded_by_window():
    window = 23
    delays = _stream(ReorderInjector(seed=9, window_cycles=window), n=256)
    assert all(0 <= d <= window for d in delays)
    assert max(delays) > 0


def test_stream_independent_of_delay_injector_stream():
    # same seed as a DelayInjector must not produce the same stream —
    # the two injectors hash distinct domains so arming both gives
    # independent perturbations
    from repro.network.faults import DelayInjector
    reorder = [ReorderInjector(seed=7, window_cycles=100).extra_delay(
        _msg(MessageKind.GET_S)) for _ in range(1)]
    delay = [DelayInjector(seed=7, max_extra_cycles=100).extra_delay(
        _msg(MessageKind.GET_S)) for _ in range(1)]
    streams_a = _stream(ReorderInjector(seed=7, window_cycles=100), n=32)
    streams_b = _stream(DelayInjector(seed=7, max_extra_cycles=100), n=32)
    assert streams_a != streams_b
    del reorder, delay


def test_kind_filter_blocks_other_kinds():
    inj = ReorderInjector(seed=3, window_cycles=200,
                          kinds={MessageKind.WORD_UPDATE})
    for kind in KINDS:
        if kind is MessageKind.WORD_UPDATE:
            continue
        assert inj.extra_delay(_msg(kind)) == 0


def test_kind_filter_preserves_matched_stream():
    # filtered kinds must not consume sequence numbers (kind-subset
    # shrinking relies on this, exactly as for DelayInjector)
    unfiltered = ReorderInjector(seed=5, window_cycles=200,
                                 kinds={MessageKind.WORD_UPDATE})
    wanted = [unfiltered.extra_delay(_msg(MessageKind.WORD_UPDATE))
              for _ in range(32)]

    interleaved = ReorderInjector(seed=5, window_cycles=200,
                                  kinds={MessageKind.WORD_UPDATE})
    got = []
    for _ in range(32):
        interleaved.extra_delay(_msg(MessageKind.GET_S))
        got.append(interleaved.extra_delay(_msg(MessageKind.WORD_UPDATE)))
        interleaved.extra_delay(_msg(MessageKind.INVALIDATE))
    assert got == wanted


def test_zero_window_rejected():
    # window 0 is the strict-FIFO universe, expressed by not installing
    with pytest.raises(ValueError):
        ReorderInjector(seed=0, window_cycles=0)
    with pytest.raises(ValueError):
        ReorderInjector(seed=0, window_cycles=-4)


def test_order_key_normalizes_to_lines():
    inj = ReorderInjector(seed=0, window_cycles=1, line_bytes=128)
    same_line_a = inj.order_key(_msg(MessageKind.GET_S, addr=256))
    same_line_b = inj.order_key(_msg(MessageKind.DATA_X, addr=300))
    other_line = inj.order_key(_msg(MessageKind.GET_S, addr=512))
    assert same_line_a == same_line_b
    assert same_line_a != other_line


def test_order_key_serializes_addressless_messages():
    inj = ReorderInjector(seed=0, window_cycles=1, line_bytes=128)
    a = inj.order_key(_msg(MessageKind.AM_REQUEST))
    b = inj.order_key(_msg(MessageKind.AM_REPLY))
    assert a == b  # no address => conservative per-pair serialization


# ---------------------------------------------------------------------------
# fabric-level ordering semantics
# ---------------------------------------------------------------------------

def _traced_machine(n_cpus, seed, window, kinds=None):
    """Machine with a reorder injector plus injection/delivery traces."""
    machine = Machine(SystemConfig.table1(n_cpus))
    injector = ReorderInjector.install(machine, seed, window, kinds)
    net = machine.net
    line_bytes = machine.config.line_bytes

    injections, deliveries = [], []

    orig_schedule = net._schedule_delivery

    def traced_schedule(msg, when):
        line = None if msg.addr is None else msg.addr // line_bytes
        injections.append((msg.src_node, msg.dst_node, line, msg.msg_id))
        orig_schedule(msg, when)

    orig_deliver = net._deliver

    def traced_deliver(msg):
        line = None if msg.addr is None else msg.addr // line_bytes
        deliveries.append((msg.src_node, msg.dst_node, line, msg.msg_id))
        orig_deliver(msg)

    net._schedule_delivery = traced_schedule
    net._deliver = traced_deliver
    return machine, injector, injections, deliveries


def _contended_counter(machine, mech, words=4, iters=3):
    cfg = machine.config
    vars_ = [machine.alloc(f"ctr{i}", home_node=0) for i in range(words)]
    # spread targets across lines so cross-line same-pair traffic exists
    assert len({v.addr // cfg.line_bytes for v in vars_}) > 1

    def thread(proc):
        from repro.sync.rmw import fetch_add
        for i in range(iters):
            var = vars_[(proc.cpu_id + i) % words]
            yield from fetch_add(proc, mech, var.addr, 1)

    machine.run_threads(thread, max_events=6_000_000)
    return vars_


def test_same_line_fifo_preserved_and_cross_line_reordered():
    machine, injector, injections, deliveries = _traced_machine(
        8, seed=1234, window=400)
    vars_ = _contended_counter(machine, Mechanism.ATOMIC)

    assert injector.messages_jittered > 0
    # every message injected through the slow path was delivered
    assert sorted(m for *_k, m in injections) == \
        sorted(m for *_k, m in deliveries)

    # per-(src,dst,line) delivery order == injection order
    def per_key_order(events):
        order = {}
        for src, dst, line, mid in events:
            order.setdefault((src, dst, line), []).append(mid)
        return order

    inj_order = per_key_order(injections)
    del_order = per_key_order(deliveries)
    assert inj_order == del_order

    # ...but per-(src,dst) order (ignoring the line) was actually
    # relaxed somewhere: the universe must not be vacuous
    def per_pair_order(events):
        order = {}
        for src, dst, _line, mid in events:
            order.setdefault((src, dst), []).append(mid)
        return order

    assert per_pair_order(injections) != per_pair_order(deliveries)

    # functional outcome untouched by the relaxation
    total = sum(machine.peek(v.addr) for v in vars_)
    assert total == 8 * 3
    machine.check_coherence_invariants()


@pytest.mark.parametrize("mech", [Mechanism.AMO, Mechanism.LLSC,
                                  Mechanism.ACTMSG])
def test_counter_exact_under_reordering(mech):
    for seed in (0, 7, 99):
        machine = Machine(SystemConfig.table1(8))
        ReorderInjector.install(machine, seed, window_cycles=300)
        vars_ = _contended_counter(machine, mech)
        assert sum(machine.peek(v.addr) for v in vars_) == 8 * 3
        machine.check_coherence_invariants()


def test_install_is_deterministic():
    def run(seed):
        machine = Machine(SystemConfig.table1(8))
        ReorderInjector.install(machine, seed, window_cycles=250)
        _contended_counter(machine, Mechanism.ATOMIC)
        return machine.last_completion_time

    assert run(13) == run(13)


def test_not_installed_is_cycle_identical_to_baseline():
    # installing-and-removing nothing: a machine that never had an
    # injector must behave exactly like one constructed fresh — i.e.
    # the attribute default keeps the fast path; this guards against
    # the reorder hook accidentally taxing the default configuration
    def run():
        machine = Machine(SystemConfig.table1(8))
        assert machine.net.reorder_injector is None
        _contended_counter(machine, Mechanism.ATOMIC)
        return machine.last_completion_time, \
            machine.net.stats.total_messages

    assert run() == run()


def test_install_uses_machine_line_size():
    machine = Machine(SystemConfig.table1(4))
    inj = ReorderInjector.install(machine, seed=0, window_cycles=10)
    assert inj.line_bytes == machine.config.line_bytes
