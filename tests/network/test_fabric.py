"""Unit tests for the network fabric (latency, delivery, accounting)."""

import pytest

from repro.config.parameters import NetworkConfig
from repro.network.fabric import Network
from repro.network.message import Message, MessageKind
from repro.sim.kernel import Simulator
from repro.sim.primitives import Signal


def make_net(n_nodes=4):
    sim = Simulator()
    net = Network(sim, n_nodes)
    return sim, net


def test_latency_local_vs_remote():
    sim, net = make_net(16)
    cfg = net.config
    assert net.latency(3, 3) == cfg.local_latency_cycles
    assert net.latency(0, 1) == 2 * cfg.hop_latency_cycles
    assert net.latency(0, 15) == 4 * cfg.hop_latency_cycles


def test_request_delivered_to_attached_handler():
    sim, net = make_net()
    seen = []
    net.attach(2, lambda msg: seen.append((sim.now, msg.addr)))
    net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=2,
                     addr=0xabc))
    sim.run()
    assert seen == [(200, 0xabc)]


def test_reply_fires_signal_directly():
    sim, net = make_net()
    sig = Signal()
    net.send(Message(kind=MessageKind.DATA_S, src_node=1, dst_node=0,
                     addr=0x10, reply_to=sig, payload={"w": 1}))
    sim.run()
    assert sig.fired
    assert sig.value.payload == {"w": 1}


def test_missing_handler_raises():
    sim, net = make_net()
    net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=3))
    with pytest.raises(RuntimeError, match="no handler"):
        sim.run()


def test_reply_helper_routes_back_with_signal():
    sim, net = make_net()
    sig = Signal()
    request = Message(kind=MessageKind.GET_S, src_node=0, dst_node=2,
                      addr=0x40, reply_to=sig, requester=5)
    net.attach(2, lambda msg: net.reply(msg, MessageKind.DATA_S,
                                        payload={"x": 9}))
    net.send(request)
    sim.run()
    assert sig.fired
    reply = sig.value
    assert reply.src_node == 2 and reply.dst_node == 0
    assert reply.requester == 5
    assert reply.payload == {"x": 9}


def test_traffic_accounting_remote_vs_local():
    sim, net = make_net()
    net.attach(0, lambda msg: None)
    net.attach(1, lambda msg: None)
    net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=1))
    net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=0))
    sim.run()
    assert net.stats.total_messages == 1          # remote only
    assert net.stats.total_local_messages == 1
    assert net.stats.bytes[MessageKind.GET_S] == 32
    assert net.stats.hop_bytes[MessageKind.GET_S] == 64   # 2 hops x 32B


def test_late_duplicate_reply_dropped():
    sim, net = make_net()
    sig = Signal()
    for _ in range(2):
        net.send(Message(kind=MessageKind.AM_REPLY, src_node=1, dst_node=0,
                         reply_to=sig, value="v"))
    sim.run()        # second delivery must not raise
    assert sig.fired


def test_on_send_hook_sees_hops():
    sim, net = make_net(16)
    hooks = []
    net.on_send = lambda msg, hops: hooks.append(hops)
    net.attach(15, lambda msg: None)
    net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=15))
    sim.run()
    assert hooks == [4]


def test_link_contention_serializes_converging_packets():
    from repro.config.parameters import NetworkConfig
    sim, net = make_net()
    net.config = NetworkConfig(model_link_contention=True,
                               link_bandwidth_bytes_per_cycle=1.0)
    arrivals = []
    net.attach(1, lambda msg: arrivals.append(sim.now))
    # 3 same-size packets from node 0 to node 1: uplink serializes them
    for _ in range(3):
        net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=1))
    sim.run()
    assert len(arrivals) == 3
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert all(g >= 32 for g in gaps)         # 32B at 1 B/cycle
    assert net.link_busy_cycles == 3 * 2 * 32


def test_link_contention_off_by_default_delivers_in_parallel():
    sim, net = make_net()
    arrivals = []
    net.attach(1, lambda msg: arrivals.append(sim.now))
    for _ in range(3):
        net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=1))
    sim.run()
    assert arrivals == [200, 200, 200]


def test_link_contention_local_messages_unaffected():
    from repro.config.parameters import NetworkConfig
    sim, net = make_net()
    net.config = NetworkConfig(model_link_contention=True)
    arrivals = []
    net.attach(0, lambda msg: arrivals.append(sim.now))
    net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=0))
    sim.run()
    assert arrivals == [net.config.local_latency_cycles]


def test_router_contention_serializes_at_shared_links():
    """Two flows converging on one destination serialize at its
    node-down link even though their sources differ."""
    from repro.config.parameters import NetworkConfig
    sim, net = make_net(16)
    net.config = NetworkConfig(model_router_contention=True,
                               link_bandwidth_bytes_per_cycle=1.0)
    arrivals = []
    net.attach(8, lambda msg: arrivals.append(sim.now))
    net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=8))
    net.send(Message(kind=MessageKind.GET_S, src_node=1, dst_node=8))
    sim.run()
    assert len(arrivals) == 2
    assert arrivals[1] - arrivals[0] >= 32    # serialized at the funnel


def test_router_contention_disjoint_paths_parallel():
    from repro.config.parameters import NetworkConfig
    sim, net = make_net(16)
    net.config = NetworkConfig(model_router_contention=True,
                               link_bandwidth_bytes_per_cycle=1.0)
    arrivals = []
    net.attach(1, lambda msg: arrivals.append(("a", sim.now)))
    net.attach(3, lambda msg: arrivals.append(("b", sim.now)))
    # 0->1 and 2->3 share no directed link (same leaf router, distinct
    # endpoint links)
    net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=1))
    net.send(Message(kind=MessageKind.GET_S, src_node=2, dst_node=3))
    sim.run()
    times = {tag: t for tag, t in arrivals}
    assert times["a"] == times["b"]


def test_router_contention_latency_floor_matches_hops():
    """An uncontended packet pays hops*hop_latency + serialization."""
    from repro.config.parameters import NetworkConfig
    sim, net = make_net(128)
    net.config = NetworkConfig(model_router_contention=True,
                               link_bandwidth_bytes_per_cycle=32.0)
    arrivals = []
    net.attach(127, lambda msg: arrivals.append(sim.now))
    net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=127))
    sim.run()
    hops = net.topology.hops(0, 127)
    assert arrivals[0] == hops * 100 + hops * 1   # 32B / 32Bpc = 1cy/link
