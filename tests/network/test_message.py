"""Unit tests for message taxonomy and sizing."""

from repro.network.message import Message, MessageKind


def test_control_packet_is_minimum_size():
    msg = Message(kind=MessageKind.GET_S, src_node=0, dst_node=1, addr=0x100)
    assert msg.size_bytes == Message.MIN_PACKET == 32


def test_line_carrier_adds_line():
    msg = Message(kind=MessageKind.DATA_S, src_node=1, dst_node=0, addr=0x100)
    assert msg.size_bytes == 32 + 128


def test_word_carrier_adds_word():
    msg = Message(kind=MessageKind.WORD_UPDATE, src_node=1, dst_node=0,
                  addr=0x100, value=7)
    assert msg.size_bytes == 32 + 8


def test_explicit_size_respected():
    msg = Message(kind=MessageKind.GET_S, src_node=0, dst_node=1,
                  size_bytes=64)
    assert msg.size_bytes == 64


def test_kind_classification_consistency():
    for kind in MessageKind:
        # nothing is both request and reply
        assert not (kind.is_request and kind.is_reply), kind
    # the Figure 1 arrow classes
    assert MessageKind.GET_X.is_request
    assert MessageKind.INTERVENTION.is_intervention
    assert MessageKind.INVALIDATE.is_intervention
    assert MessageKind.DATA_X.is_reply
    assert MessageKind.INV_ACK.is_reply
    assert MessageKind.AMO_REQUEST.is_request
    assert MessageKind.AMO_REPLY.is_reply


def test_message_ids_unique():
    msgs = [Message(kind=MessageKind.GET_S, src_node=0, dst_node=1)
            for _ in range(10)]
    ids = [m.msg_id for m in msgs]
    assert len(set(ids)) == 10
    assert ids == sorted(ids)
