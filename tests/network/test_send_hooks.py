"""Multi-subscriber send hooks: tracer, profiler and metrics compose.

Regression for the single-slot ``net.on_send`` attribute the seed code
used: attaching a second observer silently replaced the first, so the
attach *order* of tracer / sharing profiler / metrics decided which one
saw traffic.  ``subscribe_send`` keeps a hook list; the legacy
``on_send`` property remains for existing callers and coexists with
subscribers.
"""

import pytest

from repro.network.fabric import Network
from repro.network.message import Message, MessageKind
from repro.obs import MachineMetrics
from repro.profiler import SharingProfiler
from repro.sim.kernel import Simulator
from repro.trace import TraceRecorder


def make_net(n_nodes=4):
    sim = Simulator()
    net = Network(sim, n_nodes)
    net.attach(1, lambda msg: None)
    return sim, net


def ping(sim, net):
    net.send(Message(kind=MessageKind.GET_S, src_node=0, dst_node=1))
    sim.run()


def test_all_subscribers_see_every_send():
    sim, net = make_net()
    seen_a, seen_b, seen_c = [], [], []
    net.subscribe_send(lambda msg, hops: seen_a.append(hops))
    net.subscribe_send(lambda msg, hops: seen_b.append(hops))
    net.subscribe_send(lambda msg, hops: seen_c.append(hops))
    ping(sim, net)
    assert seen_a == seen_b == seen_c == [2]


def test_duplicate_subscribe_is_idempotent():
    sim, net = make_net()
    seen = []

    def hook(msg, hops):
        seen.append(hops)

    net.subscribe_send(hook)
    net.subscribe_send(hook)
    ping(sim, net)
    assert seen == [2]


def test_unsubscribe_removes_only_that_hook():
    sim, net = make_net()
    kept, dropped = [], []

    def keeper(msg, hops):
        kept.append(hops)

    def goner(msg, hops):
        dropped.append(hops)

    net.subscribe_send(keeper)
    net.subscribe_send(goner)
    net.unsubscribe_send(goner)
    net.unsubscribe_send(goner)          # second removal is a no-op
    ping(sim, net)
    assert kept == [2] and dropped == []


def test_legacy_on_send_coexists_with_subscribers():
    sim, net = make_net()
    via_property, via_subscribe = [], []
    net.subscribe_send(lambda msg, hops: via_subscribe.append(hops))
    net.on_send = lambda msg, hops: via_property.append(hops)
    ping(sim, net)
    assert via_property == [2] and via_subscribe == [2]


def test_legacy_reassignment_replaces_only_its_own_hook():
    sim, net = make_net()
    first, second, other = [], [], []
    net.subscribe_send(lambda msg, hops: other.append(hops))
    net.on_send = lambda msg, hops: first.append(hops)
    net.on_send = lambda msg, hops: second.append(hops)
    ping(sim, net)
    assert first == [] and second == [2] and other == [2]
    net.on_send = None                    # clears the legacy slot only
    ping(sim, net)
    assert second == [2] and other == [2, 2]


@pytest.mark.parametrize("order", ["tracer-first", "metrics-first"])
def test_tracer_profiler_metrics_compose_in_any_order(machine8, order):
    """The original bug: whichever observer attached last won."""
    if order == "tracer-first":
        tracer = TraceRecorder.attach(machine8)
        profiler = SharingProfiler.attach(machine8)
        obs = MachineMetrics.attach(machine8)
    else:
        obs = MachineMetrics.attach(machine8)
        profiler = SharingProfiler.attach(machine8)
        tracer = TraceRecorder.attach(machine8)
    var = machine8.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.load(var.addr)
        yield from proc.amo_inc(var.addr)

    machine8.run_threads(thread)
    assert tracer.instants                         # tracer saw messages
    assert obs.msg_hops.count > 0                  # metrics saw messages
    assert profiler.lines_profiled > 0             # profiler saw messages
