"""Unit tests for DelayInjector: kind filtering and seed determinism.

The schedule fuzzer (tools/fuzz_schedules.py) leans on two properties
beyond what the property-level tests in tests/property cover: the delay
*stream* for a seed is exactly reproducible message-by-message (so a
shrunk reproducer replays the found schedule), and restricting ``kinds``
must not perturb the delays of the kinds that remain (so kind-subset
shrinking isolates the kinds that matter instead of reseeding the rest).
"""

import pytest

from repro.network.faults import DelayInjector
from repro.network.message import Message, MessageKind


def _msg(kind):
    return Message(kind=kind, src_node=0, dst_node=1)


KINDS = [MessageKind.GET_S, MessageKind.DATA_X, MessageKind.WORD_UPDATE,
         MessageKind.INVALIDATE, MessageKind.AMO_REQUEST]


def _stream(injector, n=64):
    return [injector.extra_delay(_msg(KINDS[i % len(KINDS)]))
            for i in range(n)]


def test_same_seed_same_delays():
    a = _stream(DelayInjector(seed=42, max_extra_cycles=300))
    b = _stream(DelayInjector(seed=42, max_extra_cycles=300))
    assert a == b
    assert any(d > 0 for d in a)


def test_different_seeds_diverge():
    a = _stream(DelayInjector(seed=1, max_extra_cycles=300))
    b = _stream(DelayInjector(seed=2, max_extra_cycles=300))
    assert a != b


def test_delays_bounded():
    bound = 37
    delays = _stream(DelayInjector(seed=9, max_extra_cycles=bound), n=256)
    assert all(0 <= d <= bound for d in delays)
    assert max(delays) > 0


def test_kind_filter_blocks_other_kinds():
    inj = DelayInjector(seed=3, max_extra_cycles=200,
                        kinds={MessageKind.WORD_UPDATE})
    for kind in KINDS:
        if kind is MessageKind.WORD_UPDATE:
            continue
        assert inj.extra_delay(_msg(kind)) == 0


def test_kind_filter_preserves_matched_stream():
    # the delays handed to WORD_UPDATEs must be identical whether or not
    # other kinds are filtered out in between — filtered kinds must not
    # consume sequence numbers
    unfiltered = DelayInjector(seed=5, max_extra_cycles=200,
                               kinds={MessageKind.WORD_UPDATE})
    wanted = [unfiltered.extra_delay(_msg(MessageKind.WORD_UPDATE))
              for _ in range(32)]

    interleaved = DelayInjector(seed=5, max_extra_cycles=200,
                                kinds={MessageKind.WORD_UPDATE})
    got = []
    for _ in range(32):
        interleaved.extra_delay(_msg(MessageKind.GET_S))
        got.append(interleaved.extra_delay(_msg(MessageKind.WORD_UPDATE)))
        interleaved.extra_delay(_msg(MessageKind.INVALIDATE))
    assert got == wanted


def test_zero_bound_is_inert():
    inj = DelayInjector(seed=11, max_extra_cycles=0)
    assert _stream(inj, n=32) == [0] * 32


def test_negative_bound_rejected():
    with pytest.raises(ValueError):
        DelayInjector(seed=0, max_extra_cycles=-5)
