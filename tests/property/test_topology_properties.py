"""Property-based tests for the fat-tree topology."""

from hypothesis import given, settings, strategies as st

from repro.network.topology import FatTreeTopology

sizes = st.integers(min_value=1, max_value=200)
radixes = st.integers(min_value=2, max_value=16)


@given(sizes, radixes)
@settings(max_examples=80, deadline=None)
def test_distance_is_a_metric(n, radix):
    t = FatTreeTopology(n, radix=radix)
    probe = range(0, n, max(1, n // 6))
    for a in probe:
        assert t.hops(a, a) == 0
        for b in probe:
            assert t.hops(a, b) == t.hops(b, a)
            assert (t.hops(a, b) == 0) == (a == b)
            for c in probe:
                assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)


@given(sizes, radixes)
@settings(max_examples=80, deadline=None)
def test_hops_bounded_by_levels(n, radix):
    t = FatTreeTopology(n, radix=radix)
    assert t.diameter_hops <= 2 * t.n_levels
    probe = range(0, n, max(1, n // 8))
    for a in probe:
        for b in probe:
            if a != b:
                h = t.hops(a, b)
                assert h % 2 == 0 and h >= 2


@given(sizes, radixes)
@settings(max_examples=80, deadline=None)
def test_same_leaf_router_means_two_hops(n, radix):
    t = FatTreeTopology(n, radix=radix)
    for a in range(0, n, max(1, n // 8)):
        for b in range(0, n, max(1, n // 8)):
            if a != b and a // radix == b // radix:
                assert t.hops(a, b) == 2


@given(sizes, radixes)
@settings(max_examples=60, deadline=None)
def test_router_counts_shrink_by_radix(n, radix):
    t = FatTreeTopology(n, radix=radix)
    counts = t.routers_per_level
    assert counts[-1] == 1
    prev = n
    for c in counts:
        assert c == -(-prev // radix)      # ceil division
        prev = c


@given(st.integers(min_value=2, max_value=120))
@settings(max_examples=40, deadline=None)
def test_lca_level_consistency(n):
    """hops(a,b) == 2*(LCA level + 1) for the radix-8 tree."""
    t = FatTreeTopology(n, radix=8)
    for a in range(0, n, max(1, n // 10)):
        for b in range(0, n, max(1, n // 10)):
            if a == b:
                continue
            lca = next(lvl for lvl in range(t.n_levels)
                       if t.router_of(a, lvl) == t.router_of(b, lvl))
            assert t.hops(a, b) == 2 * (lca + 1)
