"""Property-based end-to-end tests: random workloads, hard invariants.

These drive the full simulator (machine + protocol + sync algorithms)
with hypothesis-chosen shapes and assert the non-negotiables: counter
atomicity, barrier ordering, lock mutual exclusion, FIFO fairness, and
directory/cache coherence — under every mechanism.
"""

from hypothesis import given, settings, strategies as st

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.array_lock import ArrayQueueLock
from repro.sync.barrier import CentralizedBarrier
from repro.sync.rmw import fetch_add
from repro.sync.ticket_lock import TicketLock

mechanisms = st.sampled_from(list(Mechanism))
proc_counts = st.sampled_from([2, 4, 6, 8])


@given(mechanisms, proc_counts,
       st.lists(st.integers(0, 900), min_size=8, max_size=8),
       st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_concurrent_counter_is_atomic(mech, n, delays, reps):
    machine = Machine(SystemConfig.table1(n))
    var = machine.alloc("ctr", home_node=0)

    def thread(proc):
        yield from proc.delay(delays[proc.cpu_id % len(delays)])
        for _ in range(reps):
            yield from fetch_add(proc, mech, var.addr, 1)

    machine.run_threads(thread, max_events=4_000_000)
    assert machine.peek(var.addr) == n * reps
    machine.check_coherence_invariants()


@given(mechanisms, proc_counts,
       st.lists(st.integers(0, 1200), min_size=8, max_size=8))
@settings(max_examples=20, deadline=None)
def test_barrier_ordering_invariant(mech, n, skews):
    machine = Machine(SystemConfig.table1(n))
    barrier = CentralizedBarrier(machine, mech)
    arrivals, departures = {}, {}

    def thread(proc):
        yield from proc.delay(skews[proc.cpu_id % len(skews)])
        arrivals[proc.cpu_id] = proc.sim.now
        yield from barrier.wait(proc)
        departures[proc.cpu_id] = proc.sim.now

    machine.run_threads(thread, max_events=4_000_000)
    assert min(departures.values()) >= max(arrivals.values())
    machine.check_coherence_invariants()


@given(mechanisms, st.sampled_from(["ticket", "array"]), proc_counts,
       st.integers(0, 300), st.integers(1, 2))
@settings(max_examples=20, deadline=None)
def test_lock_mutual_exclusion_and_fifo(mech, lock_type, n, cs, reps):
    machine = Machine(SystemConfig.table1(n))
    lock = (TicketLock if lock_type == "ticket" else ArrayQueueLock)(
        machine, mech)
    occupancy = {"n": 0}
    grants = []

    def thread(proc):
        for _ in range(reps):
            ticket = yield from lock.acquire(proc)
            occupancy["n"] += 1
            assert occupancy["n"] == 1
            grants.append(ticket)
            yield from proc.delay(cs)
            occupancy["n"] -= 1
            yield from lock.release(proc)
            yield from proc.delay(63)

    machine.run_threads(thread, max_events=6_000_000)
    assert grants == sorted(grants), "FIFO violated"
    assert len(grants) == n * reps
    machine.check_coherence_invariants()


@given(mechanisms, st.integers(0, 5000))
@settings(max_examples=20, deadline=None)
def test_two_phase_handoff_reads_latest_value(mech, skew):
    """Producer writes, barrier, consumer reads — release semantics."""
    machine = Machine(SystemConfig.table1(4))
    data = machine.alloc("data", home_node=1)
    barrier = CentralizedBarrier(machine, mech)

    def thread(proc):
        if proc.cpu_id == 0:
            yield from proc.delay(skew)
            yield from proc.store(data.addr, 4242)
        yield from barrier.wait(proc)
        value = yield from proc.load(data.addr)
        return value

    results = machine.run_threads(thread, max_events=4_000_000)
    assert results == [4242] * 4
