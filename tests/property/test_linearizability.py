"""Linearizability of single-word atomics under random schedules.

Hypothesis generates random schedules of atomic adds (each with a
distinct power-of-two delta, so every increment is identifiable in the
final value and in the observed old values) against one shared word.

The guarantee under test is the paper's: atomicity holds for operations
issued through *one* mechanism.  Mixing mechanisms on the same word is
explicitly unsupported — MAOs "do not work in the coherent domain and
rely on software to maintain coherence" (§2), and AMOs give release
consistency (§3.2), so a mixed-mechanism test would assert something the
hardware never promises (see
``test_mixed_mechanisms_on_one_word_is_a_software_bug`` below, which
documents the hazard actually manifesting).
"""

from hypothesis import given, settings, strategies as st

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.rmw import fetch_add

RMW_MECHS = [Mechanism.LLSC, Mechanism.ATOMIC, Mechanism.MAO,
             Mechanism.AMO, Mechanism.ACTMSG]


@given(st.sampled_from(RMW_MECHS),
       st.lists(st.integers(0, 2000), min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_atomic_adds_linearize(mech, delays):
    """Olds must chain: each equals the sum of the deltas before it."""
    n_cpus = 8
    machine = Machine(SystemConfig.table1(n_cpus))
    var = machine.alloc("word", home_node=0)
    observed = []

    def thread(proc):
        for idx, delay in enumerate(delays):
            if idx % n_cpus != proc.cpu_id:
                continue
            yield from proc.delay(delay)
            delta = 1 << idx
            old = yield from fetch_add(proc, mech, var.addr, delta)
            observed.append((delta, old))

    machine.run_threads(thread, max_events=6_000_000)
    total = sum(1 << i for i in range(len(delays)))
    assert machine.peek(var.addr) == total
    observed.sort(key=lambda t: t[1])
    running = 0
    remaining = {delta for delta, _ in observed}
    for delta, old in observed:
        assert old == running, (
            f"old {old:#x} breaks the chain (expected {running:#x})")
        running += delta
        remaining.discard(delta)
    assert not remaining
    machine.check_coherence_invariants()


@given(st.sampled_from([Mechanism.LLSC, Mechanism.ATOMIC,
                        Mechanism.ACTMSG]),
       st.integers(1, 6), st.integers(0, 1500))
@settings(max_examples=25, deadline=None)
def test_coherent_loads_monotone_and_phantom_free(mech, n_adders,
                                                  reader_delay):
    """For *coherent* mechanisms a concurrent reader sees only subset
    sums of the applied deltas, in nondecreasing order.

    (AMO is excluded by design: its §3.2 release consistency allows a
    plain load to read the stale memory value until the put — so
    monotonicity across the put boundary is not promised.)
    """
    n_cpus = 8
    machine = Machine(SystemConfig.table1(n_cpus))
    var = machine.alloc("word", home_node=1)
    valid = {0}
    for i in range(n_adders):
        valid |= {v + (1 << i) for v in valid}

    def thread(proc):
        if proc.cpu_id == 0:
            yield from proc.delay(reader_delay)
            seen = []
            for _ in range(3):
                value = yield from proc.load(var.addr)
                seen.append(value)
                yield from proc.delay(400)
            return seen
        idx = proc.cpu_id - 1
        if idx < n_adders:
            yield from proc.delay(idx * 137)
            yield from fetch_add(proc, mech, var.addr, 1 << idx)
        return []

    results = machine.run_threads(thread, max_events=6_000_000)
    reader_values = results[0]
    for value in reader_values:
        assert value in valid, f"phantom value {value:#x}"
    assert reader_values == sorted(reader_values)


def test_mixed_mechanisms_on_one_word_is_a_software_bug():
    """Documentation-by-test of the paper's §2 warning: an LL/SC
    increment interleaved with a MAO increment on the same word can lose
    an update, because the MAO value lives only in the AMU cache.  The
    simulator faithfully reproduces the hazard."""
    machine = Machine(SystemConfig.table1(4))
    var = machine.alloc("word", home_node=0)

    def thread(proc):
        if proc.cpu_id == 0:
            yield from proc.mao_rmw(var.addr, "fetchadd", 1)
        else:
            yield from proc.llsc_rmw(var.addr, lambda v: v + 2)

    machine.run_threads(thread, cpus=[0, 2], max_events=2_000_000)
    # one of the two updates may be lost; what must NOT happen is a
    # crash or a value outside the reachable set
    assert machine.peek(var.addr) in (1, 2, 3)
