"""Property-based tests for AMU ops and the AMU cache."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.amu.cache import AmuCache
from repro.amu.ops import OPS, AmoCommand, WORD_MASK

words = st.integers(min_value=0, max_value=2**64 - 1)


@given(words, words)
@settings(max_examples=200, deadline=None)
def test_ops_stay_in_word_range(old, operand):
    for name in ("inc", "fetchadd", "swap", "min", "max", "and", "or",
                 "xor"):
        result = OPS[name].apply(old, operand)
        assert 0 <= result <= WORD_MASK


@given(words, words, words)
@settings(max_examples=200, deadline=None)
def test_cas_semantics(old, expected, new):
    result = OPS["cas"].apply(old, (expected, new))
    if old == expected:
        assert result == new & WORD_MASK
    else:
        assert result == old


@given(words, words)
@settings(max_examples=200, deadline=None)
def test_minmax_bound_by_arguments(old, operand):
    assert OPS["min"].apply(old, operand) == min(old, operand)
    assert OPS["max"].apply(old, operand) == max(old, operand)


@given(st.integers(0, 2**63), st.integers(0, 100), st.booleans())
@settings(max_examples=100, deadline=None)
def test_inc_push_exactly_at_test_value(start, test_offset, use_push):
    cmd = AmoCommand(op="inc", test=start + test_offset,
                     push=True if use_push else None)
    new = OPS["inc"].apply(start, None)
    pushed = cmd.should_push(new)
    if use_push:
        assert pushed
    else:
        assert pushed == (new == start + test_offset)


# ---------------------------------------------------------------------------
# AMU cache vs an OrderedDict LRU reference
# ---------------------------------------------------------------------------

cache_ops = st.lists(
    st.tuples(st.sampled_from(["lookup", "op", "drop"]),
              st.integers(0, 15)), max_size=60)


@given(cache_ops, st.integers(1, 8))
@settings(max_examples=150, deadline=None)
def test_amu_cache_matches_lru_reference(sequence, capacity):
    cache = AmuCache(capacity)
    ref: OrderedDict = OrderedDict()
    base = 0x100000000
    for op, word_no in sequence:
        addr = base + word_no * 8
        if op == "lookup":
            entry = cache.lookup(addr)
            assert (entry is not None) == (addr in ref)
            if addr in ref:
                ref.move_to_end(addr)
        elif op == "drop":
            cache.drop(addr)
            ref.pop(addr, None)
        else:  # "op": fill if absent (evicting LRU), then touch
            if cache.peek(addr) is None:
                if cache.full:
                    victim = cache.victim()
                    ref_victim = next(iter(ref))
                    assert victim.word_addr == ref_victim
                    cache.drop(victim.word_addr)
                    ref.popitem(last=False)
                cache.insert(addr, word_no)
                ref[addr] = word_no
            else:
                cache.lookup(addr)
                ref.move_to_end(addr)
        assert len(cache) == len(ref) <= capacity
    assert {e for e in ref} == \
        {e.word_addr for e in cache._entries.values()}
