"""Property-based tests: the set-associative cache vs. a reference model.

The reference is a per-set LRU list of bounded length; the cache under
test must agree on residency and victim choice for every operation
sequence hypothesis can dream up.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.state import LineState
from repro.config.parameters import CacheConfig

WAYS, SETS, LINE = 2, 4, 128
N_LINES = 16     # address universe: 16 distinct lines -> collisions


def make_cache():
    return SetAssociativeCache(CacheConfig(
        size_bytes=WAYS * SETS * LINE, ways=WAYS, line_bytes=LINE,
        latency_cycles=1))


class RefModel:
    """Per-set LRU reference."""

    def __init__(self):
        self.sets = [OrderedDict() for _ in range(SETS)]

    def _set(self, line_addr):
        return (line_addr // LINE) % SETS

    def lookup(self, line_addr):
        s = self.sets[self._set(line_addr)]
        if line_addr in s:
            s.move_to_end(line_addr)
            return True
        return False

    def install(self, line_addr):
        s = self.sets[self._set(line_addr)]
        victim = None
        if line_addr in s:
            s.move_to_end(line_addr)
            return victim
        if len(s) >= WAYS:
            victim, _ = s.popitem(last=False)
        s[line_addr] = True
        return victim

    def invalidate(self, line_addr):
        self.sets[self._set(line_addr)].pop(line_addr, None)

    def resident(self):
        return {a for s in self.sets for a in s}


ops = st.lists(
    st.tuples(st.sampled_from(["lookup", "install", "invalidate"]),
              st.integers(min_value=0, max_value=N_LINES - 1)),
    max_size=60)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_cache_agrees_with_lru_reference(sequence):
    cache = make_cache()
    ref = RefModel()
    for op, line_no in sequence:
        addr = line_no * LINE
        if op == "lookup":
            got = cache.lookup(addr) is not None
            assert got == ref.lookup(addr)
        elif op == "install":
            _line, victim = cache.install(addr, LineState.SHARED)
            ref_victim = ref.install(addr)
            got_victim = victim.line_addr if victim else None
            assert got_victim == ref_victim
        else:
            cache.invalidate(addr)
            ref.invalidate(addr)
    assert {ln.line_addr for ln in cache.resident_lines()} == ref.resident()


@given(ops)
@settings(max_examples=100, deadline=None)
def test_occupancy_never_exceeds_capacity(sequence):
    cache = make_cache()
    for op, line_no in sequence:
        addr = line_no * LINE
        if op == "install":
            cache.install(addr, LineState.EXCLUSIVE)
        elif op == "invalidate":
            cache.invalidate(addr)
        else:
            cache.lookup(addr)
        assert cache.occupancy() <= WAYS * SETS
        for s in cache._sets.values():   # sets materialize lazily
            assert len(s) <= WAYS


@given(st.lists(st.tuples(st.integers(0, N_LINES - 1),
                          st.integers(0, 15),
                          st.integers(0, 2**64 - 1)), max_size=40))
@settings(max_examples=100, deadline=None)
def test_word_values_preserved_while_resident(writes):
    """The most recent write to each resident word is what reads back."""
    cache = make_cache()
    expected = {}
    for line_no, word_idx, value in writes:
        addr = line_no * LINE + word_idx * 8
        line, victim = cache.install(addr, LineState.EXCLUSIVE)
        if victim is not None:
            for w in list(expected):
                if victim.line_addr <= w < victim.line_addr + LINE:
                    del expected[w]
        line.write_word(addr, value)
        expected[addr - addr % 8] = value
    for word_addr, value in expected.items():
        line = cache.lookup(word_addr)
        assert line is not None
        assert line.read_word(word_addr) == value
