"""Property-based tests for the event kernel primitives."""

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Simulator
from repro.sim.primitives import Resource, Timeout


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
@settings(max_examples=150, deadline=None)
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert all(t == d for t, d in fired)
    assert len(fired) == len(delays)


@given(st.lists(st.integers(0, 100), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_equal_time_callbacks_fifo(offsets):
    sim = Simulator()
    fired = []
    for i, _ in enumerate(offsets):
        sim.schedule(5, fired.append, i)
    sim.run()
    assert fired == list(range(len(offsets)))


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 40)),
                min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_resource_holds_are_disjoint_and_complete(jobs):
    """No two holders overlap; busy time equals the sum of hold times."""
    sim = Simulator()
    res = Resource("r")
    intervals = []

    def worker(arrive, hold):
        yield Timeout(arrive)
        yield res.acquire()
        start = sim.now
        yield Timeout(hold)
        intervals.append((start, sim.now))
        res.release()

    for arrive, hold in jobs:
        sim.spawn(worker(arrive, hold))
    sim.run()
    assert len(intervals) == len(jobs)
    intervals.sort()
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2, "overlapping resource holds"
    assert res.busy_cycles == sum(hold for _, hold in jobs)


@given(st.lists(st.integers(1, 60), min_size=1, max_size=25))
@settings(max_examples=100, deadline=None)
def test_nested_timeouts_accumulate_exactly(segments):
    sim = Simulator()

    def runner():
        for seg in segments:
            yield Timeout(seg)
        return sim.now

    assert sim.run_process(runner()) == sum(segments)
