"""Metamorphic robustness tests: timing perturbation, identical outcomes.

A :class:`~repro.network.faults.DelayInjector` reshuffles delivery times
(preserving per-pair FIFO, the hardware's guarantee).  Across many seeds
— many timing universes — every functional outcome must be identical:
counters exact, mutual exclusion held, barriers ordered, coherence
invariants intact.  Only cycle counts may move.
"""

from hypothesis import given, settings, strategies as st

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.network.faults import DelayInjector
from repro.sync.barrier import CentralizedBarrier
from repro.sync.ticket_lock import TicketLock

MECHS = list(Mechanism)


@given(st.integers(0, 2**31), st.sampled_from(MECHS),
       st.integers(0, 800))
@settings(max_examples=25, deadline=None)
def test_counter_exact_under_timing_perturbation(seed, mech, max_extra):
    machine = Machine(SystemConfig.table1(8))
    injector = DelayInjector.install(machine, seed, max_extra)
    var = machine.alloc("ctr", home_node=0)

    def thread(proc):
        from repro.sync.rmw import fetch_add
        for _ in range(2):
            yield from fetch_add(proc, mech, var.addr, 1)

    machine.run_threads(thread, max_events=6_000_000)
    assert machine.peek(var.addr) == 16
    machine.check_coherence_invariants()
    if max_extra > 0:
        assert injector.messages_delayed > 0


@given(st.integers(0, 2**31), st.sampled_from(MECHS))
@settings(max_examples=15, deadline=None)
def test_barrier_ordering_under_timing_perturbation(seed, mech):
    machine = Machine(SystemConfig.table1(8))
    DelayInjector.install(machine, seed, max_extra_cycles=600)
    barrier = CentralizedBarrier(machine, mech)
    arrivals, departures = {}, {}

    def thread(proc):
        yield from proc.delay((proc.cpu_id * 149) % 900)
        arrivals[proc.cpu_id] = proc.sim.now
        yield from barrier.wait(proc)
        departures[proc.cpu_id] = proc.sim.now

    machine.run_threads(thread, max_events=6_000_000)
    assert min(departures.values()) >= max(arrivals.values())
    machine.check_coherence_invariants()


@given(st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_lock_exclusion_under_timing_perturbation(seed):
    machine = Machine(SystemConfig.table1(8))
    DelayInjector.install(machine, seed, max_extra_cycles=700)
    lock = TicketLock(machine, Mechanism.AMO)
    occupancy = {"n": 0}
    grants = []

    def thread(proc):
        for _ in range(2):
            ticket = yield from lock.acquire(proc)
            occupancy["n"] += 1
            assert occupancy["n"] == 1
            grants.append(ticket)
            yield from proc.delay(40)
            occupancy["n"] -= 1
            yield from lock.release(proc)

    machine.run_threads(thread, max_events=6_000_000)
    assert grants == sorted(grants)
    machine.check_coherence_invariants()


def test_injector_determinism_and_fifo():
    """Same seed => identical runs; FIFO per pair always preserved."""
    def run(seed):
        machine = Machine(SystemConfig.table1(4))
        DelayInjector.install(machine, seed, max_extra_cycles=400)
        var = machine.alloc("v", home_node=1)

        def thread(proc):
            yield from proc.amo_fetchadd(var.addr, 1)
        machine.run_threads(thread)
        return machine.last_completion_time

    assert run(7) == run(7)
    assert run(7) != run(8) or True   # different seeds may coincide


def test_injector_kind_filter():
    from repro.network.message import Message, MessageKind
    inj = DelayInjector(seed=1, max_extra_cycles=100,
                        kinds={MessageKind.WORD_UPDATE})
    get = Message(kind=MessageKind.GET_S, src_node=0, dst_node=1)
    assert inj.extra_delay(get) == 0
    upd = Message(kind=MessageKind.WORD_UPDATE, src_node=0, dst_node=1)
    delays = {inj.extra_delay(Message(kind=MessageKind.WORD_UPDATE,
                                      src_node=0, dst_node=1))
              for _ in range(16)}
    assert any(d > 0 for d in delays)


def test_injector_validation():
    import pytest
    with pytest.raises(ValueError):
        DelayInjector(seed=0, max_extra_cycles=-1)
