"""Tests for the queue-lock workload driver."""

import pytest

from repro.config.mechanism import Mechanism
from repro.sync.rw_lock import UnsupportedMechanismError
from repro.workloads.qlocks import (
    QLOCK_SUPPORT,
    QLOCK_TYPES,
    qlock_supported,
    run_qlock_workload,
)

ALL = list(Mechanism)


@pytest.mark.parametrize("lock_type", QLOCK_TYPES)
def test_driver_runs_and_counts(lock_type):
    r = run_qlock_workload(8, Mechanism.AMO, lock_type,
                           acquisitions_per_cpu=2)
    assert r.lock_type == lock_type
    assert r.acquisitions == 16
    assert r.cycles_per_acquisition > 0
    assert r.traffic.total_bytes > 0
    assert len(r.acquire_latency._samples) == 16


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_mcs_all_mechanisms(mech):
    r = run_qlock_workload(4, mech, "mcs", acquisitions_per_cpu=2)
    assert r.acquisitions == 8


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_cna_all_mechanisms(mech):
    r = run_qlock_workload(8, mech, "cna", acquisitions_per_cpu=2,
                           batch_threshold=2)
    assert r.acquisitions == 16


def test_rw_mao_refused_loudly():
    assert not qlock_supported("rw", Mechanism.MAO)
    with pytest.raises(UnsupportedMechanismError, match="rw"):
        run_qlock_workload(8, Mechanism.MAO, "rw")


def test_support_matrix_shape():
    assert set(QLOCK_SUPPORT) == set(QLOCK_TYPES)
    for lock_type in ("mcs", "cna"):
        assert QLOCK_SUPPORT[lock_type] == frozenset(Mechanism)
    assert QLOCK_SUPPORT["rw"] == frozenset(
        m for m in Mechanism if m is not Mechanism.MAO)


def test_unknown_lock_type_rejected():
    with pytest.raises(ValueError, match="unknown queue lock type"):
        run_qlock_workload(4, Mechanism.AMO, "ticket")


def test_deterministic_across_repeats():
    a = run_qlock_workload(8, Mechanism.LLSC, "cna", acquisitions_per_cpu=2)
    b = run_qlock_workload(8, Mechanism.LLSC, "cna", acquisitions_per_cpu=2)
    assert a.total_cycles == b.total_cycles
    assert a.traffic.total_bytes == b.traffic.total_bytes
    assert a.acquire_latency._samples == b.acquire_latency._samples


def test_warm_start_is_fingerprint_identical():
    from repro.workloads.warm import WarmCache
    cold = run_qlock_workload(8, Mechanism.AMO, "cna",
                              acquisitions_per_cpu=2)
    cache = WarmCache()
    first = run_qlock_workload(8, Mechanism.AMO, "cna",
                               acquisitions_per_cpu=2, warm_cache=cache)
    warm = run_qlock_workload(8, Mechanism.AMO, "cna",
                              acquisitions_per_cpu=2, warm_cache=cache)
    assert first.total_cycles == cold.total_cycles
    assert warm.total_cycles == cold.total_cycles
    assert warm.traffic.total_bytes == cold.traffic.total_bytes
    assert warm.acquire_latency._samples == \
        cold.acquire_latency._samples


def test_metrics_capture():
    r = run_qlock_workload(4, Mechanism.ATOMIC, "mcs",
                           acquisitions_per_cpu=2, metrics=True)
    assert r.metrics is not None
    assert r.metrics["counters"]


def test_history_violation_raises():
    """A lock that grants out of FIFO order must fail the offline check."""
    from repro.workloads import qlocks

    class BargingMcs(qlocks.McsLock):
        # lie about the predecessor linkage: claim an empty queue on
        # every acquire, so recorded pred handles contradict grant order
        def acquire(self, proc):
            handle, pred = yield from super().acquire(proc)
            return handle, (77777 if pred != 0 else pred)

    orig = qlocks.McsLock
    qlocks.McsLock = BargingMcs
    try:
        with pytest.raises(qlocks.QlockHistoryViolation):
            run_qlock_workload(8, Mechanism.ATOMIC, "mcs",
                               acquisitions_per_cpu=2)
    finally:
        qlocks.McsLock = orig


def test_runspec_qlock_roundtrip():
    from repro.runner.spec import RunSpec, execute_spec
    spec = RunSpec.qlock(4, Mechanism.AMO, "mcs", acquisitions_per_cpu=2)
    assert spec.kind == "qlock"
    assert "batch_threshold" not in dict(spec.params)
    record = execute_spec(spec)
    assert record.result.acquisitions == 8
    # canonical key is stable and threshold-free for non-CNA sweeps
    assert "batch_threshold" not in spec.canonical()
    spec_cna = RunSpec.qlock(4, Mechanism.AMO, "cna", batch_threshold=4)
    assert "batch_threshold" in spec_cna.canonical()


def test_runspec_label_mentions_lock_type():
    from repro.runner.spec import RunSpec
    spec = RunSpec.qlock(8, Mechanism.LLSC, "rw")
    assert "rw" in spec.label()
