"""Workload drivers with metrics enabled: snapshots, critical path,
and the no-observer-effect guarantee."""

from repro.config.mechanism import Mechanism
from repro.obs import validate_snapshot
from repro.obs.critical_path import SEGMENTS
from repro.workloads.barrier import run_barrier_workload
from repro.workloads.locks import run_lock_workload


def test_barrier_metrics_off_by_default():
    result = run_barrier_workload(4, Mechanism.LLSC, episodes=2)
    assert result.metrics is None


def test_barrier_metrics_snapshot_is_valid():
    result = run_barrier_workload(4, Mechanism.AMO, episodes=2,
                                  metrics=True)
    snap = result.metrics
    assert snap is not None
    assert validate_snapshot(snap) == []
    assert snap["counters"]["kernel.events_dispatched"] > 0
    assert snap["counters"]["amu.ops_executed"] > 0     # AMO barrier


def test_barrier_critical_path_covers_measured_episodes():
    episodes = 3
    result = run_barrier_workload(8, Mechanism.LLSC, episodes=episodes,
                                  metrics=True)
    cp = result.metrics["critical_path"]
    assert cp["episodes"] == episodes
    assert cp["total_cycles"] > 0
    assert set(cp["segments"]) == set(SEGMENTS)
    assert sum(cp["segments"].values()) == cp["total_cycles"]
    # an LL/SC barrier spends real time beyond pure cpu work
    assert cp["segments"]["coherence"] + cp["segments"]["wait"] > 0


def test_barrier_metrics_do_not_change_results():
    plain = run_barrier_workload(8, Mechanism.LLSC, episodes=2)
    metered = run_barrier_workload(8, Mechanism.LLSC, episodes=2,
                                   metrics=True)
    assert metered.cycles_per_episode == plain.cycles_per_episode
    assert metered.total_cycles == plain.total_cycles


def test_barrier_sampler_series_attached():
    result = run_barrier_workload(4, Mechanism.LLSC, episodes=2,
                                  metrics=True, metrics_interval=500)
    series = result.metrics.get("series")
    assert series and all("t" in s for s in series)


def test_lock_metrics_snapshot_and_critical_path():
    result = run_lock_workload(4, Mechanism.AMO, lock_type="ticket",
                               acquisitions_per_cpu=2, metrics=True)
    snap = result.metrics
    assert snap is not None
    assert validate_snapshot(snap) == []
    cp = snap["critical_path"]
    assert cp["episodes"] > 0
    assert sum(cp["segments"].values()) == cp["total_cycles"]


def test_lock_metrics_do_not_change_results():
    kwargs = dict(lock_type="ticket", acquisitions_per_cpu=2)
    plain = run_lock_workload(4, Mechanism.LLSC, **kwargs)
    metered = run_lock_workload(4, Mechanism.LLSC, metrics=True, **kwargs)
    assert metered.cycles_per_acquisition == \
        plain.cycles_per_acquisition
