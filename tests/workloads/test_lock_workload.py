"""Tests for the lock workload driver."""

import pytest

from repro.config.mechanism import Mechanism
from repro.workloads.locks import run_lock_workload


def test_metrics_consistent():
    r = run_lock_workload(4, Mechanism.AMO, "ticket",
                          acquisitions_per_cpu=2)
    assert r.acquisitions == 8
    assert r.total_cycles > 0
    assert r.cycles_per_acquisition == pytest.approx(r.total_cycles / 8)
    assert r.bytes_per_acquisition > 0


def test_both_lock_types_run():
    for lt in ("ticket", "array"):
        r = run_lock_workload(4, Mechanism.LLSC, lt,
                              acquisitions_per_cpu=1)
        assert r.lock_type == lt


def test_unknown_lock_type_rejected():
    with pytest.raises(ValueError, match="lock type"):
        run_lock_workload(4, Mechanism.LLSC, "queue-of-doom")


def test_traffic_normalization_helper():
    base = run_lock_workload(4, Mechanism.LLSC, "ticket",
                             acquisitions_per_cpu=2)
    amo = run_lock_workload(4, Mechanism.AMO, "ticket",
                            acquisitions_per_cpu=2)
    rel = amo.traffic_relative_to(base)
    assert 0 < rel < 1.0, "AMO must use less traffic than LL/SC"


def test_think_and_cs_time_floor():
    # with long critical sections the serial bound dominates:
    # total >= acquisitions * cs
    r = run_lock_workload(4, Mechanism.AMO, "ticket",
                          acquisitions_per_cpu=2, cs_cycles=5_000,
                          think_cycles=0)
    assert r.total_cycles >= 8 * 5_000


def test_deterministic_repetition():
    a = run_lock_workload(4, Mechanism.MAO, "array",
                          acquisitions_per_cpu=2)
    b = run_lock_workload(4, Mechanism.MAO, "array",
                          acquisitions_per_cpu=2)
    assert a.total_cycles == b.total_cycles


def test_acquire_latency_distribution_collected():
    r = run_lock_workload(8, Mechanism.AMO, "ticket",
                          acquisitions_per_cpu=2)
    assert len(r.acquire_latency) == 16
    assert r.acquire_latency.p99 >= r.acquire_latency.p50 >= 0


def test_fifo_lock_latency_spread_is_bounded():
    """A FIFO lock's p99/p50 acquire-latency ratio stays moderate —
    tickets are served in order, so nobody starves."""
    r = run_lock_workload(8, Mechanism.AMO, "ticket",
                          acquisitions_per_cpu=3)
    assert r.acquire_latency.maximum <= \
        max(20 * r.acquire_latency.p50, 20_000)
