"""Tests for the barrier workload driver."""

import pytest

from repro.config.mechanism import Mechanism
from repro.workloads.barrier import BarrierResult, run_barrier_workload


def test_result_metrics_consistent():
    r = run_barrier_workload(4, Mechanism.AMO, episodes=3)
    assert r.n_processors == 4
    assert r.episodes == 3
    assert r.total_cycles > 0
    assert r.cycles_per_episode == pytest.approx(r.total_cycles / 3)
    assert r.cycles_per_processor == pytest.approx(
        r.cycles_per_episode / 4)
    assert r.messages_per_episode > 0
    assert r.bytes_per_episode > 0


def test_speedup_over_self_is_one():
    r = run_barrier_workload(4, Mechanism.ATOMIC, episodes=2)
    assert r.speedup_over(r) == pytest.approx(1.0)


def test_warmup_excluded_from_measurement():
    # AMO is contention-deterministic: the cold episode pays the initial
    # fetches, so the warmed measurement must not be slower.
    cold = run_barrier_workload(4, Mechanism.AMO, episodes=1,
                                warmup_episodes=0)
    warm = run_barrier_workload(4, Mechanism.AMO, episodes=1,
                                warmup_episodes=1)
    assert warm.cycles_per_episode <= cold.cycles_per_episode * 1.05


def test_tree_configuration_recorded():
    r = run_barrier_workload(16, Mechanism.MAO, episodes=2,
                             tree_branching=4)
    assert r.tree_branching == 4


def test_deterministic_repetition():
    a = run_barrier_workload(8, Mechanism.AMO, episodes=2)
    b = run_barrier_workload(8, Mechanism.AMO, episodes=2)
    assert a.total_cycles == b.total_cycles
    assert a.traffic.total_messages == b.traffic.total_messages


def test_config_processor_count_override():
    # passing a config whose n_processors disagrees gets reconciled
    from repro.config.parameters import SystemConfig
    r = run_barrier_workload(8, Mechanism.AMO, episodes=1,
                             config=SystemConfig.table1(4))
    assert r.n_processors == 8
