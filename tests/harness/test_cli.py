"""Tests for the repro-experiments CLI."""

import pytest

from repro.harness.cli import main


def test_fig1_exits_zero(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "E7/fig1" in out
    assert "PASS" in out


def test_table2_with_custom_sizes(capsys):
    rc = main(["table2", "--cpus", "4", "8", "--episodes", "1"])
    out = capsys.readouterr().out
    assert "E1/table2" in out
    assert "Paper Table 2" in out
    assert rc in (0, 1)      # shape checks at tiny sizes may be partial


def test_markdown_flag(capsys):
    main(["fig1", "--markdown"])
    out = capsys.readouterr().out
    assert "|" in out and "---:" in out


def test_amo_model_experiment(capsys):
    rc = main(["amo-model", "--cpus", "4", "8", "16", "--episodes", "1"])
    out = capsys.readouterr().out
    assert "t_o" in out
    assert rc == 0


def test_bad_experiment_name_rejected():
    with pytest.raises(SystemExit):
        main(["tablezilla"])


def test_json_export(tmp_path, capsys):
    import json
    out = tmp_path / "results.json"
    main(["fig1", "--json", str(out)])
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload[0]["experiment"] == "E7/fig1"
    assert payload[0]["checks"][0]["passed"] is True
    assert payload[0]["rows"][1][1] == 6       # AMO: six messages


def test_amo_tree_experiment_via_cli(capsys):
    rc = main(["amo-tree", "--cpus", "16", "--episodes", "1"])
    out = capsys.readouterr().out
    assert "amo-tree" in out.lower() or "AMO combining-tree" in out
    assert rc == 0
