"""Tests for the repro-experiments CLI."""

import pytest

from repro.harness.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """The CLI caches results by default; keep tests off the user cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))


def test_fig1_exits_zero(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "E7/fig1" in out
    assert "PASS" in out


def test_table2_with_custom_sizes(capsys):
    rc = main(["table2", "--cpus", "4", "8", "--episodes", "1"])
    out = capsys.readouterr().out
    assert "E1/table2" in out
    assert "Paper Table 2" in out
    assert rc in (0, 1)      # shape checks at tiny sizes may be partial


def test_markdown_flag(capsys):
    main(["fig1", "--markdown"])
    out = capsys.readouterr().out
    assert "|" in out and "---:" in out


def test_amo_model_experiment(capsys):
    rc = main(["amo-model", "--cpus", "4", "8", "16", "--episodes", "1"])
    out = capsys.readouterr().out
    assert "t_o" in out
    assert rc == 0


def test_bad_experiment_name_rejected():
    with pytest.raises(SystemExit):
        main(["tablezilla"])


def test_json_export(tmp_path, capsys):
    import json
    out = tmp_path / "results.json"
    main(["fig1", "--json", str(out)])
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload[0]["experiment"] == "E7/fig1"
    assert payload[0]["checks"][0]["passed"] is True
    assert payload[0]["rows"][1][1] == 6       # AMO: six messages


def test_amo_tree_experiment_via_cli(capsys):
    rc = main(["amo-tree", "--cpus", "16", "--episodes", "1"])
    out = capsys.readouterr().out
    assert "amo-tree" in out.lower() or "AMO combining-tree" in out
    assert rc == 0


def test_warm_cache_second_invocation_skips_all_simulation(capsys):
    args = ["table2", "--cpus", "4", "--episodes", "1"]
    main(args)
    first = capsys.readouterr()
    assert "0 cache hits" in first.err
    main(args)
    second = capsys.readouterr()
    assert "5 cache hits, 0 executed" in second.err
    # cached tables are byte-identical to freshly computed ones
    assert first.out == second.out


def test_no_cache_flag_disables_caching(capsys):
    args = ["table2", "--cpus", "4", "--episodes", "1", "--no-cache"]
    main(args)
    capsys.readouterr()
    main(args)
    err = capsys.readouterr().err
    assert "0 cache hits, 5 executed" in err


def test_parallel_jobs_match_serial_output(capsys):
    main(["table2", "--cpus", "4", "8", "--episodes", "1", "--no-cache"])
    serial = capsys.readouterr().out
    main(["table2", "--cpus", "4", "8", "--episodes", "1", "--no-cache",
          "--jobs", "2"])
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_progress_flag_emits_per_point_lines(capsys):
    main(["table2", "--cpus", "4", "--episodes", "1", "--no-cache",
          "--progress"])
    err = capsys.readouterr().err
    assert "[1/5]" in err and "[5/5]" in err
    assert "ev/s" in err


def test_cache_dir_flag_overrides_env(tmp_path, capsys):
    custom = tmp_path / "custom-cache"
    main(["table2", "--cpus", "4", "--episodes", "1",
          "--cache-dir", str(custom)])
    capsys.readouterr()
    assert custom.exists() and any(custom.rglob("*.pkl"))
