"""Tests of the experiment harness at reduced sizes."""

import pytest

from repro.config.mechanism import Mechanism
from repro.harness import experiments as ex
from repro.harness import paper_data


@pytest.fixture(scope="module")
def flat_suite():
    return ex.run_barrier_suite((4, 8, 16), episodes=2)


@pytest.fixture(scope="module")
def tree_suite():
    return ex.run_tree_suite((16,), episodes=2, branchings=(4, 8))


@pytest.fixture(scope="module")
def lock_suite():
    return ex.run_lock_suite((4, 8), acquisitions_per_cpu=2)


def test_table2_structure_and_checks(flat_suite):
    res = ex.experiment_table2(flat_suite)
    assert res.exp_id.endswith("table2")
    assert len(res.table.rows) == 3
    assert res.paper is not None and len(res.paper.rows) == 3
    # at these sizes the core ordering checks must hold
    by_name = {c.name: c for c in res.checks}
    assert by_name["AMO speedup grows monotonically with P"].passed
    text = res.format()
    assert "Paper Table 2" in text and "Shape checks" in text


def test_fig5_structure(flat_suite):
    res = ex.experiment_fig5(flat_suite)
    assert len(res.table.columns) == 6      # CPUs + 5 mechanisms
    assert any("AMO" in c.name for c in res.checks)


def test_amo_model_fit(flat_suite):
    res = ex.experiment_amo_model(flat_suite)
    values = dict(zip([r[0] for r in res.table.rows],
                      [r[1] for r in res.table.rows]))
    assert values["R^2 of linear fit"] > 0.9


def test_table3_and_fig6(tree_suite, flat_suite):
    flat16 = {k: v for k, v in flat_suite.items() if k[0] == 16}
    res3 = ex.experiment_table3(tree_suite, flat16)
    assert len(res3.table.rows) == 1
    amo_tree_col = res3.table.columns.index("AMO+tree")
    amo_col = res3.table.columns.index("AMO")
    row = res3.table.rows[0]
    assert row[amo_col] > row[amo_tree_col]   # flat AMO beats AMO+tree
    res6 = ex.experiment_fig6(tree_suite)
    assert len(res6.table.rows) == 1


def test_table4_structure(lock_suite):
    res = ex.experiment_table4(lock_suite)
    assert len(res.table.rows) == 2
    assert len(res.table.columns) == 11     # CPUs + 5 mech x 2 locks
    by_name = {c.name: c for c in res.checks}
    assert by_name["AMO lifts both lock algorithms at every size"].passed


def test_fig7_normalization(lock_suite):
    res = ex.experiment_fig7(lock_suite, cpu_counts=(4, 8))
    llsc_col = res.table.columns.index("LL/SC")
    for row in res.table.rows:
        assert row[llsc_col] == pytest.approx(1.0)


def test_fig1_exact_counts():
    res = ex.experiment_fig1()
    assert res.all_passed, [str(c) for c in res.checks]


def test_paper_data_integrity():
    # Table 2: the paper's own published values, sanity-checked
    assert paper_data.PAPER_TABLE2[256][Mechanism.AMO] == 61.94
    assert paper_data.PAPER_TABLE4[(256, Mechanism.AMO, "ticket")] == 10.36
    assert paper_data.PAPER_TABLE3[256]["AMO+tree"] == 22.62
    assert set(paper_data.TABLE2_CPUS) == {4, 8, 16, 32, 64, 128, 256}
    assert paper_data.PAPER_FIG1 == {"conventional": 18, "amo": 6}


def test_check_formatting():
    c = ex.Check("demo", True, "detail")
    assert "PASS" in str(c) and "detail" in str(c)
    c2 = ex.Check("demo", False)
    assert "FAIL" in str(c2)


def test_experiment_markdown_rendering(flat_suite):
    res = ex.experiment_table2(flat_suite)
    md = res.format(markdown=True)
    assert "|" in md and "---:" in md


def test_amo_tree_crossover_experiment():
    res = ex.experiment_amo_tree_crossover((16, 32), episodes=1)
    assert res.all_passed, [str(c) for c in res.checks]
    ratios = [row[-1] for row in res.table.rows]
    assert all(r > 1.0 for r in ratios)


def test_sensitivity_knob_machinery():
    from dataclasses import replace
    from repro.harness.sensitivity import KNOBS, Knob, sweep_amo_speedup
    # a reduced custom knob keeps this test fast
    base_knob = KNOBS["hop_latency"]
    small = Knob(name=base_knob.name, values=(50, 200),
                 apply=base_knob.apply)
    points = sweep_amo_speedup(small, n_processors=8, episodes=1)
    assert [v for v, _s in points] == [50, 200]
    assert all(s > 1.0 for _v, s in points)


def test_sensitivity_report_table():
    from repro.harness.sensitivity import Knob, KNOBS, sensitivity_report
    import repro.harness.sensitivity as sens
    # monkey-light: run just one knob at tiny scale through the report
    table, robust = sensitivity_report(("egress",), n_processors=8,
                                       episodes=1)
    assert len(table.rows) == len(KNOBS["egress"].values)
    assert isinstance(robust, bool)
