"""Tests for the active-message layer: handlers, serialization, retries."""

import pytest

from repro.activemsg.endpoint import HANDLERS, register_handler
from repro.config.parameters import ActiveMessageConfig, SystemConfig
from repro.core.machine import Machine
from repro.network.message import MessageKind


def run(machine, thread, cpus=None):
    return machine.run_threads(thread, cpus=cpus, max_events=2_000_000)


def test_fetchadd_handler_returns_old(machine4):
    var = machine4.alloc("ctr", home_node=0)

    def thread(proc):
        old = yield from proc.am_call(0, "fetchadd", (var.addr, 1))
        return old

    olds = run(machine4, thread)
    assert sorted(olds) == [0, 1, 2, 3]
    assert machine4.peek(var.addr) == 4


def test_handlers_serialize_on_home_processor(machine4):
    var = machine4.alloc("ctr", home_node=0)

    def thread(proc):
        yield from proc.am_call(0, "fetchadd", (var.addr, 1))

    run(machine4, thread)
    ep = machine4.hubs[0].actmsg
    assert ep.invocations == 4
    # serialized: total busy >= 4 invocation overheads
    assert ep.handler_cpu.busy_cycles >= \
        4 * machine4.config.actmsg.invocation_overhead_cycles


def test_fetchadd_notify_releases_spinners(machine8):
    count = machine8.alloc("count", home_node=0)
    flag = machine8.alloc("flag", home_node=0)

    def thread(proc):
        yield from proc.am_call(0, "fetchadd_notify",
                                (count.addr, 1, 8, flag.addr, 1))
        value = yield from proc.spin_until(flag.addr, lambda v: v >= 1)
        return value

    assert run(machine8, thread) == [1] * 8
    assert machine8.peek(count.addr) == 8


def test_read_write_handlers(machine4):
    var = machine4.alloc("v", home_node=1)

    def thread(proc):
        yield from proc.am_call(1, "write", (var.addr, 31))
        value = yield from proc.am_call(1, "read", (var.addr,))
        return value

    assert run(machine4, thread, cpus=[0]) == [31]


def test_unknown_handler_raises(machine4):
    def thread(proc):
        yield from proc.am_call(0, "definitely_not_registered", ())

    with pytest.raises(ValueError, match="unknown active-message handler"):
        run(machine4, thread, cpus=[0])


def test_register_handler_decorator_and_duplicate():
    @register_handler("test_custom_handler")
    def handler(machine, node, args):
        yield from ()
        return args

    assert HANDLERS["test_custom_handler"] is handler
    with pytest.raises(ValueError, match="already"):
        @register_handler("test_custom_handler")
        def other(machine, node, args):
            yield from ()


def test_timeout_causes_retransmission_not_double_execution():
    # Timeout far below the handler invocation cost => guaranteed
    # retransmissions; dedupe must keep the count exact.
    cfg = SystemConfig.table1(4, actmsg=ActiveMessageConfig(
        invocation_overhead_cycles=2_000, handler_body_cycles=40,
        timeout_cycles=600, max_retransmits=16))
    machine = Machine(cfg)
    var = machine.alloc("ctr", home_node=0)

    def thread(proc):
        old = yield from proc.am_call(0, "fetchadd", (var.addr, 1))
        return old

    olds = run(machine, thread)
    assert sorted(olds) == [0, 1, 2, 3]
    assert machine.peek(var.addr) == 4          # executed exactly once each
    assert machine.net.stats.retransmits > 0
    ep = machine.hubs[0].actmsg
    assert ep.duplicates_dropped + ep.replies_resent > 0


def test_retransmission_traffic_is_counted():
    cfg = SystemConfig.table1(4, actmsg=ActiveMessageConfig(
        invocation_overhead_cycles=3_000, timeout_cycles=500,
        max_retransmits=16))
    machine = Machine(cfg)
    var = machine.alloc("ctr", home_node=0)

    def thread(proc):
        yield from proc.am_call(0, "fetchadd", (var.addr, 1))

    run(machine, thread)
    st = machine.net.stats
    am_requests = (st.messages[MessageKind.AM_REQUEST]
                   + st.local_messages[MessageKind.AM_REQUEST])
    assert am_requests > 4     # more requests than logical calls


def test_exhausted_retransmits_raise():
    cfg = SystemConfig.table1(4, actmsg=ActiveMessageConfig(
        invocation_overhead_cycles=10_000_000, timeout_cycles=100,
        max_retransmits=2))
    machine = Machine(cfg)
    var = machine.alloc("ctr", home_node=0)

    def thread(proc):
        yield from proc.am_call(0, "fetchadd", (var.addr, 1))

    with pytest.raises(RuntimeError, match="unanswered"):
        run(machine, thread, cpus=[2])
