"""Unit tests for the benchmark CLI tools (argument validation and the
trajectory-report merge), no simulation involved."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

TOOLS = Path(__file__).parent.parent.parent / "tools"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


bench_scale = _load("bench_scale")
bench_report = _load("bench_report")


# ----------------------------------------------------------------------
# bench_scale --cpus validation
# ----------------------------------------------------------------------
def test_parse_cpus_accepts_powers_of_two():
    assert bench_scale.parse_cpus(["32", "64"]) == [32, 64]
    assert bench_scale.parse_cpus(["32,64,128"]) == [32, 64, 128]
    assert bench_scale.parse_cpus(["32", "64,128", " 256 "]) == \
        [32, 64, 128, 256]
    assert bench_scale.parse_cpus(["2"]) == [2]
    assert bench_scale.parse_cpus(["1024"]) == [1024]


@pytest.mark.parametrize("bad", ["48", "100", "3", "1", "0", "-32"])
def test_parse_cpus_rejects_non_powers_of_two(bad):
    with pytest.raises(SystemExit, match="power of two"):
        bench_scale.parse_cpus([bad])


def test_parse_cpus_rejects_garbage():
    with pytest.raises(SystemExit, match="expected an integer"):
        bench_scale.parse_cpus(["many"])


def test_main_rejects_non_power_of_two_cpus(capsys):
    with pytest.raises(SystemExit, match="power of two"):
        bench_scale.main(["--cpus", "48", "--out", "-"])


# ----------------------------------------------------------------------
# bench_report merge
# ----------------------------------------------------------------------
def _write(path: Path, doc: dict) -> None:
    path.write_text(json.dumps(doc))


def test_build_report_merges_all_sources(tmp_path):
    _write(tmp_path / "BENCH_runner.json", {
        "serial": {"events_per_second": 200000},
        "parallel": {"events_per_second": 100000},
        "cache_cold": {"events_per_second": 150000},
        "cache_warm": {"events_per_second": None},
    })
    _write(tmp_path / "BENCH_obs.json", {
        "off": {"events_per_second": 250000},
        "metrics": {"events_per_second": 240000},
    })
    _write(tmp_path / "BENCH_scale.json", {
        "cells": [
            {"workload": "barrier", "mechanism": "amo", "n_processors": 32,
             "events_per_second": 400000},
            {"workload": "lock", "mechanism": "amo", "n_processors": 32,
             "events_per_second": 100000},
        ],
        "aggregate_events_per_second": {"32": {"events_per_second": 160000}},
        "vs_baseline": {"geomean_speedup": 2.0},
    })
    report = bench_report.build_report(tmp_path, {})
    sources = report["sources"]
    assert all(sources[n]["present"] for n in ("runner", "obs", "scale"))
    # warm cache-mode carries no events/s and must not produce a sample
    assert set(sources["runner"]["samples"]) == \
        {"serial", "parallel", "cache_cold"}
    # geomean of 400k and 100k is 200k
    assert sources["scale"]["geomean_events_per_second"] == 200000
    assert sources["scale"]["vs_baseline"]["geomean_speedup"] == 2.0
    assert report["geomean_events_per_second"] > 0
    assert set(sources["scale"]["samples"]) == \
        {"barrier/amo@32", "lock/amo@32"}


def test_build_report_tolerates_missing_sources(tmp_path):
    _write(tmp_path / "BENCH_obs.json", {
        "off": {"events_per_second": 250000},
    })
    report = bench_report.build_report(tmp_path, {})
    assert report["sources"]["runner"] == {
        "file": str(tmp_path / "BENCH_runner.json"), "present": False}
    assert report["sources"]["obs"]["present"]
    assert report["geomean_events_per_second"] == 250000


def test_build_report_all_missing(tmp_path):
    report = bench_report.build_report(tmp_path, {})
    assert report["geomean_events_per_second"] is None
    assert not any(s["present"] for s in report["sources"].values())


def test_shard_source_excluded_from_overall_geomean(tmp_path):
    _write(tmp_path / "BENCH_obs.json", {
        "off": {"events_per_second": 250000},
    })
    _write(tmp_path / "BENCH_shard.json", {
        "shards": 4,
        "host": {"cores": 1},
        "cells": [
            {"workload": "barrier", "mechanism": "amo", "n_processors": 512,
             "events_per_second": 70000},
        ],
        "aggregate_events_per_second": {"512": {"events_per_second": 70000}},
        "vs_baseline": {"wall_speedup": 0.25},
    })
    report = bench_report.build_report(tmp_path, {})
    shard = report["sources"]["shard"]
    assert shard["present"] and shard["excluded_from_overall"]
    assert shard["shards"] == 4 and shard["host_cores"] == 1
    assert shard["vs_baseline"]["wall_speedup"] == 0.25
    # the host-dependent sharded sample must not drag the headline number
    assert report["geomean_events_per_second"] == 250000


def test_obs_shard_source_extracted_and_excluded(tmp_path):
    _write(tmp_path / "BENCH_obs.json", {
        "off": {"events_per_second": 250000},
        "shards": 2,
        "off_sharded": {"events_per_second": 90000},
        "metrics_sharded": {
            "events_per_second": 85000,
            "shard_telemetry": {"sync_rounds": 14, "windows": 12},
        },
        "metrics_sharded_overhead_pct": 5.6,
    })
    report = bench_report.build_report(tmp_path, {})
    obs_shard = report["sources"]["obs_shard"]
    assert obs_shard["present"] and obs_shard["excluded_from_overall"]
    assert set(obs_shard["samples"]) == {"off_sharded", "metrics_sharded"}
    assert obs_shard["shards"] == 2
    assert obs_shard["metrics_sharded_overhead_pct"] == 5.6
    assert obs_shard["shard_telemetry"]["sync_rounds"] == 14
    # host-dependent sharded throughput stays out of the headline number
    assert report["geomean_events_per_second"] == 250000


def test_obs_shard_source_absent_from_unsharded_capture(tmp_path):
    _write(tmp_path / "BENCH_obs.json", {
        "off": {"events_per_second": 250000},
    })
    report = bench_report.build_report(tmp_path, {})
    obs_shard = report["sources"]["obs_shard"]
    assert obs_shard["present"] and obs_shard["samples"] == {}
    assert obs_shard["geomean_events_per_second"] is None


# ----------------------------------------------------------------------
# bench_scale trajectory regression gate
# ----------------------------------------------------------------------
def _gate_cells(evps):
    return [{"workload": "barrier", "mechanism": "amo", "n_processors": 32,
             "events_per_second": evps[0]},
            {"workload": "lock", "mechanism": "amo", "n_processors": 32,
             "events_per_second": evps[1]}]


def _gate_trajectory(evps):
    return {"sources": {"scale": {"present": True, "samples": {
        "barrier/amo@32": evps[0], "lock/amo@32": evps[1]}}}}


def test_gate_trajectory_passes_within_threshold():
    ok, msg = bench_scale.gate_trajectory(
        _gate_cells([90000, 110000]), _gate_trajectory([100000, 100000]),
        max_regression_pct=25.0)
    assert ok and "geomean" in msg


def test_gate_trajectory_fails_on_regression():
    ok, msg = bench_scale.gate_trajectory(
        _gate_cells([50000, 60000]), _gate_trajectory([100000, 100000]),
        max_regression_pct=25.0)
    assert not ok
    assert "0.75x" in msg and "geomean 0.5" in msg


def test_gate_trajectory_improvement_always_passes():
    ok, _ = bench_scale.gate_trajectory(
        _gate_cells([300000, 300000]), _gate_trajectory([100000, 100000]),
        max_regression_pct=25.0)
    assert ok


def test_gate_trajectory_skips_without_overlap():
    ok, msg = bench_scale.gate_trajectory(
        _gate_cells([50000, 50000]),
        {"sources": {"scale": {"present": True,
                               "samples": {"barrier/amo@512": 1}}}},
        max_regression_pct=25.0)
    assert ok and "skip" in msg.lower()


def test_report_cli_writes_document(tmp_path):
    _write(tmp_path / "BENCH_obs.json", {
        "off": {"events_per_second": 123456},
    })
    out = tmp_path / "BENCH_trajectory.json"
    assert bench_report.main(["--repo", str(tmp_path),
                              "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["benchmark"] == "trajectory"
    assert doc["geomean_events_per_second"] == 123456
