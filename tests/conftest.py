"""Shared fixtures for the test suite."""

import pytest

from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def machine4():
    """Smallest paper configuration: 4 CPUs on 2 nodes."""
    return Machine(SystemConfig.table1(4))


@pytest.fixture
def machine8():
    return Machine(SystemConfig.table1(8))


def run_to_completion(machine, thread_fn, cpus=None, max_events=2_000_000):
    """Run a thread on every CPU and assert clean completion."""
    return machine.run_threads(thread_fn, cpus=cpus, max_events=max_events)
