"""Tests for machine assembly and run helpers."""

import pytest

from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sim.kernel import SimulationError


def test_machine_structure(machine8):
    assert machine8.n_processors == 8
    assert len(machine8.hubs) == 4
    assert [p.cpu_id for p in machine8.cpus] == list(range(8))
    for cpu_id in range(8):
        assert machine8.node_of_cpu(cpu_id) == cpu_id // 2
        proc = machine8.cpus[cpu_id]
        assert proc.node == cpu_id // 2
        assert proc.controller is machine8.hubs[proc.node].controllers[cpu_id]


def test_alloc_places_variables(machine8):
    v = machine8.alloc("x", home_node=3)
    assert v.home_node == 3
    from repro.mem.address import home_of
    assert home_of(v.addr) == 3


def test_poke_peek_round_trip(machine4):
    v = machine4.alloc("x", home_node=1)
    machine4.poke(v.addr, 777)
    assert machine4.peek(v.addr) == 777


def test_peek_sees_dirty_cache_copy(machine4):
    v = machine4.alloc("x", home_node=0)

    def thread(proc):
        yield from proc.store(v.addr, 9)

    machine4.run_threads(thread, cpus=[2])
    # backing is stale, peek must still see 9 via the dirty line
    assert machine4.backing.read_word(v.addr) == 0
    assert machine4.peek(v.addr) == 9


def test_peek_sees_amu_cache_copy(machine4):
    v = machine4.alloc("x", home_node=0)

    def thread(proc):
        yield from proc.amo_fetchadd(v.addr, 3)

    machine4.run_threads(thread, cpus=[1])
    assert machine4.peek(v.addr) == 3


def test_run_threads_returns_in_cpu_order(machine4):
    def thread(proc):
        yield from proc.delay(100 - proc.cpu_id * 10)
        return proc.cpu_id

    assert machine4.run_threads(thread) == [0, 1, 2, 3]


def test_run_threads_detects_deadlock(machine4):
    v = machine4.alloc("flag", home_node=0)

    def thread(proc):
        # spin on a value nobody ever writes
        yield from proc.spin_until(v.addr, lambda val: val == 42)

    with pytest.raises(SimulationError, match="deadlock"):
        machine4.run_threads(thread, cpus=[0])


def test_sequential_run_threads_share_state(machine4):
    v = machine4.alloc("ctr", home_node=0)

    def bump(proc):
        yield from proc.atomic_rmw(v.addr, lambda x: x + 1)

    machine4.run_threads(bump)
    t1 = machine4.last_completion_time
    machine4.run_threads(bump)
    assert machine4.peek(v.addr) == 8
    assert machine4.last_completion_time > t1


def test_coherence_invariant_checker_catches_corruption(machine4):
    v = machine4.alloc("x", home_node=0)

    def thread(proc):
        yield from proc.store(v.addr, 1)

    machine4.run_threads(thread, cpus=[3])
    machine4.check_coherence_invariants()      # sane
    # corrupt: drop the owner's line behind the directory's back
    machine4.cpus[3].controller.l2.invalidate(v.addr)
    with pytest.raises(AssertionError):
        machine4.check_coherence_invariants()


def test_default_config_is_table1_smallest():
    m = Machine()
    assert m.n_processors == 4
    assert m.config.n_nodes == 2


def test_describe_summarizes_configuration(machine8):
    text = machine8.describe()
    assert "8 CPUs on 4 nodes" in text
    assert "radix-8" in text
    assert "8-word cache" in text
