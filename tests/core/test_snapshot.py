"""Snapshot/warm-start tests: restored machines replay exactly.

The contract under test (see :mod:`repro.core.snapshot`): a machine
restored from a checkpoint re-runs the same workload cycle-for-cycle,
event-for-event, and trace-for-trace identically to a freshly built
machine — and the coherence sanitizer finds a restored machine just as
clean as a fresh one.
"""

from __future__ import annotations

import pytest

from repro.check.sanitizer import CoherenceSanitizer
from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.core.snapshot import MachinePool, SnapshotError
from repro.sync.barrier import CentralizedBarrier
from repro.sync.ticket_lock import TicketLock
from repro.trace.recorder import TraceRecorder
from repro.workloads.barrier import run_barrier_workload
from repro.workloads.locks import run_lock_workload
from repro.workloads.warm import WarmCache

MECHS = list(Mechanism)
IDS = [m.value for m in MECHS]


def _barrier_threads(barrier, episodes):
    def thread(proc):
        for _ in range(episodes):
            yield from barrier.wait(proc)
    return thread


def _fingerprint(machine):
    return {
        "cycles": machine.last_completion_time,
        "events": machine.sim.events_dispatched,
        "messages": dict(machine.net.stats.messages),
        "local": dict(machine.net.stats.local_messages),
        "memory_reads": machine.backing.reads,
        "memory_writes": machine.backing.writes,
    }


# ----------------------------------------------------------------------
# round-trip identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mech", MECHS, ids=IDS)
def test_restore_replays_barrier_identically(mech):
    """Pristine-restored runs equal fresh runs for every mechanism."""
    cfg = SystemConfig.table1(32)
    fresh = Machine(cfg)
    barrier = CentralizedBarrier(fresh, mech)
    fresh.run_threads(_barrier_threads(barrier, 3))
    reference = _fingerprint(fresh)
    fresh.check_coherence_invariants()

    machine = Machine(cfg)
    machine.sim.run()  # park AMU dispatchers so the queue is drained
    snap = machine.snapshot()
    for _ in range(2):
        machine.restore(snap)
        barrier = CentralizedBarrier(machine, mech)
        machine.run_threads(_barrier_threads(barrier, 3))
        assert _fingerprint(machine) == reference
        machine.check_coherence_invariants()


@pytest.mark.parametrize("mech", [Mechanism.AMO, Mechanism.LLSC,
                                  Mechanism.MAO],
                         ids=["amo", "llsc", "mao"])
def test_restore_replays_trace_identically(mech):
    """Span/instant traces of a restored replay match the first run."""
    machine = Machine(SystemConfig.table1(32))
    tracer = TraceRecorder.attach(machine, capture_messages=True)
    machine.sim.run()
    snap = machine.snapshot()

    def traced_run():
        barrier = CentralizedBarrier(machine, mech)
        machine.run_threads(_barrier_threads(barrier, 2))
        spans = [(s.track, s.name, s.start, s.end, s.args)
                 for s in tracer.spans]
        instants = [(i.track, i.name, i.time) for i in tracer.instants]
        return spans, instants, _fingerprint(machine)

    first = traced_run()
    tracer.spans.clear()
    tracer.instants.clear()
    machine.restore(snap)
    assert traced_run() == first


@pytest.mark.parametrize("mech", MECHS, ids=IDS)
def test_warm_cache_matches_fresh_driver_runs(mech):
    """Workload drivers give identical results warm and cold."""
    warm = WarmCache()
    for run in (
        lambda wc: run_barrier_workload(32, mech, episodes=2,
                                        warmup_episodes=1, warm_cache=wc),
        lambda wc: run_lock_workload(32, mech, acquisitions_per_cpu=1,
                                     warmup_per_cpu=1, warm_cache=wc),
    ):
        cold = run(None)
        first, replay = run(warm), run(warm)
        for got in (first, replay):
            assert got.total_cycles == cold.total_cycles
            assert got.events_dispatched == cold.events_dispatched
            assert got.traffic.total_messages == cold.traffic.total_messages
            assert got.traffic.total_bytes == cold.traffic.total_bytes
    assert warm.hits == 2 and warm.misses == 2
    assert len(warm.pool) == 1  # barrier and lock share the pooled machine


def test_warm_context_replays_after_other_mechanism_ran():
    """Restoring a context after a *different* workload used the pooled
    machine must still replay exactly.

    Regression: the restore path used to assume every line in the
    checkpoint still had a live directory/meta entry, which holds when a
    machine only moves forward but not when the pool rewound it and a
    different mechanism touched a different set of lines in between.
    """
    warm = WarmCache()
    run_a = lambda wc: run_barrier_workload(  # noqa: E731
        8, Mechanism.LLSC, episodes=2, warmup_episodes=1, warm_cache=wc)
    run_b = lambda wc: run_barrier_workload(  # noqa: E731
        8, Mechanism.AMO, episodes=2, warmup_episodes=1, warm_cache=wc)
    cold = run_a(None)
    first = run_a(warm)       # miss: build + warm + checkpoint
    run_b(warm)               # different mechanism reuses pooled machine
    replay = run_a(warm)      # hit: restore across the other run's state
    for got in (first, replay):
        assert got.total_cycles == cold.total_cycles
        assert got.events_dispatched == cold.events_dispatched
        assert got.traffic.total_messages == cold.traffic.total_messages
    assert warm.hits == 1 and warm.misses == 2


def test_sanitizer_clean_on_restored_machine():
    """Arming the sanitizer on a restored machine reports no violations."""
    cfg = SystemConfig.table1(32)
    machine = Machine(cfg)
    machine.sim.run()
    snap = machine.snapshot()

    barrier = CentralizedBarrier(machine, Mechanism.AMO)
    machine.run_threads(_barrier_threads(barrier, 2))

    machine.restore(snap)
    san = CoherenceSanitizer.attach(machine, mode="raise")
    lock = TicketLock(machine, Mechanism.AMO)

    def thread(proc):
        yield from lock.acquire(proc)
        yield from proc.delay(50)
        yield from lock.release(proc)

    machine.run_threads(thread)
    san.finalize()
    assert san.ok
    san.detach()


# ----------------------------------------------------------------------
# machine pool
# ----------------------------------------------------------------------
def test_pool_memoizes_per_config():
    pool = MachinePool()
    cfg32 = SystemConfig.table1(32)
    m1 = pool.acquire(cfg32)
    m2 = pool.acquire(cfg32)
    assert m1 is m2
    m3 = pool.acquire(SystemConfig.table1(64))
    assert m3 is not m1
    assert len(pool) == 2


def test_pool_acquire_rolls_back_address_space():
    pool = MachinePool()
    cfg = SystemConfig.table1(8)
    machine = pool.acquire(cfg)
    a = machine.alloc("warmtest.a", 0)
    machine = pool.acquire(cfg)
    b = machine.alloc("warmtest.b", 0)
    assert a.addr == b.addr  # same pristine allocation point


# ----------------------------------------------------------------------
# error contract
# ----------------------------------------------------------------------
def test_snapshot_refuses_pending_events():
    machine = Machine(SystemConfig.table1(8))
    # AMU dispatcher start events are still queued right after build
    with pytest.raises(SnapshotError, match="drained"):
        machine.snapshot()


def test_snapshot_refuses_attached_sanitizer():
    machine = Machine(SystemConfig.table1(8))
    machine.sim.run()
    san = CoherenceSanitizer.attach(machine)
    with pytest.raises(SnapshotError, match="sanitizer"):
        machine.snapshot()
    san.detach()
    machine.snapshot()


def test_restore_refuses_foreign_machine():
    cfg = SystemConfig.table1(8)
    machine, other = Machine(cfg), Machine(cfg)
    machine.sim.run()
    snap = machine.snapshot()
    with pytest.raises(ValueError, match="different machine"):
        other.restore(snap)
