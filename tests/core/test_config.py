"""E8: the configuration matches the paper's Table 1, plus validation."""

import dataclasses

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import (
    ActiveMessageConfig, AmuConfig, CacheConfig, DramConfig, HubConfig,
    NetworkConfig, ProcessorConfig, SystemConfig,
)


def test_table1_processor():
    cfg = SystemConfig.table1(4)
    assert cfg.processor.clock_ghz == 2.0          # 2 GHz
    assert cfg.processor.issue_width == 4          # 4-issue
    assert cfg.processor.active_list_entries == 48  # 48-entry active list


def test_table1_caches():
    cfg = SystemConfig.table1(4)
    assert cfg.l1.size_bytes == 32 * 1024          # 32 KB L1D
    assert cfg.l1.ways == 2                        # 2-way
    assert cfg.l1.line_bytes == 32                 # 32 B lines
    assert cfg.l1.latency_cycles == 2              # 2-cycle latency
    assert cfg.l2.size_bytes == 2 * 1024 * 1024    # 2 MB L2
    assert cfg.l2.ways == 4                        # 4-way
    assert cfg.l2.line_bytes == 128                # 128 B lines
    assert cfg.l2.latency_cycles == 10             # 10-cycle latency


def test_table1_memory_system():
    cfg = SystemConfig.table1(4)
    assert cfg.dram.latency_cycles == 60           # 60 processor cycles
    assert cfg.dram.channels == 16                 # 16 DDR channels
    assert cfg.hub.clock_mhz == 500                # 500 MHz hub
    assert cfg.hub.cpu_cycles_per_hub_cycle == 4
    assert cfg.hub.hub_to_cpu(2) == 8


def test_table1_network():
    cfg = SystemConfig.table1(4)
    assert cfg.network.hop_latency_cycles == 100   # 100 cycles/hop
    assert cfg.network.router_radix == 8           # radix-8 fat tree
    assert cfg.network.min_packet_bytes == 32      # 32 B minimum packet


def test_amu_paper_parameters():
    cfg = SystemConfig.table1(4)
    assert cfg.amu.cache_words == 8                # eight-word AMU cache
    assert cfg.amu.op_latency_hub_cycles == 2      # two-cycle op (§3.1)
    assert cfg.amu.cache_enabled


def test_node_structure():
    cfg = SystemConfig.table1(256)
    assert cfg.cpus_per_node == 2                  # two CPUs per node
    assert cfg.n_nodes == 128
    assert cfg.words_per_line == 16


def test_invalid_processor_counts():
    with pytest.raises(ValueError):
        SystemConfig(n_processors=0)
    with pytest.raises(ValueError):
        SystemConfig(n_processors=5)               # not a node multiple


def test_replace_functional_update():
    cfg = SystemConfig.table1(4)
    cfg2 = cfg.replace(n_processors=16)
    assert cfg2.n_processors == 16
    assert cfg.n_processors == 4                   # original untouched
    assert cfg2.l2 == cfg.l2


def test_configs_frozen():
    cfg = SystemConfig.table1(4)
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.n_processors = 8


def test_mechanism_labels_and_parsing():
    assert Mechanism.LLSC.label == "LL/SC"
    assert Mechanism.from_name("LL/SC") is Mechanism.LLSC
    assert Mechanism.from_name("amo") is Mechanism.AMO
    assert Mechanism.from_name("ActMsg") is Mechanism.ACTMSG
    with pytest.raises(ValueError):
        Mechanism.from_name("quantum")


def test_default_subconfigs_constructible():
    # every sub-config must stand alone with sane defaults
    for cls in (ProcessorConfig, DramConfig, HubConfig, NetworkConfig,
                AmuConfig, ActiveMessageConfig):
        cls()
    CacheConfig.l1d_default()
    CacheConfig.l2_default()
