"""Correctness tests for the MCS queue lock under all five mechanisms."""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.mcs_lock import McsLock

ALL = list(Mechanism)


def mcs_workload(machine, lock, iterations=2, cs=60):
    occupancy = {"n": 0}
    grants = []

    def thread(proc):
        for _ in range(iterations):
            yield from lock.acquire(proc)
            occupancy["n"] += 1
            assert occupancy["n"] == 1, "mutual exclusion violated"
            grants.append((proc.cpu_id, proc.sim.now))
            yield from proc.delay(cs)
            occupancy["n"] -= 1
            yield from lock.release(proc)
            yield from proc.delay(111)

    machine.run_threads(thread, max_events=8_000_000)
    return grants


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_mutual_exclusion_and_progress(mech):
    machine = Machine(SystemConfig.table1(8))
    lock = McsLock(machine, mech)
    grants = mcs_workload(machine, lock)
    assert len(grants) == 16
    assert lock.acquisitions == 16
    machine.check_coherence_invariants()


def test_uncontended_fast_path_uses_cas_release(machine4):
    """No successor: release clears the tail with a CAS, no handoff."""
    lock = McsLock(machine4, Mechanism.ATOMIC)

    def thread(proc):
        yield from lock.acquire(proc)
        yield from proc.delay(10)
        yield from lock.release(proc)

    machine4.run_threads(thread, cpus=[2])
    assert machine4.peek(lock.tail.addr) == 0        # tail cleared
    assert lock.holder() is None


def test_handoff_chain_under_contention():
    """Back-to-back waiters: each release hands to exactly one successor."""
    machine = Machine(SystemConfig.table1(8))
    lock = McsLock(machine, Mechanism.AMO)
    order = []

    def thread(proc):
        yield from proc.delay(proc.cpu_id * 2000)  # dominate network skew
        yield from lock.acquire(proc)
        order.append(proc.cpu_id)
        yield from proc.delay(50)
        yield from lock.release(proc)

    machine.run_threads(thread, max_events=4_000_000)
    assert sorted(order) == list(range(8))
    # FIFO by enqueue time: the staggered arrivals queue in cpu order
    assert order == list(range(8))


def test_qnodes_homed_locally():
    """Each CPU's spin flag lives on its own node (local spinning)."""
    machine = Machine(SystemConfig.table1(8))
    lock = McsLock(machine, Mechanism.LLSC)
    for cpu in range(8):
        assert lock._locked[cpu].home_node == machine.node_of_cpu(cpu)
        assert lock._next[cpu].home_node == machine.node_of_cpu(cpu)


def test_release_without_hold_raises(machine4):
    lock = McsLock(machine4, Mechanism.AMO)

    def thread(proc):
        yield from lock.release(proc)

    with pytest.raises(RuntimeError, match="does not hold"):
        machine4.run_threads(thread, cpus=[0])


def test_mcs_via_lock_workload_driver():
    from repro.workloads.locks import run_lock_workload
    r = run_lock_workload(8, Mechanism.AMO, "mcs", acquisitions_per_cpu=2)
    assert r.acquisitions == 16
    assert r.cycles_per_acquisition > 0
