"""Tests for backoff helpers."""

from repro.sync.backoff import exponential_schedule, spin_with_exponential_backoff


def test_schedule_doubles_and_caps():
    assert exponential_schedule(100, 0) == 100
    assert exponential_schedule(100, 1) == 200
    assert exponential_schedule(100, 3) == 800
    assert exponential_schedule(100, 30, cap_cycles=5_000) == 5_000


def test_schedule_zero_base():
    assert exponential_schedule(0, 5) == 0


def test_spin_with_backoff_completes(machine4):
    var = machine4.alloc("flag", home_node=1)

    def waiter(proc):
        value = yield from spin_with_exponential_backoff(
            proc, var.addr, lambda v: v == 3, base_cycles=50)
        return value

    def writer(proc):
        yield from proc.delay(4_000)
        yield from proc.store(var.addr, 3)

    def thread(proc):
        if proc.cpu_id == 0:
            r = yield from waiter(proc)
        else:
            r = yield from writer(proc)
        return r

    results = machine4.run_threads(thread, cpus=[0, 2],
                                   max_events=2_000_000)
    assert results[0] == 3


def test_spin_with_backoff_polls_load_each_time(machine4):
    """Unlike spin_until, the backoff spin issues real loads."""
    var = machine4.alloc("flag", home_node=1)
    machine4.poke(var.addr, 9)

    def thread(proc):
        value = yield from spin_with_exponential_backoff(
            proc, var.addr, lambda v: v == 9)
        return value

    assert machine4.run_threads(thread, cpus=[0]) == [9]
