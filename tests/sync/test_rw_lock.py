"""Correctness tests for the reader-writer ticket lock."""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.rw_lock import RwTicketLock, UnsupportedMechanismError

SUPPORTED = [m for m in Mechanism if m is not Mechanism.MAO]


def rw_workload(machine, lock, iterations=2, cs=50):
    """Even CPUs write, odd CPUs read; records (kind, cpu, t0, t1) spans."""
    state = {"writers": 0, "readers": 0}
    spans = []

    def thread(proc):
        writer = proc.cpu_id % 2 == 0
        for _ in range(iterations):
            if writer:
                yield from lock.acquire_write(proc)
                state["writers"] += 1
                assert state["writers"] == 1 and state["readers"] == 0
                t0 = proc.sim.now
                yield from proc.delay(cs)
                spans.append(("w", proc.cpu_id, t0, proc.sim.now))
                state["writers"] -= 1
                yield from lock.release_write(proc)
            else:
                yield from lock.acquire_read(proc)
                state["readers"] += 1
                assert state["writers"] == 0
                t0 = proc.sim.now
                yield from proc.delay(cs)
                spans.append(("r", proc.cpu_id, t0, proc.sim.now))
                state["readers"] -= 1
                yield from lock.release_read(proc)
            yield from proc.delay(120)

    machine.run_threads(thread, max_events=8_000_000)
    return spans


@pytest.mark.parametrize("mech", SUPPORTED, ids=[m.value for m in SUPPORTED])
def test_exclusion_and_progress(mech):
    machine = Machine(SystemConfig.table1(8))
    lock = RwTicketLock(machine, mech)
    spans = rw_workload(machine, lock)
    assert len(spans) == 16
    assert lock.acquisitions == 16
    # writer spans overlap nothing; reader spans never overlap writers
    for i, (k1, c1, a1, b1) in enumerate(spans):
        for k2, c2, a2, b2 in spans[i + 1:]:
            overlap = a1 < b2 and a2 < b1
            if overlap:
                assert k1 == "r" and k2 == "r", (
                    f"{k1}@cpu{c1} overlaps {k2}@cpu{c2}")
    machine.check_coherence_invariants()


def test_readers_actually_share():
    """Concurrent read attempts overlap (the point of an rw lock)."""
    machine = Machine(SystemConfig.table1(8))
    lock = RwTicketLock(machine, Mechanism.ATOMIC)
    spans = []

    def thread(proc):
        yield from lock.acquire_read(proc)
        t0 = proc.sim.now
        yield from proc.delay(400)
        spans.append((t0, proc.sim.now))
        yield from lock.release_read(proc)

    machine.run_threads(thread, max_events=4_000_000)
    assert len(spans) == 8
    overlaps = sum(1 for i, (a1, b1) in enumerate(spans)
                   for a2, b2 in spans[i + 1:] if a1 < b2 and a2 < b1)
    assert overlaps > 0
    machine.check_coherence_invariants()


def test_ticket_order_is_fair():
    """Grant order follows ticket order (no barging either way)."""
    machine = Machine(SystemConfig.table1(8))
    lock = RwTicketLock(machine, Mechanism.AMO)
    admitted = []

    def thread(proc):
        yield from proc.delay(proc.cpu_id * 3000)  # dominate network skew
        if proc.cpu_id % 2 == 0:
            t = yield from lock.acquire_write(proc)
            admitted.append(t)
            yield from proc.delay(30)
            yield from lock.release_write(proc)
        else:
            t = yield from lock.acquire_read(proc)
            admitted.append(t)
            yield from proc.delay(30)
            yield from lock.release_read(proc)

    machine.run_threads(thread, max_events=4_000_000)
    assert admitted == sorted(admitted)
    machine.check_coherence_invariants()


def test_mao_refused():
    machine = Machine(SystemConfig.table1(4))
    with pytest.raises(UnsupportedMechanismError, match="MAO"):
        RwTicketLock(machine, Mechanism.MAO)


def test_release_without_hold_raises(machine4):
    lock = RwTicketLock(machine4, Mechanism.ATOMIC)

    def wthread(proc):
        yield from lock.release_write(proc)

    with pytest.raises(RuntimeError, match="does not hold"):
        machine4.run_threads(wthread, cpus=[0])

    lock2 = RwTicketLock(machine4, Mechanism.ATOMIC)

    def rthread(proc):
        yield from lock2.release_read(proc)

    with pytest.raises(RuntimeError, match="does not hold"):
        machine4.run_threads(rthread, cpus=[1])


def test_save_load_state_roundtrip(machine4):
    lock = RwTicketLock(machine4, Mechanism.ATOMIC)

    def thread(proc):
        yield from lock.acquire_read(proc)
        yield from lock.release_read(proc)

    machine4.run_threads(thread)
    state = lock.save_state()
    lock.acquisitions = 0
    lock.load_state(state)
    assert lock.acquisitions == 4
    assert lock.holder() is None
