"""Correctness tests for the two-level combining-tree barrier."""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.tree_barrier import CombiningTreeBarrier
from tests.sync.test_barrier import check_barrier_property

ALL = list(Mechanism)


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_tree_barrier_property_holds(mech):
    n, episodes, branching = 16, 2, 4
    machine = Machine(SystemConfig.table1(n))
    barrier = CombiningTreeBarrier(machine, mech, branching=branching)
    arrivals, departures = {}, {}

    def thread(proc):
        for e in range(episodes):
            yield from proc.delay((proc.cpu_id * 311) % 1200)
            arrivals[(e, proc.cpu_id)] = proc.sim.now
            yield from barrier.wait(proc)
            departures[(e, proc.cpu_id)] = proc.sim.now

    machine.run_threads(thread, max_events=5_000_000)
    check_barrier_property(n, episodes, arrivals, departures)
    machine.check_coherence_invariants()


def test_uneven_last_group():
    # 12 CPUs with branching 8 => groups of 8 and 4
    machine = Machine(SystemConfig.table1(12))
    barrier = CombiningTreeBarrier(machine, Mechanism.ATOMIC, branching=8)
    assert barrier.n_groups == 2
    assert barrier.group_size(0) == 8
    assert barrier.group_size(1) == 4

    def thread(proc):
        yield from barrier.wait(proc)
        return True

    assert machine.run_threads(thread, max_events=3_000_000) == [True] * 12


def test_group_variables_distributed_across_nodes():
    machine = Machine(SystemConfig.table1(16))
    barrier = CombiningTreeBarrier(machine, Mechanism.LLSC, branching=4)
    homes = {v.home_node for v in barrier.group_count}
    assert len(homes) > 1, "group counters must not all share one home"


def test_invalid_branching_rejected(machine8):
    with pytest.raises(ValueError):
        CombiningTreeBarrier(machine8, Mechanism.AMO, branching=1)
    with pytest.raises(ValueError, match="single group"):
        CombiningTreeBarrier(machine8, Mechanism.AMO, branching=8)


def test_tree_beats_flat_for_conventional_at_scale():
    """Table 3's premise at a reduced size: LL/SC+tree > flat LL/SC."""
    from repro.workloads.barrier import run_barrier_workload
    flat = run_barrier_workload(32, Mechanism.LLSC, episodes=2)
    tree = run_barrier_workload(32, Mechanism.LLSC, episodes=2,
                                tree_branching=8)
    assert tree.cycles_per_episode < flat.cycles_per_episode


def test_flat_amo_beats_tree_amo():
    """Paper §4.2.2: AMO+tree is *slower* than AMO alone."""
    from repro.workloads.barrier import run_barrier_workload
    flat = run_barrier_workload(32, Mechanism.AMO, episodes=2)
    tree = run_barrier_workload(32, Mechanism.AMO, episodes=2,
                                tree_branching=8)
    assert flat.cycles_per_episode < tree.cycles_per_episode
