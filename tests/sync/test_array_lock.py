"""Correctness tests for Anderson's array-based queueing lock."""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.array_lock import ArrayQueueLock
from tests.sync.test_ticket_lock import lock_workload

ALL = list(Mechanism)


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_mutual_exclusion_and_fifo(mech):
    machine = Machine(SystemConfig.table1(8))
    lock = ArrayQueueLock(machine, mech)
    cs_log, order = lock_workload(machine, lock)
    assert len(cs_log) == 16
    assert order == list(range(16))
    machine.check_coherence_invariants()


@pytest.mark.parametrize("variant", ["classic", "rounds"])
def test_sequencer_wraparound_reuse(variant):
    """More acquisitions than slots: slots are reused correctly."""
    machine = Machine(SystemConfig.table1(4))
    lock = ArrayQueueLock(machine, Mechanism.ATOMIC, n_slots=4,
                          variant=variant)
    _cs, order = lock_workload(machine, lock, iterations=4)
    assert order == list(range(16))           # 4 wraps of the 4 slots


def test_flags_one_line_each(machine4):
    from repro.mem.address import line_of
    lock = ArrayQueueLock(machine4, Mechanism.LLSC)
    lines = {line_of(lock.flags.word_addr(i))
             for i in range(lock.n_slots)}
    assert len(lines) == lock.n_slots


def test_lock_starts_free(machine4):
    lock = ArrayQueueLock(machine4, Mechanism.LLSC)
    assert machine4.peek(lock.flags.word_addr(0)) == 1


def test_release_without_hold_raises(machine4):
    lock = ArrayQueueLock(machine4, Mechanism.AMO)

    def thread(proc):
        yield from lock.release(proc)

    with pytest.raises(RuntimeError, match="does not hold"):
        machine4.run_threads(thread, cpus=[1])


def test_invalid_variant_rejected(machine4):
    with pytest.raises(ValueError, match="variant"):
        ArrayQueueLock(machine4, Mechanism.AMO, variant="bogus")


def test_release_touches_single_waiter():
    """The algorithmic point: an array-lock release invalidates at most
    one spinner, a ticket-lock release invalidates all of them."""
    from repro.network.message import MessageKind
    from repro.sync.ticket_lock import TicketLock

    def invals_per_release(lock_cls):
        machine = Machine(SystemConfig.table1(8))
        lock = lock_cls(machine, Mechanism.LLSC)
        lock_workload(machine, lock, iterations=1)
        st = machine.net.stats
        return (st.messages[MessageKind.INVALIDATE]
                + st.local_messages[MessageKind.INVALIDATE]) / 8.0

    assert invals_per_release(ArrayQueueLock) < \
        invals_per_release(TicketLock)


def test_classic_variant_resets_flag(machine4):
    lock = ArrayQueueLock(machine4, Mechanism.ATOMIC, variant="classic")

    def thread(proc):
        yield from lock.acquire(proc)
        yield from lock.release(proc)

    machine4.run_threads(thread, cpus=[0])
    # slot 0 was reset by the acquire; slot 1 granted by the release
    assert machine4.peek(lock.flags.word_addr(0)) == 0
    assert machine4.peek(lock.flags.word_addr(1)) == 1
