"""Correctness tests for the CNA queue lock under all five mechanisms."""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.cna_lock import CnaLock

ALL = list(Mechanism)


def cna_workload(machine, lock, iterations=2, cs=60, stagger=0):
    occupancy = {"n": 0}
    grants = []

    def thread(proc):
        if stagger:
            yield from proc.delay(proc.cpu_id * stagger)
        for _ in range(iterations):
            yield from lock.acquire(proc)
            occupancy["n"] += 1
            assert occupancy["n"] == 1, "mutual exclusion violated"
            grants.append((proc.cpu_id, proc.sim.now))
            yield from proc.delay(cs)
            occupancy["n"] -= 1
            yield from lock.release(proc)
            yield from proc.delay(111)

    machine.run_threads(thread, max_events=8_000_000)
    return grants


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_mutual_exclusion_and_progress(mech):
    machine = Machine(SystemConfig.table1(8))
    lock = CnaLock(machine, mech, batch_threshold=2)
    grants = cna_workload(machine, lock, iterations=3)
    assert len(grants) == 24
    assert lock.acquisitions == 24
    # queue drained completely: both queues empty, tail cleared
    assert machine.peek(lock.sec_head.addr) == 0
    assert machine.peek(lock.sec_tail.addr) == 0
    assert machine.peek(lock.tail.addr) == 0
    machine.check_coherence_invariants()


def test_numa_batching_reorders_grants():
    """Staggered arrivals from alternating nodes: CNA batches grants by
    node where plain MCS would strictly interleave."""
    machine = Machine(SystemConfig.table1(8))  # 2 cpus/node -> 4 nodes
    lock = CnaLock(machine, Mechanism.ATOMIC, batch_threshold=8)
    grants = cna_workload(machine, lock, iterations=3, cs=40, stagger=2000)
    order = [machine.node_of_cpu(cpu) for cpu, _ in grants]
    # count node switches; MCS FIFO on this staggered arrival pattern
    # would switch nearly every grant — batching must do better
    switches = sum(1 for a, b in zip(order, order[1:]) if a != b)
    assert switches < len(order) - 1
    machine.check_coherence_invariants()


def test_fairness_bound_flushes_secondary():
    """A parked remote waiter is granted within batch_threshold grants."""
    machine = Machine(SystemConfig.table1(8))
    threshold = 2
    lock = CnaLock(machine, Mechanism.AMO, batch_threshold=threshold)
    grants = cna_workload(machine, lock, iterations=4, cs=40, stagger=1500)
    assert len(grants) == 32
    # compute, for every grant, how many later-enqueued CPUs' grants
    # overtook it is hard without enqueue records; instead assert the
    # run-length bound the algorithm promises: no more than `threshold`
    # consecutive grants on one node while another node still waits
    nodes = [machine.node_of_cpu(cpu) for cpu, _ in grants]
    run = 1
    for a, b in zip(nodes, nodes[1:]):
        run = run + 1 if a == b else 1
        # a node with 2 cpus x 4 iterations can legitimately produce an
        # 8-long run at the tail once other nodes are done; only flag
        # runs that exceed both the threshold and one cpu-pair's total
        assert run <= max(threshold + 1, 8)
    machine.check_coherence_invariants()


def test_uncontended_fast_path_clears_tail(machine4):
    lock = CnaLock(machine4, Mechanism.ATOMIC)

    def thread(proc):
        yield from lock.acquire(proc)
        yield from proc.delay(10)
        yield from lock.release(proc)

    machine4.run_threads(thread, cpus=[2])
    assert machine4.peek(lock.tail.addr) == 0
    assert lock.holder() is None
    assert machine4.peek(lock.sec_head.addr) == 0


def test_release_without_hold_raises(machine4):
    lock = CnaLock(machine4, Mechanism.AMO)

    def thread(proc):
        yield from lock.release(proc)

    with pytest.raises(RuntimeError, match="does not hold"):
        machine4.run_threads(thread, cpus=[0])


def test_threshold_validation(machine4):
    with pytest.raises(ValueError):
        CnaLock(machine4, Mechanism.AMO, batch_threshold=0)


def test_save_load_state_roundtrip(machine4):
    # secondary-queue state lives in simulated memory (covered by the
    # machine snapshot); save_state only needs the inherited MCS fields
    lock = CnaLock(machine4, Mechanism.ATOMIC, batch_threshold=3)

    def thread(proc):
        yield from lock.acquire(proc)
        yield from proc.delay(5)
        yield from lock.release(proc)

    machine4.run_threads(thread)
    state = lock.save_state()
    lock.acquisitions = 0
    lock.load_state(state)
    assert lock.acquisitions == 4
    assert lock._attempt == state["attempt"]
