"""Correctness tests for centralized barriers under all five mechanisms.

The fundamental barrier property: no participant leaves episode *k*
before every participant has entered episode *k*.  We verify it with a
zero-sim-cost Python-side phase log.
"""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.barrier import CentralizedBarrier

ALL = list(Mechanism)


def check_barrier_property(n, episodes, arrivals, departures):
    """No departure from episode e before n arrivals in episode e."""
    for e in range(episodes):
        first_departure = min(departures[(e, cpu)] for cpu in range(n))
        last_arrival = max(arrivals[(e, cpu)] for cpu in range(n))
        assert first_departure >= last_arrival, (
            f"episode {e}: departure at {first_departure} before "
            f"last arrival at {last_arrival}")


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_barrier_blocks_until_all_arrive(mech):
    n, episodes = 8, 3
    machine = Machine(SystemConfig.table1(n))
    barrier = CentralizedBarrier(machine, mech)
    arrivals, departures = {}, {}

    def thread(proc):
        for e in range(episodes):
            # skew arrivals so someone is always late
            yield from proc.delay((proc.cpu_id * 211) % 1500)
            arrivals[(e, proc.cpu_id)] = proc.sim.now
            yield from barrier.wait(proc)
            departures[(e, proc.cpu_id)] = proc.sim.now

    machine.run_threads(thread, max_events=3_000_000)
    check_barrier_property(n, episodes, arrivals, departures)
    machine.check_coherence_invariants()


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_barrier_reusable_many_episodes(mech):
    n, episodes = 4, 6
    machine = Machine(SystemConfig.table1(n))
    barrier = CentralizedBarrier(machine, mech)

    def thread(proc):
        for _ in range(episodes):
            yield from barrier.wait(proc)
        return barrier.episodes_completed(proc.cpu_id)

    results = machine.run_threads(thread, max_events=3_000_000)
    assert results == [episodes] * n
    assert machine.peek(barrier.count_var.addr) == n * episodes


def test_naive_conventional_barrier_works_but_costs_more():
    # The spin-variable coding's advantage is a *contended-size* effect
    # (the paper cites a 25% win at 64 CPUs); at small P the extra
    # release store makes it a wash.  Assert at 32 CPUs, where spinner
    # reload storms interfering with increments dominate.
    from repro.workloads.barrier import run_barrier_workload
    naive = run_barrier_workload(32, Mechanism.LLSC, episodes=2,
                                 naive=True)
    optimized = run_barrier_workload(32, Mechanism.LLSC, episodes=2)
    assert optimized.cycles_per_episode < naive.cycles_per_episode


def test_amo_barrier_always_uses_naive_coding(machine4):
    barrier = CentralizedBarrier(machine4, Mechanism.AMO)
    assert barrier.naive is True


def test_subset_of_cpus_barrier(machine8):
    barrier = CentralizedBarrier(machine8, Mechanism.AMO, n_participants=4)

    def thread(proc):
        yield from barrier.wait(proc)
        return True

    results = machine8.run_threads(thread, cpus=[1, 3, 5, 7])
    assert results == [True] * 4


def test_barrier_variables_in_distinct_lines(machine4):
    from repro.mem.address import line_of
    barrier = CentralizedBarrier(machine4, Mechanism.LLSC)
    assert line_of(barrier.count_var.addr) != line_of(barrier.spin_var.addr)


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_barrier_count_exact_after_episode(mech):
    n = 4
    machine = Machine(SystemConfig.table1(n))
    barrier = CentralizedBarrier(machine, mech)

    def thread(proc):
        yield from barrier.wait(proc)

    machine.run_threads(thread, max_events=2_000_000)
    assert machine.peek(barrier.count_var.addr) == n
