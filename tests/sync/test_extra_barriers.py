"""Tests for the extension barriers: dissemination and sense-reversing."""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.dissemination import DisseminationBarrier
from repro.sync.sense_barrier import SenseReversingBarrier
from tests.sync.test_barrier import check_barrier_property

ALL = list(Mechanism)


def drive(machine, barrier, n, episodes):
    arrivals, departures = {}, {}

    def thread(proc):
        for e in range(episodes):
            yield from proc.delay((proc.cpu_id * 173) % 1100)
            arrivals[(e, proc.cpu_id)] = proc.sim.now
            yield from barrier.wait(proc)
            departures[(e, proc.cpu_id)] = proc.sim.now

    machine.run_threads(thread, max_events=6_000_000)
    check_barrier_property(n, episodes, arrivals, departures)
    machine.check_coherence_invariants()


# ---------------------------------------------------------------------------
# dissemination
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_dissemination_barrier_property(mech):
    n = 8
    machine = Machine(SystemConfig.table1(n))
    drive(machine, DisseminationBarrier(machine, mech), n, episodes=3)


def test_dissemination_non_power_of_two():
    n = 6
    machine = Machine(SystemConfig.table1(n))
    barrier = DisseminationBarrier(machine, Mechanism.ATOMIC,
                                   n_participants=n)
    assert barrier.rounds == 3
    drive(machine, barrier, n, episodes=2)


def test_dissemination_partner_structure():
    machine = Machine(SystemConfig.table1(8))
    b = DisseminationBarrier(machine, Mechanism.LLSC)
    assert b.rounds == 3
    assert b.partner_out(0, 0) == 1
    assert b.partner_out(0, 1) == 2
    assert b.partner_out(0, 2) == 4
    assert b.partner_in(0, 0) == 7
    # signalling is a permutation each round
    for rnd in range(b.rounds):
        outs = {b.partner_out(i, rnd) for i in range(8)}
        assert outs == set(range(8))


def test_dissemination_flags_homed_at_waiter():
    machine = Machine(SystemConfig.table1(8))
    b = DisseminationBarrier(machine, Mechanism.LLSC)
    for cpu in range(8):
        for rnd in range(b.rounds):
            assert b._flags[cpu][rnd].home_node == \
                machine.node_of_cpu(cpu)


def test_dissemination_rejects_single_cpu():
    machine = Machine(SystemConfig.table1(4))
    with pytest.raises(ValueError):
        DisseminationBarrier(machine, Mechanism.AMO, n_participants=1)


def test_dissemination_has_no_hot_spot():
    """Message destinations are spread across nodes, not one home."""
    n = 16
    machine = Machine(SystemConfig.table1(n))
    barrier = DisseminationBarrier(machine, Mechanism.ATOMIC)

    def thread(proc):
        yield from barrier.wait(proc)

    machine.run_threads(thread, max_events=6_000_000)
    audits = machine.backing.home_audit()
    assert len(audits) == machine.config.n_nodes  # flags on every node


# ---------------------------------------------------------------------------
# sense-reversing
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_sense_reversing_barrier_property(mech):
    n = 8
    machine = Machine(SystemConfig.table1(n))
    drive(machine, SenseReversingBarrier(machine, mech), n, episodes=4)


def test_sense_count_resets_each_episode():
    n = 4
    machine = Machine(SystemConfig.table1(n))
    barrier = SenseReversingBarrier(machine, Mechanism.ATOMIC)

    def thread(proc):
        for _ in range(3):
            yield from barrier.wait(proc)

    machine.run_threads(thread, max_events=4_000_000)
    assert machine.peek(barrier.count_var.addr) == 0
    assert machine.peek(barrier.sense_var.addr) == 1   # 3 flips: 1,0,1


def test_monotone_coding_beats_sense_reversing_slightly():
    """The sense-reversing reset write is pure overhead vs the monotone
    target coding; per-episode cost must not be lower."""
    from repro.sync.barrier import CentralizedBarrier
    n, episodes = 16, 4

    def run(barrier_cls):
        machine = Machine(SystemConfig.table1(n))
        barrier = barrier_cls(machine, Mechanism.ATOMIC)

        def thread(proc):
            for _ in range(episodes):
                yield from barrier.wait(proc)

        machine.run_threads(thread, max_events=8_000_000)
        return machine.last_completion_time

    sense = run(SenseReversingBarrier)
    monotone = run(CentralizedBarrier)
    assert monotone <= sense * 1.1
