"""Correctness tests for the ticket lock under all five mechanisms."""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.ticket_lock import TicketLock

ALL = list(Mechanism)


def lock_workload(machine, lock, iterations=2, cs=60):
    """Run acquire/CS/release loops; returns (cs_log, grant_order)."""
    occupancy = {"n": 0}
    cs_log = []
    order = []

    def thread(proc):
        for _ in range(iterations):
            ticket = yield from lock.acquire(proc)
            occupancy["n"] += 1
            assert occupancy["n"] == 1, "mutual exclusion violated"
            order.append(ticket)
            cs_log.append((proc.cpu_id, proc.sim.now))
            yield from proc.delay(cs)
            occupancy["n"] -= 1
            yield from lock.release(proc)
            yield from proc.delay(97)

    machine.run_threads(thread, max_events=8_000_000)
    return cs_log, order


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_mutual_exclusion_and_progress(mech):
    machine = Machine(SystemConfig.table1(8))
    lock = TicketLock(machine, mech)
    cs_log, order = lock_workload(machine, lock)
    assert len(cs_log) == 16
    assert lock.acquisitions == 16
    machine.check_coherence_invariants()


@pytest.mark.parametrize("mech", ALL, ids=[m.value for m in ALL])
def test_fifo_grant_order(mech):
    """Tickets are served strictly in issue order."""
    machine = Machine(SystemConfig.table1(8))
    lock = TicketLock(machine, mech)
    _cs, order = lock_workload(machine, lock)
    assert order == sorted(order)
    assert order == list(range(16))


def test_release_without_hold_raises(machine4):
    lock = TicketLock(machine4, Mechanism.ATOMIC)

    def thread(proc):
        yield from lock.release(proc)

    with pytest.raises(RuntimeError, match="does not hold"):
        machine4.run_threads(thread, cpus=[0])


def test_holder_tracking(machine4):
    lock = TicketLock(machine4, Mechanism.AMO)
    seen = []

    def thread(proc):
        yield from lock.acquire(proc)
        seen.append(lock.holder())
        yield from lock.release(proc)

    machine4.run_threads(thread, cpus=[2])
    assert seen == [2]
    assert lock.holder() is None


def test_proportional_backoff_variant_correct():
    machine = Machine(SystemConfig.table1(8))
    lock = TicketLock(machine, Mechanism.LLSC,
                      proportional_backoff_cycles=50)
    cs_log, order = lock_workload(machine, lock)
    assert order == list(range(16))


def test_variables_in_distinct_lines(machine4):
    from repro.mem.address import line_of
    lock = TicketLock(machine4, Mechanism.LLSC)
    assert line_of(lock.next_ticket.addr) != line_of(lock.now_serving.addr)


def test_amo_release_pushes_updates(machine4):
    from repro.network.message import MessageKind
    lock = TicketLock(machine4, Mechanism.AMO)

    def thread(proc):
        yield from lock.acquire(proc)
        yield from proc.delay(50)
        yield from lock.release(proc)

    machine4.run_threads(thread)
    # spinners were woken by word updates, not invalidations
    st = machine4.net.stats
    assert (st.messages[MessageKind.WORD_UPDATE]
            + st.local_messages[MessageKind.WORD_UPDATE]) >= 1
    assert st.messages[MessageKind.INVALIDATE] \
        + st.local_messages[MessageKind.INVALIDATE] == 0
