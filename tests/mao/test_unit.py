"""Tests for conventional memory-side atomic operations."""

from repro.network.message import MessageKind


def run(machine, thread, cpus=None):
    return machine.run_threads(thread, cpus=cpus, max_events=2_000_000)


def test_mao_fetchadd_atomic(machine8):
    var = machine8.alloc("ctr", home_node=0)

    def thread(proc):
        old = yield from proc.mao_rmw(var.addr, "fetchadd", 1)
        return old

    olds = run(machine8, thread)
    assert sorted(olds) == list(range(8))
    assert machine8.peek(var.addr) == 8


def test_mao_never_pushes_updates(machine4):
    var = machine4.alloc("v", home_node=0)

    def loader(proc):
        yield from proc.load(var.addr)        # become a sharer

    run(machine4, loader, cpus=[2])

    def mao_writer(proc):
        yield from proc.mao_rmw(var.addr, "fetchadd", 9)

    run(machine4, mao_writer, cpus=[0])
    # non-coherent: the sharer's cached copy is now stale and NO update
    # or invalidation was sent — software's problem (paper §2)
    assert machine4.net.stats.messages[MessageKind.WORD_UPDATE] == 0
    assert machine4.cpus[2].controller.peek(var.addr) == 0


def test_mao_value_lives_in_amu_cache(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.mao_rmw(var.addr, "fetchadd", 5)
        value = yield from proc.uncached_read(var.addr)
        return value

    # uncached read consults the AMU cache => sees 5 immediately
    assert run(machine4, thread, cpus=[2]) == [5]
    assert machine4.hubs[0].amu.peek(var.addr) == 5


def test_mao_uses_shared_function_unit(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.mao_rmw(var.addr, "fetchadd", 1)

    run(machine4, thread)
    assert machine4.hubs[0].amu.ops_executed == 4


def test_mao_poll_until_costs_remote_round_trips(machine4):
    var = machine4.alloc("v", home_node=1)

    def poller(proc):
        value = yield from proc.mao_port.poll_until(
            proc.controller, var.addr, lambda v: v >= 3,
            backoff_cycles=100)
        return value

    def bumper(proc):
        for _ in range(3):
            yield from proc.delay(400)
            yield from proc.mao_rmw(var.addr, "fetchadd", 1)

    def thread(proc):
        if proc.cpu_id == 0:
            r = yield from poller(proc)
        else:
            r = yield from bumper(proc)
        return r

    results = run(machine4, thread, cpus=[0, 1])
    assert results[0] == 3
    # every poll was an uncached network round trip
    assert machine4.net.stats.messages[MessageKind.UNCACHED_READ] >= 2
