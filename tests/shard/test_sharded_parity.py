"""Sharded execution parity: partitioned runs equal single-process.

The contract: a run partitioned across N worker processes is cycle- and
message-identical to the same run in one process.  ``events_dispatched``
is exempt — it counts host-side kernel events (each shard runs its own
``run_threads`` main, and a multicast fan-out group split across shards
costs one delivery event per shard) — except for the degenerate
one-shard plan, which must match event for event.

CI additionally verifies full golden parity at 32 CPUs on every PR and
at 512 CPUs nightly (``tools/capture_parity.py --verify --shards N``).
"""

import pytest

from repro.config.mechanism import Mechanism
from repro.runner.spec import RunSpec, execute_spec
from repro.shard.session import ShardSessionError, run_sharded
from repro.workloads.barrier import run_barrier_workload
from repro.workloads.locks import run_lock_workload
from repro.workloads.qlocks import run_qlock_workload

BARRIER_KW = dict(n_processors=32, episodes=2, warmup_episodes=1)
LOCK_KW = dict(n_processors=32, acquisitions_per_cpu=2, warmup_per_cpu=1)


def _assert_traffic_equal(got, ref):
    assert got.messages == ref.messages
    assert got.bytes == ref.bytes
    assert got.hop_bytes == ref.hop_bytes
    assert got.local_messages == ref.local_messages
    assert got.retransmits == ref.retransmits


def test_degenerate_single_shard_is_event_identical():
    """A one-shard plan has no windows and no cross traffic: the worker
    must replay the exact single-process kernel schedule, down to the
    host-side event count."""
    kwargs = dict(BARRIER_KW, mechanism=Mechanism.AMO)
    ref = run_barrier_workload(**kwargs)
    got = run_sharded("barrier", kwargs, shards=1)
    assert got.total_cycles == ref.total_cycles
    assert got.events_dispatched == ref.events_dispatched
    _assert_traffic_equal(got.traffic, ref.traffic)


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("mechanism", [Mechanism.AMO, Mechanism.LLSC])
def test_sharded_barrier_matches_single_process(mechanism, shards):
    kwargs = dict(BARRIER_KW, mechanism=mechanism)
    ref = run_barrier_workload(**kwargs)
    got = run_sharded("barrier", kwargs, shards=shards)
    assert got.total_cycles == ref.total_cycles
    _assert_traffic_equal(got.traffic, ref.traffic)


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_lock_matches_single_process(shards):
    """Locks exercise the cross-shard identity machinery hardest: the
    lock word's home node serves CPUs from every shard, and acquire
    latencies are recorded per-CPU on whichever shard runs it."""
    kwargs = dict(LOCK_KW, mechanism=Mechanism.AMO)
    ref = run_lock_workload(**kwargs)
    got = run_sharded("lock", kwargs, shards=shards)
    assert got.total_cycles == ref.total_cycles
    _assert_traffic_equal(got.traffic, ref.traffic)
    assert got.acquisitions == ref.acquisitions
    assert sorted(got.acquire_latency._samples) == \
        sorted(ref.acquire_latency._samples)


@pytest.mark.parametrize("lock_type,mechanism",
                         [("mcs", Mechanism.AMO), ("cna", Mechanism.LLSC),
                          ("rw", Mechanism.AMO)],
                         ids=["mcs-amo", "cna-llsc", "rw-amo"])
def test_sharded_qlock_matches_single_process(lock_type, mechanism):
    """Queue locks split per-CPU queue-node words across shards while
    the tail word's home serves every shard; the offline grant-history
    check is skipped sharded (spans are shard-local) so parity on
    cycles, traffic, and latencies is the contract here."""
    kwargs = dict(LOCK_KW, mechanism=mechanism, lock_type=lock_type)
    ref = run_qlock_workload(**kwargs)
    got = run_sharded("qlock", kwargs, shards=2)
    assert got.total_cycles == ref.total_cycles
    _assert_traffic_equal(got.traffic, ref.traffic)
    assert got.acquisitions == ref.acquisitions
    assert sorted(got.acquire_latency._samples) == \
        sorted(ref.acquire_latency._samples)


@pytest.mark.slow
@pytest.mark.parametrize("mechanism", [Mechanism.ATOMIC, Mechanism.ACTMSG,
                                       Mechanism.MAO])
def test_sharded_parity_remaining_mechanisms(mechanism):
    """The other three mechanisms (update-based, active-message and
    memory-side-atomic protocols) at 2 shards — full-matrix coverage
    rides in the slow tier; CI's shard-parity job covers all five
    against the goldens on every PR."""
    kwargs = dict(BARRIER_KW, mechanism=mechanism)
    ref = run_barrier_workload(**kwargs)
    got = run_sharded("barrier", kwargs, shards=2)
    assert got.total_cycles == ref.total_cycles
    _assert_traffic_equal(got.traffic, ref.traffic)


def test_sharded_spec_executes_inline_and_shares_cache_key():
    plain = RunSpec.barrier(32, Mechanism.AMO, episodes=2,
                            warmup_episodes=1)
    sharded = RunSpec.barrier(32, Mechanism.AMO, episodes=2,
                              warmup_episodes=1, shards=2)
    # execution detail, not semantics: same identity, same cache key
    assert sharded == plain
    assert sharded.canonical() == plain.canonical()
    assert sharded.shards == 2
    rec_plain = execute_spec(plain)
    rec_shard = execute_spec(sharded)
    assert rec_shard.result.total_cycles == rec_plain.result.total_cycles
    _assert_traffic_equal(rec_shard.result.traffic,
                          rec_plain.result.traffic)


def test_unshardable_options_are_rejected():
    """Unknown kinds and driver options that change behaviour outside
    the replicated config are refused — by presence, not truthiness
    (``max_events=0`` still caps the kernel)."""
    with pytest.raises(ShardSessionError):
        run_sharded("fuzz", {"n_processors": 32}, shards=2)
    with pytest.raises(ShardSessionError):
        run_sharded("barrier",
                    dict(BARRIER_KW, mechanism=Mechanism.AMO,
                         max_events=0), shards=2)


def test_worker_errors_propagate():
    """A failing driver in any worker surfaces as a session error with
    the worker traceback, not a hang."""
    with pytest.raises(ShardSessionError, match="unknown mechanism"):
        run_sharded("barrier",
                    dict(n_processors=32, mechanism="bogus",
                         episodes=1, warmup_episodes=0), shards=2)
