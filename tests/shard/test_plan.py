"""Partition planning: total coverage, lookahead soundness, errors."""

import pytest

from repro.config.parameters import NetworkConfig
from repro.network.topology import shared_topology
from repro.shard.plan import (PartitionPlan, ShardPlanError,
                              lookahead_window)


@pytest.mark.parametrize("n_nodes,n_shards", [
    (2, 2), (8, 2), (8, 4), (16, 2), (16, 3), (16, 4), (16, 16),
    (7, 3), (128, 4), (256, 5),
])
def test_every_node_assigned_exactly_once(n_nodes, n_shards):
    plan = PartitionPlan.contiguous(n_nodes, n_shards)
    plan.validate()
    seen = []
    for s in range(n_shards):
        seen.extend(plan.nodes_of(s))
    assert seen == list(range(n_nodes))
    for node in range(n_nodes):
        s = plan.shard_of_node(node)
        assert node in plan.nodes_of(s)


@pytest.mark.parametrize("cpus_per_node", [2, 4])
def test_every_cpu_assigned_exactly_once(cpus_per_node):
    plan = PartitionPlan.contiguous(16, 3)
    seen = []
    for s in range(plan.n_shards):
        seen.extend(plan.cpus_of(s, cpus_per_node))
    assert seen == list(range(16 * cpus_per_node))


def test_remainder_goes_to_first_shards():
    plan = PartitionPlan.contiguous(10, 4)
    sizes = [len(plan.nodes_of(s)) for s in range(4)]
    assert sizes == [3, 3, 2, 2]


def test_invalid_shard_counts():
    with pytest.raises(ShardPlanError):
        PartitionPlan.contiguous(8, 0)
    with pytest.raises(ShardPlanError):
        PartitionPlan.contiguous(8, 9)


@pytest.mark.parametrize("n_nodes,n_shards", [
    (8, 2), (16, 2), (16, 4), (16, 3), (32, 4), (64, 8),
])
def test_min_hops_matches_brute_force(n_nodes, n_shards):
    """The boundary-adjacent scan must equal the true minimum over every
    cross-shard node pair (the contiguity argument, pinned)."""
    plan = PartitionPlan.contiguous(n_nodes, n_shards)
    radix = NetworkConfig().router_radix
    topo = shared_topology(n_nodes, radix=radix)
    brute = min(topo.hops(a, b)
                for a in range(n_nodes) for b in range(n_nodes)
                if plan.shard_of_node(a) != plan.shard_of_node(b))
    assert plan.min_cross_shard_hops(radix) == brute


@pytest.mark.parametrize("n_nodes,n_shards", [(16, 2), (16, 4), (64, 4)])
def test_cross_shard_latency_never_below_window(n_nodes, n_shards):
    """The conservative-window guarantee: every cross-shard message
    travels at least ``window`` cycles."""
    plan = PartitionPlan.contiguous(n_nodes, n_shards)
    net = NetworkConfig()
    window = lookahead_window(plan, net)
    assert window >= net.hop_latency_cycles
    topo = shared_topology(n_nodes, radix=net.router_radix)
    for a in range(n_nodes):
        for b in range(n_nodes):
            if plan.shard_of_node(a) != plan.shard_of_node(b):
                assert topo.hops(a, b) * net.hop_latency_cycles >= window


def test_single_shard_window_is_unbounded():
    plan = PartitionPlan.contiguous(16, 1)
    assert plan.min_cross_shard_hops(NetworkConfig().router_radix) == 0
    assert lookahead_window(plan, NetworkConfig()) == 0
