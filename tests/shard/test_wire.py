"""Cross-shard codec: plain data by value, identities by reference."""

import pickle

import pytest

from repro.amu.ops import AmoCommand
from repro.network.message import Message, MessageKind
from repro.shard.wire import (ExportTable, RemoteRef, decode_message,
                              decode_value, encode_message, encode_value)


class _Latch:
    """Stand-in for an identity-bearing protocol object (AckLatch)."""


def test_plain_values_travel_as_themselves():
    table = ExportTable(0)
    for value in (7, "x", b"y", 3.5, True, None, MessageKind.AMO_REQUEST):
        assert encode_value(value, table) is value
        assert decode_value(value, table) is value
    assert len(table) == 0


def test_identity_object_becomes_ref_and_resolves_at_origin():
    table = ExportTable(2)
    latch = _Latch()
    ref = encode_value(latch, table)
    assert isinstance(ref, RemoteRef)
    assert ref.shard == 2
    # same object exported twice -> same index (table is id-keyed)
    assert encode_value(latch, table).idx == ref.idx
    assert decode_value(ref, table) is latch


def test_foreign_ref_stays_opaque_and_survives_pickling():
    origin = ExportTable(0)
    other = ExportTable(1)
    ref = encode_value(_Latch(), origin)
    # decoded on a shard that didn't export it: passes through untouched
    out = decode_value(ref, other)
    assert isinstance(out, RemoteRef) and out.shard == 0
    # forwarded over a pipe and back to the origin: still resolves
    wire = pickle.loads(pickle.dumps(out))
    assert decode_value(wire, origin) is origin.resolve(wire)


def test_wrong_shard_resolution_fails_loudly():
    origin = ExportTable(0)
    ref = origin.ref(_Latch())
    with pytest.raises(LookupError):
        ExportTable(1).resolve(ref)


def test_amo_command_passes_by_value():
    table = ExportTable(0)
    cmd = AmoCommand(op="inc")
    assert encode_value(cmd, table) is cmd
    assert decode_value(cmd, table) is cmd
    assert len(table) == 0


def test_containers_recurse():
    table = ExportTable(0)
    latch = _Latch()
    out = encode_value({"a": (1, latch), "b": [latch]}, table)
    assert out["a"][0] == 1
    assert isinstance(out["a"][1], RemoteRef)
    # the same identity encodes to the same ref everywhere it appears
    assert out["b"][0].idx == out["a"][1].idx
    back = decode_value(out, table)
    assert back["a"][1] is latch and back["b"][0] is latch


def test_message_roundtrip_preserves_identity_fields():
    table = ExportTable(0)
    latch = _Latch()
    msg = Message(kind=MessageKind.AMO_REQUEST, src_node=1, dst_node=3,
                  addr=0x40, value=AmoCommand(op="fetch_add", operand=2),
                  payload=(latch, "tag"), reply_to=latch, requester=5)
    wire = encode_message(msg, table)
    assert wire is not msg
    assert wire.msg_id == msg.msg_id       # debug id preserved verbatim
    assert isinstance(wire.reply_to, RemoteRef)
    assert isinstance(wire.payload[0], RemoteRef)
    assert wire.value is msg.value         # pure value data
    # ship it and decode at the origin: identities restored
    back = decode_message(pickle.loads(pickle.dumps(wire)), table)
    assert back.reply_to is latch
    assert back.payload[0] is latch
    assert back.kind is MessageKind.AMO_REQUEST
    assert (back.src_node, back.dst_node, back.addr) == (1, 3, 0x40)
