"""Sharded observability: merged metrics equal single-process metrics.

The contract (see ``docs/observability.md`` "Sharded runs"): a metered
run partitioned across N worker processes produces a merged snapshot
that is schema-valid and counter-equal to the single-process snapshot
for every non-exempt metric.  The exemption list is exactly

* :data:`repro.obs.snapshot.SHARD_EXEMPT_COUNTERS`
  (``kernel.events_dispatched`` — host-side kernel events, see
  :data:`repro.harness.parity.SHARD_EXEMPT_KEYS`),
* the shard-only ``shard.*`` telemetry family
  (:data:`repro.obs.snapshot.SHARD_ONLY_PREFIXES`), and
* time ``series`` — per-shard samplers watch only local queues, so
  merged snapshots drop the section rather than publish misleading
  machine-wide curves.

Attaching metrics must also be timing-neutral: the metered sharded run
reproduces the unmetered cycle counts (CI proves this against the
goldens via ``capture_parity.py --verify --metrics --shards 2``).
"""

import pytest

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.harness.parity import SHARD_EXEMPT_KEYS
from repro.obs.schema import validate_snapshot
from repro.obs.snapshot import (SHARD_EXEMPT_COUNTERS, SHARD_ONLY_PREFIXES,
                                shard_counter_drift)
from repro.shard.session import (ShardSessionError, run_sharded,
                                 telemetry_summary)
from repro.workloads.barrier import run_barrier_workload
from repro.workloads.locks import run_lock_workload

BARRIER_KW = dict(n_processors=32, episodes=2, warmup_episodes=1,
                  metrics=True)
LOCK_KW = dict(n_processors=32, acquisitions_per_cpu=2, warmup_per_cpu=1,
               metrics=True)


def _run_pair(kind, kwargs, shards):
    if kind == "barrier":
        ref = run_barrier_workload(**kwargs)
    else:
        ref = run_lock_workload(**kwargs)
    got = run_sharded(kind, kwargs, shards=shards)
    return ref, got


@pytest.mark.parametrize("kind,kwargs,shards", [
    ("barrier", BARRIER_KW, 2),
    ("barrier", BARRIER_KW, 4),
    ("lock", LOCK_KW, 2),
])
def test_merged_metrics_counter_equal_and_schema_valid(kind, kwargs,
                                                       shards):
    ref, got = _run_pair(kind, dict(kwargs, mechanism=Mechanism.AMO),
                         shards)
    # metrics attach is timing-neutral under sharding
    assert got.total_cycles == ref.total_cycles
    assert validate_snapshot(got.metrics) == []
    assert shard_counter_drift(ref.metrics, got.metrics) == []


def test_exemption_list_is_exactly_enumerated():
    """The documented exemptions, nothing more: the host-side kernel
    event counter (mirroring the parity harness) and the shard-only
    telemetry prefix."""
    assert SHARD_EXEMPT_COUNTERS == frozenset({"kernel.events_dispatched"})
    assert SHARD_ONLY_PREFIXES == ("shard.",)
    assert SHARD_EXEMPT_KEYS == frozenset({"events_dispatched"})


def test_drift_helper_catches_real_drift_and_skips_exempt():
    base = {"counters": {"a": 1, "kernel.events_dispatched": 10},
            "histograms": {}}
    same = {"counters": {"a": 1, "kernel.events_dispatched": 99,
                         "shard.sync_rounds": 7},
            "histograms": {}}
    assert shard_counter_drift(base, same) == []
    drifted = {"counters": {"a": 2}, "histograms": {}}
    assert any("counters.a" in line
               for line in shard_counter_drift(base, drifted))
    missing = {"counters": {}, "histograms": {}}
    assert shard_counter_drift(base, missing) != []


def test_merged_critical_path_equals_single_process():
    """The parent recomputes the machine-wide critical path from the
    merged span timeline; per-shard analyses would mis-window episodes
    (each shard only sees its local CPUs' markers)."""
    ref, got = _run_pair("barrier",
                         dict(BARRIER_KW, mechanism=Mechanism.LLSC), 2)
    assert got.metrics["critical_path"] == ref.metrics["critical_path"]
    assert got.metrics["critical_path"]["episodes"] > 0


def test_shard_telemetry_family_present_and_consistent():
    _, got = _run_pair("barrier", dict(BARRIER_KW, mechanism=Mechanism.AMO),
                       2)
    counters = got.metrics["counters"]
    gauges = got.metrics["gauges"]
    assert counters["shard.sync_rounds"] > 0
    assert gauges["shard.shards"] == 2
    assert gauges["shard.lookahead_cycles"] > 0
    hist = got.metrics["histograms"]["shard.window_cycles"]
    assert hist["count"] > 0 and hist["min"] > 0
    # every exported packet is delivered exactly once
    assert counters["shard.egress_messages"] == \
        counters["shard.ingress_messages"]
    assert counters["shard.egress_bytes"] == counters["shard.ingress_bytes"]
    # per-shard lanes sum to the aggregate
    assert sum(counters[f"shard.s{s}.egress_messages"]
               for s in range(2)) == counters["shard.egress_messages"]


def test_telemetry_summary_digest():
    telemetry = {}
    run_sharded("barrier", dict(BARRIER_KW, mechanism=Mechanism.AMO),
                shards=2, telemetry=telemetry)
    digest = telemetry_summary(telemetry["snapshot"])
    assert digest["sync_rounds"] > 0
    assert digest["windows"] > 0
    assert digest["window_cycles"]["min"] <= digest["window_cycles"]["max"]
    assert len(digest["blocked_seconds_per_shard"]) == 2


def test_sampler_composes_and_series_is_exempt():
    """``metrics_interval`` works under sharding; the merged snapshot
    drops ``series`` (per-shard samplers watch only local queues) but
    every counter still matches."""
    kwargs = dict(BARRIER_KW, mechanism=Mechanism.AMO,
                  metrics_interval=200)
    ref, got = _run_pair("barrier", kwargs, 2)
    assert "series" in ref.metrics
    assert "series" not in got.metrics
    assert got.total_cycles == ref.total_cycles
    assert shard_counter_drift(ref.metrics, got.metrics) == []
    assert validate_snapshot(got.metrics) == []


def test_telemetry_out_param_works_without_metrics():
    """``run_sharded(..., telemetry=...)`` fills the out-param even for
    unmetered runs — how ``bench_scale`` surfaces sync-round telemetry
    without perturbing the measured run."""
    telemetry = {}
    got = run_sharded("barrier",
                      dict(n_processors=32, mechanism=Mechanism.AMO,
                           episodes=2, warmup_episodes=1),
                      shards=2, telemetry=telemetry)
    assert getattr(got, "metrics", None) is None
    snap = telemetry["snapshot"]
    assert snap["counters"]["shard.sync_rounds"] > 0
    assert telemetry["trace"] is None  # no tracer without metrics
    windows = telemetry["windows"]
    assert windows and all(w[0] < w[1] for w in windows)
    assert all(a[1] <= b[0] for a, b in zip(windows, windows[1:]))


def test_remaining_unshardables_refused_even_when_falsy():
    """Regression for the presence-vs-truthiness bug: ``max_events=0``
    is falsy but still changes driver behaviour, so it must be refused
    just like a truthy value.  Explicit defaults like
    ``metrics_interval=0`` are fine."""
    base = dict(n_processors=32, mechanism=Mechanism.AMO, episodes=1,
                warmup_episodes=0)
    with pytest.raises(ShardSessionError, match="max_events"):
        run_sharded("barrier", dict(base, max_events=0), shards=2)
    with pytest.raises(ShardSessionError, match="config"):
        run_sharded("barrier",
                    dict(base, config=SystemConfig.table1(32)), shards=2)
    with pytest.raises(ShardSessionError, match="warm_cache"):
        run_sharded("barrier", dict(base, warm_cache=object()), shards=2)
    got = run_sharded("barrier", dict(base, metrics_interval=0), shards=2)
    assert got.total_cycles > 0
