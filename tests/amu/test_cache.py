"""Unit tests for the 8-word AMU cache."""

import pytest

from repro.amu.cache import AmuCache


def test_insert_lookup():
    c = AmuCache(8)
    c.insert(0x100000000, 5)
    entry = c.lookup(0x100000000)
    assert entry.value == 5
    assert c.hits == 1 and c.misses == 0


def test_subword_addresses_alias():
    c = AmuCache(8)
    c.insert(0x100000000, 5)
    assert c.lookup(0x100000003).value == 5


def test_miss_counted():
    c = AmuCache(8)
    assert c.lookup(0x100000000) is None
    assert c.misses == 1


def test_peek_does_not_disturb():
    c = AmuCache(8)
    c.insert(0x100000000, 5)
    hits = c.hits
    assert c.peek(0x100000000) == 5
    assert c.peek(0x100000008) is None
    assert c.hits == hits


def test_capacity_and_victim_is_lru():
    c = AmuCache(3)
    for i in range(3):
        c.insert(0x100000000 + 8 * i, i)
    assert c.full
    c.lookup(0x100000000)       # word 0 becomes MRU
    victim = c.victim()
    assert victim.word_addr == 0x100000008   # word 1 is LRU
    c.drop(victim.word_addr)
    assert not c.full
    c.insert(0x100000100, 9)
    assert c.peek(0x100000008) is None


def test_insert_full_raises():
    c = AmuCache(1)
    c.insert(0x100000000, 1)
    with pytest.raises(RuntimeError, match="full"):
        c.insert(0x100000008, 2)


def test_double_insert_raises():
    c = AmuCache(2)
    c.insert(0x100000000, 1)
    with pytest.raises(RuntimeError, match="already"):
        c.insert(0x100000000, 2)


def test_words_in_line_selection():
    c = AmuCache(8)
    c.insert(0x100000000, 1)       # line 0
    c.insert(0x100000078, 2)       # line 0, last word
    c.insert(0x100000080, 3)       # line 1
    in_line0 = {e.word_addr for e in c.words_in_line(0x100000000)}
    assert in_line0 == {0x100000000, 0x100000078}


def test_hit_rate():
    c = AmuCache(2)
    c.insert(0x100000000, 1)
    c.lookup(0x100000000)
    c.lookup(0x100000008)
    assert c.hit_rate == 0.5


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        AmuCache(0)
