"""Unit tests for AMO opcode semantics."""

import pytest

from repro.amu.ops import OPS, AmoCommand, AmoOp, WORD_MASK, register_op


def test_paper_ops_present():
    assert "inc" in OPS and "fetchadd" in OPS


def test_inc_semantics():
    assert OPS["inc"].apply(41, None) == 42


def test_fetchadd_semantics_and_wraparound():
    assert OPS["fetchadd"].apply(10, 5) == 15
    assert OPS["fetchadd"].apply(WORD_MASK, 1) == 0     # 64-bit wrap


def test_swap_and_cas():
    assert OPS["swap"].apply(1, 99) == 99
    assert OPS["cas"].apply(5, (5, 10)) == 10    # match: swapped
    assert OPS["cas"].apply(6, (5, 10)) == 6     # mismatch: unchanged


def test_minmax_bitwise():
    assert OPS["min"].apply(7, 3) == 3
    assert OPS["max"].apply(7, 3) == 7
    assert OPS["and"].apply(0b1100, 0b1010) == 0b1000
    assert OPS["or"].apply(0b1100, 0b1010) == 0b1110
    assert OPS["xor"].apply(0b1100, 0b1010) == 0b0110


def test_register_rejects_duplicates():
    with pytest.raises(ValueError, match="already"):
        register_op(AmoOp("inc", lambda o, x: o))


def test_register_custom_op():
    name = "test_double"
    if name not in OPS:
        register_op(AmoOp(name, lambda old, _x: old * 2))
    assert OPS[name].apply(21, None) == 42


def test_command_push_rules():
    # amo.inc pushes only on test match
    inc = AmoCommand(op="inc", test=4)
    assert inc.should_push(3) is False
    assert inc.should_push(4) is True
    # amo.fetchadd always pushes
    fad = AmoCommand(op="fetchadd", operand=2)
    assert fad.should_push(123) is True
    # explicit override wins
    quiet = AmoCommand(op="fetchadd", push=False)
    assert quiet.should_push(123) is False
    # test value composes with override
    forced = AmoCommand(op="inc", push=True)
    assert forced.should_push(1) is True


def test_mao_commands_never_push():
    cmd = AmoCommand(op="fetchadd", coherent=False, test=1)
    assert cmd.should_push(1) is False


def test_unknown_op_rejected():
    with pytest.raises(ValueError, match="unknown"):
        AmoCommand(op="no_such_op").resolve_op()
