"""Integration tests of the Active Memory Unit through small machines."""

from repro.config.parameters import AmuConfig, SystemConfig
from repro.core.machine import Machine
from repro.network.message import MessageKind


def run(machine, thread, cpus=None):
    return machine.run_threads(thread, cpus=cpus, max_events=2_000_000)


def test_amo_inc_returns_old_values(machine8):
    var = machine8.alloc("ctr", home_node=0)

    def thread(proc):
        old = yield from proc.amo_inc(var.addr)
        return old

    olds = run(machine8, thread)
    assert sorted(olds) == list(range(8))
    assert machine8.peek(var.addr) == 8


def test_amo_fetchadd_accumulates(machine4):
    var = machine4.alloc("sum", home_node=1)

    def thread(proc):
        yield from proc.amo_fetchadd(var.addr, proc.cpu_id + 1)

    run(machine4, thread)
    assert machine4.peek(var.addr) == 1 + 2 + 3 + 4


def test_test_value_triggers_single_push(machine4):
    var = machine4.alloc("bar", home_node=0)

    def loader(proc):
        yield from proc.load(var.addr)       # become a sharer

    run(machine4, loader, cpus=[2, 3])       # remote sharers (node 1)

    def incrementer(proc):
        yield from proc.amo_inc(var.addr, test=4)

    run(machine4, incrementer)
    # updates pushed only once (at the test match), to each sharer
    updates = machine4.net.stats.messages[MessageKind.WORD_UPDATE]
    assert updates == 2                       # cpus 2,3 are remote sharers
    assert machine4.hubs[0].amu.puts_issued == 1
    # sharer caches were patched in place with the final value
    assert machine4.cpus[2].controller.peek(var.addr) == 4


def test_fetchadd_pushes_every_time(machine4):
    var = machine4.alloc("serving", home_node=0)

    def loader(proc):
        yield from proc.load(var.addr)

    run(machine4, loader, cpus=[2])

    def adder(proc):
        for _ in range(3):
            yield from proc.amo_fetchadd(var.addr, 1)

    run(machine4, adder, cpus=[0])
    assert machine4.hubs[0].amu.puts_issued == 3
    assert machine4.cpus[2].controller.peek(var.addr) == 3


def test_amu_cache_coalesces_dram_traffic(machine8):
    var = machine8.alloc("hot", home_node=0)
    dram = machine8.hubs[0].dram

    def thread(proc):
        for _ in range(4):
            yield from proc.amo_inc(var.addr)

    run(machine8, thread)
    # one fill (word access); not one access per operation
    assert machine8.hubs[0].amu.cache.hits >= 31
    assert dram.word_accesses <= 2
    assert machine8.peek(var.addr) == 32


def test_amu_cache_eviction_writes_back_and_preserves_values():
    machine = Machine(SystemConfig.table1(4))
    # 10 variables > 8-word AMU cache => evictions
    variables = [machine.alloc(f"v{i}", home_node=0) for i in range(10)]

    def thread(proc):
        for var in variables:
            yield from proc.amo_inc(var.addr)

    run(machine, thread, cpus=[0])
    assert machine.hubs[0].amu.cache.evictions >= 2
    for var in variables:
        assert machine.peek(var.addr) == 1


def test_amu_cache_disabled_ablation():
    cfg = SystemConfig.table1(4, amu=AmuConfig(cache_enabled=False))
    machine = Machine(cfg)
    var = machine.alloc("ctr", home_node=0)

    def thread(proc):
        for _ in range(2):
            yield from proc.amo_inc(var.addr)

    run(machine, thread)
    assert machine.peek(var.addr) == 8
    # every op read and wrote memory
    assert machine.hubs[0].dram.word_accesses >= 16


def test_amo_visible_to_later_coherent_write_path(machine4):
    """A processor store to an AMU-cached word must see the AMU value
    (the GET_X flush path)."""
    var = machine4.alloc("v", home_node=0)

    def amo_then_store(proc):
        yield from proc.amo_fetchadd(var.addr, 41)
        old = yield from proc.atomic_rmw(var.addr, lambda v: v + 1)
        return old

    olds = run(machine4, amo_then_store, cpus=[2])
    assert olds == [41]
    assert machine4.peek(var.addr) == 42
    machine4.check_coherence_invariants()


def test_amo_release_consistency_stale_reads_allowed(machine4):
    """A plain load between AMOs may see the stale memory value (§3.2) —
    but never a *newer-than-memory* phantom."""
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        yield from proc.amo_fetchadd(var.addr, 7, wait_reply=True)
        value = yield from proc.load(var.addr)
        return value

    values = run(machine4, thread, cpus=[2])
    assert values[0] in (0, 7)      # stale-or-fresh, both legal
    # the canonical value is correct
    assert machine4.peek(var.addr) == 7


def test_fire_and_forget_amo_completes(machine4):
    var = machine4.alloc("v", home_node=0)

    def thread(proc):
        result = yield from proc.amo_inc(var.addr, wait_reply=False)
        assert result is None
        return True

    run(machine4, thread)
    # drain: replies still in flight are fine; value must settle
    assert machine4.peek(var.addr) == 4


def test_amo_wrong_home_rejected(machine4):
    var = machine4.alloc("v", home_node=1)
    # simulate misrouted message
    import pytest
    from repro.amu.ops import AmoCommand
    from repro.network.message import Message
    msg = Message(kind=MessageKind.AMO_REQUEST, src_node=0, dst_node=0,
                  addr=var.addr, payload=AmoCommand(op="inc"))
    with pytest.raises(RuntimeError, match="non-home"):
        machine4.hubs[0].amu.enqueue(msg)


def test_multicast_update_fanout_single_injection():
    """With multicast enabled, an N-sharer put occupies the home egress
    once; traffic (packets) is unchanged."""
    from repro.config.parameters import NetworkConfig

    def run_push(multicast):
        cfg = SystemConfig.table1(
            8, network=NetworkConfig(multicast_updates=multicast))
        machine = Machine(cfg)
        var = machine.alloc("v", home_node=0)

        def loader(proc):
            yield from proc.load(var.addr)

        machine.run_threads(loader, cpus=[2, 4, 6])

        def pusher(proc):
            yield from proc.amo_fetchadd(var.addr, 1)

        machine.run_threads(pusher, cpus=[0])
        return machine.net.stats.messages[MessageKind.WORD_UPDATE]

    assert run_push(False) == run_push(True) == 3
