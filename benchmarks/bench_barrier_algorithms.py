"""Extension bench: barrier *algorithm* shoot-out per mechanism.

Compares the paper's centralized and combining-tree barriers against the
extension algorithms (dissemination, sense-reversing) — the software
design space AMOs are claimed to make unnecessary ("AMO-based barriers
do not require extra spin variables or complicated tree structures").
The headline assertion: flat AMO beats every software-clever algorithm
running on conventional primitives.
"""

import pytest

from benchmarks.conftest import EPISODES, once
from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.barrier import CentralizedBarrier
from repro.sync.dissemination import DisseminationBarrier
from repro.sync.sense_barrier import SenseReversingBarrier
from repro.sync.tree_barrier import CombiningTreeBarrier

P = 32

ALGORITHMS = {
    "centralized": lambda m, mech: CentralizedBarrier(m, mech),
    "sense-reversing": lambda m, mech: SenseReversingBarrier(m, mech),
    "combining-tree": lambda m, mech: CombiningTreeBarrier(m, mech,
                                                           branching=8),
    "dissemination": lambda m, mech: DisseminationBarrier(m, mech),
}


def run_algorithm(name, mech, episodes=EPISODES):
    machine = Machine(SystemConfig.table1(P))
    barrier = ALGORITHMS[name](machine, mech)

    def thread(proc):
        for _ in range(episodes + 1):     # +1 warm-up
            yield from barrier.wait(proc)

    machine.run_threads(thread, max_events=10_000_000)
    return machine.last_completion_time / (episodes + 1)


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
@pytest.mark.parametrize("mech", [Mechanism.LLSC, Mechanism.AMO],
                         ids=["llsc", "amo"])
def test_barrier_algorithm(benchmark, algorithm, mech, capsys):
    cycles = once(benchmark, run_algorithm, algorithm, mech)
    with capsys.disabled():
        print(f"\n{algorithm:>16s} + {mech.label:<6s} at P={P}: "
              f"{cycles:8.0f} cycles/episode")
    benchmark.extra_info.update(algorithm=algorithm,
                                mechanism=mech.label,
                                cycles_per_episode=cycles)


def test_flat_amo_beats_all_conventional_algorithms(benchmark, capsys):
    """The paper's programming-model claim, quantified."""
    def run_all():
        amo_flat = run_algorithm("centralized", Mechanism.AMO, episodes=2)
        best_name, best = None, float("inf")
        for name in ALGORITHMS:
            cycles = run_algorithm(name, Mechanism.LLSC, episodes=2)
            if cycles < best:
                best_name, best = name, cycles
        return amo_flat, best_name, best

    amo_flat, best_name, best = once(benchmark, run_all)
    with capsys.disabled():
        print(f"\nflat AMO {amo_flat:.0f} vs best conventional "
              f"({best_name}) {best:.0f} at P={P}")
    assert amo_flat < best
    benchmark.extra_info["amo_flat"] = amo_flat
    benchmark.extra_info["best_conventional"] = f"{best_name}:{best:.0f}"
