"""E1 — Table 2: non-tree barrier performance per mechanism and size.

Each benchmark point simulates one (mechanism, P) cell; ``extra_info``
carries the simulated cycles per episode, so a ``--benchmark-json`` dump
contains the full measured table.  The LL/SC-relative speedups (the
paper's actual Table 2 numbers) are printed by
``repro-experiments table2`` and asserted by the final shape benchmark.
"""

import pytest

from benchmarks.conftest import BARRIER_CPUS, EPISODES, once
from repro.config.mechanism import Mechanism
from repro.harness.experiments import experiment_table2
from repro.runner import RunSpec

MECHS = [Mechanism.LLSC, Mechanism.ACTMSG, Mechanism.ATOMIC,
         Mechanism.MAO, Mechanism.AMO]


@pytest.mark.parametrize("n_cpus", BARRIER_CPUS)
@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_barrier_cell(benchmark, runner, mech, n_cpus):
    spec = RunSpec.barrier(n_processors=n_cpus, mechanism=mech,
                           episodes=EPISODES)
    result = once(benchmark, runner.run_one, spec)
    benchmark.extra_info["mechanism"] = mech.label
    benchmark.extra_info["n_cpus"] = n_cpus
    benchmark.extra_info["cycles_per_episode"] = result.cycles_per_episode
    benchmark.extra_info["messages_per_episode"] = \
        result.messages_per_episode
    assert result.cycles_per_episode > 0


def test_table2_speedups(benchmark, barrier_results, capsys):
    """The assembled Table 2 with the paper's shape checks."""
    result = once(benchmark, experiment_table2, barrier_results)
    with capsys.disabled():
        print()
        print(result.format())
    for check in result.checks:
        assert check.passed, str(check)
    benchmark.extra_info["rows"] = [
        [str(c) for c in row] for row in result.table.rows]
