"""Shared benchmark configuration.

Each benchmark simulates one of the paper's experiment points.  The
pytest-benchmark timing is the *wall-clock cost of the simulation*
(useful for tracking simulator performance); the paper's quantities —
simulated cycles, speedups, traffic — are attached as ``extra_info`` so
``--benchmark-json`` output regenerates the tables.

All sweep points go through :mod:`repro.runner`.  The shared runner is
serial and uncached by default so timings stay honest; set
``REPRO_BENCH_JOBS=N`` to fan the suite fixtures across N worker
processes (per-cell timings then measure runner dispatch + simulation).

Sizes: the default grid stops at 64 CPUs so the whole suite runs in a
few minutes (the repro band flags pure-Python 256-CPU runs as slow).
Set ``REPRO_BENCH_FULL=1`` to run the paper's complete 4-256 sweep.
"""

import os

import pytest

from repro.runner import ParallelRunner

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")

BARRIER_CPUS = (4, 8, 16, 32, 64, 128, 256) if FULL else (4, 8, 16, 32)
TREE_CPUS = (16, 32, 64, 128, 256) if FULL else (16, 32)
LOCK_CPUS = (4, 8, 16, 32, 64, 128, 256) if FULL else (4, 8, 16)
FIG7_CPUS = (128, 256) if FULL else (16, 32)
EPISODES = 3 if FULL else 2
ACQUISITIONS = 3 if FULL else 2


@pytest.fixture(scope="session")
def runner():
    """Sweep executor shared by every benchmark module (uncached)."""
    return ParallelRunner(jobs=JOBS)


@pytest.fixture(scope="session")
def barrier_results(runner):
    """Shared flat-barrier measurements (table2 + fig5 + amo-model)."""
    from repro.harness.experiments import run_barrier_suite
    return run_barrier_suite(BARRIER_CPUS, episodes=EPISODES, runner=runner)


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
