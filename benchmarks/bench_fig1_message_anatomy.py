"""E7 — Figure 1: message counts of a 3-processor increment round."""

from benchmarks.conftest import once
from repro.harness.experiments import experiment_fig1


def test_fig1_message_anatomy(benchmark, capsys):
    result = once(benchmark, experiment_fig1)
    with capsys.disabled():
        print()
        print(result.format())
    for check in result.checks:
        assert check.passed, str(check)
