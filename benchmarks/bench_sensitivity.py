"""Calibration-robustness benchmark: AMO's win across knob sweeps.

If the headline conclusion (AMO barriers far faster than LL/SC) held
only at the calibrated parameter point, the reproduction would be an
artifact.  Each bench sweeps one free parameter across a wide range and
asserts the AMO speedup never collapses.
"""

import pytest

from benchmarks.conftest import once
from repro.harness.sensitivity import KNOBS, sensitivity_report, sweep_amo_speedup


@pytest.mark.parametrize("knob_key", sorted(KNOBS))
def test_sensitivity_knob(benchmark, knob_key, capsys):
    knob = KNOBS[knob_key]
    points = once(benchmark, sweep_amo_speedup, knob, 16, 1)
    with capsys.disabled():
        print(f"\n{knob.name}:")
        for value, speedup in points:
            print(f"  {value:>6} -> AMO speedup {speedup:6.1f}x")
    assert all(s > 2.0 for _v, s in points), points
    benchmark.extra_info["points"] = [[str(v), s] for v, s in points]


def test_sensitivity_full_report(benchmark, capsys):
    table, robust = once(benchmark, sensitivity_report,
                         tuple(sorted(KNOBS)), 16, 1)
    with capsys.disabled():
        print()
        print(table.to_text())
    assert robust, "AMO advantage collapsed somewhere in the sweeps"
