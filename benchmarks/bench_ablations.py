"""Ablation benchmarks for the design choices DESIGN.md §7 calls out.

* AMU cache on/off — §3.1's coalescing cache;
* update push on/off — AMO without the fine-grained put (spinners fall
  back to invalidate+reload wake-up);
* naive vs. spin-variable coding for conventional barriers — §3.3.1;
* proportional backoff for ticket locks — §3.3.2's "less effective on
  cache-coherent machines" claim;
* tree branching factor sweep — §4.2.2's "best branching factor is
  often not intuitive".
"""

import pytest

from benchmarks.conftest import EPISODES, once
from repro.config.mechanism import Mechanism
from repro.config.parameters import AmuConfig, SystemConfig
from repro.workloads.barrier import run_barrier_workload
from repro.workloads.locks import run_lock_workload

P = 32


def test_ablation_amu_cache_disabled(benchmark, capsys):
    """Without the AMU cache every AMO reads/writes DRAM."""
    with_cache = run_barrier_workload(P, Mechanism.AMO, episodes=EPISODES)
    without = once(benchmark, run_barrier_workload, P, Mechanism.AMO,
                   episodes=EPISODES,
                   config=SystemConfig.table1(
                       P, amu=AmuConfig(cache_enabled=False)))
    ratio = without.cycles_per_episode / with_cache.cycles_per_episode
    with capsys.disabled():
        print(f"\nAMU cache ablation at P={P}: with={with_cache.cycles_per_episode:.0f} "
              f"without={without.cycles_per_episode:.0f} (x{ratio:.2f})")
    assert ratio > 1.1, "the AMU cache must matter"
    benchmark.extra_info["slowdown_without_cache"] = ratio


def test_ablation_naive_vs_optimized_coding(benchmark, capsys):
    """Figure 3(a) vs 3(b) for the conventional LL/SC barrier.

    The spin variable pays off only once spinner reload storms interfere
    with the increments (the paper cites 25% at 64 CPUs; our crossover
    sits near 32).
    """
    optimized = run_barrier_workload(P, Mechanism.LLSC, episodes=EPISODES)
    naive = once(benchmark, run_barrier_workload, P, Mechanism.LLSC,
                 episodes=EPISODES, naive=True)
    ratio = naive.cycles_per_episode / optimized.cycles_per_episode
    with capsys.disabled():
        print(f"\nnaive/optimized LL/SC barrier at P={P}: x{ratio:.2f}")
    assert ratio > 1.0
    benchmark.extra_info["naive_over_optimized"] = ratio


def test_ablation_proportional_backoff(benchmark, capsys):
    """Backoff helps little on a cache-coherent machine (§3.3.2)."""
    from repro.core.machine import Machine
    from repro.sync.ticket_lock import TicketLock

    def run_with_backoff(backoff):
        machine = Machine(SystemConfig.table1(16))
        lock = TicketLock(machine, Mechanism.LLSC,
                          proportional_backoff_cycles=backoff)

        def thread(proc):
            for _ in range(2):
                yield from lock.acquire(proc)
                yield from proc.delay(100)
                yield from lock.release(proc)
                yield from proc.delay(200)

        machine.run_threads(thread, max_events=6_000_000)
        return machine.last_completion_time

    plain = run_with_backoff(0)
    backed = once(benchmark, run_with_backoff, 40)
    ratio = backed / plain
    with capsys.disabled():
        print(f"\nticket lock with proportional backoff: x{ratio:.2f} "
              f"of plain (paper: little effect on cc machines)")
    # it must not transform performance the way it did on Symmetry
    assert 0.5 < ratio < 2.0
    benchmark.extra_info["backoff_ratio"] = ratio


@pytest.mark.parametrize("branching", (4, 8, 16))
def test_ablation_tree_branching(benchmark, branching, capsys):
    result = once(benchmark, run_barrier_workload, 32, Mechanism.MAO,
                  episodes=EPISODES, tree_branching=branching)
    with capsys.disabled():
        print(f"\nMAO+tree P=32 branching={branching}: "
              f"{result.cycles_per_episode:.0f} cycles/episode")
    benchmark.extra_info["branching"] = branching
    benchmark.extra_info["cycles_per_episode"] = result.cycles_per_episode


def test_ablation_update_push_disabled(benchmark, capsys):
    """AMO barrier where the release falls back to a conventional store
    (no put): isolates the fine-grained update's contribution."""
    from repro.core.machine import Machine

    def run_no_push():
        machine = Machine(SystemConfig.table1(P))
        count = machine.alloc("count", home_node=0)
        flag = machine.alloc("flag", home_node=0)

        def thread(proc):
            # increments still ride the AMU, but the release is a plain
            # coherent store -> invalidate + reload wake-up
            old = yield from proc.amo_inc(count.addr)
            if old == P - 1:
                yield from proc.store(flag.addr, 1)
            else:
                yield from proc.spin_until(flag.addr, lambda v: v >= 1)

        machine.run_threads(thread, max_events=6_000_000)
        return machine.last_completion_time

    pushed = run_barrier_workload(P, Mechanism.AMO, episodes=1,
                                  warmup_episodes=0)
    unpushed = once(benchmark, run_no_push)
    ratio = unpushed / pushed.cycles_per_episode
    with capsys.disabled():
        print(f"\nAMO barrier without update push at P={P}: x{ratio:.2f}")
    assert ratio > 1.0, "the update push must be a net win"
    benchmark.extra_info["no_push_slowdown"] = ratio


def test_ablation_multicast_updates(benchmark, capsys):
    """Footnote 2: hardware multicast would make AMOs even faster."""
    from repro.config.parameters import NetworkConfig
    base = run_barrier_workload(P, Mechanism.AMO, episodes=EPISODES)
    multicast = once(
        benchmark, run_barrier_workload, P, Mechanism.AMO,
        episodes=EPISODES,
        config=SystemConfig.table1(
            P, network=NetworkConfig(multicast_updates=True)))
    speed = base.cycles_per_episode / multicast.cycles_per_episode
    with capsys.disabled():
        print(f"\nAMO barrier with multicast updates at P={P}: "
              f"x{speed:.2f} faster")
    assert speed >= 1.0, "multicast must never hurt"
    benchmark.extra_info["multicast_speedup"] = speed


def test_ablation_link_contention(benchmark, capsys):
    """Optional link-serialization fidelity: the paper's shapes must
    survive it (AMO still wins), at a quantified absolute shift."""
    from repro.config.parameters import NetworkConfig
    cfg = SystemConfig.table1(
        P, network=NetworkConfig(model_link_contention=True))

    def run_pair():
        amo = run_barrier_workload(P, Mechanism.AMO, episodes=EPISODES,
                                   config=cfg)
        llsc = run_barrier_workload(P, Mechanism.LLSC, episodes=EPISODES,
                                    config=cfg)
        return amo, llsc

    amo_c, llsc_c = once(benchmark, run_pair)
    amo_p = run_barrier_workload(P, Mechanism.AMO, episodes=EPISODES)
    speed_contended = llsc_c.cycles_per_episode / amo_c.cycles_per_episode
    shift = amo_c.cycles_per_episode / amo_p.cycles_per_episode
    with capsys.disabled():
        print(f"\nlink contention at P={P}: AMO speedup {speed_contended:.1f}x "
              f"(AMO absolute shift x{shift:.2f})")
    assert speed_contended > 4, "AMO must keep winning under contention"
    benchmark.extra_info["amo_speedup_contended"] = speed_contended
    benchmark.extra_info["amo_shift"] = shift


def test_ablation_router_contention(benchmark, capsys):
    """Fidelity level 3: full-path link reservations.  Shapes survive."""
    from repro.config.parameters import NetworkConfig
    cfg = SystemConfig.table1(
        P, network=NetworkConfig(model_router_contention=True))

    def run_pair():
        amo = run_barrier_workload(P, Mechanism.AMO, episodes=EPISODES,
                                   config=cfg)
        llsc = run_barrier_workload(P, Mechanism.LLSC, episodes=EPISODES,
                                    config=cfg)
        return amo, llsc

    amo_c, llsc_c = once(benchmark, run_pair)
    speed = llsc_c.cycles_per_episode / amo_c.cycles_per_episode
    with capsys.disabled():
        print(f"\nrouter contention at P={P}: AMO speedup {speed:.1f}x")
    assert speed > 4
    benchmark.extra_info["amo_speedup_router_contended"] = speed
