"""E2 — Figure 5 (cycles-per-processor) and E9 — the t_o + t_p*P fit."""

from benchmarks.conftest import once
from repro.harness.experiments import experiment_amo_model, experiment_fig5


def test_fig5_cycles_per_processor(benchmark, barrier_results, capsys):
    result = once(benchmark, experiment_fig5, barrier_results)
    with capsys.disabled():
        print()
        print(result.format())
    for check in result.checks:
        assert check.passed, str(check)
    benchmark.extra_info["rows"] = [
        [str(c) for c in row] for row in result.table.rows]


def test_amo_linear_cost_model(benchmark, barrier_results, capsys):
    result = once(benchmark, experiment_amo_model, barrier_results)
    with capsys.disabled():
        print()
        print(result.format())
    for check in result.checks:
        assert check.passed, str(check)
