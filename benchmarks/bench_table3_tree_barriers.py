"""E3 — Table 3 (tree-based barriers) and E4 — Figure 6.

Tree barriers sweep branching factors per configuration ("we try all
possible tree branching factors and use the one that delivers the best
performance") — the suite runner keeps the best, and per-cell benchmarks
expose each branching factor's cost for the ablation record.
"""

import pytest

from benchmarks.conftest import EPISODES, TREE_CPUS, once
from repro.config.mechanism import Mechanism
from repro.harness.experiments import (
    experiment_fig6, experiment_table3, run_barrier_suite, run_tree_suite,
)
from repro.runner import RunSpec

MECHS = [Mechanism.LLSC, Mechanism.ACTMSG, Mechanism.ATOMIC,
         Mechanism.MAO, Mechanism.AMO]


@pytest.fixture(scope="module")
def tree_results(runner):
    return run_tree_suite(TREE_CPUS, episodes=EPISODES, runner=runner)


@pytest.fixture(scope="module")
def flat_results(runner):
    return run_barrier_suite(TREE_CPUS, episodes=EPISODES, runner=runner)


@pytest.mark.parametrize("branching", (4, 8))
@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_tree_barrier_cell(benchmark, runner, mech, branching):
    n_cpus = TREE_CPUS[-1] if branching < TREE_CPUS[-1] else 16
    spec = RunSpec.barrier(n_processors=n_cpus, mechanism=mech,
                           episodes=EPISODES, tree_branching=branching)
    result = once(benchmark, runner.run_one, spec)
    benchmark.extra_info.update(
        mechanism=mech.label, n_cpus=n_cpus, branching=branching,
        cycles_per_episode=result.cycles_per_episode)
    assert result.cycles_per_episode > 0


def test_table3_speedups(benchmark, tree_results, flat_results, capsys):
    result = once(benchmark, experiment_table3, tree_results, flat_results)
    with capsys.disabled():
        print()
        print(result.format())
    for check in result.checks:
        assert check.passed, str(check)


def test_fig6_tree_cycles_per_processor(benchmark, tree_results, capsys):
    result = once(benchmark, experiment_fig6, tree_results)
    with capsys.disabled():
        print()
        print(result.format())
    for check in result.checks:
        assert check.passed, str(check)
