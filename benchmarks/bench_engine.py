"""Simulator-performance benchmarks (not paper artifacts).

Tracks the raw cost of the event kernel and of a representative
machine's simulation throughput, so regressions in the substrate show
up in ``--benchmark-compare`` runs.
"""

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sim.kernel import Simulator
from repro.sim.primitives import Timeout


def test_kernel_event_throughput(benchmark):
    """Dispatch rate of bare scheduled callbacks."""
    def run():
        sim = Simulator()
        for i in range(20_000):
            sim.schedule(i % 997, lambda: None)
        sim.run()
        return sim.events_dispatched

    assert benchmark(run) == 20_000


def test_coroutine_switch_throughput(benchmark):
    """Cost of process suspension/resumption."""
    def run():
        sim = Simulator()

        def worker():
            for _ in range(2_000):
                yield Timeout(1)

        for _ in range(5):
            sim.spawn(worker())
        return sim.run()

    assert benchmark(run) == 2_000


def test_machine_simulation_rate(benchmark):
    """A 16-CPU AMO barrier episode: end-to-end machine throughput."""
    def run():
        machine = Machine(SystemConfig.table1(16))
        bar = machine.alloc("b", home_node=0)

        def thread(proc):
            yield from proc.amo_inc(bar.addr, test=16, wait_reply=False)
            yield from proc.spin_until(bar.addr, lambda v: v >= 16)

        machine.run_threads(thread)
        return machine.sim.events_dispatched

    events = benchmark(run)
    assert events > 0
