"""Application-level benchmarks: the paper's motivation, quantified.

The intro argues synchronization cost throttles whole applications
(5.76 MFLOPS lost per Origin-3000 barrier).  These benches measure the
three kernels of :mod:`repro.apps` under every mechanism and report the
application-level speedup AMOs deliver — not just the microbenchmark
one.  All runs verify their numerical results.
"""

import pytest

from benchmarks.conftest import once
from repro.apps.histogram import run_histogram
from repro.apps.jacobi import run_jacobi
from repro.apps.task_farm import run_task_farm
from repro.config.mechanism import Mechanism

MECHS = [Mechanism.LLSC, Mechanism.ACTMSG, Mechanism.ATOMIC,
         Mechanism.MAO, Mechanism.AMO]

P = 16


@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_app_jacobi(benchmark, mech):
    result = once(benchmark, run_jacobi, P, mech, n_points=128, sweeps=4)
    assert result.verified
    benchmark.extra_info.update(
        mechanism=mech.label, total_cycles=result.total_cycles,
        sync_fraction=round(result.sync_fraction, 4))


@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_app_histogram(benchmark, mech):
    result = once(benchmark, run_histogram, P, mech, samples_per_cpu=24)
    assert result.verified
    benchmark.extra_info.update(
        mechanism=mech.label, total_cycles=result.total_cycles)


@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_app_task_farm(benchmark, mech):
    result = once(benchmark, run_task_farm, P, mech, n_tasks=96)
    assert result.verified
    benchmark.extra_info.update(
        mechanism=mech.label, total_cycles=result.total_cycles,
        imbalance=round(result.detail["imbalance"], 4))


def test_app_level_amo_speedups(benchmark, capsys):
    """Headline: AMO's application-level wins on all three kernels."""
    def run_all():
        out = {}
        for name, runner, kwargs in (
            ("jacobi", run_jacobi, dict(n_points=128, sweeps=4)),
            ("histogram", run_histogram, dict(samples_per_cpu=24)),
            ("task-farm", run_task_farm, dict(n_tasks=96)),
        ):
            base = runner(P, Mechanism.LLSC, **kwargs)
            amo = runner(P, Mechanism.AMO, **kwargs)
            assert base.verified and amo.verified
            out[name] = (base.total_cycles, amo.total_cycles,
                         amo.speedup_over(base))
        return out

    results = once(benchmark, run_all)
    with capsys.disabled():
        print()
        for name, (base, amo, speedup) in results.items():
            print(f"  {name:>10s}: LL/SC {base:>8d}  AMO {amo:>8d}  "
                  f"=> x{speedup:.2f}")
    for name, (_b, _a, speedup) in results.items():
        assert speedup > 1.0, name
    benchmark.extra_info["speedups"] = {
        k: round(v[2], 3) for k, v in results.items()}
