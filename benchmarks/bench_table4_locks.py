"""E5 — Table 4 (ticket/array locks) and E6 — Figure 7 (lock traffic)."""

import pytest

from benchmarks.conftest import ACQUISITIONS, FIG7_CPUS, LOCK_CPUS, once
from repro.config.mechanism import Mechanism
from repro.harness.experiments import (
    experiment_fig7, experiment_table4, run_lock_suite,
)
from repro.runner import RunSpec

MECHS = [Mechanism.LLSC, Mechanism.ACTMSG, Mechanism.ATOMIC,
         Mechanism.MAO, Mechanism.AMO]


@pytest.fixture(scope="module")
def lock_results(runner):
    cpus = sorted(set(LOCK_CPUS) | set(FIG7_CPUS))
    return run_lock_suite(cpus, acquisitions_per_cpu=ACQUISITIONS,
                          runner=runner)


@pytest.mark.parametrize("lock_type", ("ticket", "array"))
@pytest.mark.parametrize("n_cpus", LOCK_CPUS)
@pytest.mark.parametrize("mech", MECHS, ids=[m.value for m in MECHS])
def test_lock_cell(benchmark, runner, mech, n_cpus, lock_type):
    spec = RunSpec.lock(n_processors=n_cpus, mechanism=mech,
                        lock_type=lock_type,
                        acquisitions_per_cpu=ACQUISITIONS)
    result = once(benchmark, runner.run_one, spec)
    benchmark.extra_info.update(
        mechanism=mech.label, n_cpus=n_cpus, lock=lock_type,
        cycles_per_acquisition=result.cycles_per_acquisition,
        bytes_per_acquisition=result.bytes_per_acquisition)
    assert result.cycles_per_acquisition > 0


def test_table4_speedups(benchmark, lock_results, capsys):
    result = once(benchmark, experiment_table4, lock_results)
    with capsys.disabled():
        print()
        print(result.format())
    for check in result.checks:
        assert check.passed, str(check)


def test_fig7_lock_traffic(benchmark, lock_results, capsys):
    result = once(benchmark, experiment_fig7, lock_results,
                  cpu_counts=FIG7_CPUS)
    with capsys.disabled():
        print()
        print(result.format())
    # AMO-lowest must hold at any size; the ActMsg-highest claim is a
    # high-contention (128/256 CPU) effect — enforce it only there.
    for check in result.checks:
        if "ActMsg" in check.name and max(FIG7_CPUS) < 128:
            continue
        assert check.passed, str(check)
