#!/usr/bin/env python
"""Ticket lock vs Anderson array lock under contention (paper Table 4).

Shows the two lock-algorithm regimes the paper identifies:

* at small machine sizes the ticket lock wins — the array lock pays a
  sequencer RMW *plus* a flag reset store per acquisition;
* at large sizes the array lock wins — a ticket-lock release invalidates
  every spinner (O(P) reload storm at the home node), while an array
  release touches exactly one waiter's line;
* with AMOs the difference collapses: both locks ride the update-push
  wake-up, so "we can use the simpler ticket locks instead of more
  complicated array locks without losing any performance" (§4.2.3).

Run:  python examples/lock_contention.py [--cpus 4 16 64] [--acq 3]
"""

import argparse

from repro.config import Mechanism
from repro.stats.report import TableFormatter
from repro.workloads import run_lock_workload

MECHS = [Mechanism.LLSC, Mechanism.ACTMSG, Mechanism.ATOMIC,
         Mechanism.MAO, Mechanism.AMO]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--cpus", type=int, nargs="+", default=[4, 16, 64])
    parser.add_argument("--acq", type=int, default=3,
                        help="acquisitions per CPU")
    args = parser.parse_args()

    cols = ["CPUs"]
    for m in MECHS:
        cols += [f"{m.label} tkt", f"{m.label} arr"]
    table = TableFormatter(cols, title="Lock speedup over LL/SC ticket "
                                       "(cycles per acquisition)")
    for p in args.cpus:
        base = run_lock_workload(p, Mechanism.LLSC, "ticket",
                                 acquisitions_per_cpu=args.acq)
        row = [p]
        for m in MECHS:
            for lt in ("ticket", "array"):
                r = run_lock_workload(p, m, lt,
                                      acquisitions_per_cpu=args.acq)
                row.append(r.speedup_over(base))
        table.add_row(row)
    print(table.to_text())
    print()
    print("Read the AMO columns: ticket ~ array — the simple algorithm "
          "suffices once the hardware pushes updates.")


if __name__ == "__main__":
    main()
