#!/usr/bin/env python
"""Barrier scaling across all five synchronization mechanisms.

Reproduces a reduced version of the paper's Table 2 / Figure 5: for each
machine size, time a centralized barrier implemented with LL/SC,
processor-side atomics, active messages, memory-side atomics (MAO), and
active memory operations (AMO), then print speedups over LL/SC and
cycles-per-processor.

Run:  python examples/barrier_scaling.py [--cpus 4 8 16 32] [--episodes 3]
"""

import argparse

from repro.config import Mechanism
from repro.stats.report import TableFormatter, fit_linear
from repro.workloads import run_barrier_workload

MECHS = [Mechanism.LLSC, Mechanism.ACTMSG, Mechanism.ATOMIC,
         Mechanism.MAO, Mechanism.AMO]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--cpus", type=int, nargs="+",
                        default=[4, 8, 16, 32])
    parser.add_argument("--episodes", type=int, default=3)
    args = parser.parse_args()

    speed = TableFormatter(["CPUs"] + [m.label for m in MECHS],
                           title="Barrier speedup over LL/SC")
    perproc = TableFormatter(["CPUs"] + [m.label for m in MECHS],
                             float_format="{:.0f}",
                             title="Barrier cycles per processor")
    amo_cycles = []
    for p in args.cpus:
        results = {m: run_barrier_workload(p, m, episodes=args.episodes)
                   for m in MECHS}
        base = results[Mechanism.LLSC]
        speed.add_row([p] + [results[m].speedup_over(base) for m in MECHS])
        perproc.add_row([p] + [results[m].cycles_per_processor
                               for m in MECHS])
        amo_cycles.append(results[Mechanism.AMO].cycles_per_episode)

    print(speed.to_text())
    print()
    print(perproc.to_text())
    if len(args.cpus) >= 3:
        t_o, t_p, r2 = fit_linear(args.cpus, amo_cycles)
        print()
        print(f"AMO barrier fits t_o + t_p*P: t_o={t_o:.0f} cycles, "
              f"t_p={t_p:.1f} cycles/CPU (R^2={r2:.4f}) — the paper's "
              f"Section 4.2.1 linear-cost claim")


if __name__ == "__main__":
    main()
