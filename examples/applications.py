#!/usr/bin/env python
"""Application-level impact of AMOs: three verified parallel kernels.

Runs the kernels from ``repro.apps`` — Jacobi relaxation (barrier-bound),
a parallel histogram (atomic-bound), and a self-scheduling task farm
(claim-counter-bound) — under every synchronization mechanism, verifying
each numerical result, and reports end-to-end runtime plus the fraction
of time lost to synchronization (the paper intro's "MFLOPS per barrier"
concern).

Run:  python examples/applications.py [--cpus 8]
"""

import argparse

from repro.apps import run_histogram, run_jacobi, run_task_farm
from repro.config import Mechanism
from repro.stats.report import TableFormatter

MECHS = [Mechanism.LLSC, Mechanism.ACTMSG, Mechanism.ATOMIC,
         Mechanism.MAO, Mechanism.AMO]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--cpus", type=int, default=8)
    args = parser.parse_args()
    p = args.cpus

    kernels = [
        ("jacobi", lambda m: run_jacobi(p, m, n_points=16 * p, sweeps=3)),
        ("histogram", lambda m: run_histogram(p, m, samples_per_cpu=16)),
        ("task-farm", lambda m: run_task_farm(p, m, n_tasks=8 * p)),
    ]
    for name, runner in kernels:
        table = TableFormatter(
            ["mechanism", "cycles", "sync %", "speedup vs LL/SC",
             "verified"],
            title=f"{name} on {p} CPUs")
        base = None
        for mech in MECHS:
            result = runner(mech)
            if base is None:
                base = result
            table.add_row([mech.label, result.total_cycles,
                           100.0 * result.sync_fraction,
                           result.speedup_over(base),
                           "yes" if result.verified else "NO"])
            assert result.verified, (name, mech)
        print(table.to_text())
        print()
    print("Every cell computed its result through the simulated coherent "
          "memory and matched the sequential reference.")


if __name__ == "__main__":
    main()
