#!/usr/bin/env python
"""Trace a barrier episode and export a Chrome-trace timeline.

Attaches a :class:`repro.trace.TraceRecorder` to two machines running
the same 8-CPU barrier — once over LL/SC, once over AMO — then prints
per-CPU time accounting and writes ``trace_llsc.json`` /
``trace_amo.json``.  Open either file in ``chrome://tracing`` or
https://ui.perfetto.dev to *see* the paper's mechanisms: the LL/SC
retry churn and invalidation storms versus the AMO timeline's two
packets per CPU and a flat wake-up.

Run:  python examples/trace_a_barrier.py [--out-dir .]
"""

import argparse
import os

from repro import Machine, SystemConfig
from repro.config import Mechanism
from repro.stats.collector import op_latency_stats
from repro.sync import CentralizedBarrier
from repro.trace import TraceRecorder


def run_traced(mech: Mechanism, out_path: str) -> None:
    machine = Machine(SystemConfig.table1(8))
    tracer = TraceRecorder.attach(machine)
    barrier = CentralizedBarrier(machine, mech)

    def thread(proc):
        for _ in range(2):
            yield from barrier.wait(proc)

    machine.run_threads(thread)
    tracer.save(out_path)

    print(f"--- {mech.label} barrier, 8 CPUs, 2 episodes ---")
    print(tracer.summary())
    spins = op_latency_stats(tracer, "spin_until")
    if len(spins):
        print(f"spin spans: {spins.summary()}")
    print(f"total simulated time: {machine.last_completion_time} cycles")
    print(f"timeline written to {out_path}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out-dir", default=".")
    args = parser.parse_args()
    run_traced(Mechanism.LLSC,
               os.path.join(args.out_dir, "trace_llsc.json"))
    run_traced(Mechanism.AMO,
               os.path.join(args.out_dir, "trace_amo.json"))
    print("Compare the two timelines: the LL/SC one is dominated by "
          "llsc_rmw spans and invalidation-driven reload messages; the "
          "AMO one is two packets per CPU and a burst of word updates.")


if __name__ == "__main__":
    main()
