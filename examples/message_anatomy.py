#!/usr/bin/env python
"""Message anatomy of a three-processor barrier round (paper Figure 1).

Places three processors on three distinct nodes, homes the barrier
variable on a fourth, lets each processor perform one atomic increment,
and prints every packet that crosses the interconnect — first with
conventional LL/SC (Figure 1a: ownership requests, interventions,
invalidations, retries — the paper counts 18 one-way messages), then
with an AMO (Figure 1b: one command and one reply per processor = 6).

Run:  python examples/message_anatomy.py
"""

from repro import Machine, SystemConfig
from repro.config import Mechanism


def run(mech: Mechanism) -> None:
    machine = Machine(SystemConfig.table1(8))
    machine.net.stats.trace_enabled = True
    var = machine.alloc("counter", home_node=3)
    participants = [0, 2, 4]        # CPU 0 of nodes 0, 1, 2

    def thread(proc):
        if mech is Mechanism.AMO:
            yield from proc.amo_inc(var.addr)
        else:
            yield from proc.llsc_rmw(var.addr, lambda v: v + 1)

    machine.run_threads(thread, cpus=participants)
    assert machine.peek(var.addr) == 3

    print(f"--- {mech.label}: one increment from each of 3 processors ---")
    for entry in machine.net.stats.trace:
        print(f"  {entry}")
    print(f"  => {machine.net.stats.total_messages} one-way network "
          f"messages (paper Figure 1: "
          f"{6 if mech is Mechanism.AMO else 18})")
    print()


def main() -> None:
    run(Mechanism.LLSC)
    run(Mechanism.AMO)
    print("The AMO round is exactly request + reply per processor; the")
    print("conventional round bounces exclusive ownership between caches,")
    print("with interventions, invalidations and failed-SC retries.")


if __name__ == "__main__":
    main()
