#!/usr/bin/env python
"""An OpenMP-style parallel sum reduction, the intro's motivating shape.

The paper's benchmarks are OpenMP programs; the canonical pattern that
stresses synchronization is a parallel reduction followed by a barrier:

    #pragma omp parallel for reduction(+:sum)
    for (...) ...
    // implicit barrier

This example runs that pattern with the accumulation and the barrier
implemented by each mechanism, and reports how much of the total runtime
is synchronization — the paper's "MFLOPS per barrier" concern in
miniature.

Run:  python examples/openmp_reduction.py [--cpus 16]
"""

import argparse

from repro import Machine, SystemConfig
from repro.config import Mechanism
from repro.stats.report import TableFormatter
from repro.sync import CentralizedBarrier, fetch_add

WORK_ITEMS_PER_CPU = 32
CYCLES_PER_ITEM = 20


def run(mech: Mechanism, n_procs: int) -> tuple[int, int]:
    machine = Machine(SystemConfig.table1(n_procs))
    total = machine.alloc("sum", home_node=0)
    barrier = CentralizedBarrier(machine, mech)

    def thread(proc):
        local = 0
        for i in range(WORK_ITEMS_PER_CPU):
            local += proc.cpu_id * WORK_ITEMS_PER_CPU + i
            yield from proc.delay(CYCLES_PER_ITEM)
        # reduction(+:sum): one atomic add of the private partial sum
        yield from fetch_add(proc, mech, total.addr, local)
        # the parallel region's implicit barrier
        yield from barrier.wait(proc)

    machine.run_threads(thread)
    expected = sum(range(n_procs * WORK_ITEMS_PER_CPU))
    measured = machine.peek(total.addr)
    assert measured == expected, (measured, expected)
    return machine.last_completion_time, machine.net.stats.total_messages


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--cpus", type=int, default=16)
    args = parser.parse_args()

    compute_only = WORK_ITEMS_PER_CPU * CYCLES_PER_ITEM
    table = TableFormatter(
        ["mechanism", "total cycles", "sync cycles", "sync %", "messages"],
        title=f"Parallel sum reduction on {args.cpus} CPUs "
              f"(compute = {compute_only} cycles/CPU)")
    for mech in [Mechanism.LLSC, Mechanism.ACTMSG, Mechanism.ATOMIC,
                 Mechanism.MAO, Mechanism.AMO]:
        cycles, msgs = run(mech, args.cpus)
        sync = cycles - compute_only
        table.add_row([mech.label, cycles, sync,
                       100.0 * sync / cycles, msgs])
    print(table.to_text())
    print()
    print("Everything beyond the fixed compute time is synchronization "
          "overhead; AMOs shrink it to the network round trip plus the "
          "update push.")


if __name__ == "__main__":
    main()
