#!/usr/bin/env python
"""Quickstart: build a machine, run an AMO barrier, inspect the results.

This is the paper's Figure 3(c) in runnable form: every CPU executes

    amo_inc(&barrier_variable, num_procs);       // test value attached
    spin_until(barrier_variable == num_procs);

The ``amo.inc`` executes at the barrier variable's *home memory
controller*; the attached test value makes the AMU push a word-grained
update into every spinner's cache when the count completes — no
invalidations, no reload storm.

Run:  python examples/quickstart.py
"""

from repro import Machine, SystemConfig


def main() -> None:
    n_procs = 16
    machine = Machine(SystemConfig.table1(n_processors=n_procs))
    barrier = machine.alloc("barrier", home_node=0)

    def thread(proc):
        # arrive: one AMO command message to the home AMU
        yield from proc.amo_inc(barrier.addr, test=n_procs)
        # wait: spins in the local cache until the AMU's update lands
        value = yield from proc.spin_until(barrier.addr,
                                           lambda v: v >= n_procs)
        return value

    results = machine.run_threads(thread)

    print(f"{n_procs} CPUs passed the barrier "
          f"(final count = {machine.peek(barrier.addr)})")
    print(f"simulated time : {machine.last_completion_time} cycles "
          f"({machine.last_completion_time / 2.0:.0f} ns at 2 GHz)")
    print(f"network traffic: {machine.net.stats.total_messages} messages, "
          f"{machine.net.stats.total_bytes} bytes")
    print()
    print(machine.net.stats.format_report())
    assert all(r >= n_procs for r in results)


if __name__ == "__main__":
    main()
