#!/usr/bin/env python
"""Defining and using a custom AMO instruction.

The paper: "We are considering a wide range of AMO instructions, but for
this study we focus on amo.inc and amo.fetchadd."  The AMU's function
unit is a registry in this library, so new single-word atomic ops are a
three-line addition.  Here we register ``fetchmax2`` — fetch-and-
store-max-of-double — and use the built-in ``max`` op to compute a
global maximum reduction without any lock: every CPU ships its local
maxima to the home AMU instead of bouncing a cache line around.

Run:  python examples/custom_amo.py
"""

from repro import Machine, SystemConfig
from repro.amu.ops import OPS, AmoOp, register_op


def main() -> None:
    # --- registering a brand-new op --------------------------------------
    if "fetchmax2" not in OPS:
        register_op(AmoOp("fetchmax2",
                          lambda old, operand: max(old, 2 * operand)))

    n_procs = 8
    machine = Machine(SystemConfig.table1(n_processors=n_procs))
    global_max = machine.alloc("global_max", home_node=0)
    done = machine.alloc("done", home_node=0)

    # Each CPU owns a slice of synthetic data; the true max is known.
    data = {cpu: [(cpu * 7919 + i * 104729) % 100003
                  for i in range(64)] for cpu in range(n_procs)}
    expected = max(max(vals) for vals in data.values())

    def thread(proc):
        local_best = 0
        for value in data[proc.cpu_id]:
            local_best = max(local_best, value)
            yield from proc.delay(4)       # the "compute" per element
        # One AMO carries the whole slice's contribution to the home:
        yield from proc.amo("max", global_max.addr, operand=local_best)
        # Arrive at an AMO barrier so the readout below is safe:
        yield from proc.amo_inc(done.addr, test=n_procs, wait_reply=False)
        yield from proc.spin_until(done.addr, lambda v: v >= n_procs)
        return local_best

    machine.run_threads(thread)
    measured = machine.peek(global_max.addr)
    print(f"global max via amo.max : {measured} (expected {expected})")
    print(f"cycles                 : {machine.last_completion_time}")
    print(f"network messages       : {machine.net.stats.total_messages}")
    assert measured == expected

    # The custom op works the same way:
    m2 = Machine(SystemConfig.table1(4))
    var = m2.alloc("v", home_node=0)

    def t2(proc):
        old = yield from proc.amo("fetchmax2", var.addr,
                                  operand=proc.cpu_id + 1)
        return old

    m2.run_threads(t2)
    print(f"fetchmax2 result       : {m2.peek(var.addr)} "
          f"(= max over 2*(cpu_id+1) = 8)")
    assert m2.peek(var.addr) == 8


if __name__ == "__main__":
    main()
