#!/usr/bin/env python
"""Sharded-observability acceptance check — CI's ``obs-shard`` job.

Runs a barrier and a lock workload with metrics enabled, once
single-process and once partitioned across ``--shards`` worker
processes, and asserts the sharded-observability contract:

1. cycles (and lock acquisition latencies) are identical — attaching
   metrics must not perturb the conservative-window schedule;
2. the merged metrics snapshot is schema-valid
   (:mod:`repro.obs.schema`);
3. every non-exempt counter and histogram equals the single-process
   value — the exemption list is exactly
   :data:`repro.obs.snapshot.SHARD_EXEMPT_COUNTERS` plus the
   shard-only ``shard.*`` telemetry family;
4. the recomputed machine-wide critical path equals the
   single-process analyzer's output;
5. the ``shard.*`` telemetry family is present and internally
   consistent (egress totals equal ingress totals — every exported
   packet is delivered exactly once).

Writes the merged export document (uploaded as a CI artifact) and
exits non-zero on any violation::

    PYTHONPATH=src python tools/obs_shard_smoke.py --shards 2 \\
        --out obs_shard_export.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config.mechanism import Mechanism
from repro.obs.schema import validate_export, validate_snapshot
from repro.obs.snapshot import build_export, shard_counter_drift
from repro.shard.session import run_sharded, telemetry_summary
from repro.workloads.barrier import run_barrier_workload
from repro.workloads.locks import run_lock_workload


def _check(label: str, ok: bool, detail: str, failures: list[str]) -> None:
    print(f"  [{'PASS' if ok else 'FAIL'}] {label}" +
          (f" — {detail}" if detail and not ok else ""))
    if not ok:
        failures.append(f"{label}: {detail}")


def run_pair(kind: str, kwargs: dict, shards: int,
             failures: list[str]) -> tuple:
    """One workload single-process vs sharded; returns both results."""
    if kind == "barrier":
        ref = run_barrier_workload(**kwargs)
    else:
        ref = run_lock_workload(**kwargs)
    telemetry: dict = {}
    got = run_sharded(kind, kwargs, shards, telemetry=telemetry)

    print(f"{kind} @ {kwargs['n_processors']} CPUs, {shards} shards:")
    _check("cycles identical",
           got.total_cycles == ref.total_cycles,
           f"sharded {got.total_cycles} != single {ref.total_cycles}",
           failures)
    _check("traffic identical",
           got.traffic.messages == ref.traffic.messages
           and got.traffic.bytes == ref.traffic.bytes,
           "per-kind message/byte counters differ", failures)
    if kind == "lock":
        _check("acquire latencies identical",
               sorted(got.acquire_latency._samples) ==
               sorted(ref.acquire_latency._samples),
               "per-acquisition latency samples differ", failures)

    errors = validate_snapshot(got.metrics)
    _check("merged snapshot schema-valid", not errors,
           "; ".join(errors[:3]), failures)
    drift = shard_counter_drift(ref.metrics, got.metrics)
    _check("counters equal modulo exemption list", not drift,
           "; ".join(drift[:5]), failures)
    _check("critical path recomputed exactly",
           got.metrics.get("critical_path") ==
           ref.metrics.get("critical_path"),
           f"sharded {got.metrics.get('critical_path')} != "
           f"single {ref.metrics.get('critical_path')}", failures)

    counters = got.metrics["counters"]
    _check("shard telemetry present",
           counters.get("shard.sync_rounds", 0) > 0
           and "shard.window_cycles" in got.metrics["histograms"],
           "shard.* family missing from merged snapshot", failures)
    _check("egress volume equals ingress volume",
           counters.get("shard.egress_messages") ==
           counters.get("shard.ingress_messages")
           and counters.get("shard.egress_bytes") ==
           counters.get("shard.ingress_bytes"),
           f"egress {counters.get('shard.egress_messages')} msgs / "
           f"{counters.get('shard.egress_bytes')} B vs ingress "
           f"{counters.get('shard.ingress_messages')} msgs / "
           f"{counters.get('shard.ingress_bytes')} B", failures)
    print(f"  telemetry: "
          f"{json.dumps(telemetry_summary(telemetry['snapshot']))}")
    return ref, got


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cpus", type=int, default=32)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--episodes", type=int, default=2)
    parser.add_argument("--acquisitions", type=int, default=2)
    parser.add_argument("--mechanism", default="amo",
                        choices=[m.value for m in Mechanism])
    parser.add_argument("--out", default="obs_shard_export.json",
                        help="merged export document path, or - for none")
    args = parser.parse_args(argv)

    mech = Mechanism(args.mechanism)
    failures: list[str] = []
    _, barrier = run_pair(
        "barrier",
        dict(n_processors=args.cpus, mechanism=mech,
             episodes=args.episodes, warmup_episodes=1, metrics=True),
        args.shards, failures)
    _, lock = run_pair(
        "lock",
        dict(n_processors=args.cpus, mechanism=mech,
             acquisitions_per_cpu=args.acquisitions, warmup_per_cpu=1,
             metrics=True),
        args.shards, failures)

    label = f"{mech.value}@{args.cpus}x{args.shards}shards"
    export = build_export(
        [(f"barrier/{label}", barrier.metrics),
         (f"lock/{label}", lock.metrics)],
        tool="obs_shard_smoke",
        notes=f"merged sharded metrics export, {args.shards} shards")
    errors = validate_export(export)
    _check("export document schema-valid", not errors,
           "; ".join(errors[:3]), failures)
    if args.out != "-":
        Path(args.out).write_text(json.dumps(export, indent=2) + "\n")
        print(f"wrote {args.out}")

    if failures:
        print(f"FAIL: {len(failures)} sharded-observability check(s) "
              "violated", file=sys.stderr)
        return 1
    print("OK: sharded observability matches single-process")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
