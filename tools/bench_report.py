#!/usr/bin/env python
"""Merge the per-subsystem bench artifacts into ``BENCH_trajectory.json``.

Each performance PR leaves behind its own proof artifact — the sweep
runner (``BENCH_runner.json``), the observability overhead benchmark
(``BENCH_obs.json``), and the kernel scale ladder (``BENCH_scale.json``).
This tool folds whichever of them exist into one trajectory document:
per-source events/second samples, a geometric-mean throughput per
source, and one overall geomean — a single number a CI trend line (or a
human skimming the repo) can follow across PRs, keyed by the git commit
it was measured at.

    PYTHONPATH=src python tools/bench_report.py --out BENCH_trajectory.json

Missing inputs are tolerated and recorded as absent so the report can be
generated at any point in the repo's history.
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
from pathlib import Path


def _geomean(values: list[float]) -> float | None:
    vals = [v for v in values if v and v > 0]
    if not vals:
        return None
    return round(math.exp(sum(map(math.log, vals)) / len(vals)))


def _git_sha(repo: Path) -> str | None:
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=repo,
                             capture_output=True, text=True, timeout=10)
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def extract_runner(doc: dict) -> dict:
    """Throughput samples from the sweep-runner benchmark (one per
    execution mode; the warm-cache mode executes nothing, so it carries
    no meaningful events/s and is skipped)."""
    samples = {
        mode: doc[mode]["events_per_second"]
        for mode in ("serial", "parallel", "cache_cold")
        if isinstance(doc.get(mode), dict)
        and doc[mode].get("events_per_second")
    }
    return {"samples": samples,
            "geomean_events_per_second": _geomean(list(samples.values()))}


def extract_obs(doc: dict) -> dict:
    """Throughput samples from the observability overhead benchmark."""
    samples = {
        mode: doc[mode]["events_per_second"]
        for mode in ("off", "metrics", "metrics_sampler")
        if isinstance(doc.get(mode), dict)
        and doc[mode].get("events_per_second")
    }
    out = {"samples": samples,
           "geomean_events_per_second": _geomean(list(samples.values()))}
    if doc.get("backend"):
        out["backend"] = doc["backend"]
    return out


def extract_scale(doc: dict) -> dict:
    """Per-cell samples plus the ladder's own aggregates and (when the
    capture was taken against a baseline) its speedup summary.

    Cells carry an optional ``backend`` tag (``bench_scale.py
    --backend``).  The ``reference``-backend cells are the headline
    samples — the trajectory's cross-PR trend must not jump when a
    faster backend is captured alongside — while other backends land
    under ``backends`` with their own geomean and ``gated: true``:
    ``bench_scale.py --gate-trajectory`` gates each backend's cells
    against its own trend, so a model-port regression that only slows
    the accel backend fails CI even though the headline (reference)
    trend is untouched.  Backend samples still stay out of the overall
    geomean."""
    cells = doc.get("cells", [])

    def key(c: dict) -> str:
        return f"{c['workload']}/{c['mechanism']}@{c['n_processors']}"

    samples = {key(c): c["events_per_second"] for c in cells
               if c.get("backend") in (None, "reference")}
    out = {"samples": samples,
           "geomean_events_per_second": _geomean(list(samples.values())),
           "aggregate_events_per_second":
               doc.get("aggregate_events_per_second")}
    by_backend: dict[str, dict[str, float]] = {}
    for c in cells:
        b = c.get("backend")
        if b in (None, "reference"):
            continue
        by_backend.setdefault(b, {})[key(c)] = c["events_per_second"]
    if by_backend:
        out["backends"] = {
            b: {"samples": s,
                "geomean_events_per_second": _geomean(list(s.values())),
                "gated": True}
            for b, s in sorted(by_backend.items())
        }
    if doc.get("backend_speedup"):
        out["backend_speedup"] = doc["backend_speedup"]
    if doc.get("vs_baseline"):
        out["vs_baseline"] = doc["vs_baseline"]
    return out


def extract_shard(doc: dict) -> dict:
    """The sharded-execution capture (``bench_scale.py --shards N``).
    Its absolute throughput is a *host* property — on the 1-core
    container that produces the committed artifacts, 4 shards lose wall
    clock by design — so its samples stay out of the overall geomean
    and the record keeps the shard count, host core count, and
    wall-clock speedup side by side."""
    out = extract_scale(doc)
    out["shards"] = doc.get("shards")
    out["host_cores"] = (doc.get("host") or {}).get("cores")
    out["excluded_from_overall"] = True
    return out


def extract_obs_shard(doc: dict) -> dict:
    """The sharded observability cells of ``BENCH_obs.json``
    (``bench_obs.py --shards N``): partitioned-execution throughput with
    metrics off and on, plus the metered run's ``shard.*`` telemetry
    digest.  Like the ``shard`` source, absolute throughput is a host
    property (the committed artifact comes from a small container), so
    the samples stay out of the headline geomean."""
    samples = {
        mode: doc[mode]["events_per_second"]
        for mode in ("off_sharded", "metrics_sharded")
        if isinstance(doc.get(mode), dict)
        and doc[mode].get("events_per_second")
    }
    out = {"samples": samples,
           "geomean_events_per_second": _geomean(list(samples.values())),
           "shards": doc.get("shards"),
           "metrics_sharded_overhead_pct":
               doc.get("metrics_sharded_overhead_pct"),
           "excluded_from_overall": True}
    telemetry = (doc.get("metrics_sharded") or {}).get("shard_telemetry")
    if telemetry is not None:
        out["shard_telemetry"] = telemetry
    return out


EXTRACTORS = {
    "runner": ("BENCH_runner.json", extract_runner),
    "obs": ("BENCH_obs.json", extract_obs),
    "scale": ("BENCH_scale.json", extract_scale),
    "shard": ("BENCH_shard.json", extract_shard),
    "obs_shard": ("BENCH_obs.json", extract_obs_shard),
}


def build_report(repo: Path, inputs: dict[str, Path]) -> dict:
    sources = {}
    all_samples: list[float] = []
    for name, (default, extract) in EXTRACTORS.items():
        path = inputs.get(name, repo / default)
        if not path.exists():
            sources[name] = {"file": str(path), "present": False}
            continue
        doc = json.loads(path.read_text())
        entry = {"file": str(path), "present": True, **extract(doc)}
        sources[name] = entry
        if not entry.get("excluded_from_overall"):
            all_samples.extend(entry["samples"].values())
    return {
        "benchmark": "trajectory",
        "git_sha": _git_sha(repo),
        "sources": sources,
        "geomean_events_per_second": _geomean(all_samples),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=str(Path(__file__).parent.parent),
                        help="repo root to find artifacts in")
    for name, (default, _) in EXTRACTORS.items():
        parser.add_argument(f"--{name}", default=None,
                            help=f"path to {default} (default: <repo>/"
                                 f"{default})")
    parser.add_argument("--out", default="BENCH_trajectory.json",
                        help="output path, or - for stdout")
    args = parser.parse_args(argv)

    repo = Path(args.repo)
    inputs = {name: Path(getattr(args, name))
              for name in EXTRACTORS if getattr(args, name)}
    report = build_report(repo, inputs)

    text = json.dumps(report, indent=2) + "\n"
    if args.out == "-":
        print(text, end="")
    else:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    present = [n for n, s in report["sources"].items() if s["present"]]
    print(f"sources: {', '.join(present) or 'none'}; overall geomean "
          f"{report['geomean_events_per_second']} events/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
