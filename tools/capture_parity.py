#!/usr/bin/env python
"""(Re)capture the golden determinism-parity fingerprints.

Writes ``tests/integration/golden/parity_32.json`` — the exact cycle
counts, per-kind message counts, and kernel event counts every mechanism
must reproduce (see :mod:`repro.harness.parity`).  Only rerun this when
simulated *behaviour* intentionally changes; a pure performance change
to the kernel or protocol data structures must leave the goldens alone.

    PYTHONPATH=src python tools/capture_parity.py
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.harness.parity import capture_all

DEFAULT_OUT = Path(__file__).resolve().parent.parent / \
    "tests" / "integration" / "golden" / "parity_32.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cpus", type=int, default=32)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    doc = capture_all(n_processors=args.cpus)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(doc['fingerprints'])} mechanisms)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
