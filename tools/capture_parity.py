#!/usr/bin/env python
"""(Re)capture or verify the golden determinism-parity fingerprints.

Capture writes ``tests/integration/golden/parity_<P>.json`` — the exact
cycle counts, per-kind message counts, and kernel event counts every
mechanism must reproduce (see :mod:`repro.harness.parity`).  Only rerun
a capture when simulated *behaviour* intentionally changes; a pure
performance change to the kernel or protocol data structures must leave
the cycle and message fingerprints alone (batched delivery may shrink
``events_dispatched`` — that field documents the kernel generation).

    PYTHONPATH=src python tools/capture_parity.py
    PYTHONPATH=src python tools/capture_parity.py --cpus 512 --barrier-only

``--verify`` re-runs every fingerprint and compares against the golden
file instead of overwriting it, exiting non-zero on drift.  Combined
with ``--warm`` the runs go through the snapshot/warm-start path, which
makes the check prove that snapshot-restored machines replay
cycle-for-cycle identically to the fresh-built goldens::

    PYTHONPATH=src python tools/capture_parity.py --verify --warm
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.config.mechanism import Mechanism
from repro.harness.parity import (SHARD_EXEMPT_KEYS, capture_all,
                                  diff_documents)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / \
    "tests" / "integration" / "golden"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cpus", type=int, default=32)
    parser.add_argument("--out", default=None,
                        help="golden path (default: tests/integration/"
                             "golden/parity_<cpus>.json)")
    parser.add_argument("--barrier-only", action="store_true",
                        help="fingerprint barriers only (large machines: "
                             "lock runs serialize P acquisitions and "
                             "dominate capture time)")
    parser.add_argument("--mechanisms", nargs="+", default=None,
                        choices=[m.value for m in Mechanism],
                        help="restrict to these mechanisms (default: all)")
    parser.add_argument("--verify", action="store_true",
                        help="compare a fresh capture against the golden "
                             "file instead of overwriting it")
    parser.add_argument("--warm", action="store_true",
                        help="run through the snapshot warm-start path "
                             "(proves restored == fresh when verifying)")
    parser.add_argument("--shards", type=int, default=1,
                        help="partition every run across N worker "
                             "processes (repro.shard); with --verify, "
                             "proves sharded execution reproduces the "
                             "single-process goldens (events_dispatched "
                             "exempt — it counts host-side events)")
    parser.add_argument("--metrics", action="store_true",
                        help="attach the observability layer to every "
                             "run; verify-only — proves metrics capture "
                             "is timing-neutral against the unmetered "
                             "goldens (composes with --shards)")
    parser.add_argument("--backend", default=None,
                        help="event-kernel backend (repro.sim.backends) "
                             "to run on; with --verify, proves the "
                             "backend reproduces the reference goldens "
                             "byte-identically (composes with --warm, "
                             "--shards and --metrics)")
    args = parser.parse_args(argv)

    out = Path(args.out) if args.out else \
        GOLDEN_DIR / f"parity_{args.cpus}.json"
    if args.shards > 1 and not args.verify:
        parser.error("--shards is verify-only: goldens are captured "
                     "single-process (the single source of truth)")
    if args.metrics and not args.verify:
        parser.error("--metrics is verify-only: goldens are captured "
                     "unmetered (metrics must not move them)")
    if args.metrics and args.warm:
        parser.error("--metrics and --warm are mutually exclusive "
                     "(metered runs bypass the warm cache)")
    if args.backend not in (None, "reference") and not args.verify:
        parser.error("--backend is verify-only: goldens are captured on "
                     "the reference backend (the single source of truth "
                     "every backend must reproduce)")
    if args.backend is not None:
        from repro.sim.backends import resolve_backend_name
        resolve_backend_name(args.backend)  # fail loudly on a typo

    warm_cache = None
    if args.warm:
        from repro.workloads.warm import WarmCache
        warm_cache = WarmCache()

    mechanisms = None
    if args.mechanisms:
        mechanisms = [Mechanism(v) for v in args.mechanisms]

    doc = capture_all(n_processors=args.cpus, mechanisms=mechanisms,
                      warm_cache=warm_cache,
                      barrier_only=args.barrier_only, shards=args.shards,
                      metrics=args.metrics, backend=args.backend)

    if args.verify:
        golden = json.loads(out.read_text())
        if mechanisms is not None:
            golden = dict(golden)
            golden["fingerprints"] = {
                m.value: golden["fingerprints"][m.value]
                for m in mechanisms}
        ignore = SHARD_EXEMPT_KEYS if args.shards > 1 else frozenset()
        drift = diff_documents(golden, doc, ignore=ignore)
        label = "warm-start" if args.warm else \
            f"{args.shards}-shard" if args.shards > 1 else "fresh"
        if args.metrics:
            label = f"metered {label}"
        if args.backend is not None:
            from repro.sim.backends import accel_implementation
            impl = (f" ({accel_implementation()})"
                    if args.backend == "accel" else "")
            label = f"{label} {args.backend}-backend{impl}"
        if drift:
            print(f"FAIL: {label} capture drifted from {out}:")
            for line in drift:
                print(f"  {line}")
            return 1
        n = len(doc["fingerprints"])
        print(f"OK: {label} capture matches {out} ({n} mechanisms)")
        return 0

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(doc['fingerprints'])} mechanisms)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
