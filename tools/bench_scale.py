#!/usr/bin/env python
"""Kernel hot-path throughput at and past paper scale — ``BENCH_scale.json``.

Measures simulator events/second over the two paper workloads (one
barrier run and one ticket-lock run) for every mechanism at a ladder of
machine sizes, from 32 CPUs up to 1024 — four times the paper's largest
machine.  This is the proof artifact for the kernel/protocol performance
work: barrier episodes are dominated by the N-way fan-out waves
(invalidations, word-update pushes), lock runs by long same-cycle resume
chains, and the sweep as a whole by per-point machine construction and
re-simulated warm-up — which the snapshot/warm-start path amortizes.

Each cell is run ``--repeat`` times and the *fastest* wall time is kept
(wall-clock noise on a shared host only ever adds time).  The first run
of a cell builds and warms the machine; subsequent runs restore the
warm snapshot and replay only the measured episodes, exactly how the
sweep runner replays points.  Event counts *and* steady-state cycle
counts are asserted identical across repeats — every benchmark run is
also a determinism check, and in particular proves snapshot-restored
runs are cycle-for-cycle equivalent to the fresh-built first run.

Comparing against a baseline capture (e.g. one taken from the pre-PR
kernel on the same host)::

    PYTHONPATH=src python tools/bench_scale.py --out baseline.json
    # ... switch kernels ...
    PYTHONPATH=src python tools/bench_scale.py --baseline baseline.json

With ``--baseline`` the output carries per-cell speedups plus two
aggregates: the *geometric mean* of the per-cell speedups (the standard
cross-workload summary) and the *events-weighted* speedup (total events
divided by total wall time, dominated by the event-heaviest cells).
Simulated *cycles* must match the baseline cell for cell — a speedup
over different simulated behaviour is meaningless.  (Kernel event
counts may legitimately differ between kernel generations — batched
fan-out delivery dispatches fewer events for the same cycles — so they
are reported but not compared.)

``--quick`` shrinks the ladder for CI smoke runs; ``--floor`` fails the
run when the events-weighted throughput of the largest machine size
drops below a (generous) events/second floor.  ``--gate-trajectory``
instead gates *relatively*: the geometric mean of per-cell throughput
against the committed ``BENCH_trajectory.json`` scale samples must not
regress by more than ``--gate-pct`` percent — host-speed differences
wash out of a ratio far better than any static floor.

``--shards N`` runs every cell through sharded execution
(:mod:`repro.shard`): the run is partitioned across N worker processes
in conservative time windows, cycle-identical to single-process (cycles
are asserted against the baseline when ``--baseline`` is given, and the
speedup summary then also reports ``wall_speedup`` — same simulated
work, wall-clock ratio — the honest multi-core scaling number).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import time
from pathlib import Path

from repro.config.mechanism import Mechanism
from repro.workloads.barrier import run_barrier_workload
from repro.workloads.locks import run_lock_workload
from repro.workloads.qlocks import qlock_supported, run_qlock_workload

try:  # the warm-start cache arrived with the snapshot/restore work
    from repro.workloads.warm import WarmCache
except ImportError:  # pragma: no cover - pre-snapshot kernels (baselines)
    WarmCache = None

DEFAULT_CPUS = [32, 64, 128, 256, 512, 1024]
QUICK_CPUS = [32, 64]

#: workload shapes — small but past warmup, so steady-state code paths
#: (filled caches, armed spin gates) dominate the measurement
BARRIER_EPISODES = 2
BARRIER_WARMUP = 1
LOCK_ACQUISITIONS = 1
LOCK_WARMUP = 1
QLOCK_ACQUISITIONS = 1
QLOCK_WARMUP = 1

#: queue-lock cells stop at the paper's largest machine: every extra
#: acquisition serializes P critical sections, so the 512/1024 rungs
#: would dominate the ladder's wall clock for no extra signal
QLOCK_MAX_CPUS = 256
QLOCK_WORKLOADS = ("qlock_mcs", "qlock_cna", "qlock_rw")


def parse_cpus(values: list[str]) -> list[int]:
    """Flatten ``--cpus`` operands (space- and/or comma-separated) and
    validate each is a power of two — the fat-tree/tree-barrier
    topologies require it, and a non-power-of-two silently produces a
    lopsided tree instead of the machine the cell claims to measure."""
    cpus: list[int] = []
    for value in values:
        for part in str(value).split(","):
            part = part.strip()
            if not part:
                continue
            try:
                p = int(part)
            except ValueError:
                raise SystemExit(
                    f"error: --cpus got {part!r}; expected an integer")
            if p < 2 or p & (p - 1):
                raise SystemExit(
                    f"error: --cpus {p} is not a power of two >= 2; the "
                    "fat-tree topology and tree-barrier shapes require "
                    "power-of-two machine sizes (try 32 64 128 256 512 1024)")
            cpus.append(p)
    return cpus


def run_cell(workload: str, mechanism: Mechanism, n_processors: int,
             repeat: int, warm_cache=None, shards: int = 1,
             backend: str | None = None, profile: bool = False) -> dict:
    """Best-of-``repeat`` measurement of one (workload, mechanism, P).

    With a ``warm_cache``, the first repeat builds + warms the machine
    and snapshots it; later repeats restore and replay the measured
    phase only.  Events and cycles must match across all repeats.
    ``shards > 1`` partitions each run across worker processes instead
    (mutually exclusive with warm-start; every repeat spawns a fresh
    process group, so the wall time includes that overhead — exactly
    what a user of ``--shards`` pays).  Sharded cells record the
    fastest repeat's ``shard.*`` telemetry digest (sync rounds, window
    sizes, blocked wall time, wire volumes) — the numbers that explain
    where sharded wall clock goes.  ``backend`` selects the event-kernel
    backend (:mod:`repro.sim.backends`) and stamps the cell with it;
    every backend is parity-gated to identical cycles and events, so
    cross-backend cells are directly comparable.  ``profile`` wraps one
    extra (untimed) run in :mod:`cProfile` and attaches the top
    cumulative-time hotspots to the cell — the flame-tip evidence for
    deciding what the next kernel optimization should chase.
    """
    best = math.inf
    events = None
    cycles = None
    best_telemetry = None
    for _ in range(repeat):
        telemetry: dict = {}
        t0 = time.perf_counter()
        if shards > 1:
            from repro.shard.session import run_sharded
            if workload == "barrier":
                res = run_sharded("barrier", dict(
                    n_processors=n_processors, mechanism=mechanism,
                    episodes=BARRIER_EPISODES,
                    warmup_episodes=BARRIER_WARMUP, backend=backend),
                    shards, telemetry=telemetry)
            elif workload.startswith("qlock_"):
                res = run_sharded("qlock", dict(
                    n_processors=n_processors, mechanism=mechanism,
                    lock_type=workload[len("qlock_"):],
                    acquisitions_per_cpu=QLOCK_ACQUISITIONS,
                    warmup_per_cpu=QLOCK_WARMUP, backend=backend),
                    shards, telemetry=telemetry)
            else:
                res = run_sharded("lock", dict(
                    n_processors=n_processors, mechanism=mechanism,
                    acquisitions_per_cpu=LOCK_ACQUISITIONS,
                    warmup_per_cpu=LOCK_WARMUP, backend=backend),
                    shards, telemetry=telemetry)
        elif workload == "barrier":
            res = run_barrier_workload(n_processors, mechanism,
                                       episodes=BARRIER_EPISODES,
                                       warmup_episodes=BARRIER_WARMUP,
                                       warm_cache=warm_cache,
                                       backend=backend)
        elif workload.startswith("qlock_"):
            res = run_qlock_workload(n_processors, mechanism,
                                     lock_type=workload[len("qlock_"):],
                                     acquisitions_per_cpu=QLOCK_ACQUISITIONS,
                                     warmup_per_cpu=QLOCK_WARMUP,
                                     warm_cache=warm_cache,
                                     backend=backend)
        else:
            res = run_lock_workload(n_processors, mechanism,
                                    acquisitions_per_cpu=LOCK_ACQUISITIONS,
                                    warmup_per_cpu=LOCK_WARMUP,
                                    warm_cache=warm_cache,
                                    backend=backend)
        elapsed = time.perf_counter() - t0
        if events is None:
            events = res.events_dispatched
            cycles = res.total_cycles
        elif events != res.events_dispatched:
            raise AssertionError(
                f"nondeterministic event count for {workload}/"
                f"{mechanism.value}@{n_processors}: "
                f"{events} vs {res.events_dispatched}")
        elif cycles != res.total_cycles:
            raise AssertionError(
                f"nondeterministic cycle count for {workload}/"
                f"{mechanism.value}@{n_processors}: "
                f"{cycles} vs {res.total_cycles}")
        if elapsed < best:
            best = elapsed
            if shards > 1:
                from repro.shard.session import telemetry_summary
                best_telemetry = telemetry_summary(telemetry["snapshot"])
    cell = {
        "workload": workload,
        "mechanism": mechanism.value,
        "n_processors": n_processors,
        "events": events,
        "cycles": cycles,
        "wall_seconds": round(best, 4),
        "events_per_second": round(events / best),
    }
    if backend is not None:
        cell["backend"] = backend
    if best_telemetry is not None:
        cell["shard_telemetry"] = best_telemetry
    if profile:
        cell["profile"] = profile_cell(workload, mechanism, n_processors,
                                       warm_cache=warm_cache,
                                       backend=backend)
    return cell


#: hotspot rows attached per profiled cell — enough to see the flame
#: tip without bloating the JSON artifact
PROFILE_TOP = 20

#: subsystem attribution map: the first path fragment that matches wins.
#: "kernel" is the event loop + primitives (what the accel backend's C
#: core replaces), "coherence" the protocol engines, "fabric" the
#: interconnect, "model" everything else inside repro (CPUs, sync
#: algorithms, workload drivers, caches); frames outside repro (stdlib,
#: profiler) land in "other".
SUBSYSTEMS = (
    ("kernel", ("repro/sim/",)),
    ("coherence", ("repro/coherence/", "repro/cache/")),
    ("fabric", ("repro/network/",)),
    ("model", ("repro/",)),
)


def _subsystem_of(filename: str) -> str:
    path = filename.replace("\\", "/")
    for name, fragments in SUBSYSTEMS:
        if any(frag in path for frag in fragments):
            return name
    return "other"


def profile_cell(workload: str, mechanism: Mechanism, n_processors: int,
                 warm_cache=None, backend: str | None = None) -> dict:
    """One extra cProfile'd run of a cell, reduced to its hotspot table
    and a per-subsystem wall-time attribution.

    Returns ``{"hotspots": [...], "subsystems": {...}}``.  ``hotspots``
    is the ``PROFILE_TOP`` functions by *cumulative* time, each as
    ``{function, ncalls, tottime, cumtime}`` with tottime/cumtime in
    seconds.  ``subsystems`` sums every frame's *own* time (tottime,
    so the buckets are disjoint and add up to the run) into kernel /
    coherence / fabric / model / other buckets plus each bucket's
    fraction — the number that says where the next port should go.
    Note the compiled accel core's C frames are invisible to cProfile,
    so under the accel backend "kernel" reads near zero by construction:
    the residual Python time *is* the model-port opportunity.  The run
    is separate from (and never counted toward) the timed repeats:
    profiling overhead would poison the throughput numbers.  Sharded
    cells are not profiled — the work happens in worker processes the
    profiler cannot see.
    """
    import cProfile
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    if workload == "barrier":
        run_barrier_workload(n_processors, mechanism,
                             episodes=BARRIER_EPISODES,
                             warmup_episodes=BARRIER_WARMUP,
                             warm_cache=warm_cache, backend=backend)
    elif workload.startswith("qlock_"):
        run_qlock_workload(n_processors, mechanism,
                           lock_type=workload[len("qlock_"):],
                           acquisitions_per_cpu=QLOCK_ACQUISITIONS,
                           warmup_per_cpu=QLOCK_WARMUP,
                           warm_cache=warm_cache, backend=backend)
    else:
        run_lock_workload(n_processors, mechanism,
                          acquisitions_per_cpu=LOCK_ACQUISITIONS,
                          warmup_per_cpu=LOCK_WARMUP,
                          warm_cache=warm_cache, backend=backend)
    prof.disable()
    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative")
    rows = []
    for func in stats.fcn_list[:PROFILE_TOP]:  # (file, line, name)
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, lineno, name = func
        if filename.startswith("~"):
            label = name  # C builtins print as ~:0(<name>)
        else:
            label = f"{Path(filename).name}:{lineno}({name})"
        rows.append({
            "function": label,
            "ncalls": nc,
            "tottime": round(tt, 4),
            "cumtime": round(ct, 4),
        })
    buckets: dict[str, float] = {}
    for (filename, _lineno, _name), (_cc, _nc, tt, _ct, _callers) \
            in stats.stats.items():
        sub = "other" if filename.startswith("~") \
            else _subsystem_of(filename)
        buckets[sub] = buckets.get(sub, 0.0) + tt
    total = sum(buckets.values()) or 1.0
    subsystems = {
        name: {"tottime": round(secs, 4),
               "fraction": round(secs / total, 4)}
        for name, secs in sorted(buckets.items(),
                                 key=lambda kv: -kv[1])
    }
    return {"hotspots": rows, "subsystems": subsystems}


def cell_key(cell: dict) -> str:
    return (f"{cell['workload']}/{cell['mechanism']}"
            f"@{cell['n_processors']}")


def reference_cells(cells: list[dict]) -> list[dict]:
    """The cells measured on the reference backend (or with no backend
    selected at all — the same kernel).  Baseline comparisons, the
    trajectory gate, and the headline aggregates all draw from these:
    accel cells are evidence for the backend speedup summary, never a
    way to move the headline numbers."""
    return [c for c in cells if c.get("backend") in (None, "reference")]


def aggregate(cells: list[dict]) -> dict:
    """Events-weighted throughput per machine size and overall."""
    by_p: dict[int, list[dict]] = {}
    for cell in cells:
        by_p.setdefault(cell["n_processors"], []).append(cell)
    out = {}
    for p, group in sorted(by_p.items()):
        events = sum(c["events"] for c in group)
        wall = sum(c["wall_seconds"] for c in group)
        out[str(p)] = {"events": events, "wall_seconds": round(wall, 3),
                       "events_per_second": round(events / wall)}
    return out


def backend_speedup(cells: list[dict]) -> dict:
    """Per-cell and geomean accel-vs-reference throughput ratios.

    Pairs cells by (workload, mechanism, P) across the two backends —
    cycle and event counts are parity-pinned identical, so the ratio is
    a pure wall-clock comparison of the kernels on the same simulated
    work (asserted here as a belt-and-braces check).
    """
    ref = {cell_key(c): c for c in reference_cells(cells)}
    per_cell = {}
    ratios = []
    for cell in cells:
        if cell.get("backend") in (None, "reference"):
            continue
        mate = ref.get(cell_key(cell))
        if mate is None:
            continue
        if (cell["cycles"], cell["events"]) != \
                (mate["cycles"], mate["events"]):
            raise AssertionError(
                f"{cell_key(cell)}: backend {cell['backend']!r} simulated "
                f"({cell['cycles']} cycles, {cell['events']} events) but "
                f"reference simulated ({mate['cycles']}, {mate['events']})"
                " — backend parity is broken, ratio meaningless")
        ratio = cell["events_per_second"] / mate["events_per_second"]
        per_cell[f"{cell_key(cell)}[{cell['backend']}]"] = round(ratio, 2)
        ratios.append(ratio)
    if not ratios:
        return {}
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    return {"per_cell": per_cell,
            "geomean_speedup": round(geomean, 2),
            "cells_compared": len(ratios)}


def compare(cells: list[dict], baseline_doc: dict) -> dict:
    """Per-cell and aggregate speedups against a baseline capture.

    Simulated cycle counts must match cell for cell when both captures
    carry them — the determinism contract a speedup claim rests on.
    Kernel event counts may differ across kernel generations (batched
    delivery dispatches fewer events for identical cycles), so they are
    not compared.
    """
    base = {cell_key(c): c for c in reference_cells(baseline_doc["cells"])}
    per_cell = {}
    ratios = []
    ev_cur = wall_cur = ev_base = wall_base = 0.0
    for cell in reference_cells(cells):
        key = cell_key(cell)
        ref = base.get(key)
        if ref is None:
            continue
        if (ref.get("cycles") is not None and cell.get("cycles") is not None
                and ref["cycles"] != cell["cycles"]):
            raise AssertionError(
                f"{key}: baseline simulated {ref['cycles']} cycles but "
                f"this kernel simulated {cell['cycles']} — the runs are "
                "not comparable (simulated behaviour changed)")
        ratio = cell["events_per_second"] / ref["events_per_second"]
        per_cell[key] = round(ratio, 2)
        ratios.append(ratio)
        ev_cur += cell["events"]
        wall_cur += cell["wall_seconds"]
        ev_base += ref["events"]
        wall_base += ref["wall_seconds"]
    if not ratios:
        return {}
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    weighted = (ev_cur / wall_cur) / (ev_base / wall_base)
    return {
        "baseline_host": baseline_doc.get("host"),
        "per_cell": per_cell,
        "geomean_speedup": round(geomean, 2),
        "events_weighted_speedup": round(weighted, 2),
        # same simulated work (cycles asserted equal above), wall-clock
        # ratio — the scaling number sharded runs are judged by
        "wall_speedup": round(wall_base / wall_cur, 2),
    }


def gate_trajectory(cells: list[dict], trajectory_doc: dict,
                    max_regression_pct: float) -> tuple[bool, str]:
    """Relative perf gate against the committed trajectory capture.

    Compares the geometric mean of per-cell throughput ratios (this run
    / the trajectory's committed sample) and fails when any trend
    regresses by more than ``max_regression_pct`` percent.  Reference
    cells gate against ``sources.scale.samples``; cells measured on
    another backend gate against that backend's own trend under
    ``sources.scale.backends.<name>.samples`` — so a model-port
    regression that only slows the accel backend still fails, instead
    of hiding behind an unchanged reference trend.  Cells with no
    trajectory sample are skipped — the gate follows whatever ladder
    the trajectory last recorded.
    """
    scale = trajectory_doc.get("sources", {}).get("scale", {})
    trends = {"reference": scale.get("samples", {})}
    for b, entry in (scale.get("backends") or {}).items():
        trends[b] = entry.get("samples", {})
    ratios: dict[str, list[float]] = {}
    for cell in cells:
        b = cell.get("backend") or "reference"
        ref = trends.get(b, {}).get(cell_key(cell))
        if ref:
            ratios.setdefault(b, []).append(
                cell["events_per_second"] / ref)
    if not ratios:
        return True, ("trajectory gate skipped: no overlapping cells "
                      "in the trajectory's scale samples")
    threshold = 1.0 - max_regression_pct / 100.0
    ok = True
    parts = []
    for b, rs in sorted(ratios.items()):
        geomean = math.exp(sum(map(math.log, rs)) / len(rs))
        parts.append(f"{b}: geomean {geomean:.2f}x over {len(rs)} "
                     f"cell(s)")
        if geomean < threshold:
            ok = False
    detail = ("; ".join(parts)
              + f"; threshold {threshold:.2f}x (-{max_regression_pct:.0f}%)")
    return ok, detail


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cpus", nargs="+", default=None,
                        help=f"machine sizes, space- or comma-separated "
                             f"powers of two (default {DEFAULT_CPUS})")
    parser.add_argument("--mechanisms", nargs="+", default=None,
                        help="mechanism names (default: all five)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per cell; fastest wall time kept")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI smoke: cpus {QUICK_CPUS}, single repeat")
    parser.add_argument("--no-warm", action="store_true",
                        help="disable snapshot warm-start between repeats "
                             "(every repeat builds and warms from scratch)")
    parser.add_argument("--baseline", default=None,
                        help="earlier BENCH_scale.json to compute speedups "
                             "against (same-host captures only)")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail if events/s at the largest size falls "
                             "below this floor")
    parser.add_argument("--gate-trajectory", default=None,
                        help="BENCH_trajectory.json to gate against: fail "
                             "when the geomean per-cell throughput "
                             "regresses more than --gate-pct percent")
    parser.add_argument("--gate-pct", type=float, default=25.0,
                        help="max tolerated geomean regression for "
                             "--gate-trajectory (default 25%%)")
    parser.add_argument("--shards", type=int, default=1,
                        help="partition every run across N shard worker "
                             "processes (repro.shard); implies --no-warm")
    parser.add_argument("--barrier-only", action="store_true",
                        help="skip the lock cells (huge machines: lock "
                             "runs serialize P acquisitions)")
    parser.add_argument("--no-qlocks", action="store_true",
                        help="skip the queue-lock (MCS/CNA/rw) cells; "
                             f"they run at sizes <= {QLOCK_MAX_CPUS} "
                             "(the paper's largest machine) and skip "
                             "unsupported mechanism/lock combinations")
    parser.add_argument("--backend", nargs="+", default=None,
                        help="event-kernel backend(s) to measure "
                             "(repro.sim.backends); with several, every "
                             "cell runs once per backend and the output "
                             "gains an accel-vs-reference speedup summary."
                             " Headline aggregates always come from the "
                             "reference cells")
    parser.add_argument("--profile", action="store_true",
                        help="attach a cProfile top-20 cumulative-time "
                             "hotspot table to every cell (one extra "
                             "untimed run each; single-process only)")
    parser.add_argument("--out", default="BENCH_scale.json",
                        help="output path, or - for stdout")
    args = parser.parse_args(argv)

    cpus = (parse_cpus(args.cpus) if args.cpus
            else (QUICK_CPUS if args.quick else DEFAULT_CPUS))
    repeat = 1 if args.quick and args.repeat == 3 else args.repeat
    mechs = ([Mechanism(m) for m in args.mechanisms]
             if args.mechanisms else list(Mechanism))
    warm = (WarmCache is not None) and not args.no_warm \
        and args.shards <= 1
    workloads = ("barrier",) if args.barrier_only else ("barrier", "lock")
    if not args.barrier_only and not args.no_qlocks:
        workloads += QLOCK_WORKLOADS
    backends: list = args.backend if args.backend else [None]
    if args.backend:
        from repro.sim.backends import resolve_backend_name
        for b in backends:
            resolve_backend_name(b)  # fail loudly on a typo
    if args.profile and args.shards > 1:
        raise SystemExit("error: --profile is single-process only (the "
                         "profiler cannot see shard worker processes)")

    cells = []
    for p in cpus:
        for backend in backends:
            # one warm pool per (size, backend): warm snapshots embed the
            # kernel, so cross-backend reuse would defeat the comparison
            warm_cache = WarmCache() if warm else None
            for mech in mechs:
                for workload in workloads:
                    if workload.startswith("qlock_") and (
                            p > QLOCK_MAX_CPUS or not qlock_supported(
                                workload[len("qlock_"):], mech)):
                        continue
                    cell = run_cell(workload, mech, p, repeat,
                                    warm_cache=warm_cache,
                                    shards=args.shards, backend=backend,
                                    profile=args.profile)
                    cells.append(cell)
                    tag = f" [{backend}]" if backend else ""
                    print(f"{cell_key(cell):>24s}{tag:>12s}  "
                          f"{cell['events']:>9d} ev  "
                          f"{cell['wall_seconds']:7.3f}s  "
                          f"{cell['events_per_second']:>8d} ev/s",
                          flush=True)

    payload = {
        "benchmark": "scale",
        "cpus": cpus,
        "repeat": repeat,
        "warm_start": warm,
        "shards": args.shards,
        "barrier_episodes": BARRIER_EPISODES,
        "lock_acquisitions_per_cpu": LOCK_ACQUISITIONS,
        "host": {
            "cores": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "cells": cells,
        # headline throughput comes from the reference cells; an
        # accel-only capture (no reference ran) falls back to its own
        "aggregate_events_per_second": aggregate(
            reference_cells(cells) or cells),
    }
    if args.backend:
        payload["backends"] = backends
    speedup = backend_speedup(cells)
    if speedup:
        payload["backend_speedup"] = speedup
    if args.baseline:
        baseline_doc = json.loads(Path(args.baseline).read_text())
        payload["vs_baseline"] = compare(cells, baseline_doc)

    text = json.dumps(payload, indent=2) + "\n"
    if args.out == "-":
        print(text, end="")
    else:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    if "vs_baseline" in payload and payload["vs_baseline"]:
        vs = payload["vs_baseline"]
        print(f"speedup vs baseline: geomean {vs['geomean_speedup']}x, "
              f"events-weighted {vs['events_weighted_speedup']}x")
    if speedup:
        print(f"backend speedup vs reference: geomean "
              f"{speedup['geomean_speedup']}x over "
              f"{speedup['cells_compared']} cell(s)")

    if args.floor is not None:
        largest = str(max(cpus))
        got = payload["aggregate_events_per_second"][largest]
        if got["events_per_second"] < args.floor:
            print(f"FAIL: {got['events_per_second']} ev/s at {largest} "
                  f"CPUs is below the floor of {args.floor:.0f}")
            return 1
        print(f"floor check OK: {got['events_per_second']} ev/s at "
              f"{largest} CPUs (floor {args.floor:.0f})")

    if args.gate_trajectory:
        trajectory_doc = json.loads(Path(args.gate_trajectory).read_text())
        ok, detail = gate_trajectory(cells, trajectory_doc, args.gate_pct)
        if not ok:
            print(f"FAIL: trajectory regression gate: {detail}")
            return 1
        print(f"trajectory gate OK: {detail}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
