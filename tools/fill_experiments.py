#!/usr/bin/env python
"""Splice measured tables from a `repro-experiments all --markdown` dump
into EXPERIMENTS.md's placeholder comments.

Usage: python tools/fill_experiments.py <results.md> [EXPERIMENTS.md]

The dump contains sections like:

    == E1/table2: ... ==
    **Measured — ...**
    | CPUs | ... |
    ...

Each experiment's *measured* markdown table replaces the matching
``<!-- XXX-MEASURED -->`` placeholder.
"""

import re
import sys

PLACEHOLDERS = {
    "E1/table2": "TABLE2-MEASURED",
    "E2/fig5": "FIG5-MEASURED",
    "E3/table3": "TABLE3-MEASURED",
    "E4/fig6": "FIG6-MEASURED",
    "E5/table4": "TABLE4-MEASURED",
    "E6/fig7": "FIG7-MEASURED",
    "E9/amo-model": "AMO-MODEL-MEASURED",
}


def extract_measured_tables(dump: str) -> dict[str, str]:
    """Map experiment id -> its measured markdown table."""
    out = {}
    sections = re.split(r"^== ", dump, flags=re.M)
    for section in sections[1:]:
        header, _, body = section.partition("\n")
        exp_id = header.split(":")[0].strip()
        # the first markdown table after a "**Measured" title
        match = re.search(
            r"\*\*Measured[^\n]*\*\*\n\n((?:\|[^\n]*\n)+)", body)
        if match:
            out[exp_id] = match.group(1).rstrip()
    return out


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    dump_path = sys.argv[1]
    target_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    dump = open(dump_path).read()
    target = open(target_path).read()
    tables = extract_measured_tables(dump)
    missing = []
    for exp_id, placeholder in PLACEHOLDERS.items():
        marker = f"<!-- {placeholder} -->"
        if exp_id in tables and marker in target:
            target = target.replace(marker, tables[exp_id])
        else:
            missing.append(exp_id)
    open(target_path, "w").write(target)
    if missing:
        print(f"not filled: {', '.join(missing)}")
    print(f"filled {len(PLACEHOLDERS) - len(missing)} sections "
          f"into {target_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
