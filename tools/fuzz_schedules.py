#!/usr/bin/env python
"""Seeded schedule-exploration sweep with the coherence sanitizer armed.

Every point runs one fuzz workload (counter, barrier, lock, or the
queue locks qlock_mcs/qlock_cna/qlock_rw) under one timing universe —
seed x delay bound x mechanism, optionally relaxed-ordering via
``--reorder`` (a :class:`~repro.network.faults.ReorderInjector` window,
cycled across seeds like the delay bounds; 0 = strict FIFO) — with the
:class:`~repro.check.CoherenceSanitizer` checking SWMR,
directory/cache agreement, put delivery, and data-value integrity on
the fly, and the recorded synchronization history verified for
linearizability afterwards.  Unsupported cells (qlock_rw over mao, a
lock-level ``--inject-bug`` under a non-matching workload) are skipped,
not failed.  Points fan out through
:class:`~repro.runner.ParallelRunner` (``--jobs 0`` = all cores).

On failure, each failing point (up to ``--max-failures``) is shrunk
serially to a minimal reproducer — smallest failing delay bound, then
the smallest failing reorder window (or none), then delta-debugged
message-kind subsets — and written to ``--artifact-dir`` as a JSON
artifact whose ``command`` field is a one-line ``repro-experiments
fuzz`` invocation replaying it, naming the universe that failed.  Exit
status is nonzero iff any point failed.

CI smoke (PR gate)::

    PYTHONPATH=src python tools/fuzz_schedules.py --seeds 12 \\
        --mechanisms llsc amo --workloads lock barrier --jobs 0

Acceptance sweep (all five mechanisms, both universes)::

    PYTHONPATH=src python tools/fuzz_schedules.py --seeds 64 \\
        --workloads barrier lock qlock_mcs qlock_cna qlock_rw \\
        --reorder 0 60

Checker self-test (must exit nonzero)::

    PYTHONPATH=src python tools/fuzz_schedules.py --seeds 2 \\
        --mechanisms llsc --workloads lock --inject-bug skip_invalidation
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.check.fuzz import (  # noqa: E402
    FUZZ_WORKLOADS,
    INJECTABLE_BUGS,
    bug_compatible,
    repro_command,
    shrink_failure,
    write_artifact,
)
from repro.config.mechanism import Mechanism  # noqa: E402
from repro.runner import ParallelRunner  # noqa: E402
from repro.runner.executor import RunFailure  # noqa: E402
from repro.runner.spec import RunSpec  # noqa: E402
from repro.workloads.qlocks import qlock_supported  # noqa: E402

ALL_MECHANISMS = tuple(m.value for m in Mechanism)
DEFAULT_WORKLOADS = ("barrier", "lock")
DEFAULT_MAX_EXTRA = (100, 400)


def _cell_supported(workload: str, mech: Mechanism) -> bool:
    if workload.startswith("qlock_"):
        return qlock_supported(workload[len("qlock_") :], mech)
    return True


def build_grid(args) -> list[RunSpec]:
    specs = []
    for seed_index in range(args.seeds):
        seed = args.seed_base + seed_index
        max_extra = args.max_extra[seed_index % len(args.max_extra)]
        # stride by the delay-bound cycle so every (bound, window) pair
        # appears once the seed count covers the product
        reorder = args.reorder[
            (seed_index // len(args.max_extra)) % len(args.reorder)
        ]
        for mech in args.mechanisms:
            mechanism = Mechanism.from_name(mech)
            for workload in args.workloads:
                if not _cell_supported(workload, mechanism):
                    continue
                if not bug_compatible(args.inject_bug, workload):
                    continue
                specs.append(
                    RunSpec.fuzz(
                        n_processors=args.cpus,
                        mechanism=mechanism,
                        workload=workload,
                        seed=seed,
                        max_extra=max_extra,
                        reorder_window=reorder,
                        episodes=args.episodes,
                        ops_per_cpu=args.ops_per_cpu,
                        inject_bug=args.inject_bug,
                    )
                )
    return specs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fuzz message schedules with the coherence sanitizer armed."
    )
    parser.add_argument("--seeds", type=int, default=64, help="seeds per cell")
    parser.add_argument("--seed-base", type=int, default=0)
    parser.add_argument(
        "--mechanisms",
        nargs="+",
        default=list(ALL_MECHANISMS),
        choices=ALL_MECHANISMS,
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        choices=FUZZ_WORKLOADS,
    )
    parser.add_argument("--cpus", type=int, default=8)
    parser.add_argument(
        "--max-extra",
        type=int,
        nargs="+",
        default=list(DEFAULT_MAX_EXTRA),
        metavar="CYCLES",
        help="delay bounds, cycled across seeds",
    )
    parser.add_argument(
        "--reorder",
        type=int,
        nargs="+",
        default=[0],
        metavar="CYCLES",
        help="relaxed-ordering windows, cycled across seeds (0 = strict "
        "FIFO delivery; nonzero installs a ReorderInjector)",
    )
    parser.add_argument("--episodes", type=int, default=2)
    parser.add_argument("--ops-per-cpu", type=int, default=3)
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (0 = all cores)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-run wall limit (s)",
    )
    parser.add_argument(
        "--no-shrink",
        dest="shrink",
        action="store_false",
        default=True,
    )
    parser.add_argument("--artifact-dir", default="fuzz-artifacts")
    parser.add_argument(
        "--max-failures",
        type=int,
        default=3,
        help="failures to shrink before giving up",
    )
    parser.add_argument(
        "--inject-bug",
        choices=INJECTABLE_BUGS,
        help="checker self-test: the sweep should FAIL (lock-level bugs "
        "run only under their matching qlock workload)",
    )
    parser.add_argument("--progress", action="store_true")
    args = parser.parse_args(argv)

    specs = build_grid(args)
    if not specs:
        print(
            "# grid is empty: no workload/mechanism/bug-compatible cells",
            file=sys.stderr,
        )
        return 2
    print(
        f"# fuzzing {len(specs)} points: {args.seeds} seeds x "
        f"{args.mechanisms} x {args.workloads}, P={args.cpus}, "
        f"max_extra={args.max_extra}, reorder={args.reorder}",
        file=sys.stderr,
    )
    from repro.stats.runner import make_progress

    runner = ParallelRunner(
        jobs=args.jobs,
        cache=None,
        timeout=args.timeout,
        progress=make_progress(args.progress),
    )
    t0 = time.time()
    outcomes = runner.run_outcomes(specs)

    failures = []
    for spec, outcome in zip(specs, outcomes):
        if isinstance(outcome, RunFailure):
            failures.append((spec, {"error": outcome.error, "violations": []}))
        elif not outcome.result["ok"]:
            failures.append((spec, outcome.result))
    elapsed = time.time() - t0
    print(
        f"# {len(specs)} points in {elapsed:.1f}s, "
        f"{len(failures)} failure(s)",
        file=sys.stderr,
    )
    if not failures:
        print(f"OK: {len(specs)} schedules clean")
        return 0

    os.makedirs(args.artifact_dir, exist_ok=True)
    for index, (spec, result) in enumerate(failures[: args.max_failures]):
        params = dict(spec.kwargs)
        params["mechanism"] = params["mechanism"].value
        print(f"FAIL: {spec.label()}", file=sys.stderr)
        for violation in result.get("violations", [])[:5]:
            print(f"  violation: {violation}", file=sys.stderr)
        if result.get("error"):
            print(f"  error: {result['error']}", file=sys.stderr)
        path = os.path.join(args.artifact_dir, f"failure-{index}.json")
        if args.shrink:
            try:
                shrunk, outcome = shrink_failure(
                    params,
                    log=lambda msg: print(f"  # {msg}", file=sys.stderr),
                )
            except ValueError:
                # flaky under the runner (e.g. wall-clock timeout): keep
                # the unshrunk point as the artifact
                shrunk, outcome = params, result
        else:
            shrunk, outcome = params, result
        write_artifact(path, params, shrunk, outcome)
        print(f"  artifact: {path}", file=sys.stderr)
        print(f"  repro: {repro_command(shrunk)}")
    skipped = len(failures) - min(len(failures), args.max_failures)
    if skipped:
        print(f"# {skipped} further failure(s) not shrunk", file=sys.stderr)
    print(f"FAILED: {len(failures)}/{len(specs)} schedules")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
