#!/usr/bin/env python
"""Metrics-layer overhead benchmark — writes ``BENCH_obs.json``.

Runs one fixed barrier workload in three modes and records wall time and
simulator events/second for each:

* ``off``     — no observability attached (the seed execution model)
* ``metrics`` — :class:`~repro.obs.machine.MachineMetrics` attached
  (pull collectors + tracer + critical-path analysis)
* ``sampler`` — metrics plus gauge sampling every ``--interval`` cycles

``--shards N`` adds a sharded overhead cell: the same workload through
:func:`repro.shard.session.run_sharded` with metrics off and on
(``off_sharded`` / ``metrics_sharded``), plus the parent router's
``shard.*`` telemetry digest for the metered run — window sizes,
blocked wall time and wire volumes, the numbers that explain sharded
wall-clock behaviour.

Each mode runs ``--repeats`` times and keeps the best (max events/s) to
damp scheduler noise.  With ``--baseline`` and ``--assert-overhead``,
the script compares this host's ``off`` events/s against a previously
recorded ``off`` figure (and ``off_sharded`` against the baseline's,
when both captured it) and exits non-zero when the regression exceeds
the budget — CI runs one pass to record the baseline and a second pass
to assert, so the comparison is same-host, same-build::

    PYTHONPATH=src python tools/bench_obs.py --out baseline.json
    PYTHONPATH=src python tools/bench_obs.py \\
        --baseline baseline.json --assert-overhead 5 --out -
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.config.mechanism import Mechanism
from repro.workloads.barrier import run_barrier_workload


def timed_run(cpus: int, episodes: int, mechanism: Mechanism,
              metrics: bool, interval: int, shards: int = 1,
              backend: str | None = None) -> dict:
    kwargs = dict(n_processors=cpus, mechanism=mechanism,
                  episodes=episodes, metrics=metrics,
                  metrics_interval=interval)
    if backend is not None:
        kwargs["backend"] = backend
    t0 = time.perf_counter()
    if shards > 1:
        from repro.shard.session import run_sharded, telemetry_summary
        telemetry: dict = {}
        result = run_sharded("barrier", kwargs, shards,
                             telemetry=telemetry)
    else:
        result = run_barrier_workload(**kwargs)
    elapsed = time.perf_counter() - t0
    out = {
        "elapsed_seconds": round(elapsed, 4),
        "sim_events": result.events_dispatched,
        "events_per_second": round(result.events_dispatched / elapsed)
        if elapsed else 0,
    }
    if shards > 1:
        out["shard_telemetry"] = telemetry_summary(telemetry["snapshot"])
    return out


def best_of(repeats: int, **kwargs) -> dict:
    runs = [timed_run(**kwargs) for _ in range(repeats)]
    return max(runs, key=lambda r: r["events_per_second"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cpus", type=int, default=32)
    parser.add_argument("--episodes", type=int, default=24,
                        help="default sized so one timed run is a few "
                             "hundred ms — short runs are too noisy for "
                             "the overhead assertion")
    parser.add_argument("--mechanism", default="llsc",
                        choices=[m.value for m in Mechanism],
                        help="llsc default: the chattiest mechanism, so "
                             "per-event overhead is most visible")
    parser.add_argument("--interval", type=int, default=1000,
                        help="sampler period (cycles) for the third mode")
    parser.add_argument("--repeats", type=int, default=4,
                        help="runs per mode; the fastest is kept")
    parser.add_argument("--shards", type=int, default=1,
                        help="additionally bench the workload under "
                             "N-shard partitioned execution, metrics "
                             "off and on (the sharded overhead cell)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="previously written BENCH_obs.json to "
                             "compare the metrics-off rate against")
    parser.add_argument("--assert-overhead", type=float, metavar="PCT",
                        help="fail if metrics-off events/s is more than "
                             "PCT%% below the baseline's")
    parser.add_argument("--backend", metavar="NAME",
                        help="event-kernel backend (repro.sim.backends); "
                             "recorded in the payload so per-backend "
                             "captures stay distinguishable")
    parser.add_argument("--out", default="BENCH_obs.json",
                        help="output path, or - for stdout")
    args = parser.parse_args(argv)

    if args.backend is not None:
        from repro.sim.backends import resolve_backend_name
        args.backend = resolve_backend_name(args.backend)
    mech = Mechanism(args.mechanism)
    common = dict(cpus=args.cpus, episodes=args.episodes, mechanism=mech,
                  repeats=args.repeats, backend=args.backend)
    off = best_of(metrics=False, interval=0, **common)
    metered = best_of(metrics=True, interval=0, **common)
    sampled = best_of(metrics=True, interval=args.interval, **common)

    def pct_slower(mode: dict) -> float:
        if not off["events_per_second"]:
            return 0.0
        return round(100.0 * (1 - mode["events_per_second"]
                              / off["events_per_second"]), 1)

    payload = {
        "benchmark": "obs",
        "cpus": args.cpus,
        "episodes": args.episodes,
        "mechanism": mech.value,
        "sampler_interval": args.interval,
        "repeats": args.repeats,
        "python": platform.python_version(),
        **({"backend": args.backend} if args.backend else {}),
        "off": off,
        "metrics": metered,
        "metrics_sampler": sampled,
        "metrics_overhead_pct": pct_slower(metered),
        "sampler_overhead_pct": pct_slower(sampled),
    }

    if args.shards > 1:
        off_sharded = best_of(metrics=False, interval=0,
                              shards=args.shards, **common)
        metered_sharded = best_of(metrics=True, interval=0,
                                  shards=args.shards, **common)
        payload["shards"] = args.shards
        payload["off_sharded"] = off_sharded
        payload["metrics_sharded"] = metered_sharded
        rate = off_sharded["events_per_second"]
        payload["metrics_sharded_overhead_pct"] = round(
            100.0 * (1 - metered_sharded["events_per_second"] / rate),
            1) if rate else 0.0

    status = 0
    if args.baseline:
        base = json.loads(Path(args.baseline).read_text())
        base_rate = base["off"]["events_per_second"]
        drop = (100.0 * (1 - off["events_per_second"] / base_rate)
                if base_rate else 0.0)
        payload["baseline_off_events_per_second"] = base_rate
        payload["off_regression_pct"] = round(drop, 1)
        shard_drop = None
        if args.shards > 1 and "off_sharded" in base:
            base_shard_rate = base["off_sharded"]["events_per_second"]
            shard_drop = (100.0 * (
                1 - payload["off_sharded"]["events_per_second"]
                / base_shard_rate) if base_shard_rate else 0.0)
            payload["off_sharded_regression_pct"] = round(shard_drop, 1)
        if args.assert_overhead is not None:
            ok = drop <= args.assert_overhead and \
                (shard_drop is None or shard_drop <= args.assert_overhead)
            payload["overhead_budget_pct"] = args.assert_overhead
            payload["overhead_check"] = "pass" if ok else "fail"
            if not ok:
                print(f"FAIL: metrics-off rate regressed "
                      f"{max(drop, shard_drop or 0):.1f}% vs baseline "
                      f"(budget {args.assert_overhead}%)")
                status = 1

    text = json.dumps(payload, indent=2) + "\n"
    if args.out == "-":
        print(text, end="")
    else:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}: off {off['events_per_second']:,} ev/s, "
              f"metrics {payload['metrics_overhead_pct']}% slower, "
              f"+sampler {payload['sampler_overhead_pct']}% slower")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
