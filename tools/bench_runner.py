#!/usr/bin/env python
"""Serial-vs-parallel runner baseline — writes ``BENCH_runner.json``.

Runs one fixed barrier sweep three ways and records wall time and
simulator events/second for each:

* ``serial``   — ``jobs=1``, no cache (the pre-runner execution model)
* ``parallel`` — ``jobs=N`` workers, no cache
* ``warm``     — second pass over a freshly populated on-disk cache

Future PRs diff this file to catch executor/cache regressions::

    PYTHONPATH=src python tools/bench_runner.py --jobs 4
    PYTHONPATH=src python tools/bench_runner.py --cpus 4 8 16 32 --out -
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import platform
import tempfile
import time
from pathlib import Path

from repro.config.mechanism import Mechanism
from repro.runner import ParallelRunner, ResultCache, RunSpec


def build_specs(cpus: list[int], episodes: int) -> list[RunSpec]:
    return [RunSpec.barrier(n_processors=p, mechanism=m, episodes=episodes)
            for p in cpus for m in Mechanism]


def timed_pass(specs: list[RunSpec], **runner_kwargs) -> dict:
    runner = ParallelRunner(**runner_kwargs)
    t0 = time.perf_counter()
    runner.run(specs)
    elapsed = time.perf_counter() - t0
    stats = runner.stats
    return {
        "elapsed_seconds": round(elapsed, 3),
        "executed": stats.executed,
        "cache_hits": stats.cache_hits,
        "sim_events": stats.sim_events,
        # null rather than a misleading 0 when every point came from the
        # cache and nothing was actually simulated
        "events_per_second": (round(stats.events_per_second)
                              if stats.executed else None),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cpus", type=int, nargs="+",
                        default=[4, 8, 16, 32])
    parser.add_argument("--episodes", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel-pass workers (0 = all cores)")
    parser.add_argument("--out", default="BENCH_runner.json",
                        help="output path, or - for stdout")
    args = parser.parse_args(argv)

    host_cores = multiprocessing.cpu_count()
    jobs = args.jobs or host_cores
    specs = build_specs(args.cpus, args.episodes)

    serial = timed_pass(specs, jobs=1)
    parallel = timed_pass(specs, jobs=jobs)
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(root=cache_dir)
        cold = timed_pass(specs, jobs=jobs, cache=cache)
        warm = timed_pass(specs, jobs=jobs, cache=cache)

    payload = {
        "benchmark": "runner",
        "points": len(specs),
        "cpus": args.cpus,
        "episodes": args.episodes,
        "jobs": jobs,
        "host_cores": host_cores,
        "python": platform.python_version(),
        "serial": serial,
        "parallel": parallel,
        "cache_cold": cold,
        "cache_warm": warm,
        # A serial-vs-parallel ratio only means something when the host
        # can actually run workers side by side; on a single-core host
        # it would just measure process-pool overhead, so it is omitted.
        "parallel_speedup": round(
            serial["elapsed_seconds"] / parallel["elapsed_seconds"], 2)
        if parallel["elapsed_seconds"] and host_cores >= 2 else None,
        "warm_speedup_over_serial": round(
            serial["elapsed_seconds"] / warm["elapsed_seconds"], 1)
        if warm["elapsed_seconds"] else None,
    }
    if host_cores < 2:
        payload["parallel_speedup_note"] = (
            f"host has {host_cores} core(s); serial-vs-parallel wall-time "
            "comparison is not meaningful here")
    text = json.dumps(payload, indent=2) + "\n"
    if args.out == "-":
        print(text, end="")
    else:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}: serial {serial['elapsed_seconds']}s, "
              f"parallel(x{jobs}) {parallel['elapsed_seconds']}s, "
              f"warm cache {warm['elapsed_seconds']}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
