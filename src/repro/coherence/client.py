"""Processor-side cache controller.

One :class:`CacheController` per CPU: a write-through L1D latency filter
in front of the coherent L2.  All coherence state lives in the L2; the L1
is kept inclusive (invalidated/updated alongside).  The controller
implements the full load/store/LL-SC/processor-atomic/uncached repertoire
as coroutines, plus the event-driven :meth:`spin_until` that gives spin
loops their real traffic behaviour without per-iteration simulation
events:

* spinning on a valid cached line costs nothing on the network;
* an arriving WORD_UPDATE patches the word, wakes the spinner, and lets
  it re-check locally (the AMO wake-up path);
* an arriving INVALIDATE wakes the spinner into a *full reload* — the
  conventional invalidate-then-reload storm.

A per-line version counter makes the wake-up race-free: any change
between the spinner's read and its wait is detected and re-checked.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, TYPE_CHECKING

from repro.cache.cache import SetAssociativeCache
from repro.cache.line import CacheLine
from repro.cache.state import LineState
from repro.mem.address import home_of, line_base
from repro.network.message import Message, MessageKind
from repro.sim.primitives import Gate, Signal, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Hub


class LineMeta:
    """Spin-support metadata for one line: change version + wake gate.

    ``gate_wait`` is the gate's (stateless) wait primitive, built once —
    spinners re-yield it every wake-up, so per-iteration allocation is
    avoided on the hottest loop in lock workloads.
    """

    __slots__ = ("version", "gate", "gate_wait")

    def __init__(self) -> None:
        self.version = 0
        self.gate = Gate()
        self.gate_wait = self.gate.wait()


def _fill_done_of(mshr: dict) -> Signal:
    """The MSHR's fill-completion signal, created on first waiter."""
    sig = mshr["fill_done"]
    if sig is None:
        sig = mshr["fill_done"] = Signal()
    return sig


class CacheController:
    """Cache hierarchy + coherence client for one CPU."""

    __slots__ = ("cpu_id", "hub", "sim", "node", "config", "net", "l1",
                 "l2", "_reservation", "_meta", "_pending_writebacks",
                 "_inflight", "_rmw_locks", "sc_failures", "sc_successes",
                 "spin_wakeups", "_backoff_rng", "wb_race_interventions",
                 "_t_l1", "_t_l2", "_name_inv", "_name_intervene")

    def __init__(self, cpu_id: int, hub: "Hub") -> None:
        self.cpu_id = cpu_id
        self.hub = hub
        self.sim = hub.sim
        self.node = hub.node
        self.config = hub.config
        self.net = hub.net
        self.l1 = SetAssociativeCache(self.config.l1, name=f"L1[{cpu_id}]")
        self.l2 = SetAssociativeCache(self.config.l2, name=f"L2[{cpu_id}]")
        self._reservation: Optional[int] = None  # line addr of valid LL
        self._meta: dict[int, LineMeta] = {}
        self._pending_writebacks: dict[int, dict[int, int]] = {}
        # MSHR-style tracking of in-flight fills: a racing INVALIDATE
        # poisons the fill (install-then-drop), racing WORD_UPDATEs are
        # buffered and applied at install time.
        self._inflight: dict[int, dict] = {}
        # Lines currently inside an atomic read-modify-write window (or
        # an exclusive fill whose requesting write has not landed yet).
        # Incoming interventions defer on the gate — the hardware
        # behaviour of holding the line through an atomic sequence.
        self._rmw_locks: dict[int, Gate] = {}
        self.sc_failures = 0
        self.sc_successes = 0
        self.spin_wakeups = 0
        # deterministic per-CPU jitter source for LL/SC retry backoff
        self._backoff_rng = random.Random(0x9E3779B9 ^ (cpu_id * 2654435761))
        #: interventions answered from the writeback buffer (race where
        #: the home forwarded to us after we evicted but before our
        #: WRITEBACK retired)
        self.wb_race_interventions = 0
        # fixed cache latencies: Timeout is stateless, reuse one per level
        self._t_l1 = Timeout(self.config.l1.latency_cycles)
        self._t_l2 = Timeout(self.config.l2.latency_cycles)
        # spawn names precomputed once: these handlers run per delivery
        self._name_inv = f"inv@cpu{cpu_id}"
        self._name_intervene = f"intervene@cpu{cpu_id}"

    # ------------------------------------------------------------------
    # metadata / spin support
    # ------------------------------------------------------------------
    def _line_meta(self, addr: int) -> LineMeta:
        line = line_base(addr)
        meta = self._meta.get(line)
        if meta is None:
            meta = LineMeta()
            meta.gate.name = f"line@{line:#x}/cpu{self.cpu_id}"
            self._meta[line] = meta
        return meta

    def _line_changed(self, addr: int) -> None:
        meta = self._line_meta(addr)
        meta.version += 1
        meta.gate.pulse(self.sim)

    # ------------------------------------------------------------------
    # loads & stores
    # ------------------------------------------------------------------
    def load(self, addr: int):
        """Coroutine: coherent load of the word containing ``addr``."""
        yield self._t_l1
        l1_line = self.l1.lookup(addr)
        if l1_line is not None:
            self.l1.hits += 1
            return l1_line.read_word(addr)
        self.l1.misses += 1
        yield self._t_l2
        l2_line = self.l2.lookup(addr)
        if l2_line is not None:
            self.l2.hits += 1
            value = l2_line.read_word(addr)
            self._fill_l1(addr, value)
            return value
        self.l2.misses += 1
        value = yield from self._load_miss(addr)
        return value

    def _load_miss(self, addr: int):
        """Coroutine: the both-levels-missed tail of :meth:`load`.

        Split out so the compiled backend's load port can run the L1/L2
        hit levels in C and delegate only this cold path to Python.
        """
        # Bare yield (not ``yield from``): the kernel drives the fetch
        # through its flattened subcall stack, so the many resumes of a
        # miss transaction cost one frame each instead of walking this
        # delegation chain (see Simulator.spawn).
        line = yield self._fetch(addr, exclusive=False)
        value = line.read_word(addr)
        if self.l2.probe(addr) is not None:
            # Fill L1 only from resident lines (a poisoned fetch returns
            # a detached snapshot) — strict L1 inclusion.
            self._fill_l1(addr, value)
        return value

    def store(self, addr: int, value: int):
        """Coroutine: coherent store (write-invalidate unless exclusive)."""
        yield self._t_l1
        l2_line = self.l2.lookup(addr)
        fetched = False
        if l2_line is None or l2_line.state is not LineState.EXCLUSIVE:
            self.l2.record_miss()
            l2_line = yield self._fetch(addr, exclusive=True)
            fetched = True
        else:
            self.l2.record_hit()
        l2_line.write_word(addr, value)
        l2_line.dirty = True
        san = self.hub.machine.sanitizer
        if san is not None:
            san.note_store(self.cpu_id, addr, value)
        if fetched:
            self._release_rmw_lock(line_base(addr))
        self._fill_l1(addr, value)
        # Wake local spinners (another context on this CPU — e.g. an
        # active-message handler running on the home processor — may be
        # spinning on this very line).
        self._line_changed(addr)

    # ------------------------------------------------------------------
    # LL / SC
    # ------------------------------------------------------------------
    def load_linked(self, addr: int):
        """Coroutine: LL — load and arm the reservation."""
        value = yield self.load(addr)
        self._reservation = line_base(addr)
        return value

    def store_conditional(self, addr: int, value: int):
        """Coroutine: SC — store iff the reservation survived.

        Returns True on success.  A cleared reservation fails fast with
        no network traffic (the hardware LLbit check); a reservation that
        dies *during* the upgrade — the classic contended race — fails
        after the GET_X completes, having already paid the traffic.
        """
        line = line_base(addr)
        yield self._t_l1
        if self._reservation != line:
            self.sc_failures += 1
            return False
        l2_line = self.l2.lookup(addr)
        if l2_line is None:
            # invalidated (reservation should already be clear) — fail
            self._reservation = None
            self.sc_failures += 1
            return False
        if l2_line.state is not LineState.EXCLUSIVE:
            l2_line = yield self._fetch(addr, exclusive=True)
            if self._reservation != line:
                self._release_rmw_lock(line)
                self.sc_failures += 1
                return False
            san = self.hub.machine.sanitizer
            if san is not None:
                san.note_rmw(self.cpu_id, addr, l2_line.read_word(addr),
                             value, "sc")
            l2_line.write_word(addr, value)
            l2_line.dirty = True
            self._release_rmw_lock(line)
        else:
            san = self.hub.machine.sanitizer
            if san is not None:
                san.note_rmw(self.cpu_id, addr, l2_line.read_word(addr),
                             value, "sc")
            l2_line.write_word(addr, value)
            l2_line.dirty = True
        self._fill_l1(addr, value)
        self._line_changed(addr)
        self._reservation = None
        self.sc_successes += 1
        return True

    def ll_sc_rmw(self, addr: int, fn: Callable[[int], int]):
        """Coroutine: library-style LL/SC retry loop. Returns old value.

        Retries use *randomized* exponential backoff (deterministically
        seeded per CPU, so runs stay reproducible).  Without
        randomization, symmetric contenders whose reservations keep
        getting killed during their upgrades re-collide on every retry
        slot and can livelock — the pathology LL/SC library loops guard
        against on real machines with random jitter.
        """
        base = self.config.processor.llsc_retry_penalty_cycles
        attempt = 0
        while True:
            old = yield self.load_linked(addr)
            ok = yield self.store_conditional(addr, fn(old))
            if ok:
                return old
            ceiling = min(base << min(attempt, 8),
                          self.config.processor.llsc_backoff_cap_cycles)
            yield Timeout(base + self._backoff_rng.randrange(ceiling))
            attempt += 1

    # ------------------------------------------------------------------
    # processor-side atomic instruction
    # ------------------------------------------------------------------
    def atomic_rmw(self, addr: int, fn: Callable[[int], int]):
        """Coroutine: one-shot atomic RMW at the processor.

        Fetches the line exclusively (the interprocessor communication
        the paper charges this mechanism with), applies ``fn`` locally,
        never fails.  Returns the old value.
        """
        yield self._t_l1
        line_addr = line_base(addr)
        l2_line = self.l2.lookup(addr)
        if l2_line is None or l2_line.state is not LineState.EXCLUSIVE:
            self.l2.record_miss()
            l2_line = yield self._fetch(addr, exclusive=True)
        else:
            self.l2.record_hit()
            # hold the line through the ALU window (the hardware keeps
            # the atomic sequence indivisible; see _rmw_locks)
            yield from self._acquire_rmw_lock(line_addr)
        try:
            yield Timeout(2)  # ALU op on the loaded word
            old = l2_line.read_word(addr)
            new = fn(old)
            san = self.hub.machine.sanitizer
            if san is not None:
                san.note_rmw(self.cpu_id, addr, old, new, "atomic")
            l2_line.write_word(addr, new)
            l2_line.dirty = True
        finally:
            self._release_rmw_lock(line_addr)
        self._fill_l1(addr, new)
        self._line_changed(addr)
        return old

    # ------------------------------------------------------------------
    # uncached (IO-space) accesses — the MAO spin path
    # ------------------------------------------------------------------
    def uncached_read(self, addr: int):
        """Coroutine: cache-bypassing load served by the home node."""
        sig = Signal()
        yield from self.hub.egress_send(Message(
            kind=MessageKind.UNCACHED_READ, src_node=self.node,
            dst_node=home_of(addr), addr=addr, reply_to=sig,
            requester=self.cpu_id))
        reply = yield sig.wait()
        return reply.value

    def uncached_write(self, addr: int, value: int):
        """Coroutine: cache-bypassing store (waits for the ack)."""
        sig = Signal()
        yield from self.hub.egress_send(Message(
            kind=MessageKind.UNCACHED_WRITE, src_node=self.node,
            dst_node=home_of(addr), addr=addr, value=value, reply_to=sig,
            requester=self.cpu_id))
        yield sig.wait()

    # ------------------------------------------------------------------
    # spinning
    # ------------------------------------------------------------------
    def spin_until(self, addr: int, predicate: Callable[[int], bool]):
        """Coroutine: spin-read ``addr`` until ``predicate(value)``.

        Event-driven equivalent of a spin loop; see the module docstring
        for the traffic semantics.  Returns the satisfying value.
        """
        meta = self._line_meta(addr)
        gate_wait = meta.gate_wait
        while True:
            version = meta.version
            value = yield from self.load(addr)
            if predicate(value):
                return value
            if meta.version != version:
                continue  # changed under our read; re-check immediately
            yield gate_wait
            self.spin_wakeups += 1

    # ------------------------------------------------------------------
    # fills, evictions, and the fetch path
    # ------------------------------------------------------------------
    # RMW line locks (intervention deferral windows)
    # ------------------------------------------------------------------
    def _acquire_rmw_lock(self, line_addr: int):
        """Coroutine: take the per-line RMW lock (waits out any holder —
        another context on this CPU, e.g. an active-message handler)."""
        while True:
            gate = self._rmw_locks.get(line_addr)
            if gate is None:
                break
            yield gate.wait()
        gate = Gate()
        gate.name = f"rmw@{line_addr:#x}/cpu{self.cpu_id}"
        self._rmw_locks[line_addr] = gate

    def _release_rmw_lock(self, line_addr: int) -> None:
        gate = self._rmw_locks.pop(line_addr, None)
        if gate is not None:
            gate.pulse(self.sim)

    # ------------------------------------------------------------------
    def _fill_l1(self, addr: int, value: int) -> None:
        line, _victim = self.l1.install(addr, LineState.SHARED)
        line.write_word(addr, value)
        # L1 victims are silently dropped: write-through, inclusive in L2.

    def _fetch(self, addr: int, exclusive: bool):
        """Coroutine: run a GET_S/GET_X transaction; installs and returns
        the L2 line.

        MSHR semantics for races against the in-flight reply (possible
        because clean reads are pipelined at the home): an INVALIDATE
        poisons the fill — the data is still returned to the requesting
        load (it was coherent when the directory snapshotted it) but the
        line is not left resident; WORD_UPDATEs that overtake the fill
        are buffered and applied at install time so no wake-up is lost.
        """
        line_addr = line_base(addr)
        # One outstanding fill per line per controller: a second context
        # (an active-message handler sharing this CPU) waits its turn.
        while line_addr in self._inflight:
            yield _fill_done_of(self._inflight[line_addr]).wait()
        # fill_done is created lazily — only a second context racing the
        # same line ever waits on it, and fills outnumber races ~1000:1
        mshr = {"poisoned": False, "updates": [], "exclusive": exclusive,
                "fill_done": None}
        self._inflight[line_addr] = mshr
        try:
            sig = Signal()
            kind = MessageKind.GET_X if exclusive else MessageKind.GET_S
            yield self.hub.egress_send(Message(
                kind=kind, src_node=self.node, dst_node=home_of(addr),
                addr=addr, reply_to=sig, requester=self.cpu_id))
            reply = yield sig.wait()
        finally:
            self._inflight.pop(line_addr, None)
        if reply.kind is MessageKind.INTERVENTION_REPLY:
            state = (LineState.EXCLUSIVE if reply.value == "exclusive"
                     else LineState.SHARED)
        else:
            state = (LineState.EXCLUSIVE if reply.kind is MessageKind.DATA_X
                     else LineState.SHARED)
        # install() copies for new lines and merges for resident ones, so
        # the reply payload can be handed over without a defensive copy
        line, victim = self.l2.install(addr, state, reply.payload)
        line.dirty = False
        for upd_addr, upd_value in mshr["updates"]:
            line.patch_word(upd_addr, upd_value)
            self._line_changed(upd_addr)
        if mshr["poisoned"]:
            # Hand the caller a detached copy; the caches keep nothing
            # (L1 inclusion: never fill L1 from a poisoned reply).
            detached = CacheLine(line_addr=line.line_addr, state=line.state,
                                 words=line.snapshot_words())
            self.l1.invalidate(addr)
            self.l2.invalidate(addr)
            fd = mshr["fill_done"]
            if fd is not None:
                fd.fire(self.sim, None)
            if victim is not None:
                yield from self._evict(victim)
            return detached
        for upd_addr, upd_value in mshr["updates"]:
            self._fill_l1(upd_addr, upd_value)
        if exclusive:
            # Hold the line through the caller's imminent write: the
            # caller MUST _release_rmw_lock after it.  Taken before the
            # eviction below can yield, so no intervention can steal the
            # line mid-RMW.
            yield from self._acquire_rmw_lock(line_addr)
        # Wake any intervention that raced ahead of this fill (it will
        # then defer again on the RMW lock just taken).
        fd = mshr["fill_done"]
        if fd is not None:
            fd.fire(self.sim, None)
        if victim is not None:
            yield from self._evict(victim)
        return line

    def _evict(self, victim):
        """Coroutine: handle an L2 victim.

        SHARED victims drop silently (the directory keeps a stale sharer
        that will simply ack a spurious invalidation).  EXCLUSIVE victims
        notify the home — with data when dirty — so ownership is never
        silently lost.
        """
        self.l1.invalidate(victim.line_addr)
        if victim.state is not LineState.EXCLUSIVE:
            return
        words = victim.snapshot_words() if victim.dirty else None
        self._pending_writebacks[victim.line_addr] = victim.snapshot_words()
        sig = Signal()
        yield from self.hub.egress_send(Message(
            kind=MessageKind.WRITEBACK, src_node=self.node,
            dst_node=home_of(victim.line_addr), addr=victim.line_addr,
            payload=words, reply_to=sig, requester=self.cpu_id))
        yield sig.wait()
        self._pending_writebacks.pop(victim.line_addr, None)

    # ------------------------------------------------------------------
    # incoming coherence traffic (called by the hub at delivery time)
    # ------------------------------------------------------------------
    def on_invalidate(self, msg: Message) -> None:
        self.sim.spawn(self._do_invalidate(msg), name=self._name_inv)

    def _do_invalidate(self, msg: Message):
        yield self._t_l2
        line = line_base(msg.addr)
        mshr = self._inflight.get(line)
        if mshr is not None and not mshr["exclusive"]:
            # Poison only read fills: an invalidation racing our own
            # GET_X targets the pre-upgrade copy; the exclusive reply
            # (serialized later at the directory) supersedes it.
            mshr["poisoned"] = True
        self.l1.invalidate(msg.addr)
        self.l2.invalidate(msg.addr)
        if self._reservation == line:
            self._reservation = None
        self._line_changed(msg.addr)
        yield from self.hub.egress_send(Message(
            kind=MessageKind.INV_ACK, src_node=self.node,
            dst_node=msg.src_node, addr=msg.addr, payload=msg.payload,
            requester=self.cpu_id))

    def on_intervention(self, msg: Message) -> None:
        self.sim.spawn(self._do_intervention(msg), name=self._name_intervene)

    def _do_intervention(self, msg: Message):
        yield self._t_l2
        requester_msg, done = msg.payload
        downgrade = msg.value == "downgrade"
        line_addr = line_base(msg.addr)
        # Evicted-with-writeback-in-flight answers FIRST, before any
        # deferral: our re-fetch of the same line may be queued at the
        # home *behind the very transaction this intervention serves*,
        # so waiting for that fill here would deadlock the line.
        pending = self._pending_writebacks.get(line_addr)
        if pending is not None and self.l2.probe(msg.addr) is None:
            self.wb_race_interventions += 1
            yield from self._finish_intervention(
                msg, requester_msg, done, dict(pending), downgrade)
            return
        # Defer behind any in-flight exclusive fill for this line (the
        # home believes we own it before our data arrives — that fill's
        # home transaction has already retired, so it cannot be queued
        # behind this intervention) and behind any atomic RMW window.
        mshr = self._inflight.get(line_addr)
        if mshr is not None and mshr["exclusive"]:
            yield _fill_done_of(mshr).wait()
        while True:
            gate = self._rmw_locks.get(line_addr)
            if gate is None:
                break
            yield gate.wait()
        line = self.l2.probe(msg.addr)
        if line is not None:
            words = line.snapshot_words()
            if downgrade:
                self.l2.downgrade(msg.addr)
                line.dirty = False
            else:
                self.l1.invalidate(msg.addr)
                self.l2.invalidate(msg.addr)
                if self._reservation == line_base(msg.addr):
                    self._reservation = None
                self._line_changed(msg.addr)
        else:
            pending = self._pending_writebacks.get(line_base(msg.addr))
            if pending is None:
                raise RuntimeError(
                    f"cpu{self.cpu_id}: intervention for absent line "
                    f"{msg.addr:#x} with no writeback in flight")
            self.wb_race_interventions += 1
            words = dict(pending)
        yield from self._finish_intervention(msg, requester_msg, done,
                                             words, downgrade)

    def _finish_intervention(self, msg: Message, requester_msg: Message,
                             done, words, downgrade: bool):
        """Coroutine: the intervention's reply legs (3-hop protocol):
        data straight to the requester, sharing writeback / transfer ack
        back to the home."""
        if requester_msg.reply_to is not None:
            yield from self.hub.egress_send(Message(
                kind=MessageKind.INTERVENTION_REPLY, src_node=self.node,
                dst_node=requester_msg.src_node, addr=requester_msg.addr,
                payload=words,
                value="shared" if downgrade else "exclusive",
                reply_to=requester_msg.reply_to,
                requester=requester_msg.requester))
        yield from self.hub.egress_send(Message(
            kind=MessageKind.SHARING_WRITEBACK, src_node=self.node,
            dst_node=msg.src_node, addr=msg.addr, payload=words,
            reply_to=done, requester=self.cpu_id))

    def on_word_update(self, msg: Message) -> None:
        # Word updates apply instantly on arrival: patch both levels,
        # clear any reservation (the word changed), wake spinners.
        mshr = self._inflight.get(line_base(msg.addr))
        if mshr is not None:
            mshr["updates"].append((msg.addr, msg.value))
            return
        applied = self.l2.apply_word_update(msg.addr, msg.value)
        if applied:
            self.l1.apply_word_update(msg.addr, msg.value)
            if self._reservation == line_base(msg.addr):
                self._reservation = None
            self._line_changed(msg.addr)

    # ------------------------------------------------------------------
    def peek(self, addr: int) -> Optional[int]:
        """Zero-time debug read of the local cached value (tests only)."""
        line = self.l2.probe(addr)
        return None if line is None else line.read_word(addr)
