"""Home directory state.

One :class:`DirectoryEntry` per line that has ever been cached.  The
directory tracks sharers at CPU granularity (each CPU has a private cache
hierarchy) plus an ``amu_sharer`` bit: the paper's fine-grained "get"
inserts the AMU into the sharer list, and — unlike ordinary sharers — the
AMU is allowed to modify the word without exclusive ownership (§3.2).

Invariants (enforced by :meth:`DirectoryEntry.check` and the property
test-suite):

* EXCLUSIVE implies exactly one owner and no sharers;
* SHARED implies a non-empty sharer set (or AMU sharer) and no owner;
* UNOWNED implies neither.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.primitives import Resource


class DirState(enum.Enum):
    """Directory-visible state of one line."""

    UNOWNED = "unowned"     # memory has the only copy
    SHARED = "shared"       # >= 1 read-only copies; memory is clean
    EXCLUSIVE = "exclusive"  # one writable copy; memory possibly stale


@dataclass
class DirectoryEntry:
    """Directory record for a single line."""

    line_addr: int
    state: DirState = DirState.UNOWNED
    sharers: set[int] = field(default_factory=set)   # CPU ids
    owner: Optional[int] = None                      # CPU id
    amu_sharer: bool = False
    #: serializes transactions on this line (the directory "busy" bit)
    busy: Resource = field(default_factory=Resource)
    #: version bumps on every state-changing transaction (diagnostics)
    version: int = 0

    def check(self) -> None:
        """Raise AssertionError when invariants are violated."""
        if self.state is DirState.EXCLUSIVE:
            assert self.owner is not None, f"{self}: EXCLUSIVE without owner"
            assert not self.sharers, f"{self}: EXCLUSIVE with sharers"
            assert not self.amu_sharer, f"{self}: EXCLUSIVE with AMU sharer"
        elif self.state is DirState.SHARED:
            assert self.owner is None, f"{self}: SHARED with owner"
            assert self.sharers or self.amu_sharer, f"{self}: SHARED empty"
        else:
            assert self.owner is None and not self.sharers and not self.amu_sharer, \
                f"{self}: UNOWNED with copies"

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<DirEntry {self.line_addr:#x} {self.state.value} "
                f"owner={self.owner} sharers={sorted(self.sharers)}"
                f"{' +AMU' if self.amu_sharer else ''}>")


class Directory:
    """All directory entries homed at one node."""

    def __init__(self, node: int) -> None:
        self.node = node
        self._entries: dict[int, DirectoryEntry] = {}

    def entry(self, line_addr: int) -> DirectoryEntry:
        """Get-or-create the entry for ``line_addr``."""
        ent = self._entries.get(line_addr)
        if ent is None:
            ent = DirectoryEntry(line_addr=line_addr)
            ent.busy.name = f"dir[{self.node}]@{line_addr:#x}"
            self._entries[line_addr] = ent
        return ent

    def known_entries(self) -> list[DirectoryEntry]:
        """Every entry ever touched (for invariant sweeps in tests)."""
        return list(self._entries.values())

    def check_all(self) -> None:
        for ent in self._entries.values():
            ent.check()
