"""Home directory state.

One :class:`DirectoryEntry` per line that has ever been cached.  The
directory tracks sharers at CPU granularity (each CPU has a private cache
hierarchy) plus an ``amu_sharer`` bit: the paper's fine-grained "get"
inserts the AMU into the sharer list, and — unlike ordinary sharers — the
AMU is allowed to modify the word without exclusive ownership (§3.2).

Sharers are stored as an **integer bitmask** (bit ``i`` set == CPU ``i``
holds a copy), the same presence-vector encoding directory hardware uses.
Membership is one shift-and-mask, fan-out size is ``bit_count()``, and
iteration peels the lowest set bit (``mask & -mask``) — ascending CPU
order, exactly the deterministic order the protocol's invalidation and
word-update waves require.  This is the dominant cost of
INVALIDATE/WORD_UPDATE fan-out at 256 CPUs, where per-wave ``set``
allocation and sorting used to dominate the home engine's profile.
The :attr:`DirectoryEntry.sharers` property still exposes a plain
``set[int]`` view for tests and diagnostics.

Invariants (enforced by :meth:`DirectoryEntry.check` and the property
test-suite):

* EXCLUSIVE implies exactly one owner and no sharers;
* SHARED implies a non-empty sharer set (or AMU sharer) and no owner;
* UNOWNED implies neither.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.sim.primitives import Resource


class DirState(enum.Enum):
    """Directory-visible state of one line."""

    __hash__ = object.__hash__  # identity hash: C-speed dict/Counter keys

    UNOWNED = "unowned"     # memory has the only copy
    SHARED = "shared"       # >= 1 read-only copies; memory is clean
    EXCLUSIVE = "exclusive"  # one writable copy; memory possibly stale


def sharer_mask_of(cpus: Iterable[int]) -> int:
    """Fold CPU ids into a presence bitmask."""
    mask = 0
    for cpu in cpus:
        mask |= 1 << cpu
    return mask


def iter_sharers(mask: int) -> Iterator[int]:
    """CPU ids in ``mask``, lowest (ascending) first.

    Peels the lowest set bit per step — O(population), not O(width) —
    and yields in the same order as ``sorted(set_of_ids)`` did, which
    keeps every fan-out wave's message order bit-identical.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


@dataclass(slots=True)
class DirectoryEntry:
    """Directory record for a single line.

    ``sharer_mask`` is the authoritative sharer encoding; hot protocol
    paths manipulate it directly with bit operations.  ``sharers`` is a
    derived ``set`` view (reading builds a fresh set — never mutate it;
    assigning replaces the mask).
    """

    line_addr: int
    state: DirState = DirState.UNOWNED
    sharer_mask: int = 0                             # bit i == CPU i
    owner: Optional[int] = None                      # CPU id
    amu_sharer: bool = False
    #: serializes transactions on this line (the directory "busy" bit)
    busy: Resource = field(default_factory=Resource)
    #: version bumps on every state-changing transaction (diagnostics)
    version: int = 0

    @property
    def sharers(self) -> set[int]:
        """Sharer CPU ids as a set (diagnostic view of the bitmask)."""
        return set(iter_sharers(self.sharer_mask))

    @sharers.setter
    def sharers(self, cpus: Iterable[int]) -> None:
        self.sharer_mask = sharer_mask_of(cpus)

    def add_sharer(self, cpu: int) -> None:
        self.sharer_mask |= 1 << cpu

    def remove_sharer(self, cpu: int) -> None:
        self.sharer_mask &= ~(1 << cpu)

    def has_sharer(self, cpu: int) -> bool:
        return bool(self.sharer_mask >> cpu & 1)

    def sharer_count(self) -> int:
        return self.sharer_mask.bit_count()

    def check(self) -> None:
        """Raise AssertionError when invariants are violated."""
        if self.state is DirState.EXCLUSIVE:
            assert self.owner is not None, f"{self}: EXCLUSIVE without owner"
            assert not self.sharer_mask, f"{self}: EXCLUSIVE with sharers"
            assert not self.amu_sharer, f"{self}: EXCLUSIVE with AMU sharer"
        elif self.state is DirState.SHARED:
            assert self.owner is None, f"{self}: SHARED with owner"
            assert self.sharer_mask or self.amu_sharer, f"{self}: SHARED empty"
        else:
            assert self.owner is None and not self.sharer_mask \
                and not self.amu_sharer, f"{self}: UNOWNED with copies"

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<DirEntry {self.line_addr:#x} {self.state.value} "
                f"owner={self.owner} sharers={sorted(self.sharers)}"
                f"{' +AMU' if self.amu_sharer else ''}>")


class Directory:
    """All directory entries homed at one node."""

    __slots__ = ("node", "_entries")

    def __init__(self, node: int) -> None:
        self.node = node
        self._entries: dict[int, DirectoryEntry] = {}

    def entry(self, line_addr: int) -> DirectoryEntry:
        """Get-or-create the entry for ``line_addr``."""
        ent = self._entries.get(line_addr)
        if ent is None:
            ent = DirectoryEntry(line_addr=line_addr)
            ent.busy.name = f"dir[{self.node}]@{line_addr:#x}"
            self._entries[line_addr] = ent
        return ent

    def known_entries(self) -> list[DirectoryEntry]:
        """Every entry ever touched (for invariant sweeps in tests)."""
        return list(self._entries.values())

    def check_all(self) -> None:
        for ent in self._entries.values():
            ent.check()
