"""Directory-based coherence protocol (substrates S5-S8).

* :mod:`repro.coherence.directory` — per-line home directory state
  (unowned / shared+sharer set / exclusive+owner), with the AMU tracked
  as a special sharer for the fine-grained update extension.
* :mod:`repro.coherence.protocol` — the home-side transaction engine:
  services GET_S/GET_X/writebacks/uncached accesses, serializing per
  line, talking to DRAM and fanning out invalidations.
* :mod:`repro.coherence.client` — the processor-side cache controller:
  loads, stores, LL/SC, processor-side atomics, uncached accesses, and
  the event-driven ``spin_until`` that models spin loops.
* :mod:`repro.coherence.update` — fine-grained get/put engine used by the
  AMU (word-grained coherent reads, word-update pushes to sharers).
"""

from repro.coherence.directory import Directory, DirectoryEntry, DirState
from repro.coherence.protocol import HomeEngine
from repro.coherence.client import CacheController

__all__ = [
    "Directory",
    "DirectoryEntry",
    "DirState",
    "HomeEngine",
    "CacheController",
]
