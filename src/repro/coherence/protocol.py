"""Home-side coherence transaction engine.

One :class:`HomeEngine` per node services every coherence request whose
address is homed there.  Transactions on the same line are serialized by
the line's directory ``busy`` resource (the hardware busy bit); the DRAM
access is performed *while the entry is busy* — matching Origin-style
directory controllers, where a read request occupies the directory slot
until the memory reply is injected.  This non-pipelined service is a
first-order term in the paper's results: it is what makes the
invalidate-then-reload wake-up storm of conventional barriers/locks cost
O(P x full service time) at the home, while AMO word-update pushes cost
only O(P x egress injection).

Three-hop transactions (owner intervention) follow the SN2 style: the
home forwards an intervention to the exclusive owner, the owner replies
with data *directly to the requester* and sends a sharing writeback (or
ownership-transfer ack) back to the home, which then retires the
transaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.coherence.directory import Directory, DirState
from repro.mem.address import line_base, word_base
from repro.network.message import Message, MessageKind
from repro.sim.backends.wave import wave_builder, wave_expander
from repro.sim.primitives import Signal, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Hub


class AckLatch:
    """Counts acknowledgements; fires its signal when all have arrived."""

    __slots__ = ("signal", "remaining")

    def __init__(self, expected: int, name: str = "") -> None:
        self.signal = Signal(name=name)
        self.remaining = expected

    def ack(self, sim) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.signal.fire(sim, None)
        elif self.remaining < 0:
            raise RuntimeError("ack latch over-acked")


class HomeEngine:
    """Directory + memory controller protocol engine for one home node."""

    __slots__ = ("hub", "sim", "node", "config", "net", "dram", "backing",
                 "directory", "transactions", "get_s_served", "get_x_served",
                 "writebacks_served", "invalidations_sent",
                 "interventions_sent", "word_updates_pushed", "_t_dir",
                 "_name_get_s", "_name_get_x", "_name_wb", "_name_readfill",
                 "_expand_wave", "_build_wave")

    def __init__(self, hub: "Hub") -> None:
        self.hub = hub
        self.sim = hub.sim
        self.node = hub.node
        self.config = hub.config
        self.net = hub.net
        self.dram = hub.dram
        self.backing = hub.backing
        self.directory = Directory(hub.node)
        self.transactions = 0
        self.get_s_served = 0
        self.get_x_served = 0
        self.writebacks_served = 0
        self.invalidations_sent = 0
        self.interventions_sent = 0
        self.word_updates_pushed = 0
        # fixed directory-occupancy delay: Timeout is stateless, reuse one
        self._t_dir = Timeout(self.config.hub.hub_to_cpu(
            self.config.hub.directory_occupancy_hub_cycles))
        # spawn names precomputed once: handle() runs per request message
        self._name_get_s = f"getS@{self.node}"
        self._name_get_x = f"getX@{self.node}"
        self._name_wb = f"wb@{self.node}"
        self._name_readfill = f"readfill@{self.node}"
        # fan-out expansion: numpy batch on large accel machines, the
        # reference bit-peel everywhere else (identical order either way)
        self._expand_wave = wave_expander(self.config.kernel_backend,
                                          self.config.n_processors)
        # wave construction: the whole message batch is allocated in C
        # on the accel backend (same slots, ids, and order either way)
        self._build_wave = wave_builder(self.config.kernel_backend)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        """Entry point from the hub for a request homed at this node."""
        self.transactions += 1
        if msg.kind is MessageKind.GET_S:
            self.sim.spawn(self._serve_get_s(msg), name=self._name_get_s)
        elif msg.kind is MessageKind.GET_X:
            self.sim.spawn(self._serve_get_x(msg), name=self._name_get_x)
        elif msg.kind is MessageKind.WRITEBACK:
            self.sim.spawn(self._serve_writeback(msg), name=self._name_wb)
        elif msg.kind is MessageKind.UNCACHED_READ:
            self.sim.spawn(self._serve_uncached_read(msg))
        elif msg.kind is MessageKind.UNCACHED_WRITE:
            self.sim.spawn(self._serve_uncached_write(msg))
        else:
            raise RuntimeError(f"home engine got unexpected {msg!r}")

    def _dir_delay(self) -> int:
        return self.config.hub.hub_to_cpu(
            self.config.hub.directory_occupancy_hub_cycles)

    def _count_invalidations(self, fanout: int) -> None:
        """Account one invalidation wave of ``fanout`` targets."""
        self.invalidations_sent += fanout
        obs = self.hub.machine.obs
        if obs is not None:
            obs.inval_fanout.observe(fanout)

    # ------------------------------------------------------------------
    # GET_S — read miss
    # ------------------------------------------------------------------
    def _serve_get_s(self, msg: Message):
        # Split so the compiled backend's GET_S port can run the clean
        # path in C and delegate only the 3-hop tail to Python.
        self.get_s_served += 1
        ent = self.directory.entry(line_base(msg.addr))
        yield ent.busy.acquire()
        try:
            yield self._t_dir
            if ent.state is DirState.EXCLUSIVE:
                yield from self._get_s_owned(msg, ent)
            else:
                self._get_s_clean(msg, ent)
        finally:
            ent.busy.release()

    def _get_s_owned(self, msg: Message, ent):
        """Coroutine: the GET_S tail when a cache holds the line exclusive.

        3-hop: downgrade the owner; data flows owner->requester, sharing
        writeback flows owner->home.
        """
        requester = msg.requester
        if ent.owner == requester:
            # owner re-fetching after silent drop is impossible in
            # this model (clean evictions notify); treat as error.
            raise RuntimeError(f"owner {requester} re-requested {ent!r}")
        words = yield from self._intervene(
            owner=ent.owner, requester_msg=msg, downgrade=True)
        self.backing.write_line(ent.line_addr, words)
        ent.sharer_mask = (1 << ent.owner) | (1 << requester)
        ent.owner = None
        ent.state = DirState.SHARED

    def _get_s_clean(self, msg: Message, ent) -> None:
        """Clean read: memory supplies the data.  The directory slot is
        held only for the lookup/state update; the DRAM access and reply
        injection proceed after release, so a read *storm* serializes at
        (directory + channel occupancy), not at full access latency —
        Origin-style pipelined reads.  Racing invalidations/updates
        against the in-flight reply are handled by the requester's MSHR
        logic (see CacheController._fetch).

        Note: if the AMU caches a newer value for a word in this line,
        the reply is deliberately *stale* — the paper's
        release-consistency semantics (§3.2): AMU values become visible
        at the put (test match / eviction), not before.
        """
        words = self.backing.read_line(ent.line_addr, self.config.line_bytes)
        ent.sharer_mask |= 1 << msg.requester
        ent.state = DirState.SHARED
        ent.version += 1
        self.sim.spawn(self._finish_clean_read(msg, words),
                       name=self._name_readfill)

    def _finish_clean_read(self, msg: Message, words):
        """Coroutine: the pipelined tail of a clean GET_S (DRAM + reply)."""
        yield from self.dram.access_line()
        yield from self.hub.egress_send(Message(
            kind=MessageKind.DATA_S, src_node=self.node,
            dst_node=msg.src_node, addr=msg.addr, payload=words,
            reply_to=msg.reply_to, requester=msg.requester))

    # ------------------------------------------------------------------
    # GET_X — store miss / upgrade / LL-SC upgrade / atomic fetch
    # ------------------------------------------------------------------
    def _serve_get_x(self, msg: Message):
        self.get_x_served += 1
        line = line_base(msg.addr)
        ent = self.directory.entry(line)
        yield ent.busy.acquire()
        try:
            yield self._t_dir
            requester = msg.requester
            if ent.state is DirState.EXCLUSIVE and ent.owner != requester:
                words = yield from self._intervene(
                    owner=ent.owner, requester_msg=msg, downgrade=False)
                self.backing.write_line(line, words)
                ent.owner = requester
                ent.version += 1
                # data went owner->requester directly; nothing more to send
            elif ent.state is DirState.EXCLUSIVE:
                # already the owner (racing duplicate); just re-acknowledge
                yield self._reply_data_x(msg, ent)
            else:
                if ent.amu_sharer:
                    yield from self.hub.amu.flush_line(line)
                    ent.amu_sharer = False
                inv_mask = ent.sharer_mask & ~(1 << requester)
                if inv_mask:
                    fanout = inv_mask.bit_count()
                    self._count_invalidations(fanout)
                    latch = AckLatch(fanout)
                    wave = self._build_wave(
                        MessageKind.INVALIDATE, self.node, msg.addr, None,
                        latch, self._expand_wave(
                            inv_mask, self.config.cpus_per_node))
                    yield self.hub.egress_wave(wave).wait()
                    yield latch.signal.wait()
                # bare yield: kernel-flattened subcall (one frame/resume)
                yield self._reply_data_x(msg, ent)
        finally:
            ent.busy.release()

    def _reply_data_x(self, msg: Message, ent) -> object:
        line = ent.line_addr
        yield self.dram.access_line()
        words = self.backing.read_line(line, self.config.line_bytes)
        ent.sharer_mask = 0
        ent.owner = msg.requester
        ent.state = DirState.EXCLUSIVE
        ent.amu_sharer = False
        ent.version += 1
        yield self.hub.egress_send(Message(
            kind=MessageKind.DATA_X, src_node=self.node,
            dst_node=msg.src_node, addr=msg.addr, payload=words,
            reply_to=msg.reply_to, requester=msg.requester))

    # ------------------------------------------------------------------
    # 3-hop intervention helper
    # ------------------------------------------------------------------
    def _intervene(self, owner: int, requester_msg: Message, downgrade: bool):
        """Forward an intervention to ``owner``; wait for its writeback.

        Returns the owner's line words (the coherent data).  The owner
        itself sends the data reply directly to the requester.
        """
        self.interventions_sent += 1
        done = Signal(name=f"intervene@{requester_msg.addr:#x}")
        node = self.hub.machine.node_of_cpu(owner)
        yield from self.hub.egress_send(Message(
            kind=MessageKind.INTERVENTION, src_node=self.node,
            dst_node=node, addr=requester_msg.addr, dst_cpu=owner,
            value="downgrade" if downgrade else "invalidate",
            payload=(requester_msg, done)))
        wb_msg = yield done.wait()
        return wb_msg.payload  # words dict from the owner's cache

    # ------------------------------------------------------------------
    # writebacks (dirty eviction or clean-exclusive drop notification)
    # ------------------------------------------------------------------
    def _serve_writeback(self, msg: Message):
        self.writebacks_served += 1
        line = line_base(msg.addr)
        ent = self.directory.entry(line)
        yield ent.busy.acquire()
        try:
            yield self._t_dir
            if msg.payload is not None:
                yield from self.dram.access_line()
                self.backing.write_line(line, msg.payload)
            if ent.owner == msg.requester:
                ent.owner = None
                ent.state = DirState.UNOWNED
            elif ent.sharer_mask >> msg.requester & 1:
                ent.sharer_mask &= ~(1 << msg.requester)
                if not ent.sharer_mask and not ent.amu_sharer:
                    ent.state = DirState.UNOWNED
            ent.version += 1
            yield from self.hub.egress_send(Message(
                kind=MessageKind.WRITEBACK_ACK, src_node=self.node,
                dst_node=msg.src_node, addr=msg.addr,
                reply_to=msg.reply_to, requester=msg.requester))
        finally:
            ent.busy.release()

    # ------------------------------------------------------------------
    # uncached accesses (MAO spin path, IO space)
    # ------------------------------------------------------------------
    def _serve_uncached_read(self, msg: Message):
        # The freshest value of a MAO-operated word lives in the AMU
        # cache (MAOs never write coherence state); serve from there.
        cached = self.hub.amu.peek(msg.addr)
        if cached is not None:
            yield Timeout(self.config.hub.hub_to_cpu(
                self.config.amu.op_latency_hub_cycles))
            value = cached
        else:
            value = yield from self.read_coherent_word(msg.addr)
        yield from self.hub.egress_send(Message(
            kind=MessageKind.UNCACHED_READ_REPLY, src_node=self.node,
            dst_node=msg.src_node, addr=msg.addr, value=value,
            reply_to=msg.reply_to, requester=msg.requester))

    def _serve_uncached_write(self, msg: Message):
        yield from self.write_coherent_word(msg.addr, msg.value,
                                            push_updates=False)
        yield from self.hub.egress_send(Message(
            kind=MessageKind.UNCACHED_WRITE_ACK, src_node=self.node,
            dst_node=msg.src_node, addr=msg.addr,
            reply_to=msg.reply_to, requester=msg.requester))

    # ------------------------------------------------------------------
    # coherent word access, used by the fine-grained engine / MAO path
    # ------------------------------------------------------------------
    def read_coherent_word(self, addr: int):
        """Coroutine: coherent value of one word (home-local entry point).

        If a processor cache holds the line exclusively, the owner is
        downgraded (3-hop); otherwise memory (or the AMU cache, checked by
        callers) supplies the value.
        """
        line = line_base(addr)
        ent = self.directory.entry(line)
        yield ent.busy.acquire()
        try:
            yield self._t_dir
            if ent.state is DirState.EXCLUSIVE:
                fake_req = Message(
                    kind=MessageKind.FG_GET, src_node=self.node,
                    dst_node=self.node, addr=addr, requester=None,
                    reply_to=None)
                words = yield from self._intervene(
                    owner=ent.owner, requester_msg=fake_req, downgrade=True)
                self.backing.write_line(line, words)
                ent.sharer_mask = 1 << ent.owner
                ent.owner = None
                ent.state = DirState.SHARED
                ent.version += 1
            yield from self.dram.access_word()
            return self.backing.read_word(addr)
        finally:
            ent.busy.release()

    def write_coherent_word(self, addr: int, value: int,
                            push_updates: bool) -> object:
        """Coroutine: write one word at the home (fine-grained put).

        With ``push_updates`` (the paper's put mechanism), a WORD_UPDATE
        is pushed to every sharer's cache — the line stays SHARED, no
        invalidations, no reloads.  Without it (MAO/uncached semantics),
        sharers must be invalidated to keep caches coherent.
        """
        line = line_base(addr)
        ent = self.directory.entry(line)
        yield ent.busy.acquire()
        try:
            yield self._t_dir
            if ent.state is DirState.EXCLUSIVE:
                # pull the line home first (rare: sync variables are not
                # normally write-shared with exclusive owners)
                fake_req = Message(
                    kind=MessageKind.FG_PUT, src_node=self.node,
                    dst_node=self.node, addr=addr, requester=None,
                    reply_to=None)
                words = yield from self._intervene(
                    owner=ent.owner, requester_msg=fake_req, downgrade=True)
                self.backing.write_line(line, words)
                ent.sharer_mask = 1 << ent.owner
                ent.owner = None
                ent.state = DirState.SHARED
            yield from self.dram.access_word()
            self.backing.write_word(addr, value)
            san = self.hub.machine.sanitizer
            if san is not None:
                san.note_coherent_write(addr, value, push_updates)
            ent.version += 1
            if push_updates:
                if ent.sharer_mask:
                    fanout = ent.sharer_mask.bit_count()
                    self.word_updates_pushed += fanout
                    obs = self.hub.machine.obs
                    if obs is not None:
                        obs.update_fanout.observe(fanout)
                    word = word_base(addr)
                    updates = self._build_wave(
                        MessageKind.WORD_UPDATE, self.node, word, value,
                        None, self._expand_wave(
                            ent.sharer_mask, self.config.cpus_per_node))
                    if self.config.network.multicast_updates:
                        # hardware multicast (footnote 2): the routers
                        # replicate the packet — one injection slot
                        # total, batched lazy delivery for the replicas
                        yield self.hub.egress_wave(updates[:1]).wait()
                        self.net.send_multicast(updates[1:])
                    else:
                        yield self.hub.egress_wave(updates).wait()
            elif ent.sharer_mask:
                fanout = ent.sharer_mask.bit_count()
                self._count_invalidations(fanout)
                latch = AckLatch(fanout)
                wave = self._build_wave(
                    MessageKind.INVALIDATE, self.node, addr, None, latch,
                    self._expand_wave(
                        ent.sharer_mask, self.config.cpus_per_node))
                yield self.hub.egress_wave(wave).wait()
                yield latch.signal.wait()
                ent.sharer_mask = 0
                if not ent.amu_sharer:
                    ent.state = DirState.UNOWNED
        finally:
            ent.busy.release()

    # ------------------------------------------------------------------
    def mark_amu_sharer(self, addr: int) -> None:
        """Register the local AMU as a fine-grained sharer of the line."""
        ent = self.directory.entry(line_base(addr))
        ent.amu_sharer = True
        if ent.state is DirState.UNOWNED:
            ent.state = DirState.SHARED

    def unmark_amu_sharer(self, addr: int) -> None:
        ent = self.directory.entry(line_base(addr))
        ent.amu_sharer = False
        if ent.state is DirState.SHARED and not ent.sharer_mask:
            ent.state = DirState.UNOWNED
