"""Synchronization algorithms (substrate S13), mechanism-parameterized.

Every algorithm takes a :class:`~repro.config.Mechanism` and issues its
atomic read-modify-writes / releases through that mechanism, so one
source implements all five columns of the paper's tables:

* :class:`~repro.sync.barrier.CentralizedBarrier` — the flat barrier
  (paper Figure 3: naive and spin-variable codings; AMO uses naive);
* :class:`~repro.sync.tree_barrier.CombiningTreeBarrier` — the two-level
  software combining tree of Yew et al. (§4.2.2);
* :class:`~repro.sync.ticket_lock.TicketLock` — FIFO ticket lock
  (paper Figure 4);
* :class:`~repro.sync.array_lock.ArrayQueueLock` — Anderson's
  array-based queueing lock with per-slot cache lines;
* :class:`~repro.sync.mcs_lock.McsLock` — the MCS list-based queue lock
  (extension: exercises ``amo.swap``/``amo.cas``);
* :class:`~repro.sync.cna_lock.CnaLock` — compact NUMA-aware queue lock
  (Dice & Kogan; extension: NUMA-batched grants with a fairness bound);
* :class:`~repro.sync.rw_lock.RwTicketLock` — fair reader-writer ticket
  lock (extension; refuses MAO — see its module docstring);
* :class:`~repro.sync.dissemination.DisseminationBarrier` — log2(P)-round
  point-to-point barrier with no centralized variable (extension);
* :class:`~repro.sync.sense_barrier.SenseReversingBarrier` — the textbook
  sense-reversing centralized barrier (extension).
"""

from repro.sync.barrier import CentralizedBarrier
from repro.sync.tree_barrier import CombiningTreeBarrier
from repro.sync.ticket_lock import TicketLock
from repro.sync.array_lock import ArrayQueueLock
from repro.sync.mcs_lock import McsLock
from repro.sync.cna_lock import CnaLock
from repro.sync.rw_lock import RwTicketLock, UnsupportedMechanismError
from repro.sync.dissemination import DisseminationBarrier
from repro.sync.sense_barrier import SenseReversingBarrier
from repro.sync.rmw import compare_and_swap, fetch_add, swap

__all__ = [
    "CentralizedBarrier",
    "CombiningTreeBarrier",
    "TicketLock",
    "ArrayQueueLock",
    "McsLock",
    "CnaLock",
    "RwTicketLock",
    "UnsupportedMechanismError",
    "DisseminationBarrier",
    "SenseReversingBarrier",
    "fetch_add",
    "swap",
    "compare_and_swap",
]
