"""MCS list-based queue lock (Mellor-Crummey & Scott, 1991).

An extension beyond the paper's two evaluated locks: the third classic
scalable lock from the same MCS paper the authors take their ticket and
array locks from.  Each waiter enqueues a *queue node* onto a global
tail pointer with an atomic **swap**, and spins on a flag inside its own
node — which this implementation homes on the *waiter's own node*, so
spinning is node-local (the property QOLB builds into hardware, §2).
Release hands the lock to the successor with a single-word write, or
clears the tail with a **compare-and-swap** when no successor exists.

Mechanism mapping uses :func:`repro.sync.rmw.swap` /
:func:`repro.sync.rmw.compare_and_swap`, so the lock runs over all five
of the paper's hardware options — including ``amo.swap`` / ``amo.cas``
from the "wide range of AMO instructions" the paper says it is
considering (§3).

Queue-node encoding: CPU ``i``'s ``k``-th acquisition is identified by
``k * (P + 1) + i + 1`` in pointer words (0 is nil), so pointers fit the
simulator's integer words *and* every acquisition attempt has a unique
handle — which lets the queue-order linearizability checkers
(:mod:`repro.check.linearize`) reconstruct the enqueue chain offline
from recorded predecessor handles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.mechanism import Mechanism
from repro.sync.rmw import coherent_release_store, compare_and_swap, swap

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.cpu.processor import Processor

NIL = 0

#: qnode.locked values
GO = 0
WAIT = 1


class McsLock:
    """MCS queue lock, parameterized by mechanism."""

    _counter = 0
    _name = "mcs"          # allocation-name prefix; subclasses override

    def __init__(self, machine: "Machine", mechanism: Mechanism,
                 home_node: int = 0) -> None:
        self.machine = machine
        self.mechanism = mechanism
        self.home_node = home_node
        cls = type(self)
        uid = cls._counter
        cls._counter = uid + 1
        prefix = f"{self._name}{uid}"
        #: global tail pointer (the only centralized variable)
        self.tail = machine.alloc(f"{prefix}.tail", home_node)
        #: per-CPU queue nodes, homed at the owning CPU's node for local
        #: spinning; one line per word (next / locked in separate lines)
        self._next = []
        self._locked = []
        for cpu in range(machine.n_processors):
            node = machine.node_of_cpu(cpu)
            self._next.append(
                machine.alloc(f"{prefix}.n{cpu}.next", node))
            self._locked.append(
                machine.alloc(f"{prefix}.n{cpu}.locked", node))
        self._held_by: set[int] = set()
        self.acquisitions = 0
        #: handle namespace: cpu lives in the low ``stride`` residue,
        #: the per-CPU attempt counter in the quotient, 0 stays nil
        self._stride = machine.n_processors + 1
        self._attempt = [0] * machine.n_processors
        self._cur_handle = [NIL] * machine.n_processors

    # ------------------------------------------------------------------
    def _qnode_of(self, handle: int) -> int:
        """Pointer-word handle -> cpu id."""
        return handle % self._stride - 1

    def _new_handle(self, cpu: int) -> int:
        attempt = self._attempt[cpu]
        self._attempt[cpu] = attempt + 1
        handle = attempt * self._stride + cpu + 1
        self._cur_handle[cpu] = handle
        return handle

    def acquire(self, proc: "Processor"):
        """Coroutine: enqueue with swap, spin locally until granted.

        Returns ``(my_handle, pred_handle)`` — the unique handle of this
        acquisition and of the queue predecessor it linked behind (nil
        when the queue was empty).  Checkers use the pair to rebuild the
        enqueue chain; ordinary callers may ignore it.
        """
        me = proc.cpu_id
        my_handle = self._new_handle(me)
        # reset my node (plain local-homed stores)
        yield from proc.store(self._next[me].addr, NIL)
        pred_handle = yield from swap(proc, self.mechanism,
                                      self.tail.addr, my_handle)
        if pred_handle != NIL:
            pred = self._qnode_of(pred_handle)
            yield from proc.store(self._locked[me].addr, WAIT)
            # link behind the predecessor...
            yield from proc.store(self._next[pred].addr, my_handle)
            # ...and spin on our own (node-local) flag
            yield proc.spin_until(self._locked[me].addr,
                                       lambda v: v == GO)
        self._held_by.add(me)
        self.acquisitions += 1
        return my_handle, pred_handle

    def release(self, proc: "Processor"):
        """Coroutine: hand off to the successor (or clear the tail)."""
        me = proc.cpu_id
        if me not in self._held_by:
            raise RuntimeError(
                f"cpu{me} released MCS lock it does not hold")
        my_handle = self._cur_handle[me]
        successor = yield from proc.load(self._next[me].addr)
        if successor == NIL:
            old = yield from compare_and_swap(
                proc, self.mechanism, self.tail.addr, my_handle, NIL)
            if old == my_handle:
                self._held_by.discard(me)
                return                    # no successor: lock is free
            # somebody is mid-enqueue; wait for the link to appear
            successor = yield proc.spin_until(
                self._next[me].addr, lambda v: v != NIL)
        succ_cpu = self._qnode_of(successor)
        yield from coherent_release_store(
            proc, self.mechanism, self._locked[succ_cpu].addr, GO,
            delta=-1)
        self._held_by.discard(me)

    # warm-start support: holder set, acquisition count and handle
    # counters live outside the machine, so snapshot replays must rewind
    # them too (see repro.workloads.warm).
    def save_state(self) -> dict:
        return {"held_by": set(self._held_by),
                "acquisitions": self.acquisitions,
                "attempt": list(self._attempt),
                "cur_handle": list(self._cur_handle)}

    def load_state(self, state: dict) -> None:
        self._held_by = set(state["held_by"])
        self.acquisitions = state["acquisitions"]
        self._attempt = list(state["attempt"])
        self._cur_handle = list(state["cur_handle"])

    def holder(self) -> int | None:
        holders = sorted(self._held_by)
        if len(holders) > 1:
            raise AssertionError(f"mutual exclusion violated: {holders}")
        return holders[0] if holders else None
