"""Two-level software combining-tree barrier (Yew, Tzeng & Lawrie style).

"For all tree-based barriers, we use a two-level tree structure
regardless of the number of processors." (§4.2.2)

Processors are partitioned into groups of ``branching`` consecutive
CPUs.  Each group owns a count and a release variable homed at the
*group leader's node*, which distributes the hot spots across the
machine (the point of combining trees).  The last arriver in each group
ascends to a root count (homed at ``root_home``); the last arriver at
the root starts the downward wake-up wave: leaders release their group's
members in parallel.

For the AMO mechanism the root count carries a test value so the root
release is an update push; group releases use ``amo.fetchadd`` pushes.
The paper finds AMO+tree *slower* than flat AMO at every evaluated size
(the tree pays the AMU fixed overhead twice) — the harness reproduces
that comparison.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.config.mechanism import Mechanism
from repro.sync.rmw import fetch_add

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.cpu.processor import Processor


class CombiningTreeBarrier:
    """Two-level combining tree over ``n_participants`` CPUs."""

    _counter = 0

    def __init__(self, machine: "Machine", mechanism: Mechanism,
                 branching: int, n_participants: int | None = None,
                 root_home: int = 0) -> None:
        if branching < 2:
            raise ValueError("branching factor must be >= 2")
        self.machine = machine
        self.mechanism = mechanism
        self.n = n_participants or machine.n_processors
        self.branching = branching
        self.n_groups = math.ceil(self.n / branching)
        if self.n_groups < 2:
            raise ValueError(
                f"branching {branching} leaves a single group for "
                f"{self.n} CPUs — use CentralizedBarrier")
        uid = CombiningTreeBarrier._counter
        CombiningTreeBarrier._counter += 1
        self.group_count = []
        self.group_release = []
        for g in range(self.n_groups):
            leader_cpu = g * branching
            node = machine.node_of_cpu(leader_cpu)
            self.group_count.append(
                machine.alloc(f"tree{uid}.g{g}.count", node))
            self.group_release.append(
                machine.alloc(f"tree{uid}.g{g}.release", node))
        self.root_count = machine.alloc(f"tree{uid}.root.count", root_home)
        self.root_release = machine.alloc(f"tree{uid}.root.release", root_home)
        self._episode: dict[int, int] = {}

    # ------------------------------------------------------------------
    def group_of(self, cpu_id: int) -> int:
        return cpu_id // self.branching

    def group_size(self, group: int) -> int:
        """Participants in ``group`` (the last group may be smaller)."""
        start = group * self.branching
        return min(self.branching, self.n - start)

    # ------------------------------------------------------------------
    def wait(self, proc: "Processor"):
        """Coroutine: combining-tree barrier arrival."""
        episode = self._episode.get(proc.cpu_id, 0)
        self._episode[proc.cpu_id] = episode + 1
        g = self.group_of(proc.cpu_id)
        g_target = self.group_size(g) * (episode + 1)
        r_target = self.n_groups * (episode + 1)
        mech = self.mechanism
        count = self.group_count[g].addr
        release = self.group_release[g].addr

        if mech is Mechanism.AMO:
            old = yield from proc.amo_inc(count)
            if old == g_target - 1:
                yield from proc.amo_inc(self.root_count.addr, test=r_target)
                yield proc.spin_until(self.root_count.addr,
                                           lambda v: v >= r_target)
                yield from proc.amo_fetchadd(release, 1, wait_reply=False)
            else:
                yield proc.spin_until(release,
                                           lambda v: v >= episode + 1)
            return

        if mech is Mechanism.ACTMSG:
            g_home = self.group_count[g].home_node
            old = yield from proc.am_call(g_home, "fetchadd", (count, 1))
            if old == g_target - 1:
                yield from proc.am_call(
                    self.root_count.home_node, "fetchadd_notify",
                    (self.root_count.addr, 1, r_target,
                     self.root_release.addr, episode + 1))
                yield proc.spin_until(self.root_release.addr,
                                           lambda v: v >= episode + 1)
                yield from proc.store(release, episode + 1)
            else:
                yield proc.spin_until(release,
                                           lambda v: v >= episode + 1)
            return

        old = yield from fetch_add(proc, mech, count, 1)
        if old == g_target - 1:
            root_old = yield from fetch_add(proc, mech,
                                            self.root_count.addr, 1)
            if root_old == r_target - 1:
                yield from proc.store(self.root_release.addr, episode + 1)
            else:
                yield proc.spin_until(self.root_release.addr,
                                           lambda v: v >= episode + 1)
            yield from proc.store(release, episode + 1)
        else:
            yield proc.spin_until(release, lambda v: v >= episode + 1)
