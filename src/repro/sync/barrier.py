"""Centralized (flat) barriers — paper Figure 3.

Three codings:

* **naive** (Fig. 3a): increment the barrier variable, spin on it.  With
  conventional coherence this puts spinners and incrementers on the same
  line — every increment invalidates every spinner, whose reloads then
  contend with the next increment.  Provided for the pathology tests.
* **optimized** (Fig. 3b): spin on a *separate* spin variable (different
  cache line); the last arriver writes it once.  This is the coding used
  for the LL/SC (baseline), Atomic, and MAO table entries, and the
  ActMsg variant lets the handler publish the release.
* **AMO** (Fig. 3c): the naive coding *is* the right coding — ``amo.inc``
  carries a test value, the AMU defers the put until the count reaches
  it, and spinner caches are patched in place.

The barrier is reusable: episodes advance a monotonic target
(``episode * n_participants``), so no sense-reversal is needed and a
single code path serves repeated use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.mechanism import Mechanism
from repro.sync.rmw import fetch_add

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.cpu.processor import Processor


class CentralizedBarrier:
    """Flat barrier over ``n_participants`` CPUs.

    Parameters
    ----------
    machine, mechanism:
        The system and the atomic-primitive mechanism to use.
    n_participants:
        Defaults to every CPU in the machine.
    home_node:
        Placement of the barrier (and spin) variables.
    naive:
        Force the Figure 3(a) coding for conventional mechanisms
        (pathology demonstration).  AMO always uses the naive coding —
        that is the paper's point.
    """

    _counter = 0

    def __init__(self, machine: "Machine", mechanism: Mechanism,
                 n_participants: int | None = None, home_node: int = 0,
                 naive: bool = False) -> None:
        self.machine = machine
        self.mechanism = mechanism
        self.n = n_participants or machine.n_processors
        self.home_node = home_node
        self.naive = naive or mechanism is Mechanism.AMO
        uid = CentralizedBarrier._counter
        CentralizedBarrier._counter += 1
        self.count_var = machine.alloc(f"barrier{uid}.count", home_node)
        self.spin_var = machine.alloc(f"barrier{uid}.spin", home_node)
        self._episode: dict[int, int] = {}

    # ------------------------------------------------------------------
    def wait(self, proc: "Processor"):
        """Coroutine: block until all ``n`` participants have arrived."""
        episode = self._episode.get(proc.cpu_id, 0)
        self._episode[proc.cpu_id] = episode + 1
        target = self.n * (episode + 1)
        mech = self.mechanism

        if mech is Mechanism.AMO:
            # Figure 3(c): naive coding, test value = expected final count.
            # The inc's old-value reply is unread — no stall on it.
            yield from proc.amo_inc(self.count_var.addr, test=target,
                                    wait_reply=False)
            yield proc.spin_until(self.count_var.addr,
                                       lambda v: v >= target)
            return

        if mech is Mechanism.ACTMSG:
            # The home processor's handler increments and publishes the
            # release with a coherent store when the count completes.
            yield from proc.am_call(
                self.home_node, "fetchadd_notify",
                (self.count_var.addr, 1, target,
                 self.spin_var.addr, episode + 1))
            yield proc.spin_until(self.spin_var.addr,
                                       lambda v: v >= episode + 1)
            return

        old = yield from fetch_add(proc, mech, self.count_var.addr, 1)
        if self.naive:
            # Figure 3(a): spin straight on the barrier variable.
            if old != target - 1:
                yield proc.spin_until(self.count_var.addr,
                                           lambda v: v >= target)
            return
        # Figure 3(b): last arriver releases through the spin variable.
        if old == target - 1:
            yield from proc.store(self.spin_var.addr, episode + 1)
        else:
            yield proc.spin_until(self.spin_var.addr,
                                       lambda v: v >= episode + 1)

    # ------------------------------------------------------------------
    # warm-start support: the episode map is workload-level Python state
    # that lives outside the machine, so snapshot/restore replays must
    # save and rewind it alongside the machine checkpoint.
    def save_state(self) -> dict:
        return {"episode": dict(self._episode)}

    def load_state(self, state: dict) -> None:
        self._episode = dict(state["episode"])

    # ------------------------------------------------------------------
    def episodes_completed(self, cpu_id: int) -> int:
        """How many times ``cpu_id`` has entered the barrier."""
        return self._episode.get(cpu_id, 0)
