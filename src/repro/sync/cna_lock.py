"""Compact NUMA-aware (CNA) queue lock (Dice & Kogan, EuroSys 2019).

A NUMA-aware refinement of the MCS lock, per Paolillo et al.'s
weak-memory study of it (PAPERS.md): the release path prefers handing
the lock to a waiter on the *holder's own NUMA node*, parking the
skipped remote waiters on a **secondary queue** so the lock (and the
cache line protected by it) ping-pongs between nodes far less often.
Fairness is bounded: after ``batch_threshold`` consecutive node-local
grants the secondary queue is *flushed* — spliced back in front of the
main queue — so no parked waiter starves.

The memory layout extends the MCS lock's (tail word plus per-CPU
``next``/``locked`` words homed on the waiter's node) with three
holder-owned words at the lock's home: the secondary queue's head and
tail handles and the consecutive-local-grant counter.  Real CNA packs
these into the lock word and the holder's qnode; giving them their own
words keeps the handle encoding simple while still routing every access
through simulated coherent memory — which is also what lets the lock
run *sharded* (all cross-holder state lives in the machine, none in
host-side Python attributes).  Only the current holder touches them, so
plain loads/stores are race-free by mutual exclusion itself.

Acquire is inherited from MCS unchanged.  The checker contract this
lock is fuzzed against
(:func:`repro.check.linearize.check_cna_grant_order`): every grant that
overtakes an older waiter must be node-local to the granting holder,
and no run of consecutive overtaking grants may exceed
``batch_threshold``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.mechanism import Mechanism
from repro.sync.mcs_lock import GO, NIL, McsLock
from repro.sync.rmw import coherent_release_store, compare_and_swap

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.cpu.processor import Processor

#: default bound on consecutive node-local grants before the secondary
#: queue is flushed (Dice & Kogan use a probabilistic threshold; a
#: deterministic counter keeps the simulator reproducible)
DEFAULT_BATCH_THRESHOLD = 16


class CnaLock(McsLock):
    """CNA queue lock: MCS with NUMA-local batching, parameterized by
    mechanism."""

    _counter = 0
    _name = "cna"

    def __init__(self, machine: "Machine", mechanism: Mechanism,
                 home_node: int = 0,
                 batch_threshold: int = DEFAULT_BATCH_THRESHOLD) -> None:
        if batch_threshold < 1:
            raise ValueError("batch_threshold must be >= 1")
        super().__init__(machine, mechanism, home_node)
        self.batch_threshold = batch_threshold
        # the tail allocation above consumed this instance's uid slot;
        # reuse its name prefix for the holder-state words
        prefix = self.tail.name.rsplit(".", 1)[0]
        #: secondary queue of parked remote waiters (handles; NIL=empty),
        #: linked through the same per-CPU ``next`` words as the main
        #: queue, always in global enqueue order; holder-owned words
        self.sec_head = machine.alloc(f"{prefix}.sec_head", home_node)
        self.sec_tail = machine.alloc(f"{prefix}.sec_tail", home_node)
        #: consecutive node-local grants since the last FIFO/flush grant
        self.batch = machine.alloc(f"{prefix}.batch", home_node)

    # ------------------------------------------------------------------
    def _node_of_handle(self, handle: int) -> int:
        return self.machine.node_of_cpu(self._qnode_of(handle))

    def _grant(self, proc: "Processor", handle: int):
        succ_cpu = self._qnode_of(handle)
        yield from coherent_release_store(
            proc, self.mechanism, self._locked[succ_cpu].addr, GO,
            delta=-1)

    def _set_secondary(self, proc: "Processor", head: int, tail: int):
        yield from proc.store(self.sec_head.addr, head)
        yield from proc.store(self.sec_tail.addr, tail)

    def release(self, proc: "Processor"):
        """Coroutine: NUMA-aware handoff.

        Preference order: flush the secondary queue when the batch bound
        is hit; otherwise the first *settled* same-node waiter in the
        main queue (parking any skipped remote waiters); otherwise flush
        the secondary queue; otherwise plain FIFO handoff / tail clear.
        """
        me = proc.cpu_id
        if me not in self._held_by:
            raise RuntimeError(
                f"cpu{me} released CNA lock it does not hold")
        my_handle = self._cur_handle[me]
        my_node = self.machine.node_of_cpu(me)
        successor = yield from proc.load(self._next[me].addr)
        sec_head = yield from proc.load(self.sec_head.addr)

        if successor == NIL:
            if sec_head == NIL:
                # queue looks empty: try to clear the tail
                yield from proc.store(self.batch.addr, 0)
                old = yield from compare_and_swap(
                    proc, self.mechanism, self.tail.addr, my_handle, NIL)
                if old == my_handle:
                    self._held_by.discard(me)
                    return                # no waiter anywhere: lock free
                # somebody is mid-enqueue; wait for the link to appear
                successor = yield proc.spin_until(
                    self._next[me].addr, lambda v: v != NIL)
            else:
                # main queue empty but parked waiters exist: promote the
                # secondary queue to be the main queue
                sec_tail = yield from proc.load(self.sec_tail.addr)
                old = yield from compare_and_swap(
                    proc, self.mechanism, self.tail.addr, my_handle,
                    sec_tail)
                if old == my_handle:
                    yield from self._set_secondary(proc, NIL, NIL)
                    yield from proc.store(self.batch.addr, 0)
                    yield from self._grant(proc, sec_head)
                    self._held_by.discard(me)
                    return
                # lost the race to an enqueuer: a main successor exists
                successor = yield proc.spin_until(
                    self._next[me].addr, lambda v: v != NIL)

        # main successor exists
        batch = yield from proc.load(self.batch.addr)
        if batch >= self.batch_threshold and sec_head != NIL:
            # fairness bound hit: splice the (older) secondary queue in
            # front of the main queue and grant its head
            sec_tail = yield from proc.load(self.sec_tail.addr)
            yield from proc.store(
                self._next[self._qnode_of(sec_tail)].addr, successor)
            yield from self._set_secondary(proc, NIL, NIL)
            yield from proc.store(self.batch.addr, 0)
            yield from self._grant(proc, sec_head)
            self._held_by.discard(me)
            return

        # scan the settled prefix of the main queue for a waiter on my
        # node (the scan stops at the first unlinked ``next`` — enqueue
        # order past that point is not yet observable)
        local = NIL
        prev = NIL
        cursor = successor
        while cursor != NIL:
            if self._node_of_handle(cursor) == my_node:
                local = cursor
                break
            prev = cursor
            cursor = yield from proc.load(
                self._next[self._qnode_of(cursor)].addr)

        if local != NIL:
            if local != successor:
                # park the skipped remote prefix [successor .. prev]
                # onto the secondary queue (cut it out of the main one)
                yield from proc.store(
                    self._next[self._qnode_of(prev)].addr, NIL)
                if sec_head == NIL:
                    yield from self._set_secondary(proc, successor, prev)
                else:
                    sec_tail = yield from proc.load(self.sec_tail.addr)
                    yield from proc.store(
                        self._next[self._qnode_of(sec_tail)].addr,
                        successor)
                    yield from proc.store(self.sec_tail.addr, prev)
            yield from proc.store(self.batch.addr, batch + 1)
            yield from self._grant(proc, local)
            self._held_by.discard(me)
            return

        if sec_head != NIL:
            # no local waiter: flush parked (older) waiters first
            sec_tail = yield from proc.load(self.sec_tail.addr)
            yield from proc.store(
                self._next[self._qnode_of(sec_tail)].addr, successor)
            yield from self._set_secondary(proc, NIL, NIL)
            yield from proc.store(self.batch.addr, 0)
            yield from self._grant(proc, sec_head)
            self._held_by.discard(me)
            return

        # plain FIFO handoff
        yield from proc.store(self.batch.addr, 0)
        yield from self._grant(proc, successor)
        self._held_by.discard(me)
