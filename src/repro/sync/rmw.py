"""Mechanism-dispatched atomic fetch-and-add.

The single point where "which hardware primitive implements my atomic
op?" is decided, used by every synchronization algorithm:

===========  =========================================================
mechanism    implementation of ``fetch_add``
===========  =========================================================
LLSC         load-linked / store-conditional retry loop
ATOMIC       processor-side atomic instruction (exclusive fetch)
ACTMSG       active message running ``fetchadd`` on the home processor
MAO          uncached memory-side atomic at the home MC
AMO          ``amo.fetchadd`` at the home AMU (update push included)
===========  =========================================================
"""

from __future__ import annotations

from repro.config.mechanism import Mechanism
from repro.mem.address import home_of


def fetch_add(proc, mechanism: Mechanism, addr: int, delta: int = 1):
    """Coroutine: atomically add ``delta`` to ``addr``; returns old value."""
    if mechanism is Mechanism.LLSC:
        old = yield from proc.llsc_rmw(addr, lambda v: v + delta)
    elif mechanism is Mechanism.ATOMIC:
        old = yield from proc.atomic_rmw(addr, lambda v: v + delta)
    elif mechanism is Mechanism.ACTMSG:
        old = yield from proc.am_call(home_of(addr), "fetchadd", (addr, delta))
    elif mechanism is Mechanism.MAO:
        old = yield from proc.mao_rmw(addr, "fetchadd", delta)
    elif mechanism is Mechanism.AMO:
        old = yield from proc.amo_fetchadd(addr, delta)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown mechanism {mechanism!r}")
    return old


def coherent_release_store(proc, mechanism: Mechanism, addr: int, value: int,
                           delta: int = 1):
    """Coroutine: lock/barrier release write of ``value`` to ``addr``.

    Conventional mechanisms (LL/SC, Atomic, MAO) release with a plain
    coherent store — only the releaser writes, so no atomicity is needed,
    but the store invalidates every spinner.  ActMsg releases through a
    handler (the home processor performs the coherent store).  AMO
    releases with ``amo.fetchadd`` whose put pushes the new value into
    spinner caches in place (``delta`` must take the old value to
    ``value``; callers pass both for self-documentation).
    """
    if mechanism is Mechanism.AMO:
        # Fire-and-forget: the release's fetchadd result is never read,
        # so the core does not stall on the reply.
        yield from proc.amo_fetchadd(addr, delta, wait_reply=False)
    elif mechanism is Mechanism.ACTMSG:
        yield from proc.am_call(home_of(addr), "fetchadd", (addr, delta))
    else:
        yield from proc.store(addr, value)


def swap(proc, mechanism: Mechanism, addr: int, value: int):
    """Coroutine: atomic exchange; returns the old value.

    The MCS lock's enqueue primitive.  LL/SC and processor-side atomics
    synthesize it locally; MAO/AMO ship the ``swap`` opcode to the home;
    ActMsg runs the ``swap`` handler on the home processor.
    """
    if mechanism is Mechanism.LLSC:
        old = yield from proc.llsc_rmw(addr, lambda _v: value)
    elif mechanism is Mechanism.ATOMIC:
        old = yield from proc.atomic_rmw(addr, lambda _v: value)
    elif mechanism is Mechanism.ACTMSG:
        old = yield from proc.am_call(home_of(addr), "swap", (addr, value))
    elif mechanism is Mechanism.MAO:
        old = yield from proc.mao_rmw(addr, "swap", value)
    elif mechanism is Mechanism.AMO:
        old = yield from proc.amo("swap", addr, operand=value)
    else:  # pragma: no cover
        raise ValueError(f"unknown mechanism {mechanism!r}")
    return old


def compare_and_swap(proc, mechanism: Mechanism, addr: int,
                     expected: int, new: int):
    """Coroutine: CAS; returns the old value (success iff == expected)."""
    def _cas_fn(old, expected=expected, new=new):
        return new if old == expected else old

    if mechanism is Mechanism.LLSC:
        old = yield from proc.llsc_rmw(addr, _cas_fn)
    elif mechanism is Mechanism.ATOMIC:
        old = yield from proc.atomic_rmw(addr, _cas_fn)
    elif mechanism is Mechanism.ACTMSG:
        old = yield from proc.am_call(home_of(addr), "cas",
                                      (addr, expected, new))
    elif mechanism is Mechanism.MAO:
        old = yield from proc.mao_rmw(addr, "cas", (expected, new))
    elif mechanism is Mechanism.AMO:
        old = yield from proc.amo("cas", addr, operand=(expected, new))
    else:  # pragma: no cover
        raise ValueError(f"unknown mechanism {mechanism!r}")
    return old
