"""Ticket lock — paper Figure 4, after Mellor-Crummey & Scott.

Two global variables: the sequencer (``next_ticket``) and the counter
(``now_serving``), in separate cache lines.  Acquire atomically takes a
ticket and spins until served; release increments the counter.

Mechanism mapping:

* the ticket fetch-and-add goes through :func:`repro.sync.rmw.fetch_add`;
* the release is a plain coherent store for LL/SC / Atomic / MAO (only
  the holder writes — but the store invalidates every spinner, whose
  reloads are the pass-latency storm), a handler store for ActMsg, and
  an ``amo.fetchadd`` update push for AMO ("we also use amo_fetchadd()
  on the counter to take advantage of the put mechanism", §3.3.2).

Optional proportional backoff (Mellor-Crummey & Scott) is provided; the
paper notes it is far less effective on cache-coherent machines, which
the ablation benchmark confirms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.mechanism import Mechanism
from repro.sync.rmw import coherent_release_store, fetch_add

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.cpu.processor import Processor


class TicketLock:
    """FIFO ticket lock, parameterized by mechanism."""

    _counter = 0

    def __init__(self, machine: "Machine", mechanism: Mechanism,
                 home_node: int = 0,
                 proportional_backoff_cycles: int = 0) -> None:
        self.machine = machine
        self.mechanism = mechanism
        self.home_node = home_node
        self.backoff = proportional_backoff_cycles
        uid = TicketLock._counter
        TicketLock._counter += 1
        self.next_ticket = machine.alloc(f"ticket{uid}.next", home_node)
        self.now_serving = machine.alloc(f"ticket{uid}.serving", home_node)
        self._held_by: dict[int, int] = {}   # cpu -> ticket while held
        self.acquisitions = 0

    # ------------------------------------------------------------------
    def acquire(self, proc: "Processor"):
        """Coroutine: take a ticket and wait to be served."""
        my = yield from fetch_add(proc, self.mechanism,
                                  self.next_ticket.addr, 1)
        if self.backoff:
            # Proportional backoff: delay by distance-in-line before
            # touching the counter (Mellor-Crummey & Scott §2.2).
            current = yield from proc.load(self.now_serving.addr)
            distance = max(0, my - current)
            if distance > 1:
                yield from proc.delay(distance * self.backoff)
        yield proc.spin_until(self.now_serving.addr,
                                   lambda v, my=my: v >= my)
        self._held_by[proc.cpu_id] = my
        self.acquisitions += 1
        return my

    def release(self, proc: "Processor"):
        """Coroutine: pass the lock to the next ticket holder."""
        my = self._held_by.pop(proc.cpu_id, None)
        if my is None:
            raise RuntimeError(
                f"cpu{proc.cpu_id} released ticket lock it does not hold")
        yield from coherent_release_store(
            proc, self.mechanism, self.now_serving.addr, my + 1, delta=1)

    # warm-start support: holder map and acquisition count live outside
    # the machine, so snapshot replays must rewind them too.
    def save_state(self) -> dict:
        return {"held_by": dict(self._held_by),
                "acquisitions": self.acquisitions}

    def load_state(self, state: dict) -> None:
        self._held_by = dict(state["held_by"])
        self.acquisitions = state["acquisitions"]

    def holder(self) -> int | None:
        """CPU currently holding the lock, or None (diagnostics)."""
        holders = list(self._held_by)
        if len(holders) > 1:
            raise AssertionError(f"mutual exclusion violated: {holders}")
        return holders[0] if holders else None
