"""Sense-reversing centralized barrier.

The textbook alternative to the monotone-target coding used by
:class:`~repro.sync.barrier.CentralizedBarrier`: a count that resets and
a global *sense* flag that flips each episode, with each participant
keeping a private local sense.  Included for completeness (it is what
many runtime libraries actually ship) and because its *reset write* to
the count adds a coherence transaction per episode that the monotone
coding avoids — a nice little ablation, exercised by the test suite.

The arrival RMW and the sense-flag release are mechanism-dispatched like
every other algorithm in this package.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.mechanism import Mechanism
from repro.sync.rmw import coherent_release_store, fetch_add, swap

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.cpu.processor import Processor


class SenseReversingBarrier:
    """Classic sense-reversing centralized barrier."""

    _counter = 0

    def __init__(self, machine: "Machine", mechanism: Mechanism,
                 n_participants: int | None = None,
                 home_node: int = 0) -> None:
        self.machine = machine
        self.mechanism = mechanism
        self.n = n_participants or machine.n_processors
        self.home_node = home_node
        uid = SenseReversingBarrier._counter
        SenseReversingBarrier._counter += 1
        self.count_var = machine.alloc(f"sense{uid}.count", home_node)
        self.sense_var = machine.alloc(f"sense{uid}.sense", home_node)
        #: private per-CPU sense (thread-local state, no memory traffic)
        self._local_sense: dict[int, int] = {}

    def wait(self, proc: "Processor"):
        """Coroutine: arrive and wait for the sense flip."""
        me = proc.cpu_id
        sense = 1 - self._local_sense.get(me, 0)
        self._local_sense[me] = sense
        old = yield from fetch_add(proc, self.mechanism,
                                   self.count_var.addr, 1)
        if old == self.n - 1:
            # Last arriver: reset the count, then flip the global sense.
            # The reset must go through the *same mechanism* as the
            # increments — with MAOs the fresh count lives only in the
            # (non-coherent) AMU cache, and a plain coherent store would
            # silently diverge from it: the software-maintained-coherence
            # trap of §2.
            yield from swap(proc, self.mechanism, self.count_var.addr, 0)
            yield from coherent_release_store(
                proc, self.mechanism, self.sense_var.addr, sense,
                delta=1 if sense else -1)
        else:
            yield proc.spin_until(self.sense_var.addr,
                                       lambda v, s=sense: v == s)

    def episodes_completed(self, cpu_id: int) -> int:
        """Episodes this CPU has passed (from its private sense)."""
        # not tracked beyond parity; provided for interface parity
        return -1 if cpu_id not in self._local_sense else 0
