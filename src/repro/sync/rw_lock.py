"""Reader-writer ticket lock (Mellor-Crummey & Scott's fair R/W lock,
in the compact "rwticket" formulation).

Three counters in separate cache lines:

``users``
    the ticket sequencer — every acquirer (reader or writer) takes one
    ticket with an atomic fetch-and-add;
``write``
    the writer turnstile — a *writer* with ticket ``t`` may enter when
    ``write == t``, i.e. when every earlier ticket holder has released;
``read``
    the reader turnstile — a *reader* with ticket ``t`` may enter when
    ``read == t``, and immediately advances ``read`` to admit the next
    reader, so consecutive readers overlap.

Releases: a writer advances both turnstiles (it owned the lock
exclusively); a reader advances only ``write`` (atomically — readers
release concurrently), keeping writers out until the whole reader batch
has left.  Fairness is strict ticket order: a waiting writer blocks
later readers, so neither side starves.

Mechanism mapping: ticket fetch and reader release go through
:func:`repro.sync.rmw.fetch_add`; turnstile advances that wake spinners
go through :func:`repro.sync.rmw.coherent_release_store` (plain
invalidating store for LL/SC / Atomic, handler store for ActMsg, update
push for AMO).

**MAO is refused.**  Under MAO, atomics execute uncached at the memory
controller and polling must use uncached reads of *separate* coherent
flag variables (the paper's §3.2 discipline).  Here the ``write`` word
is both the target of the readers' release fetch-and-add (which MAO
would place in uncached space) and the word writers spin on coherently
(and that write-release plain-stores) — one word straddling both
domains, which the MAO architecture cannot express.  The constructor
raises :class:`UnsupportedMechanismError` so sweeps and fuzzers can
skip the cell explicitly instead of simulating something unbuildable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.mechanism import Mechanism
from repro.sync.rmw import coherent_release_store, fetch_add

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.cpu.processor import Processor


class UnsupportedMechanismError(ValueError):
    """A lock algorithm cannot be built over the requested mechanism."""


class RwTicketLock:
    """Fair reader-writer ticket lock, parameterized by mechanism."""

    _counter = 0

    def __init__(self, machine: "Machine", mechanism: Mechanism,
                 home_node: int = 0) -> None:
        if mechanism is Mechanism.MAO:
            raise UnsupportedMechanismError(
                "rw lock cannot be built over MAO: the 'write' turnstile "
                "is both an atomic fetch-add target (reader release, "
                "uncached under MAO) and a coherently-spun word (writer "
                "entry) — one word cannot live in both domains")
        self.machine = machine
        self.mechanism = mechanism
        self.home_node = home_node
        uid = RwTicketLock._counter
        RwTicketLock._counter = uid + 1
        self.users = machine.alloc(f"rw{uid}.users", home_node)
        self.write = machine.alloc(f"rw{uid}.write", home_node)
        self.read = machine.alloc(f"rw{uid}.read", home_node)
        self._writers: dict[int, int] = {}   # cpu -> ticket while held
        self._readers: dict[int, int] = {}
        self.acquisitions = 0                # readers + writers admitted

    # ------------------------------------------------------------------
    def acquire_write(self, proc: "Processor"):
        """Coroutine: take a ticket, wait for exclusive ownership.
        Returns the ticket."""
        me = proc.cpu_id
        my = yield from fetch_add(proc, self.mechanism, self.users.addr, 1)
        yield proc.spin_until(self.write.addr, lambda v, my=my: v == my)
        self._writers[me] = my
        if self._readers or len(self._writers) > 1:
            raise AssertionError(
                f"rw exclusion violated: writers={self._writers} "
                f"readers={self._readers}")
        self.acquisitions += 1
        return my

    def release_write(self, proc: "Processor"):
        """Coroutine: advance both turnstiles (exclusive owner)."""
        my = self._writers.pop(proc.cpu_id, None)
        if my is None:
            raise RuntimeError(
                f"cpu{proc.cpu_id} released rw write lock it does not hold")
        # admit the next reader first, then the next writer: two plain
        # stores (we own both words exclusively right now)
        yield from coherent_release_store(
            proc, self.mechanism, self.read.addr, my + 1, delta=1)
        yield from coherent_release_store(
            proc, self.mechanism, self.write.addr, my + 1, delta=1)

    def acquire_read(self, proc: "Processor"):
        """Coroutine: take a ticket, wait for our reader turn, pass the
        turn straight on to the next reader.  Returns the ticket."""
        me = proc.cpu_id
        my = yield from fetch_add(proc, self.mechanism, self.users.addr, 1)
        yield proc.spin_until(self.read.addr, lambda v, my=my: v == my)
        self._readers[me] = my
        if self._writers:
            raise AssertionError(
                f"rw exclusion violated: writers={self._writers} "
                f"readers={self._readers}")
        self.acquisitions += 1
        # admit the successor reader (we hold the turn exclusively, so a
        # release-store is enough; a queued writer's ticket keeps it out)
        yield from coherent_release_store(
            proc, self.mechanism, self.read.addr, my + 1, delta=1)
        return my

    def release_read(self, proc: "Processor"):
        """Coroutine: count this reader out of the writer turnstile."""
        my = self._readers.pop(proc.cpu_id, None)
        if my is None:
            raise RuntimeError(
                f"cpu{proc.cpu_id} released rw read lock it does not hold")
        # concurrent with other readers' releases => must be atomic
        yield from fetch_add(proc, self.mechanism, self.write.addr, 1)

    # warm-start support
    def save_state(self) -> dict:
        return {"writers": dict(self._writers),
                "readers": dict(self._readers),
                "acquisitions": self.acquisitions}

    def load_state(self, state: dict) -> None:
        self._writers = dict(state["writers"])
        self._readers = dict(state["readers"])
        self.acquisitions = state["acquisitions"]

    def holder(self):
        """Diagnostics: ('w', cpu) | ('r', cpus) | None."""
        if self._writers:
            (cpu,) = self._writers
            return ("w", cpu)
        if self._readers:
            return ("r", sorted(self._readers))
        return None
