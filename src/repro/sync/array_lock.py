"""Anderson's array-based queueing lock (§3.3.2).

A sequencer indexes into an array of per-slot boolean flags, one cache
line per flag ("all global variables ... must be placed in different
cache lines to achieve the best performance").  Every waiter spins on
its own flag; a release touches exactly one remote line — the next
winner's — instead of invalidating every spinner like the ticket lock
does.  The sequencer remains a hot spot.

This is the classic protocol: flag values are 0/1, and the winner
*resets its own flag* before entering the critical section so the slot
can be reused after the sequencer wraps.  The reset is a coherent store
on the acquire path — one of the overheads that make the array lock
*slower* than the ticket lock at small processor counts (paper Table 4:
0.48-0.62x for P <= 32) while its O(1) release wins at large counts.

Mechanism mapping mirrors :class:`~repro.sync.ticket_lock.TicketLock`;
for AMO, the sequencer, the reset and the grant all go through
``amo.fetchadd`` ("we also use amo_fetchadd() on the counter"), making
the grant an update push into the single waiting spinner's cache.

An alternative *round-counter* variant that needs no reset store is
available as ``variant="rounds"`` (an optimization beyond the paper,
used by the ablation benchmarks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.mechanism import Mechanism
from repro.sync.rmw import coherent_release_store, fetch_add

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.cpu.processor import Processor


class ArrayQueueLock:
    """Array-based queueing lock over ``n_slots`` per-line flags."""

    _counter = 0

    def __init__(self, machine: "Machine", mechanism: Mechanism,
                 n_slots: int | None = None, home_node: int = 0,
                 variant: str = "classic") -> None:
        if variant not in ("classic", "rounds"):
            raise ValueError(f"unknown variant {variant!r}")
        self.machine = machine
        self.mechanism = mechanism
        self.home_node = home_node
        self.variant = variant
        self.n_slots = n_slots or machine.n_processors
        if self.n_slots < 1:
            raise ValueError("need at least one slot")
        uid = ArrayQueueLock._counter
        ArrayQueueLock._counter += 1
        self.sequencer = machine.alloc(f"arraylock{uid}.seq", home_node)
        self.flags = machine.alloc(f"arraylock{uid}.flags", home_node,
                                   words=self.n_slots, stride_lines=True)
        # Slot 0 starts granted: the lock begins free.
        machine.poke(self.flags.word_addr(0), 1)
        self._held_by: dict[int, int] = {}
        self.acquisitions = 0

    # ------------------------------------------------------------------
    def _slot_round(self, ticket: int) -> tuple[int, int]:
        return ticket % self.n_slots, ticket // self.n_slots + 1

    def acquire(self, proc: "Processor"):
        """Coroutine: enqueue, spin on our own slot, reset it (classic)."""
        my = yield from fetch_add(proc, self.mechanism,
                                  self.sequencer.addr, 1)
        slot, rnd = self._slot_round(my)
        flag_addr = self.flags.word_addr(slot)
        if self.variant == "classic":
            yield proc.spin_until(flag_addr, lambda v: v >= 1)
            # Reset our slot for reuse after the sequencer wraps — a
            # coherent store on the acquire critical path.
            yield from coherent_release_store(
                proc, self.mechanism, flag_addr, 0, delta=-1)
        else:
            yield proc.spin_until(flag_addr,
                                       lambda v, rnd=rnd: v >= rnd)
        self._held_by[proc.cpu_id] = my
        self.acquisitions += 1
        return my

    def release(self, proc: "Processor"):
        """Coroutine: grant the next slot (one remote line touched)."""
        my = self._held_by.pop(proc.cpu_id, None)
        if my is None:
            raise RuntimeError(
                f"cpu{proc.cpu_id} released array lock it does not hold")
        nxt_slot, nxt_round = self._slot_round(my + 1)
        value = 1 if self.variant == "classic" else nxt_round
        yield from coherent_release_store(
            proc, self.mechanism, self.flags.word_addr(nxt_slot),
            value, delta=1)

    def holder(self) -> int | None:
        holders = list(self._held_by)
        if len(holders) > 1:
            raise AssertionError(f"mutual exclusion violated: {holders}")
        return holders[0] if holders else None
