"""Backoff helpers for spin loops.

Mellor-Crummey & Scott showed proportional backoff helps ticket locks on
machines where every spin read is a *remote* access; the paper (§3.3.2)
argues it is far less effective on cache-coherent machines, where spin
reads hit the local cache.  These helpers exist so the ablation
benchmarks can quantify that claim in this simulator.
"""

from __future__ import annotations


def exponential_schedule(base_cycles: int, attempt: int,
                         cap_cycles: int = 1 << 16) -> int:
    """Capped exponential backoff delay for the ``attempt``-th retry."""
    if base_cycles <= 0:
        return 0
    return min(cap_cycles, base_cycles << min(attempt, 30))


def spin_with_exponential_backoff(proc, addr: int, predicate,
                                  base_cycles: int = 50,
                                  cap_cycles: int = 1 << 14):
    """Coroutine: poll ``addr`` with exponentially growing pauses.

    Unlike :meth:`~repro.cpu.processor.Processor.spin_until`, every poll
    is an explicit load (which may be a cache hit or, after an
    invalidation, a remote reload) and polls are separated by growing
    delays — the classic software pattern for machines without efficient
    cached spinning.
    """
    attempt = 0
    while True:
        value = yield from proc.load(addr)
        if predicate(value):
            return value
        yield from proc.delay(exponential_schedule(base_cycles, attempt,
                                                   cap_cycles))
        attempt += 1
