"""Dissemination barrier (Hensgen/Finkel/Manber; popularized by MCS).

An extension beyond the paper's evaluated barriers: ceil(log2 P) rounds
of point-to-point signalling with **no centralized variable at all**.
In round ``k``, participant ``i`` signals participant
``(i + 2**k) mod P`` and waits for the signal from
``(i - 2**k) mod P``.  Every flag has exactly one writer and one waiter
per episode, and is homed on the *waiter's* node, so all spinning is
node-local and each round costs one remote write per participant.

Episode reuse uses per-flag round counters (the signal for episode ``e``
sets the flag to ``e + 1``), avoiding sense flags and reset writes.

Interesting comparison points this enables (see the ablation bench):

* vs the combining tree: dissemination has no serialization points but
  sends P*log2(P) messages per episode;
* vs flat AMO: even an O(P log P) fully-distributed software barrier
  loses to the AMU's O(P) update push for the machine sizes evaluated.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.config.mechanism import Mechanism
from repro.sync.rmw import coherent_release_store

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.cpu.processor import Processor


class DisseminationBarrier:
    """log2(P)-round point-to-point barrier over ``n_participants``."""

    _counter = 0

    def __init__(self, machine: "Machine", mechanism: Mechanism,
                 n_participants: int | None = None) -> None:
        self.machine = machine
        self.mechanism = mechanism
        self.n = n_participants or machine.n_processors
        if self.n < 2:
            raise ValueError("need at least two participants")
        self.rounds = math.ceil(math.log2(self.n))
        uid = DisseminationBarrier._counter
        DisseminationBarrier._counter += 1
        # flags[waiter][round], homed at the waiter's node, one line each
        self._flags: list[list] = []
        for cpu in range(self.n):
            node = machine.node_of_cpu(cpu)
            self._flags.append([
                machine.alloc(f"dissem{uid}.f{cpu}.r{r}", node)
                for r in range(self.rounds)
            ])
        self._episode: dict[int, int] = {}

    # ------------------------------------------------------------------
    def partner_out(self, cpu: int, rnd: int) -> int:
        """Who ``cpu`` signals in round ``rnd``."""
        return (cpu + (1 << rnd)) % self.n

    def partner_in(self, cpu: int, rnd: int) -> int:
        """Whose signal ``cpu`` waits for in round ``rnd``."""
        return (cpu - (1 << rnd)) % self.n

    def wait(self, proc: "Processor"):
        """Coroutine: dissemination barrier arrival."""
        me = proc.cpu_id
        episode = self._episode.get(me, 0)
        self._episode[me] = episode + 1
        for rnd in range(self.rounds):
            out = self.partner_out(me, rnd)
            yield from coherent_release_store(
                proc, self.mechanism,
                self._flags[out][rnd].addr, episode + 1, delta=1)
            yield proc.spin_until(
                self._flags[me][rnd].addr,
                lambda v, e=episode: v >= e + 1)

    def episodes_completed(self, cpu_id: int) -> int:
        return self._episode.get(cpu_id, 0)
