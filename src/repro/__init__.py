"""repro — Active Memory Operations synchronization, reproduced.

A transaction-level CC-NUMA multiprocessor simulator and synchronization
library reproducing *Highly Efficient Synchronization Based on Active
Memory Operations* (Zhang, Fang, Carter — IPDPS 2004).

Quickstart
----------
>>> from repro import Machine, SystemConfig
>>> m = Machine(SystemConfig.table1(n_processors=4))
>>> bar = m.alloc("barrier", home_node=0)
>>> def thread(proc):
...     yield from proc.amo_inc(bar.addr, test=4)
...     yield from proc.spin_until(bar.addr, lambda v: v >= 4)
>>> _ = m.run_threads(thread)
>>> m.peek(bar.addr)
4

See :mod:`repro.sync` for the barrier and lock algorithm library, and
:mod:`repro.harness` for the paper's experiments (Tables 2-4, Figures
5-7).
"""

from repro.config import Mechanism, SystemConfig
from repro.core import Machine
from repro.mem.address import Variable

__version__ = "1.0.0"

__all__ = ["Machine", "SystemConfig", "Mechanism", "Variable", "__version__"]
