"""The metrics registry: counters, gauges, and log-bucketed histograms.

Design constraints, in order:

1. **Near-zero cost when disabled.**  Components never consult the
   registry on hot paths; they keep plain integer attributes (as the
   seed code already did) and the registry *pulls* them at snapshot
   time through registered collector callbacks.  Optional push-style
   instruments (fan-out histograms) sit behind a single
   ``machine.obs is None`` attribute check.
2. **Cheap when enabled.**  A counter increment is one attribute add;
   a histogram observation is a ``bit_length`` and a dict add.  No
   locks — the simulator is single-threaded by construction.
3. **Mergeable.**  Snapshots are plain JSON-able dicts; counters merge
   by sum, gauges by max, histograms bucket-wise — see
   :mod:`repro.obs.snapshot` — so a sweep's points aggregate exactly.

Metric names are dotted paths (``"cache.l2.misses"``,
``"network.msgs.word_update"``) grouped by subsystem prefix.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

#: snapshot format identifier, embedded in every exported snapshot
SNAPSHOT_SCHEMA = "repro.obs.snapshot/1"


class Counter:
    """Monotonic counter (int or float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Point-in-time value: either set explicitly or read via callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value: float = 0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    def read(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Gauge {self.name}={self.read()}>"


class Histogram:
    """Log2-bucketed histogram of non-negative observations.

    Bucket labels are inclusive upper bounds: an observation ``v`` lands
    in the smallest power-of-two bucket ``>= v`` (``0`` has its own
    bucket).  Powers of two make merging trivial and keep the bucket
    count bounded (64 buckets cover the full simulated-cycle range).

    Examples
    --------
    >>> h = Histogram("x")
    >>> for v in (0, 1, 3, 4, 100):
    ...     h.observe(v)
    >>> h.count, h.total
    (5, 108)
    >>> sorted(h.buckets.items())
    [(0, 1), (1, 1), (4, 2), (128, 1)]
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        iv = int(value)
        bucket = 0 if iv <= 0 else 1 << (iv - 1).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": 0 if self.min is None else self.min,
            "max": 0 if self.max is None else self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.1f}>"


class MetricsRegistry:
    """Named instrument store with pull-collector support.

    ``counter``/``gauge``/``histogram`` are get-or-create;
    ``register_collector`` registers a zero-argument callback whose
    value is read at snapshot time and reported as a *counter* (they
    collect the cumulative plain-int counters components already keep —
    summing across sweep points is the meaningful aggregation).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[str, Callable[[], float]] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name, fn)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def register_collector(self, name: str,
                           fn: Callable[[], float]) -> None:
        """Pull-style cumulative counter, evaluated at snapshot time."""
        self._collectors[name] = fn

    # ------------------------------------------------------------------
    def gauge_values(self) -> dict[str, float]:
        """Current value of every gauge (the sampler's per-tick read)."""
        return {name: g.read() for name, g in sorted(self._gauges.items())}

    def snapshot(self) -> dict[str, Any]:
        """The registry as a plain JSON-able dict (see the schema)."""
        counters = {name: c.value
                    for name, c in sorted(self._counters.items())}
        for name, fn in sorted(self._collectors.items()):
            counters[name] = fn()
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": counters,
            "gauges": self.gauge_values(),
            "histograms": {name: h.as_dict()
                           for name, h in sorted(self._histograms.items())},
        }
