"""Unified metrics & telemetry for the whole stack (``repro.obs``).

One observability layer spanning kernel -> coherence -> network -> runner:

* :class:`MetricsRegistry` — named counters, gauges and log-bucketed
  histograms with near-zero cost when nothing is attached (components
  guard instrumentation behind a single ``machine.obs is None`` check).
* :class:`MachineMetrics` — wires one :class:`~repro.core.machine.Machine`
  into a registry: kernel event/queue telemetry, per-level cache
  hit/miss/eviction counters, directory and home-engine transaction
  counts, AMU/MAO op counters, and per-kind network traffic.
* :class:`Sampler` — snapshots gauges on a simulated-cycle interval,
  producing time-series (queue depths, cumulative events) per run.
* :class:`CriticalPathAnalyzer` — attributes each barrier/lock episode's
  latency to cpu / coherence / network / amu / wait segments using the
  trace recorder's spans.
* :mod:`repro.obs.snapshot` — snapshot merge across sweep points, and
  :mod:`repro.obs.schema` — the export JSON schema plus a dependency-free
  validator (``python -m repro.obs.schema out.json``).
"""

from repro.obs.critical_path import CriticalPathAnalyzer, EpisodeBreakdown
from repro.obs.events import EventLog
from repro.obs.machine import MachineMetrics
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sampler import Sampler
from repro.obs.schema import validate_export, validate_snapshot
from repro.obs.snapshot import (SHARD_EXEMPT_COUNTERS, SHARD_ONLY_PREFIXES,
                                build_export, merge_snapshots,
                                shard_counter_drift)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "MachineMetrics", "Sampler",
    "CriticalPathAnalyzer", "EpisodeBreakdown", "EventLog",
    "merge_snapshots", "build_export", "shard_counter_drift",
    "SHARD_EXEMPT_COUNTERS", "SHARD_ONLY_PREFIXES",
    "validate_snapshot", "validate_export",
]
