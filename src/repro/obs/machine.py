"""Wiring a :class:`~repro.core.machine.Machine` into a metrics registry.

:meth:`MachineMetrics.attach` is the single switch that turns a machine
observable.  It costs nothing it does not use:

* **Pull collectors** read the plain integer counters the components
  already maintain (kernel events, cache hits/misses, home-engine
  transaction counts, AMU/MAO ops, link occupancy) — zero per-event
  overhead, evaluated only at snapshot time.
* **Gauges** expose point-in-time state (event-queue depth, AMU input
  queue depth) for the :class:`~repro.obs.sampler.Sampler`.
* **Push histograms** capture distributions that cannot be pulled
  (invalidation/update fan-out per coherence write, per-message hop and
  byte counts).  Component hot paths guard these behind one
  ``machine.obs is None`` attribute check, so an unobserved machine
  runs the exact seed-code path.

``snapshot()`` additionally folds in the network's per-kind traffic
counters (``network.msgs.<kind>`` / ``.bytes.<kind>`` /
``.hop_bytes.<kind>``), the sampler's time-series, and — when a
critical-path summary was recorded by the workload driver — the
``critical_path`` section.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import Sampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine


class MachineMetrics:
    """One machine's registry plus its push-instrument handles."""

    def __init__(self, machine: "Machine",
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.machine = machine
        self.registry = registry or MetricsRegistry()
        self.sampler: Optional[Sampler] = None
        #: critical-path summary injected by the workload driver
        self.critical_path: Optional[dict] = None
        # push instruments referenced (guarded) from component hot paths
        self.inval_fanout = self.registry.histogram(
            "coherence.inval_fanout")
        self.update_fanout = self.registry.histogram(
            "coherence.update_fanout")
        self.msg_hops = self.registry.histogram("network.msg_hops")
        self.msg_bytes = self.registry.histogram("network.msg_bytes")
        self._register_collectors()

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, machine: "Machine", sample_interval: int = 0,
               ) -> "MachineMetrics":
        """Make ``machine`` observable; returns the metrics object.

        ``sample_interval`` > 0 additionally creates a gauge
        :class:`Sampler` with that simulated-cycle period (call
        ``obs.sampler.start()`` before each measurement window, as the
        workload drivers do).
        """
        obs = cls(machine)
        machine.obs = obs
        machine.net.subscribe_send(obs._on_send)
        if sample_interval:
            obs.sampler = Sampler(machine.sim, obs.registry,
                                  sample_interval)
        return obs

    def _on_send(self, msg, hops: int) -> None:
        self.msg_hops.observe(hops)
        self.msg_bytes.observe(msg.size_bytes)

    # ------------------------------------------------------------------
    def _register_collectors(self) -> None:
        m = self.machine
        reg = self.registry
        sim = m.sim

        # kernel -------------------------------------------------------
        reg.register_collector("kernel.events_dispatched",
                               lambda: sim.events_dispatched)
        reg.gauge("kernel.queue_depth", sim.pending_events)
        reg.gauge("kernel.active_processes",
                  lambda: len(sim.active_processes))
        reg.gauge("kernel.now", lambda: sim.now)

        # caches (summed over CPUs, per level) -------------------------
        def cache_sum(level: str, attr: str):
            def collect() -> int:
                return sum(getattr(getattr(p.controller, level), attr)
                           for p in m.cpus)
            return collect
        for attr in ("hits", "misses", "evictions"):
            reg.register_collector(f"cache.l1.{attr}",
                                   cache_sum("l1", attr))
        for attr in ("hits", "misses", "evictions", "invalidations",
                     "word_updates"):
            reg.register_collector(f"cache.l2.{attr}",
                                   cache_sum("l2", attr))

        # cpu-side protocol events -------------------------------------
        def cpu_sum(attr: str, obj: str = "controller"):
            def collect() -> int:
                return sum(getattr(p if obj == "cpu"
                                   else getattr(p, obj), attr)
                           for p in m.cpus)
            return collect
        reg.register_collector("cpu.sc_successes", cpu_sum("sc_successes"))
        reg.register_collector("cpu.sc_failures", cpu_sum("sc_failures"))
        reg.register_collector("cpu.spin_wakeups", cpu_sum("spin_wakeups"))
        reg.register_collector("cpu.wb_race_interventions",
                               cpu_sum("wb_race_interventions"))
        reg.register_collector("cpu.amo_ops", cpu_sum("amo_ops", "cpu"))
        reg.register_collector("mao.ops_issued",
                               cpu_sum("ops_issued", "mao_port"))

        # home engines / directory -------------------------------------
        def home_sum(attr: str):
            def collect() -> int:
                return sum(getattr(h.home_engine, attr) for h in m.hubs)
            return collect
        for attr in ("transactions", "get_s_served", "get_x_served",
                     "writebacks_served", "invalidations_sent",
                     "interventions_sent", "word_updates_pushed"):
            reg.register_collector(f"coherence.{attr}", home_sum(attr))
        reg.register_collector(
            "coherence.directory.entries",
            lambda: sum(len(h.home_engine.directory.known_entries())
                        for h in m.hubs))
        reg.register_collector(
            "coherence.directory.state_changes",
            lambda: sum(ent.version
                        for h in m.hubs
                        for ent in h.home_engine.directory.known_entries()))

        # AMU / MAO function units -------------------------------------
        def amu_sum(attr: str):
            def collect() -> int:
                return sum(getattr(h.amu, attr) for h in m.hubs)
            return collect
        for attr in ("ops_executed", "puts_issued", "test_matches",
                     "puts_deferred"):
            reg.register_collector(f"amu.{attr}", amu_sum(attr))
        reg.register_collector(
            "amu.queue_puts",
            lambda: sum(h.amu.queue.puts for h in m.hubs))
        reg.gauge("amu.queue_depth",
                  lambda: sum(len(h.amu.queue) for h in m.hubs))
        reg.gauge("amu.queue_max_depth",
                  lambda: max(h.amu.queue.max_depth for h in m.hubs))

        # network ------------------------------------------------------
        reg.register_collector("network.messages",
                               lambda: m.net.stats.total_messages)
        reg.register_collector("network.local_messages",
                               lambda: m.net.stats.total_local_messages)
        reg.register_collector("network.bytes",
                               lambda: m.net.stats.total_bytes)
        reg.register_collector("network.hop_bytes",
                               lambda: m.net.stats.total_hop_bytes)
        reg.register_collector("network.retransmits",
                               lambda: m.net.stats.retransmits)
        reg.register_collector("network.link_busy_cycles",
                               lambda: m.net.link_busy_cycles)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Full snapshot: registry + per-kind traffic + series + CP."""
        snap = self.registry.snapshot()
        counters = snap["counters"]
        stats = self.machine.net.stats
        for kind, n in sorted(stats.messages.items(),
                              key=lambda kv: kv[0].value):
            counters[f"network.msgs.{kind.value}"] = n
            counters[f"network.bytes.{kind.value}"] = stats.bytes[kind]
            counters[f"network.hop_bytes.{kind.value}"] = \
                stats.hop_bytes[kind]
        for kind, n in sorted(stats.local_messages.items(),
                              key=lambda kv: kv[0].value):
            counters[f"network.local_msgs.{kind.value}"] = n
        if self.sampler is not None and self.sampler.series:
            snap["series"] = list(self.sampler.series)
        if self.critical_path is not None:
            snap["critical_path"] = self.critical_path
        return snap
