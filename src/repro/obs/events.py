"""Structured JSONL event log.

An :class:`EventLog` appends one JSON object per line to a file or
file-like stream — the machine-readable companion to the human-oriented
progress output.  Records carry the simulated timestamp when a simulator
is bound, so logs from a run line up with trace spans and sampler
series::

    log = EventLog("run.jsonl", sim=machine.sim)
    log.emit("barrier.episode", index=3, cycles=5120)
    log.attach_network(machine)        # one record per injected message
    ...
    log.close()

Network capture is a ``subscribe_send`` hook, so it composes with the
tracer, the profiler and the metrics layer.  Every record has the shape
``{"t": <cycles or null>, "event": <name>, ...fields}``; consumers can
stream-filter with one ``json.loads`` per line.
"""

from __future__ import annotations

import json
from typing import Any, IO, Optional, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.sim.kernel import Simulator


class EventLog:
    """Append-only JSONL writer with optional simulated timestamps."""

    def __init__(self, sink: Union[str, IO[str]],
                 sim: Optional["Simulator"] = None) -> None:
        if isinstance(sink, str):
            self._fh: IO[str] = open(sink, "w")
            self._owns_fh = True
        else:
            self._fh = sink
            self._owns_fh = False
        self.sim = sim
        self.records_written = 0

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> None:
        """Write one record: ``{"t": ..., "event": event, **fields}``."""
        record = {"t": None if self.sim is None else self.sim.now,
                  "event": event}
        record.update(fields)
        self._fh.write(json.dumps(record, default=str) + "\n")
        self.records_written += 1

    def attach_network(self, machine: "Machine") -> None:
        """Log every injected network message (``net.send`` events)."""
        if self.sim is None:
            self.sim = machine.sim

        def on_send(msg, hops: int) -> None:
            self.emit("net.send", kind=msg.kind.value, src=msg.src_node,
                      dst=msg.dst_node, hops=hops, bytes=msg.size_bytes,
                      addr=None if msg.addr is None else hex(msg.addr))

        machine.net.subscribe_send(on_send)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
