"""Snapshot aggregation: merge per-point metrics across a sweep.

Every sweep point that runs with metrics enabled returns one snapshot
dict (:meth:`repro.obs.registry.MetricsRegistry.snapshot`, possibly
extended with ``series`` and ``critical_path`` sections by the workload
driver).  Because snapshots ride inside the result objects, they are
persisted in the runner's :class:`~repro.runner.cache.ResultCache` for
free and survive cache hits byte-identically.

Merge rules:

* counters — sum (they are cumulative event counts);
* gauges — max (point-in-time values; the sweep-wide peak is the
  meaningful aggregate for queue depths and the like);
* histograms — bucket-wise sum, min/min, max/max;
* critical_path — episode counts and per-segment totals sum;
* series — **not** merged: per-point simulated-time axes are not
  comparable, so time-series stay with their point.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.obs.registry import SNAPSHOT_SCHEMA

#: export document format identifier
EXPORT_SCHEMA = "repro.obs.export/1"

#: Counters exempt from the sharded-vs-single-process equality contract,
#: mirroring ``SHARD_EXEMPT_KEYS`` in :mod:`repro.harness.parity`.
#: ``kernel.events_dispatched`` counts *host-side* kernel events: every
#: shard runs its own ``run_threads`` main, and a multicast fan-out
#: group split across shards costs one delivery event per shard, so the
#: summed count legitimately exceeds the single-process one.
SHARD_EXEMPT_COUNTERS = frozenset({"kernel.events_dispatched"})

#: Metric-name prefixes that exist only in one execution mode and are
#: therefore skipped by :func:`shard_counter_drift`: the ``shard.``
#: family is recorded natively by the sharded session's parent router
#: (sync rounds, window sizes, wire volumes) and has no single-process
#: counterpart.
SHARD_ONLY_PREFIXES = ("shard.",)


def _shard_exempt(name: str, exempt: frozenset, prefixes: tuple) -> bool:
    return name in exempt or name.startswith(prefixes)


def shard_counter_drift(single: dict, sharded: dict,
                        exempt: frozenset = SHARD_EXEMPT_COUNTERS,
                        shard_only: tuple = SHARD_ONLY_PREFIXES,
                        ) -> list[str]:
    """Counter/histogram differences between a single-process snapshot
    and a merged sharded snapshot, modulo the documented exemptions.

    Returns one human-readable line per drifting metric; an empty list
    means the two snapshots are counter-equal — the acceptance contract
    for metrics under sharded execution.  Gauges are not compared: they
    are point-in-time values whose merge rule (max across shards) is
    already the aggregate, not a per-shard sum.
    """
    drift: list[str] = []
    for section in ("counters", "histograms"):
        a = single.get(section, {})
        b = sharded.get(section, {})
        for name in sorted(set(a) | set(b)):
            if _shard_exempt(name, exempt, shard_only):
                continue
            va, vb = a.get(name), b.get(name)
            if va != vb:
                drift.append(
                    f"{section}.{name}: single={va!r} sharded={vb!r}")
    return drift


def _merge_histogram(into: dict, hist: dict) -> None:
    into["count"] += hist["count"]
    into["sum"] += hist["sum"]
    if hist["count"]:
        if into["count"] == hist["count"]:   # first non-empty contribution
            into["min"], into["max"] = hist["min"], hist["max"]
        else:
            into["min"] = min(into["min"], hist["min"])
            into["max"] = max(into["max"], hist["max"])
    buckets = into["buckets"]
    for label, n in hist["buckets"].items():
        buckets[label] = buckets.get(label, 0) + n


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Aggregate snapshots into one (see module docstring for rules)."""
    out: dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    critical: Optional[dict] = None
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            prev = out["gauges"].get(name)
            out["gauges"][name] = value if prev is None else max(prev, value)
        for name, hist in snap.get("histograms", {}).items():
            into = out["histograms"].setdefault(
                name, {"count": 0, "sum": 0, "min": 0, "max": 0,
                       "buckets": {}})
            _merge_histogram(into, hist)
        cp = snap.get("critical_path")
        if cp:
            if critical is None:
                critical = {"episodes": 0, "total_cycles": 0,
                            "segments": {}}
            critical["episodes"] += cp.get("episodes", 0)
            critical["total_cycles"] += cp.get("total_cycles", 0)
            for seg, cycles in cp.get("segments", {}).items():
                critical["segments"][seg] = (
                    critical["segments"].get(seg, 0) + cycles)
    if critical is not None:
        out["critical_path"] = critical
    return out


def build_export(points: list[tuple[str, dict]],
                 runner: Optional[dict] = None,
                 tool: str = "repro-experiments",
                 notes: str = "") -> dict:
    """Assemble the export document written by ``--metrics-out``.

    ``points`` is ``[(label, snapshot), ...]`` in sweep order; the
    aggregate section is their merge.  ``runner`` is the runner's own
    registry snapshot (cache hits, wall clock) when available.
    """
    doc: dict[str, Any] = {
        "schema": EXPORT_SCHEMA,
        "tool": tool,
        "points": [{"label": label, "metrics": snap}
                   for label, snap in points],
        "aggregate": merge_snapshots(snap for _label, snap in points),
    }
    if runner is not None:
        doc["runner"] = runner
    if notes:
        doc["notes"] = notes
    return doc
