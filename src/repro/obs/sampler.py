"""Simulation-time gauge sampling.

A :class:`Sampler` snapshots every gauge in a registry on a fixed
simulated-cycle interval, producing the time-series that latency
diagnosis needs (event-queue depth over a barrier episode, AMU input
queue depth during the arrival storm, cumulative events dispatched).

The sampler rides the ordinary event queue: each tick is one scheduled
callback that records gauge values and re-arms itself.  To keep the
kernel's run-to-quiescence semantics (``run()`` returns when the queue
drains; ``run_process`` treats a drained queue with live processes as
deadlock), a tick only re-arms while *other* events are pending — when
the sampler is the only thing left, it stops.  :meth:`start` re-arms it
for the next measurement window, so drivers sample warm-up and measured
runs independently.

Sampling is timing-neutral: ticks read state, never mutate it, so an
identical configuration produces identical cycle counts with or without
a sampler attached (the regression suite asserts this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Sampler:
    """Periodic gauge snapshots on the simulated clock."""

    def __init__(self, sim: "Simulator", registry: MetricsRegistry,
                 interval: int) -> None:
        if interval <= 0:
            raise ValueError(f"sampler interval must be positive, "
                             f"got {interval}")
        self.sim = sim
        self.registry = registry
        self.interval = int(interval)
        #: recorded samples: ``{"t": cycle, <gauge name>: value, ...}``
        self.series: list[dict] = []
        self._armed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the sampler; the first tick fires one interval from now."""
        if not self._armed:
            self._armed = True
            self.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        self.record_sample()
        # Re-arm only while the simulation still has work queued —
        # otherwise this tick would keep the event queue alive forever.
        if self.sim.pending_events() > 0:
            self.sim.schedule(self.interval, self._tick)
        else:
            self._armed = False

    def record_sample(self) -> None:
        """Record one sample immediately (also usable manually)."""
        sample = {"t": self.sim.now}
        sample.update(self.registry.gauge_values())
        self.series.append(sample)

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self.series)
