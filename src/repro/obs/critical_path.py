"""Per-episode critical-path attribution from trace spans.

A synchronization *episode* (one barrier round, one lock
acquire/critical-section/release) is bounded in time by the slowest
processor — the critical path.  This analyzer takes the spans a
:class:`~repro.trace.recorder.TraceRecorder` captured (every traced
processor operation, plus the ``"episode"`` umbrella spans the workload
drivers record around each measured episode) and attributes the critical
processor's episode time to segments:

========== ==========================================================
segment    meaning
========== ==========================================================
wait       spinning for the release (``spin_until`` spans)
amu        AMO/MAO round trips, minus the estimated wire time
network    estimated request+reply transit of AMO/MAO round trips
           (hops x hop latency from the machine's own topology)
coherence  cached loads/stores, LL/SC, processor atomics, uncached
           accesses — the coherence-protocol-bound operations
actmsg     active-message calls (handler runs on the remote CPU)
cpu        everything else: local compute and issue overhead (the
           gaps between traced operations)
========== ==========================================================

The wire-time split keeps the AMU column honest: a remote ``amo.inc``
span covers injection, transit, FU service, and the reply; transit is
reconstructed from the machine's topology (the simulator's own latency
function) and the remainder attributed to the AMU.  Everything else is
attributed span-whole, and the gaps between traced operations land in
``cpu`` — segment totals sum to the episode length (active-message
handler spans interleaved on the critical CPU can overshoot slightly;
the ``cpu`` remainder is clamped at zero), so percentages are directly
comparable across mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.mem.address import home_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine
    from repro.trace.recorder import Span, TraceRecorder

#: span name -> segment (anything unlisted is ignored, i.e. counted
#: as cpu time via the gap rule)
SEGMENT_OF = {
    "spin_until": "wait",
    "amo": "amu",
    "mao_rmw": "amu",
    "load": "coherence",
    "store": "coherence",
    "load_linked": "coherence",
    "store_conditional": "coherence",
    "llsc_rmw": "coherence",
    "atomic_rmw": "coherence",
    "uncached_read": "coherence",
    "uncached_write": "coherence",
    "am_call": "actmsg",
}

#: marker span name recorded by workload drivers around each episode
EPISODE_SPAN = "episode"

SEGMENTS = ("cpu", "coherence", "network", "amu", "wait", "actmsg")


@dataclass
class EpisodeBreakdown:
    """Attribution of one episode's critical path."""

    index: int
    start: int
    end: int
    #: the track (``"cpu7"``) whose completion defined the episode end
    critical_track: str
    segments: dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.end - self.start

    def fraction(self, segment: str) -> float:
        total = self.total_cycles
        return self.segments.get(segment, 0) / total if total else 0.0

    def describe(self) -> str:
        bits = ", ".join(f"{seg}={self.segments.get(seg, 0)}"
                         for seg in SEGMENTS if self.segments.get(seg))
        return (f"episode {self.index}: {self.total_cycles} cycles "
                f"(critical {self.critical_track}; {bits})")


class CriticalPathAnalyzer:
    """Attributes episode latency using a machine's own latency model.

    Construct either from a live :class:`Machine` (the single-process
    path) or, via :meth:`from_config`, from a bare
    :class:`~repro.config.parameters.SystemConfig` — the transit
    estimate only needs the topology's hop counts and the configured
    hop/local latencies, both of which are pure functions of the
    config.  The config route is what lets the sharded session's parent
    recompute the critical path over merged spans without building a
    machine; both routes produce identical attributions for the same
    trace.
    """

    def __init__(self, machine: Optional["Machine"] = None, *,
                 config=None) -> None:
        if machine is not None:
            self.machine = machine
            self._node_of_cpu = machine.node_of_cpu
            self._latency = machine.net.latency
        else:
            if config is None:
                raise ValueError(
                    "CriticalPathAnalyzer needs a machine or a config")
            from repro.network.topology import shared_topology
            self.machine = None
            topo = shared_topology(config.n_nodes,
                                   radix=config.network.router_radix)
            cpn = config.cpus_per_node
            local = config.network.local_latency_cycles
            per_hop = config.network.hop_latency_cycles

            def _latency(src: int, dst: int) -> int:
                if src == dst:
                    return local
                return topo.hops(src, dst) * per_hop

            self._node_of_cpu = lambda cpu_id: cpu_id // cpn
            self._latency = _latency

    @classmethod
    def from_config(cls, config) -> "CriticalPathAnalyzer":
        """Analyzer over a machine-shaped latency model, no machine."""
        return cls(config=config)

    # ------------------------------------------------------------------
    def _transit_estimate(self, span: "Span", track: str) -> int:
        """Estimated request+reply wire cycles of one AMO/MAO span."""
        addr = span.args.get("addr")
        if addr is None:
            return 0
        try:
            cpu_id = int(track.removeprefix("cpu"))
        except ValueError:
            return 0
        src = self._node_of_cpu(cpu_id)
        dst = home_of(int(addr, 16) if isinstance(addr, str) else addr)
        return 2 * self._latency(src, dst)

    def analyze(self, tracer: "TraceRecorder") -> list[EpisodeBreakdown]:
        """Per-episode breakdowns, in episode order.

        Episode *i* spans the window from the earliest CPU's *i*-th
        ``"episode"`` marker start to the latest CPU's marker end; the
        CPU finishing last is the critical path and its traced
        operations inside the window are classified by
        :data:`SEGMENT_OF`.
        """
        markers: dict[str, list["Span"]] = {}
        for span in tracer.spans:
            if span.name == EPISODE_SPAN:
                markers.setdefault(span.track, []).append(span)
        if not markers:
            return []
        for spans in markers.values():
            spans.sort(key=lambda s: s.start)
        n_episodes = min(len(s) for s in markers.values())

        out: list[EpisodeBreakdown] = []
        for i in range(n_episodes):
            window = {track: spans[i] for track, spans in markers.items()}
            start = min(s.start for s in window.values())
            end = max(s.end for s in window.values())
            critical = max(window, key=lambda t: (window[t].end, t))
            breakdown = self._attribute(
                tracer, critical, window[critical], start, end)
            breakdown.index = i
            out.append(breakdown)
        return out

    def _attribute(self, tracer: "TraceRecorder", track: str,
                   marker: "Span", start: int, end: int
                   ) -> EpisodeBreakdown:
        segments = {seg: 0 for seg in SEGMENTS}
        # Lead-in before the critical CPU even starts its episode
        # (it was still in the previous episode / local work): cpu time.
        segments["cpu"] += marker.start - start
        op_time = 0
        for span in tracer.spans_on(track):
            seg = SEGMENT_OF.get(span.name)
            if seg is None or span.start < marker.start \
                    or span.end > marker.end:
                continue
            duration = span.duration
            if seg == "amu":
                transit = min(self._transit_estimate(span, track), duration)
                segments["network"] += transit
                duration -= transit
            segments[seg] += duration
            op_time += span.duration
        # Remaining uncovered time inside the marker is local compute
        # plus issue overhead between traced operations.  (With active
        # messages, handler spans interleaved on this track can make
        # op_time overshoot the marker slightly; the clamp keeps cpu
        # time non-negative.)
        segments["cpu"] += max(0, marker.duration - op_time)
        return EpisodeBreakdown(index=0, start=start, end=end,
                                critical_track=track, segments=segments)

    # ------------------------------------------------------------------
    def summarize(self, breakdowns: list[EpisodeBreakdown]) -> dict:
        """Aggregate for the metrics snapshot (mergeable across points)."""
        segments = {seg: 0 for seg in SEGMENTS}
        total = 0
        for b in breakdowns:
            total += b.total_cycles
            for seg, cycles in b.segments.items():
                segments[seg] = segments.get(seg, 0) + cycles
        return {
            "episodes": len(breakdowns),
            "total_cycles": total,
            "segments": segments,
        }
