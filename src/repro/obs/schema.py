"""Export schema for metrics snapshots, plus a dependency-free validator.

The JSON-Schema document (:data:`EXPORT_JSON_SCHEMA`) describes the file
written by ``repro-experiments --metrics-out``; CI validates every smoke
sweep against it.  Since the toolchain must not grow dependencies, the
actual validation is a small hand-rolled structural checker implementing
exactly the subset the schema uses — run it as::

    python -m repro.obs.schema out.json

which exits non-zero listing every violation.
"""

from __future__ import annotations

import json
import sys
from typing import Any

from repro.obs.registry import SNAPSHOT_SCHEMA
from repro.obs.snapshot import EXPORT_SCHEMA

_NUM = {"type": "number"}
_COUNTER_MAP = {"type": "object", "additionalProperties": _NUM}

#: JSON-Schema (draft 2020-12 style) for one registry snapshot
SNAPSHOT_JSON_SCHEMA: dict = {
    "type": "object",
    "required": ["schema", "counters", "gauges", "histograms"],
    "properties": {
        "schema": {"const": SNAPSHOT_SCHEMA},
        "counters": _COUNTER_MAP,
        "gauges": _COUNTER_MAP,
        "histograms": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["count", "sum", "min", "max", "buckets"],
                "properties": {
                    "count": _NUM, "sum": _NUM, "min": _NUM, "max": _NUM,
                    "buckets": {"type": "object",
                                "additionalProperties": _NUM},
                },
            },
        },
        "series": {
            "type": "array",
            "items": {"type": "object", "required": ["t"],
                      "additionalProperties": _NUM},
        },
        "critical_path": {
            "type": "object",
            "required": ["episodes", "total_cycles", "segments"],
            "properties": {
                "episodes": _NUM,
                "total_cycles": _NUM,
                "segments": _COUNTER_MAP,
            },
        },
    },
}

#: JSON-Schema for the ``--metrics-out`` export document
EXPORT_JSON_SCHEMA: dict = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro.obs metrics export",
    "type": "object",
    "required": ["schema", "tool", "points", "aggregate"],
    "properties": {
        "schema": {"const": EXPORT_SCHEMA},
        "tool": {"type": "string"},
        "points": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["label", "metrics"],
                "properties": {
                    "label": {"type": "string"},
                    "metrics": SNAPSHOT_JSON_SCHEMA,
                },
            },
        },
        "aggregate": SNAPSHOT_JSON_SCHEMA,
        "runner": _COUNTER_MAP,
        "notes": {"type": "string"},
    },
}


# ---------------------------------------------------------------------------
# hand-rolled structural validation (no jsonschema dependency)
# ---------------------------------------------------------------------------

def _is_num(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _check_num_map(obj: Any, path: str, errors: list[str]) -> None:
    if not isinstance(obj, dict):
        errors.append(f"{path}: expected object, got {type(obj).__name__}")
        return
    for key, value in obj.items():
        if not _is_num(value):
            errors.append(f"{path}.{key}: expected number, "
                          f"got {type(value).__name__}")


def validate_snapshot(snap: Any, path: str = "$") -> list[str]:
    """Structural errors in one registry snapshot ([] = valid)."""
    errors: list[str] = []
    if not isinstance(snap, dict):
        return [f"{path}: expected object, got {type(snap).__name__}"]
    if snap.get("schema") != SNAPSHOT_SCHEMA:
        errors.append(f"{path}.schema: expected {SNAPSHOT_SCHEMA!r}, "
                      f"got {snap.get('schema')!r}")
    for section in ("counters", "gauges"):
        if section not in snap:
            errors.append(f"{path}.{section}: missing")
        else:
            _check_num_map(snap[section], f"{path}.{section}", errors)
    hists = snap.get("histograms")
    if hists is None:
        errors.append(f"{path}.histograms: missing")
    elif not isinstance(hists, dict):
        errors.append(f"{path}.histograms: expected object")
    else:
        for name, hist in hists.items():
            hpath = f"{path}.histograms.{name}"
            if not isinstance(hist, dict):
                errors.append(f"{hpath}: expected object")
                continue
            for key in ("count", "sum", "min", "max"):
                if not _is_num(hist.get(key)):
                    errors.append(f"{hpath}.{key}: expected number")
            buckets = hist.get("buckets")
            if not isinstance(buckets, dict):
                errors.append(f"{hpath}.buckets: expected object")
            else:
                _check_num_map(buckets, f"{hpath}.buckets", errors)
    series = snap.get("series")
    if series is not None:
        if not isinstance(series, list):
            errors.append(f"{path}.series: expected array")
        else:
            for i, sample in enumerate(series):
                if not isinstance(sample, dict) or not _is_num(
                        sample.get("t")):
                    errors.append(f"{path}.series[{i}]: expected object "
                                  "with numeric 't'")
                    continue
                _check_num_map(sample, f"{path}.series[{i}]", errors)
    cp = snap.get("critical_path")
    if cp is not None:
        cpath = f"{path}.critical_path"
        if not isinstance(cp, dict):
            errors.append(f"{cpath}: expected object")
        else:
            for key in ("episodes", "total_cycles"):
                if not _is_num(cp.get(key)):
                    errors.append(f"{cpath}.{key}: expected number")
            if "segments" not in cp:
                errors.append(f"{cpath}.segments: missing")
            else:
                _check_num_map(cp["segments"], f"{cpath}.segments", errors)
    return errors


def validate_export(doc: Any) -> list[str]:
    """Structural errors in a ``--metrics-out`` document ([] = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"$: expected object, got {type(doc).__name__}"]
    if doc.get("schema") != EXPORT_SCHEMA:
        errors.append(f"$.schema: expected {EXPORT_SCHEMA!r}, "
                      f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("tool"), str):
        errors.append("$.tool: expected string")
    points = doc.get("points")
    if not isinstance(points, list):
        errors.append("$.points: expected array")
    else:
        for i, point in enumerate(points):
            if not isinstance(point, dict):
                errors.append(f"$.points[{i}]: expected object")
                continue
            if not isinstance(point.get("label"), str):
                errors.append(f"$.points[{i}].label: expected string")
            errors += validate_snapshot(point.get("metrics"),
                                        f"$.points[{i}].metrics")
    if "aggregate" not in doc:
        errors.append("$.aggregate: missing")
    else:
        errors += validate_snapshot(doc["aggregate"], "$.aggregate")
    if "runner" in doc:
        _check_num_map(doc["runner"], "$.runner", errors)
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema EXPORT.json",
              file=sys.stderr)
        return 2
    with open(argv[0]) as fh:
        doc = json.load(fh)
    errors = validate_export(doc)
    if errors:
        for err in errors:
            print(f"INVALID {err}", file=sys.stderr)
        return 1
    n_points = len(doc.get("points", []))
    counters = len(doc.get("aggregate", {}).get("counters", {}))
    print(f"valid: {argv[0]} ({n_points} points, "
          f"{counters} aggregate counters)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
