"""The tiny AMU word cache.

"To further improve the performance of AMOs, we add a tiny cache to the
AMU.  This cache effectively coalesces operations to synchronization
variables [...] An N-word AMU cache allows N outstanding synchronization
operations.  For this study, we assume an eight-word AMU cache." (§3.1)

Fully associative over whole words, true LRU.  Entries are always
considered dirty with respect to memory: the coherent value of a cached
word lives *here* until a put or an eviction writes it back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mem.address import line_base, word_base


@dataclass
class AmuCacheEntry:
    __slots__ = ("word_addr", "value", "last_use")
    word_addr: int
    value: int
    last_use: int


class AmuCache:
    """N-word fully-associative LRU cache inside the AMU."""

    __slots__ = ("capacity", "_entries", "_stamp", "hits", "misses",
                 "evictions")

    def __init__(self, capacity_words: int = 8) -> None:
        if capacity_words < 1:
            raise ValueError("AMU cache needs at least one word")
        self.capacity = capacity_words
        self._entries: dict[int, AmuCacheEntry] = {}
        # plain int LRU clock (not itertools.count: snapshot/restore
        # must capture and rewind it)
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, addr: int) -> Optional[AmuCacheEntry]:
        entry = self._entries.get(word_base(addr))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._stamp += 1
        entry.last_use = self._stamp
        return entry

    def peek(self, addr: int) -> Optional[int]:
        """Non-statistical, non-LRU-touching value probe."""
        entry = self._entries.get(word_base(addr))
        return None if entry is None else entry.value

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def victim(self) -> AmuCacheEntry:
        """The LRU entry (call only when full)."""
        return min(self._entries.values(), key=lambda e: e.last_use)

    def insert(self, addr: int, value: int) -> AmuCacheEntry:
        """Install a word; caller must have made room (see :meth:`victim`)."""
        word = word_base(addr)
        if word in self._entries:
            raise RuntimeError(f"word {word:#x} already cached")
        if self.full:
            raise RuntimeError("insert into full AMU cache; evict first")
        self._stamp += 1
        entry = AmuCacheEntry(word_addr=word, value=value,
                              last_use=self._stamp)
        self._entries[word] = entry
        return entry

    def drop(self, addr: int) -> Optional[AmuCacheEntry]:
        """Remove a word (eviction/flush); returns the entry if present."""
        entry = self._entries.pop(word_base(addr), None)
        if entry is not None:
            self.evictions += 1
        return entry

    def words_in_line(self, line_addr: int, line_bytes: int = 128) -> list[AmuCacheEntry]:
        """Entries whose word falls in the given line (flush support)."""
        base = line_base(line_addr)
        return [e for e in self._entries.values()
                if base <= e.word_addr < base + line_bytes]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
