"""The Active Memory Unit (substrate S11) — the paper's contribution.

An AMU sits in each node's hub next to the memory/directory controller.
Processors ship it simple atomic operations (:mod:`repro.amu.ops`) on
words homed at that node; a tiny fully-associative word cache
(:mod:`repro.amu.cache`) coalesces repeated operations on hot
synchronization variables so a cache-resident AMO completes in two hub
cycles regardless of contention; the unit (:mod:`repro.amu.unit`) drains
a FIFO request queue, replies with the pre-op value, and — when the
result matches the request's *test value*, or for always-push ops like
``amo.fetchadd`` — issues a fine-grained *put* that patches the word in
every sharer's cache in place (the wake-up path that makes AMO barriers
O(P) with a tiny constant).

Conventional memory-side atomics (MAOs) share the same function unit and
cache (as in the paper's evaluation) but never push updates and stay
outside the coherent domain — see :mod:`repro.mao`.
"""

from repro.amu.ops import AmoOp, AmoCommand, OPS, register_op
from repro.amu.cache import AmuCache
from repro.amu.unit import ActiveMemoryUnit

__all__ = [
    "AmoOp",
    "AmoCommand",
    "OPS",
    "register_op",
    "AmuCache",
    "ActiveMemoryUnit",
]
