"""The Active Memory Unit proper.

A single dispatcher process drains the request queue (the paper's Figure 2
queue + READY handshake), so operations on the home's synchronization
variables serialize at the function unit: a cache-resident AMO costs two
hub cycles of FU time regardless of how many processors contend — the
paper's key constant.

The unit serves both AMO_REQUEST (coherent, test value, put pushes) and
MAO_REQUEST (non-coherent; same FU and cache, per the paper's evaluation
setup: "The AMU cache is used for both MAOs and AMOs").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.amu.cache import AmuCache
from repro.amu.ops import AmoCommand
from repro.mem.address import home_of, word_base
from repro.network.message import Message, MessageKind
from repro.sim.primitives import FifoQueue, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Hub


class ActiveMemoryUnit:
    """AMU instance inside one hub."""

    __slots__ = ("hub", "sim", "node", "config", "cache", "queue",
                 "ops_executed", "puts_issued", "test_matches",
                 "puts_deferred", "_dispatcher")

    def __init__(self, hub: "Hub") -> None:
        self.hub = hub
        self.sim = hub.sim
        self.node = hub.node
        self.config = hub.config
        self.cache = AmuCache(self.config.amu.cache_words)
        self.queue = FifoQueue(name=f"amu[{hub.node}]")
        self.ops_executed = 0
        self.puts_issued = 0
        #: ops whose result matched their §3.2 test value
        self.test_matches = 0
        #: ops that updated the AMU cache *without* a put — the deferred
        #: visibility window of the paper's release-consistency semantics
        self.puts_deferred = 0
        self._dispatcher = self.sim.spawn(self._dispatch_loop(),
                                          name=f"amu-dispatch[{hub.node}]")

    # ------------------------------------------------------------------
    def enqueue(self, msg: Message) -> None:
        """Hub delivery path for AMO_REQUEST / MAO_REQUEST messages."""
        if home_of(msg.addr) != self.node:
            raise RuntimeError(
                f"AMO for {msg.addr:#x} routed to non-home node {self.node}")
        self.queue.put(self.sim, msg)

    def peek(self, addr: int):
        """AMU-cached value of a word, or None (MAO uncached-read path)."""
        return self.cache.peek(addr)

    # ------------------------------------------------------------------
    def _dispatch_loop(self):
        hub_cfg = self.config.hub
        dispatch = hub_cfg.hub_to_cpu(self.config.amu.dispatch_hub_cycles)
        op_time = hub_cfg.hub_to_cpu(self.config.amu.op_latency_hub_cycles)
        while True:
            msg = yield self.queue.get()
            cmd: AmoCommand = msg.payload
            op = cmd.resolve_op()
            word = word_base(msg.addr)
            yield Timeout(dispatch)

            if not self.config.amu.cache_enabled:
                # Ablation: read-modify-write straight against memory.
                old = yield from self.hub.home_engine.read_coherent_word(word)
                yield Timeout(op_time)
                new = op.apply(old, cmd.operand)
                if cmd.test is not None and new == cmd.test:
                    self.test_matches += 1
                push = cmd.should_push(new)
                san = self.hub.machine.sanitizer
                if san is not None:
                    san.note_amu_op(self.node, word, old, new,
                                    coherent=cmd.coherent, will_push=push)
                yield from self.hub.home_engine.write_coherent_word(
                    word, new, push_updates=push)
            else:
                entry = self.cache.lookup(word)
                if entry is None:
                    yield from self._fill(word, coherent=cmd.coherent)
                    entry = self.cache.lookup(word)
                    assert entry is not None
                yield Timeout(op_time)
                # The RMW itself is atomic in simulated time (no yields
                # between read, compute and write).
                old = entry.value
                new = op.apply(old, cmd.operand)
                entry.value = new
                if cmd.test is not None and new == cmd.test:
                    self.test_matches += 1
                push = cmd.should_push(new)
                san = self.hub.machine.sanitizer
                if san is not None:
                    san.note_amu_op(self.node, word, old, new,
                                    coherent=cmd.coherent, will_push=push)
                if push:
                    self.puts_issued += 1
                    yield from self.hub.home_engine.write_coherent_word(
                        word, new, push_updates=True)
                else:
                    self.puts_deferred += 1

            self.ops_executed += 1
            reply_kind = (MessageKind.AMO_REPLY if cmd.coherent
                          else MessageKind.MAO_REPLY)
            # Reply injection is pipelined: the FU moves on to the next
            # queued op while the NI serializes the outbound packet (the
            # egress resource still bounds injection throughput).
            self.sim.spawn(self.hub.egress_send(Message(
                kind=reply_kind, src_node=self.node, dst_node=msg.src_node,
                addr=msg.addr, value=old, reply_to=msg.reply_to,
                requester=msg.requester)), name=f"amu-reply[{self.node}]")

    def _fill(self, word: int, coherent: bool):
        """Coroutine: bring a word into the AMU cache, evicting if full."""
        if self.cache.full:
            victim = self.cache.victim()
            self.cache.drop(victim.word_addr)
            # Evicted values become memory-visible via a full put: the
            # coherent write keeps sharer caches patched too.
            yield from self.hub.home_engine.write_coherent_word(
                victim.word_addr, victim.value, push_updates=True)
            self.hub.home_engine.unmark_amu_sharer(victim.word_addr)
        value = yield from self.hub.home_engine.read_coherent_word(word)
        if coherent:
            self.hub.home_engine.mark_amu_sharer(word)
        self.cache.insert(word, value)

    # ------------------------------------------------------------------
    def flush_line(self, line_addr: int):
        """Coroutine: write all cached words of a line back to memory.

        Called by the home engine *while it holds the line busy* (a
        processor GET_X is reconciling coherence), so this must not
        re-acquire the directory resource — it goes straight to DRAM.
        """
        for entry in self.cache.words_in_line(line_addr,
                                              self.config.line_bytes):
            self.cache.drop(entry.word_addr)
            yield from self.hub.dram.access_word()
            self.hub.backing.write_word(entry.word_addr, entry.value)
