"""AMO instruction semantics.

The paper evaluates ``amo.inc`` and ``amo.fetchadd`` and says the authors
"are considering a wide range of AMO instructions"; this module implements
that wider range (swap, compare-and-swap, min/max, bitwise ops) behind a
registry so examples can even add custom ops (see
``examples/custom_amo.py``).

Semantics of one executed AMO:

* ``new = op(old, operand)`` at the AMU;
* the *old* value returns to the requester (fetch-and-phi style);
* the result is pushed to sharer caches when ``always_push`` is set
  (``amo.fetchadd`` — "immediately updates the shared copies", §3.3.2)
  or when a ``test`` value is attached and ``new == test``
  (``amo.inc`` barrier release, §3.2).

All arithmetic is modulo 2**64 (the machine word).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

WORD_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class AmoOp:
    """One AMO opcode."""

    name: str
    fn: Callable[[int, Any], int]
    #: push the new value to sharers after *every* execution
    always_push: bool = False

    def apply(self, old: int, operand: Any) -> int:
        return self.fn(old, operand) & WORD_MASK


OPS: dict[str, AmoOp] = {}


def register_op(op: AmoOp) -> AmoOp:
    """Add an op to the global registry (rejects redefinition)."""
    if op.name in OPS:
        raise ValueError(f"AMO op {op.name!r} already registered")
    OPS[op.name] = op
    return op


def _cas(old: int, operand: Any) -> int:
    expected, new = operand
    return new if old == expected else old


# The paper's two evaluated instructions:
register_op(AmoOp("inc", lambda old, _operand: old + 1))
register_op(AmoOp("fetchadd", lambda old, operand: old + operand,
                  always_push=True))
# The "wide range" the paper says it is considering:
register_op(AmoOp("swap", lambda old, operand: operand, always_push=True))
register_op(AmoOp("cas", _cas, always_push=True))
register_op(AmoOp("min", lambda old, operand: min(old, operand)))
register_op(AmoOp("max", lambda old, operand: max(old, operand)))
register_op(AmoOp("and", lambda old, operand: old & operand))
register_op(AmoOp("or", lambda old, operand: old | operand))
register_op(AmoOp("xor", lambda old, operand: old ^ operand))


@dataclass
class AmoCommand:
    """Decoded payload of an AMO_REQUEST / MAO_REQUEST message."""

    op: str
    operand: Any = 1
    #: when the op result equals this, the AMU issues the put (§3.2)
    test: Optional[int] = None
    #: tri-state push override: None = op default, True/False = force
    push: Optional[bool] = None
    #: MAO requests run on the same FU but never touch coherence
    coherent: bool = True

    def resolve_op(self) -> AmoOp:
        try:
            return OPS[self.op]
        except KeyError:
            raise ValueError(f"unknown AMO op {self.op!r}") from None

    def should_push(self, new_value: int) -> bool:
        """Whether this execution triggers a fine-grained put."""
        if not self.coherent:
            return False
        if self.push is not None:
            triggered = self.push
        else:
            triggered = self.resolve_op().always_push
        if self.test is not None:
            triggered = triggered or new_value == self.test
        return triggered
