"""``repro-experiments`` — run the paper's experiments from the shell.

Examples::

    repro-experiments fig1
    repro-experiments table2 --cpus 4 16 64 --episodes 3
    repro-experiments all --quick
    repro-experiments all --full --jobs 4 --progress
    repro-experiments all --full --markdown > results.md

``--quick`` runs reduced sizes (up to 64 CPUs, fewer episodes) so the
whole suite completes in a couple of minutes; ``--full`` runs the paper's
complete 4-256 sweep (tens of minutes in pure Python — the repro band
for this paper flags 256-processor runs as the slow part).

Sweeps go through :mod:`repro.runner`: ``--jobs N`` fans independent
simulations across N worker processes (0 = all cores), and results are
cached on disk keyed by configuration + code version, so re-running an
experiment — or another experiment sharing points, like ``fig5`` after
``table2`` — skips the simulation work entirely.  ``--no-cache``
disables the cache, ``--jobs 1`` (the default) runs serially in-process.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import experiments as ex
from repro.harness.paper_data import TABLE2_CPUS, TABLE3_CPUS, TABLE4_CPUS
from repro.runner import ParallelRunner, ResultCache, default_cache_dir
from repro.stats.runner import make_progress

QUICK_BARRIER_CPUS = (4, 8, 16, 32, 64)
QUICK_TREE_CPUS = (16, 32, 64)
QUICK_LOCK_CPUS = (4, 8, 16, 32, 64)
QUICK_FIG7_CPUS = (32, 64)


def _sizes(args, full_default, quick_default):
    if args.cpus:
        return tuple(args.cpus)
    return tuple(full_default) if args.full else tuple(quick_default)


def _run_fuzz(args) -> int:
    """Replay one fuzz schedule with the sanitizer armed; 0 = clean."""
    from repro.check.fuzz import load_artifact, repro_command, run_fuzz_schedule

    if args.repro:
        params = load_artifact(args.repro)
    else:
        kinds = None
        if args.fuzz_kinds is not None:
            kinds = [k for k in args.fuzz_kinds.split(",")
                     if k and k != "none"]
        reorder_kinds = None
        if args.fuzz_reorder_kinds is not None:
            reorder_kinds = [k for k in args.fuzz_reorder_kinds.split(",")
                             if k and k != "none"]
        params = dict(
            n_processors=(args.cpus or [8])[0],
            mechanism=args.mechanism,
            workload=args.workload,
            seed=args.fuzz_seed,
            max_extra=args.fuzz_max_extra,
            kinds=kinds,
            reorder_window=args.fuzz_reorder,
            reorder_kinds=reorder_kinds,
            episodes=args.episodes,
            ops_per_cpu=args.ops_per_cpu,
            inject_bug=args.inject_bug,
        )
    print(f"# {repro_command(params)}", file=sys.stderr)
    out = run_fuzz_schedule(**params)
    verdict = "PASS" if out["ok"] else "FAIL"
    print(f"{verdict} {out['workload']}/{out['mechanism']} "
          f"P={out['n_processors']} seed={out['seed']} "
          f"max_extra={out['max_extra']} "
          f"({out['events_dispatched']} events, {out['cycles']} cycles)")
    if out["error"]:
        print(f"  error: {out['error']}")
    for violation in out["violations"]:
        print(f"  violation: {violation}")
    return 0 if out["ok"] else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of the AMO "
                    "synchronization paper (IPDPS 2004).")
    parser.add_argument("experiment",
                        choices=["table2", "fig5", "table3", "fig6",
                                 "table4", "fig7", "qlock", "fig1",
                                 "amo-model", "amo-tree", "fuzz", "all"])
    parser.add_argument("--cpus", type=int, nargs="+",
                        help="processor counts to evaluate")
    parser.add_argument("--episodes", type=int, default=3,
                        help="measured barrier episodes per configuration")
    parser.add_argument("--acquisitions", type=int, default=3,
                        help="lock acquisitions per CPU")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full 4-256 sweep")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes (default)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit Markdown tables")
    parser.add_argument("--json", metavar="PATH",
                        help="also write results as JSON to PATH")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep (default 1 = "
                             "serial in-process; 0 = all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-dir", metavar="PATH",
                        help="result-cache location (default "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-runner)")
    parser.add_argument("--timeout", type=float, metavar="SECONDS",
                        help="per-run wall-clock limit")
    parser.add_argument("--progress", action="store_true",
                        help="print one line per resolved sweep point")
    parser.add_argument("--metrics", action="store_true",
                        help="run sweeps with the repro.obs metrics layer "
                             "attached (separate cache entries)")
    parser.add_argument("--metrics-interval", type=int, default=0,
                        metavar="CYCLES",
                        help="with --metrics: sample gauges every N "
                             "simulated cycles (0 = no time-series)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="partition every run across N worker "
                             "processes (repro.shard conservative-window "
                             "sharding; cycle-identical to single-process, "
                             "composes with --metrics)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write the merged metrics export (JSON, "
                             "schema repro.obs.export/1) to PATH; "
                             "implies --metrics")
    parser.add_argument("--backend", metavar="NAME",
                        help="event-kernel backend (repro.sim.backends; "
                             "reference or accel).  Parity-gated: every "
                             "backend produces byte-identical results, "
                             "so this only changes wall-clock speed and "
                             "never the result cache key")
    fz = parser.add_argument_group(
        "fuzz", "options for the `fuzz` experiment (replay one schedule "
                "with the coherence sanitizer armed; see docs/checking.md)")
    fz.add_argument("--workload", default="counter",
                    help="fuzz workload: counter, barrier, lock, "
                         "qlock_mcs, qlock_cna, or qlock_rw")
    fz.add_argument("--mechanism", default="amo",
                    help="synchronization mechanism name (e.g. amo, llsc)")
    fz.add_argument("--fuzz-seed", type=int, default=0,
                    help="DelayInjector/ReorderInjector seed")
    fz.add_argument("--fuzz-max-extra", type=int, default=200,
                    metavar="CYCLES",
                    help="upper bound on injected per-message delay")
    fz.add_argument("--fuzz-kinds", metavar="KIND[,KIND...]",
                    help="restrict delay injection to these message kinds "
                         "('none' = no kinds, i.e. injector inert)")
    fz.add_argument("--fuzz-reorder", type=int, default=0,
                    metavar="CYCLES",
                    help="relaxed-ordering universe: weaken per-(src,dst) "
                         "FIFO delivery to per-cache-line order with up "
                         "to this many cycles of seeded jitter (0 = "
                         "strict FIFO, fabric untouched)")
    fz.add_argument("--fuzz-reorder-kinds", metavar="KIND[,KIND...]",
                    help="restrict reorder jitter to these message kinds "
                         "('none' = no kinds)")
    fz.add_argument("--ops-per-cpu", type=int, default=3,
                    help="counter/lock/qlock fuzz operations per CPU")
    fz.add_argument("--inject-bug", metavar="NAME",
                    help="deliberately break the protocol (checker "
                         "self-test): skip_invalidation, drop_word_update, "
                         "qlock_skip_wait, cna_skip_flush, rw_early_release")
    fz.add_argument("--repro", metavar="PATH",
                    help="replay the shrunk point from a fuzz artifact "
                         "(overrides the other fuzz options)")
    args = parser.parse_args(argv)
    if args.metrics_out:
        args.metrics = True
    if args.experiment == "fuzz":
        return _run_fuzz(args)

    cache = None
    if not args.no_cache:
        cache = ResultCache(root=args.cache_dir or default_cache_dir())
    runner = ParallelRunner(jobs=args.jobs, cache=cache,
                            timeout=args.timeout,
                            progress=make_progress(args.progress))

    want = args.experiment
    results: list[ex.ExperimentResult] = []
    t0 = time.time()

    if want in ("table2", "fig5", "amo-model", "all"):
        cpus = _sizes(args, TABLE2_CPUS, QUICK_BARRIER_CPUS)
        print(f"# running flat-barrier suite on CPUs={cpus} ...",
              file=sys.stderr)
        flat = ex.run_barrier_suite(cpus, episodes=args.episodes,
                                    runner=runner, metrics=args.metrics,
                                    metrics_interval=args.metrics_interval,
                                    shards=args.shards,
                                    backend=args.backend)
        if want in ("table2", "all"):
            results.append(ex.experiment_table2(flat))
        if want in ("fig5", "all"):
            results.append(ex.experiment_fig5(flat))
        if want in ("amo-model", "all"):
            results.append(ex.experiment_amo_model(flat))
    if want in ("table3", "fig6", "all"):
        cpus = _sizes(args, TABLE3_CPUS, QUICK_TREE_CPUS)
        print(f"# running tree-barrier suite on CPUs={cpus} ...",
              file=sys.stderr)
        tree = ex.run_tree_suite(cpus, episodes=args.episodes,
                                 runner=runner, metrics=args.metrics,
                                 metrics_interval=args.metrics_interval,
                                 shards=args.shards,
                                 backend=args.backend)
        flat3 = ex.run_barrier_suite(cpus, episodes=args.episodes,
                                     runner=runner, metrics=args.metrics,
                                     metrics_interval=args.metrics_interval,
                                     shards=args.shards,
                                     backend=args.backend)
        if want in ("table3", "all"):
            results.append(ex.experiment_table3(tree, flat3))
        if want in ("fig6", "all"):
            results.append(ex.experiment_fig6(tree))
    if want in ("table4", "fig7", "all"):
        cpus = _sizes(args, TABLE4_CPUS, QUICK_LOCK_CPUS)
        print(f"# running lock suite on CPUs={cpus} ...", file=sys.stderr)
        locks = ex.run_lock_suite(cpus,
                                  acquisitions_per_cpu=args.acquisitions,
                                  runner=runner, metrics=args.metrics,
                                  metrics_interval=args.metrics_interval,
                                  shards=args.shards,
                                  backend=args.backend)
        if want in ("table4", "all"):
            results.append(ex.experiment_table4(locks))
        if want in ("fig7", "all"):
            fig7_cpus = [p for p in (args.cpus or
                                     ((128, 256) if args.full
                                      else QUICK_FIG7_CPUS))
                         if p in cpus]
            results.append(ex.experiment_fig7(locks, cpu_counts=fig7_cpus))
    if want in ("qlock", "all"):
        cpus = _sizes(args, TABLE4_CPUS, QUICK_LOCK_CPUS)
        print(f"# running queue-lock suite on CPUs={cpus} ...",
              file=sys.stderr)
        qlocks = ex.run_qlock_suite(cpus,
                                    acquisitions_per_cpu=args.acquisitions,
                                    runner=runner, metrics=args.metrics,
                                    metrics_interval=args.metrics_interval,
                                    shards=args.shards,
                                    backend=args.backend)
        results.append(ex.experiment_qlock(qlocks))
    if want == "amo-tree":
        cpus = _sizes(args, (16, 32, 64, 128, 256), (16, 32, 64))
        print(f"# running AMO tree-crossover search on CPUs={cpus} ...",
              file=sys.stderr)
        results.append(ex.experiment_amo_tree_crossover(
            cpus, episodes=args.episodes))
    if want in ("fig1", "all"):
        results.append(ex.experiment_fig1())

    for res in results:
        print(res.format(markdown=args.markdown))
        print()
    if args.json:
        import json
        payload = [{
            "experiment": r.exp_id,
            "title": r.title,
            "columns": r.table.columns,
            "rows": r.table.rows,
            "paper_rows": r.paper.rows if r.paper else None,
            "checks": [{"name": c.name, "passed": c.passed,
                        "detail": c.detail} for c in r.checks],
            "notes": r.notes,
        } for r in results]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"# wrote {args.json}", file=sys.stderr)
    if args.metrics_out:
        import json
        from repro.obs import build_export, validate_export
        export = build_export(runner.metrics_points,
                              runner=runner.stats.snapshot()["counters"])
        errors = validate_export(export)
        if errors:
            for err in errors:
                print(f"# metrics export INVALID: {err}", file=sys.stderr)
            return 2
        with open(args.metrics_out, "w") as fh:
            json.dump(export, fh, indent=2)
        print(f"# wrote metrics export ({len(export['points'])} points) "
              f"to {args.metrics_out}", file=sys.stderr)
    if runner.stats.total_points:
        print(f"# runner: {runner.stats.summary()}", file=sys.stderr)
    failed = [c for r in results for c in r.checks if not c.passed]
    print(f"# {len(results)} experiment(s), "
          f"{sum(len(r.checks) for r in results)} shape checks, "
          f"{len(failed)} failed, {time.time() - t0:.1f}s", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
