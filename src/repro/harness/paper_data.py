"""The paper's published numbers, transcribed for side-by-side reports.

Source: Zhang, Fang, Carter — *Highly Efficient Synchronization Based on
Active Memory Operations*, IPDPS 2004, Tables 2-4.  Figures 5-7 publish
no numeric axes in the text, so their comparisons are *shape* assertions
(monotonicity/ordering), encoded in :mod:`repro.harness.experiments`.
"""

from __future__ import annotations

from repro.config.mechanism import Mechanism

#: Table 2 — speedup of each barrier implementation over the LL/SC
#: baseline, per processor count.
PAPER_TABLE2: dict[int, dict[Mechanism, float]] = {
    4:   {Mechanism.ACTMSG: 0.95, Mechanism.ATOMIC: 1.15,
          Mechanism.MAO: 1.21, Mechanism.AMO: 2.10},
    8:   {Mechanism.ACTMSG: 1.70, Mechanism.ATOMIC: 1.06,
          Mechanism.MAO: 2.70, Mechanism.AMO: 5.48},
    16:  {Mechanism.ACTMSG: 2.00, Mechanism.ATOMIC: 1.20,
          Mechanism.MAO: 3.61, Mechanism.AMO: 9.11},
    32:  {Mechanism.ACTMSG: 2.38, Mechanism.ATOMIC: 1.36,
          Mechanism.MAO: 4.20, Mechanism.AMO: 15.14},
    64:  {Mechanism.ACTMSG: 2.78, Mechanism.ATOMIC: 1.37,
          Mechanism.MAO: 5.14, Mechanism.AMO: 23.78},
    128: {Mechanism.ACTMSG: 2.74, Mechanism.ATOMIC: 1.24,
          Mechanism.MAO: 8.02, Mechanism.AMO: 34.74},
    256: {Mechanism.ACTMSG: 2.82, Mechanism.ATOMIC: 1.23,
          Mechanism.MAO: 14.70, Mechanism.AMO: 61.94},
}

#: Table 3 — speedups of tree-based barriers over the (non-tree) LL/SC
#: baseline; the last column repeats flat AMO for comparison.
PAPER_TABLE3: dict[int, dict[str, float]] = {
    16:  {"LL/SC+tree": 1.70, "ActMsg+tree": 2.41, "Atomic+tree": 2.25,
          "MAO+tree": 2.60, "AMO+tree": 2.59, "AMO": 9.11},
    32:  {"LL/SC+tree": 2.24, "ActMsg+tree": 2.85, "Atomic+tree": 2.62,
          "MAO+tree": 4.09, "AMO+tree": 4.27, "AMO": 15.14},
    64:  {"LL/SC+tree": 4.22, "ActMsg+tree": 6.92, "Atomic+tree": 5.61,
          "MAO+tree": 8.37, "AMO+tree": 8.61, "AMO": 23.78},
    128: {"LL/SC+tree": 5.26, "ActMsg+tree": 9.02, "Atomic+tree": 6.13,
          "MAO+tree": 12.69, "AMO+tree": 13.74, "AMO": 34.74},
    256: {"LL/SC+tree": 8.38, "ActMsg+tree": 14.72, "Atomic+tree": 11.22,
          "MAO+tree": 20.37, "AMO+tree": 22.62, "AMO": 61.94},
}

#: Table 4 — lock speedups over the LL/SC ticket lock.
#: Keyed (processors, mechanism, lock_type).
PAPER_TABLE4: dict[tuple[int, Mechanism, str], float] = {}
_T4 = {
    4:   {"LL/SC": (1.00, 0.48), "ActMsg": (1.08, 0.47),
          "Atomic": (0.92, 0.53), "MAO": (1.01, 0.57), "AMO": (1.95, 1.31)},
    8:   {"LL/SC": (1.00, 0.58), "ActMsg": (1.64, 0.56),
          "Atomic": (0.94, 0.67), "MAO": (1.07, 0.59), "AMO": (2.34, 2.03)},
    16:  {"LL/SC": (1.00, 0.60), "ActMsg": (2.18, 0.65),
          "Atomic": (0.93, 0.67), "MAO": (1.07, 0.62), "AMO": (2.20, 2.41)},
    32:  {"LL/SC": (1.00, 0.62), "ActMsg": (1.48, 0.64),
          "Atomic": (0.94, 0.76), "MAO": (1.08, 0.65), "AMO": (2.29, 2.14)},
    64:  {"LL/SC": (1.00, 1.42), "ActMsg": (0.60, 1.42),
          "Atomic": (0.80, 1.60), "MAO": (0.64, 1.49), "AMO": (4.90, 5.45)},
    128: {"LL/SC": (1.00, 2.40), "ActMsg": (0.91, 2.60),
          "Atomic": (1.21, 2.78), "MAO": (1.00, 2.69), "AMO": (9.28, 9.49)},
    256: {"LL/SC": (1.00, 2.71), "ActMsg": (0.97, 2.92),
          "Atomic": (1.22, 3.25), "MAO": (0.90, 3.13), "AMO": (10.36, 10.05)},
}
for _p, _row in _T4.items():
    for _label, (_ticket, _array) in _row.items():
        _mech = Mechanism.from_name(_label)
        PAPER_TABLE4[(_p, _mech, "ticket")] = _ticket
        PAPER_TABLE4[(_p, _mech, "array")] = _array

#: Figure 1 — one-way network messages for a three-processor increment
#: round: 18 conventional vs 6 AMO.
PAPER_FIG1 = {"conventional": 18, "amo": 6}

#: Headline claims (abstract): speedup ranges.
PAPER_HEADLINE = {
    "barrier_speedup_4": 2.1,
    "barrier_speedup_256": 61.9,
    "lock_speedup_4": 2.0,
    "lock_speedup_256": 10.4,
}

#: The processor counts each paper table evaluates.
TABLE2_CPUS = sorted(PAPER_TABLE2)
TABLE3_CPUS = sorted(PAPER_TABLE3)
TABLE4_CPUS = sorted(_T4)
