"""Experiment definitions regenerating the paper's tables and figures.

Every ``experiment_*`` function returns an :class:`ExperimentResult` with:

* ``table`` — the measured numbers in the paper's row/column layout,
* ``paper`` — the published numbers (where the paper gives any),
* ``checks`` — named shape assertions ("who wins, where the crossover
  falls") with pass/fail verdicts; these are the acceptance criteria of
  DESIGN.md §4 and are also exercised by the integration test suite.

The suite runners (``run_barrier_suite`` etc.) do the simulation work and
are cached by the CLI so table2/fig5 (and table3/fig6, table4/fig7) share
runs, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.config.mechanism import Mechanism
from repro.harness import paper_data
from repro.runner import ParallelRunner, RunSpec
from repro.stats.report import TableFormatter, fit_linear
from repro.workloads.barrier import BarrierResult, run_barrier_workload
from repro.workloads.locks import LockResult
from repro.workloads.qlocks import QLOCK_TYPES, qlock_supported

#: mechanism column order used by the paper's tables
BARRIER_COLUMNS = [Mechanism.ACTMSG, Mechanism.ATOMIC, Mechanism.MAO,
                   Mechanism.AMO]
ALL_MECHANISMS = [Mechanism.LLSC, Mechanism.ACTMSG, Mechanism.ATOMIC,
                  Mechanism.MAO, Mechanism.AMO]

#: branching factors swept for tree barriers ("we try all possible tree
#: branching factors and use the one that delivers the best performance")
DEFAULT_BRANCHINGS = (4, 8, 16, 32)


@dataclass
class Check:
    """One shape assertion derived from the paper's claims."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" — {self.detail}" if self.detail else "")


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    table: TableFormatter
    paper: Optional[TableFormatter] = None
    checks: list[Check] = field(default_factory=list)
    notes: str = ""

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def format(self, markdown: bool = False) -> str:
        render = (lambda t: t.to_markdown()) if markdown else (lambda t: t.to_text())
        parts = [f"== {self.exp_id}: {self.title} ==", "", render(self.table)]
        if self.paper is not None:
            parts += ["", render(self.paper)]
        if self.checks:
            parts += ["", "Shape checks:"] + [f"  {c}" for c in self.checks]
        if self.notes:
            parts += ["", self.notes]
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# suite runners (shared between table and figure experiments)
# ---------------------------------------------------------------------------

def _runner_or_serial(runner: Optional[ParallelRunner]) -> ParallelRunner:
    """Default execution: serial, in-process, uncached — byte-identical
    to calling the workload drivers directly (the determinism-test path).
    Pass an explicit :class:`ParallelRunner` (the CLI does) for
    multi-process fan-out and the on-disk result cache."""
    return runner if runner is not None else ParallelRunner(jobs=1)


def run_barrier_suite(cpu_counts: Sequence[int], episodes: int = 3,
                      runner: Optional[ParallelRunner] = None,
                      metrics: bool = False, metrics_interval: int = 0,
                      shards: int = 1, backend: Optional[str] = None,
                      ) -> dict[tuple[int, Mechanism], BarrierResult]:
    """Flat-barrier measurements for every (P, mechanism)."""
    keys = [(p, mech) for p in cpu_counts for mech in ALL_MECHANISMS]
    specs = [RunSpec.barrier(n_processors=p, mechanism=mech,
                             episodes=episodes, metrics=metrics,
                             metrics_interval=metrics_interval,
                             shards=shards, backend=backend)
             for p, mech in keys]
    results = _runner_or_serial(runner).run(specs)
    return dict(zip(keys, results))


def run_tree_suite(cpu_counts: Sequence[int], episodes: int = 3,
                   branchings: Sequence[int] = DEFAULT_BRANCHINGS,
                   runner: Optional[ParallelRunner] = None,
                   metrics: bool = False, metrics_interval: int = 0,
                   shards: int = 1, backend: Optional[str] = None,
                   ) -> dict[tuple[int, Mechanism], BarrierResult]:
    """Tree-barrier measurements, keeping the best branching factor per
    configuration (the paper's methodology)."""
    keys = [(p, mech, b) for p in cpu_counts for mech in ALL_MECHANISMS
            for b in branchings if b < p]       # needs at least two groups
    specs = [RunSpec.barrier(n_processors=p, mechanism=mech,
                             episodes=episodes, tree_branching=b,
                             metrics=metrics,
                             metrics_interval=metrics_interval,
                             shards=shards, backend=backend)
             for p, mech, b in keys]
    results = _runner_or_serial(runner).run(specs)
    out: dict[tuple[int, Mechanism], BarrierResult] = {}
    for (p, mech, _b), res in zip(keys, results):
        best = out.get((p, mech))
        if best is None or res.cycles_per_episode < best.cycles_per_episode:
            out[(p, mech)] = res
    for p in cpu_counts:
        for mech in ALL_MECHANISMS:
            assert (p, mech) in out, f"no valid branching for P={p}"
    return out


def run_lock_suite(cpu_counts: Sequence[int], acquisitions_per_cpu: int = 3,
                   runner: Optional[ParallelRunner] = None,
                   metrics: bool = False, metrics_interval: int = 0,
                   shards: int = 1, backend: Optional[str] = None,
                   ) -> dict[tuple[int, Mechanism, str], LockResult]:
    """Lock measurements for every (P, mechanism, ticket|array)."""
    keys = [(p, mech, lt) for p in cpu_counts for mech in ALL_MECHANISMS
            for lt in ("ticket", "array")]
    specs = [RunSpec.lock(n_processors=p, mechanism=mech, lock_type=lt,
                          acquisitions_per_cpu=acquisitions_per_cpu,
                          metrics=metrics,
                          metrics_interval=metrics_interval,
                          shards=shards, backend=backend)
             for p, mech, lt in keys]
    results = _runner_or_serial(runner).run(specs)
    return dict(zip(keys, results))


def run_qlock_suite(cpu_counts: Sequence[int], acquisitions_per_cpu: int = 3,
                    runner: Optional[ParallelRunner] = None,
                    metrics: bool = False, metrics_interval: int = 0,
                    shards: int = 1, backend: Optional[str] = None,
                    ) -> dict[tuple[int, Mechanism, str], LockResult]:
    """Queue-lock measurements for every supported (P, mechanism,
    mcs|cna|rw) point.

    Unsupported combinations (rw over MAO — see
    :data:`repro.workloads.qlocks.QLOCK_SUPPORT`) are simply absent from
    the result dict, mirroring the driver's own support matrix.
    """
    keys = [(p, mech, lt) for p in cpu_counts for mech in ALL_MECHANISMS
            for lt in QLOCK_TYPES if qlock_supported(lt, mech)]
    specs = [RunSpec.qlock(n_processors=p, mechanism=mech, lock_type=lt,
                           acquisitions_per_cpu=acquisitions_per_cpu,
                           metrics=metrics,
                           metrics_interval=metrics_interval,
                           shards=shards, backend=backend)
             for p, mech, lt in keys]
    results = _runner_or_serial(runner).run(specs)
    return dict(zip(keys, results))


# ---------------------------------------------------------------------------
# E1 — Table 2
# ---------------------------------------------------------------------------

def experiment_table2(results: dict[tuple[int, Mechanism], BarrierResult],
                      ) -> ExperimentResult:
    """Speedups of non-tree barriers over the LL/SC baseline."""
    cpu_counts = sorted({p for p, _ in results})
    cols = ["CPUs"] + [m.label for m in BARRIER_COLUMNS]
    table = TableFormatter(cols, title="Measured — speedup over LL/SC barrier")
    speedups: dict[tuple[int, Mechanism], float] = {}
    for p in cpu_counts:
        base = results[(p, Mechanism.LLSC)]
        row = [p]
        for mech in BARRIER_COLUMNS:
            s = results[(p, mech)].speedup_over(base)
            speedups[(p, mech)] = s
            row.append(s)
        table.add_row(row)

    paper = TableFormatter(cols, title="Paper Table 2 — speedup over LL/SC")
    for p in cpu_counts:
        pub = paper_data.PAPER_TABLE2.get(p)
        if pub:
            paper.add_row([p] + [pub[m] for m in BARRIER_COLUMNS])

    checks = []
    big = [p for p in cpu_counts if p >= 8]
    checks.append(Check(
        "ordering AMO > MAO > Atomic and AMO > ActMsg for P >= 8",
        all(speedups[(p, Mechanism.AMO)] > speedups[(p, Mechanism.MAO)]
            > speedups[(p, Mechanism.ATOMIC)]
            and speedups[(p, Mechanism.AMO)] > speedups[(p, Mechanism.ACTMSG)]
            for p in big)))
    checks.append(Check(
        "AMO speedup grows monotonically with P",
        all(speedups[(a, Mechanism.AMO)] < speedups[(b, Mechanism.AMO)]
            for a, b in zip(cpu_counts, cpu_counts[1:]))))
    if max(cpu_counts) >= 256:
        s256 = speedups[(256, Mechanism.AMO)]
        checks.append(Check(
            "AMO speedup at 256 CPUs is in the tens (paper: 61.9)",
            30 <= s256 <= 120, f"measured {s256:.1f}"))
        m256 = speedups[(256, Mechanism.MAO)]
        checks.append(Check(
            "MAO speedup at 256 CPUs ~ 15 (paper: 14.7)",
            7 <= m256 <= 30, f"measured {m256:.1f}"))
    checks.append(Check(
        "Atomic stays a modest constant-factor win (< 3x; paper < 1.4x)",
        all(speedups[(p, Mechanism.ATOMIC)] < 3.0 for p in cpu_counts)))
    return ExperimentResult(
        exp_id="E1/table2", title="Performance of different barriers",
        table=table, paper=paper, checks=checks)


# ---------------------------------------------------------------------------
# E2 — Figure 5
# ---------------------------------------------------------------------------

def experiment_fig5(results: dict[tuple[int, Mechanism], BarrierResult],
                    ) -> ExperimentResult:
    """Cycles-per-processor of non-tree barriers (Figure 5)."""
    cpu_counts = sorted({p for p, _ in results})
    cols = ["CPUs"] + [m.label for m in ALL_MECHANISMS]
    table = TableFormatter(cols, float_format="{:.0f}",
                           title="Measured — barrier cycles per processor")
    for p in cpu_counts:
        table.add_row([p] + [results[(p, m)].cycles_per_processor
                             for m in ALL_MECHANISMS])
    checks = []
    llsc = [results[(p, Mechanism.LLSC)].cycles_per_processor
            for p in cpu_counts]
    amo = [results[(p, Mechanism.AMO)].cycles_per_processor
           for p in cpu_counts]
    checks.append(Check(
        "LL/SC per-processor cost never amortizes (largest P >= 0.75x "
        "any smaller size's)",
        llsc[-1] >= 0.75 * max(llsc),
        f"series {[round(x) for x in llsc]}"))
    checks.append(Check(
        "at the largest P, LL/SC per-processor cost >= 8x AMO's",
        llsc[-1] >= 8 * amo[-1],
        f"{llsc[-1]:.0f} vs {amo[-1]:.0f}"))
    checks.append(Check(
        "AMO cycles/processor is the lowest of all mechanisms everywhere",
        all(amo[i] <= min(results[(p, m)].cycles_per_processor
                          for m in ALL_MECHANISMS)
            for i, p in enumerate(cpu_counts))))
    checks.append(Check(
        "AMO cycles/processor does not grow at large P",
        len(amo) < 3 or amo[-1] <= amo[-3] * 1.5,
        f"tail {amo[-3:] if len(amo) >= 3 else amo}"))
    return ExperimentResult(
        exp_id="E2/fig5", title="Cycles-per-processor of different barriers",
        table=table, checks=checks,
        notes="The paper's Figure 5 publishes no numeric axis; the checks "
              "assert its visual claims (LL/SC per-processor time rises, "
              "AMO stays flat / drops slightly).")


# ---------------------------------------------------------------------------
# E3 — Table 3
# ---------------------------------------------------------------------------

def experiment_table3(tree: dict[tuple[int, Mechanism], BarrierResult],
                      flat: dict[tuple[int, Mechanism], BarrierResult],
                      ) -> ExperimentResult:
    """Tree-based barrier speedups over the flat LL/SC baseline."""
    cpu_counts = sorted({p for p, _ in tree})
    labels = [f"{m.label}+tree" for m in ALL_MECHANISMS] + ["AMO"]
    table = TableFormatter(["CPUs"] + labels,
                           title="Measured — tree barrier speedup over "
                                 "flat LL/SC barrier")
    speed: dict[tuple[int, str], float] = {}
    for p in cpu_counts:
        base = flat[(p, Mechanism.LLSC)]
        row = [p]
        for m in ALL_MECHANISMS:
            s = tree[(p, m)].speedup_over(base)
            speed[(p, f"{m.label}+tree")] = s
            row.append(s)
        s_amo = flat[(p, Mechanism.AMO)].speedup_over(base)
        speed[(p, "AMO")] = s_amo
        row.append(s_amo)
        table.add_row(row)

    paper = TableFormatter(["CPUs"] + labels, title="Paper Table 3")
    for p in cpu_counts:
        pub = paper_data.PAPER_TABLE3.get(p)
        if pub:
            paper.add_row([p] + [pub[lbl] for lbl in labels])

    checks = []
    checks.append(Check(
        "trees help every conventional mechanism (speedup > 1)",
        all(speed[(p, f"{m.label}+tree")] > 1.0
            for p in cpu_counts for m in ALL_MECHANISMS
            if m is not Mechanism.AMO)))
    small_mid = [p for p in cpu_counts if p <= 64]
    checks.append(Check(
        "flat AMO beats AMO+tree at every size up to 64 (paper: at every "
        "evaluated size; our tree exploits distributed AMUs and crosses "
        "over near 128 — see EXPERIMENTS.md deviations)",
        all(speed[(p, "AMO")] > speed[(p, "AMO+tree")]
            for p in small_mid)))
    biggest = max(cpu_counts)
    non_amo_trees = [speed[(biggest, f"{m.label}+tree")]
                     for m in ALL_MECHANISMS if m is not Mechanism.AMO]
    checks.append(Check(
        f"flat AMO beats the best non-AMO tree at P={biggest} "
        "(paper: 3x at 256)",
        speed[(biggest, "AMO")] >= max(non_amo_trees),
        f"AMO {speed[(biggest, 'AMO')]:.1f} vs best tree "
        f"{max(non_amo_trees):.1f}"))
    return ExperimentResult(
        exp_id="E3/table3", title="Performance of tree-based barriers",
        table=table, paper=paper, checks=checks)


# ---------------------------------------------------------------------------
# E4 — Figure 6
# ---------------------------------------------------------------------------

def experiment_fig6(tree: dict[tuple[int, Mechanism], BarrierResult],
                    ) -> ExperimentResult:
    """Cycles-per-processor of tree-based barriers (Figure 6)."""
    cpu_counts = sorted({p for p, _ in tree})
    cols = ["CPUs"] + [f"{m.label}+tree" for m in ALL_MECHANISMS]
    table = TableFormatter(cols, float_format="{:.0f}",
                           title="Measured — tree barrier cycles per processor")
    for p in cpu_counts:
        table.add_row([p] + [tree[(p, m)].cycles_per_processor
                             for m in ALL_MECHANISMS])
    checks = []
    for m in ALL_MECHANISMS:
        series = [tree[(p, m)].cycles_per_processor for p in cpu_counts]
        checks.append(Check(
            f"{m.label}+tree cycles/processor decreases from smallest to "
            "largest P (amortized tree overhead)",
            series[-1] < series[0],
            f"{series[0]:.0f} -> {series[-1]:.0f}"))
    return ExperimentResult(
        exp_id="E4/fig6",
        title="Cycles-per-processor of tree-based barriers",
        table=table, checks=checks,
        notes="Paper's visual claim: per-processor time of tree barriers "
              "falls as P grows, because the fixed tree overhead is "
              "amortized and branches proceed in parallel.")


# ---------------------------------------------------------------------------
# E5 — Table 4
# ---------------------------------------------------------------------------

def experiment_table4(results: dict[tuple[int, Mechanism, str], LockResult],
                      ) -> ExperimentResult:
    """Lock speedups over the LL/SC ticket lock."""
    cpu_counts = sorted({p for p, _, _ in results})
    cols = ["CPUs"]
    for m in ALL_MECHANISMS:
        cols += [f"{m.label} ticket", f"{m.label} array"]
    table = TableFormatter(cols, title="Measured — speedup over LL/SC "
                                       "ticket lock")
    speed: dict[tuple[int, Mechanism, str], float] = {}
    for p in cpu_counts:
        base = results[(p, Mechanism.LLSC, "ticket")]
        row = [p]
        for m in ALL_MECHANISMS:
            for lt in ("ticket", "array"):
                s = results[(p, m, lt)].speedup_over(base)
                speed[(p, m, lt)] = s
                row.append(s)
        table.add_row(row)

    paper = TableFormatter(cols, title="Paper Table 4")
    for p in cpu_counts:
        if (p, Mechanism.LLSC, "ticket") in paper_data.PAPER_TABLE4:
            row = [p]
            for m in ALL_MECHANISMS:
                for lt in ("ticket", "array"):
                    row.append(paper_data.PAPER_TABLE4[(p, m, lt)])
            paper.add_row(row)

    checks = []
    small = [p for p in cpu_counts if p <= 16]
    if small and max(cpu_counts) >= 64:
        checks.append(Check(
            "conventional crossover: LL/SC array loses at small P and "
            "wins at the largest P (paper: crossover at 64)",
            all(speed[(p, Mechanism.LLSC, "array")] < 1.0 for p in small)
            and speed[(max(cpu_counts), Mechanism.LLSC, "array")] > 1.0,
            detail=", ".join(
                f"P={p}: {speed[(p, Mechanism.LLSC, 'array')]:.2f}"
                for p in cpu_counts)))
    checks.append(Check(
        "AMO lifts both lock algorithms at every size",
        all(speed[(p, Mechanism.AMO, lt)] > 1.2
            for p in cpu_counts for lt in ("ticket", "array"))))
    checks.append(Check(
        "with AMO, ticket ~ array (within 2x — paper: 'negligible')",
        all(0.5 <= speed[(p, Mechanism.AMO, "ticket")]
            / speed[(p, Mechanism.AMO, "array")] <= 2.0
            for p in cpu_counts)))
    if max(cpu_counts) >= 256:
        s = speed[(256, Mechanism.AMO, "ticket")]
        checks.append(Check(
            "AMO ticket speedup at 256 in the high single digits to ~10 "
            "(paper: 10.4)", 3.5 <= s <= 20, f"measured {s:.1f}"))
    return ExperimentResult(
        exp_id="E5/table4",
        title="Speedups of different locks over the LL/SC ticket lock",
        table=table, paper=paper, checks=checks)


# ---------------------------------------------------------------------------
# E6 — Figure 7
# ---------------------------------------------------------------------------

def experiment_fig7(results: dict[tuple[int, Mechanism, str], LockResult],
                    cpu_counts: Sequence[int] = (128, 256),
                    ) -> ExperimentResult:
    """Network traffic of ticket locks normalized to LL/SC (Figure 7)."""
    cpu_counts = [p for p in cpu_counts
                  if (p, Mechanism.LLSC, "ticket") in results]
    cols = ["CPUs"] + [m.label for m in ALL_MECHANISMS]
    table = TableFormatter(cols,
                           title="Measured — ticket lock network traffic, "
                                 "normalized to LL/SC")
    rel: dict[tuple[int, Mechanism], float] = {}
    for p in cpu_counts:
        base = results[(p, Mechanism.LLSC, "ticket")]
        row = [p]
        for m in ALL_MECHANISMS:
            r = results[(p, m, "ticket")].traffic_relative_to(base)
            rel[(p, m)] = r
            row.append(r)
        table.add_row(row)
    checks = []
    checks.append(Check(
        "AMO has the least traffic of all mechanisms",
        all(rel[(p, Mechanism.AMO)] <= min(rel[(p, m)]
            for m in ALL_MECHANISMS if m is not Mechanism.AMO)
            for p in cpu_counts)))
    # ActMsg out-producing even MAO's uncached round trips requires the
    # retransmission regime — a 128+/256-CPU contention effect (the
    # paper's figure evaluates exactly those sizes).
    big = [p for p in cpu_counts if p >= 128]
    if big:
        checks.append(Check(
            "ActMsg traffic at/near the top (>= 0.9x the max non-AMO; "
            "timeout-driven retransmission)",
            all(rel[(p, Mechanism.ACTMSG)] >= 0.9 * max(rel[(p, m)]
                for m in ALL_MECHANISMS if m is not Mechanism.ACTMSG)
                for p in big)))
    checks.append(Check(
        "AMO traffic is a small fraction of LL/SC's",
        all(rel[(p, Mechanism.AMO)] < 0.5 for p in cpu_counts)))
    return ExperimentResult(
        exp_id="E6/fig7", title="Network traffic for ticket locks",
        table=table, checks=checks,
        notes="Traffic metric: bytes injected into the interconnect per "
              "acquisition (the paper's figure publishes normalized bars "
              "only).")


# ---------------------------------------------------------------------------
# E8 — queue-lock comparison (beyond the paper's Table 4)
# ---------------------------------------------------------------------------

def experiment_qlock(results: dict[tuple[int, Mechanism, str], LockResult],
                     ) -> ExperimentResult:
    """Queue locks (MCS / CNA / rw ticket) across mechanisms.

    The paper evaluates ticket and array locks only; this table extends
    the comparison to the queue locks the repo grows on top of the same
    mechanism layer.  Speedups are normalized to the LL/SC MCS lock —
    the conventional-hardware software queue lock — so the columns
    answer "what does each mechanism (and each queue discipline) buy
    over the textbook baseline".  Unsupported cells (rw over MAO) print
    as ``-``.
    """
    cpu_counts = sorted({p for p, _, _ in results})
    lock_types = [lt for lt in QLOCK_TYPES
                  if any(k[2] == lt for k in results)]
    cols = ["CPUs"]
    for m in ALL_MECHANISMS:
        cols += [f"{m.label} {lt}" for lt in lock_types]
    table = TableFormatter(cols, title="Measured — queue-lock speedup "
                                       "over LL/SC MCS")
    speed: dict[tuple[int, Mechanism, str], float] = {}
    for p in cpu_counts:
        base = results[(p, Mechanism.LLSC, "mcs")]
        row: list = [p]
        for m in ALL_MECHANISMS:
            for lt in lock_types:
                res = results.get((p, m, lt))
                if res is None:
                    row.append("-")
                    continue
                s = res.speedup_over(base)
                speed[(p, m, lt)] = s
                row.append(s)
        table.add_row(row)

    checks = []
    checks.append(Check(
        "AMO lifts the MCS lock over LL/SC MCS at every size",
        all(speed[(p, Mechanism.AMO, "mcs")] > 1.0 for p in cpu_counts),
        detail=", ".join(f"P={p}: {speed[(p, Mechanism.AMO, 'mcs')]:.2f}"
                         for p in cpu_counts)))
    if "cna" in lock_types:
        # CNA's per-acquisition cost is dominated by its batch scan and
        # secondary-queue flush, not by the tail-swap mechanism — so its
        # column barely moves when the mechanism changes.
        checks.append(Check(
            "CNA cost is mechanism-insensitive (batching dominates): all "
            "CNA cells at one size stay within a 2x band",
            all(max(vals) <= 2.0 * min(vals) for vals in (
                [speed[(p, m, "cna")] for m in ALL_MECHANISMS
                 if (p, m, "cna") in speed]
                for p in cpu_counts))))
    checks.append(Check(
        "rw ticket lock is absent over MAO (word discipline straddles "
        "the atomic/coherent domains)",
        all((p, Mechanism.MAO, "rw") not in results for p in cpu_counts)))
    if max(cpu_counts) >= 32:
        big = [p for p in cpu_counts if p >= 32]
        checks.append(Check(
            "at 32+ CPUs the best AMO queue lock beats every LL/SC "
            "queue lock",
            all(max(speed[(p, Mechanism.AMO, lt)]
                    for lt in lock_types
                    if (p, Mechanism.AMO, lt) in speed)
                > max(speed.get((p, Mechanism.LLSC, lt), 0.0)
                      for lt in lock_types)
                for p in big)))
    return ExperimentResult(
        exp_id="E8/qlock",
        title="Queue locks across mechanisms (extension beyond Table 4)",
        table=table, checks=checks,
        notes="Baseline: LL/SC MCS (software queue lock on conventional "
              "hardware).  The paper's Table 4 covers ticket/array locks "
              "only; queue locks are this reproduction's extension.")


# ---------------------------------------------------------------------------
# E7 — Figure 1 message anatomy
# ---------------------------------------------------------------------------

def experiment_fig1() -> ExperimentResult:
    """One-way message counts of a 3-processor increment round.

    The paper's Figure 1 contrasts 18 one-way messages for a conventional
    (processor-centric RMW) barrier round against 6 (request + reply per
    processor) with AMOs.  We place the three processors on three
    distinct nodes (as the figure draws them), let each perform exactly
    one atomic increment of a variable homed at a fourth node, and count
    network messages.
    """
    from repro.config.parameters import SystemConfig
    from repro.core.machine import Machine

    def run(mech: Mechanism) -> int:
        machine = Machine(SystemConfig.table1(8))
        var = machine.alloc("figure1.counter", home_node=3)
        participants = [0, 2, 4]   # one CPU on each of three nodes

        def thread(proc):
            if mech is Mechanism.AMO:
                yield from proc.amo_inc(var.addr)
            else:
                yield from proc.llsc_rmw(var.addr, lambda v: v + 1)
        machine.run_threads(thread, cpus=participants)
        assert machine.peek(var.addr) == 3
        return machine.net.stats.total_messages

    conventional = run(Mechanism.LLSC)
    amo = run(Mechanism.AMO)
    table = TableFormatter(["variant", "one-way messages", "paper"],
                           title="Measured — 3-processor increment round")
    table.add_row(["conventional (LL/SC)", conventional,
                   paper_data.PAPER_FIG1["conventional"]])
    table.add_row(["AMO", amo, paper_data.PAPER_FIG1["amo"]])
    checks = [
        Check("AMO uses exactly 6 one-way messages (paper Figure 1b)",
              amo == 6, f"measured {amo}"),
        Check("conventional round uses ~3x the messages (paper: 18 vs 6)",
              conventional >= 15, f"measured {conventional}"),
    ]
    return ExperimentResult(
        exp_id="E7/fig1", title="Message anatomy of a 3-processor barrier",
        table=table, checks=checks)


# ---------------------------------------------------------------------------
# E9 — AMO latency model fit (§4.2.1)
# ---------------------------------------------------------------------------

def experiment_amo_model(results: dict[tuple[int, Mechanism], BarrierResult],
                         ) -> ExperimentResult:
    """Fit AMO barrier latency to the paper's ``t_o + t_p * P`` model."""
    cpu_counts = sorted({p for p, _ in results})
    xs = cpu_counts
    ys = [results[(p, Mechanism.AMO)].cycles_per_episode for p in xs]
    t_o, t_p, r2 = fit_linear(xs, ys)
    table = TableFormatter(["quantity", "value"], float_format="{:.2f}",
                           title="AMO barrier cost model: t_o + t_p * P")
    table.add_row(["t_o (fixed overhead, cycles)", t_o])
    table.add_row(["t_p (per-processor cycles)", t_p])
    table.add_row(["R^2 of linear fit", r2])
    checks = [
        Check("AMO barrier latency is linear in P (R^2 > 0.95; the "
              "full 4-256 range fits at > 0.99)",
              r2 > 0.95, f"R^2 = {r2:.4f}"),
        Check("per-processor term is small (t_p < 100 cycles)",
              0 < t_p < 100, f"t_p = {t_p:.1f}"),
    ]
    return ExperimentResult(
        exp_id="E9/amo-model",
        title="AMO barrier scales as t_o + t_p * P (paper §4.2.1)",
        table=table, checks=checks)


# ---------------------------------------------------------------------------
# Extension — the paper's stated future work (§4.2.2): do tree-based AMO
# barriers ever win?
# ---------------------------------------------------------------------------

def experiment_amo_tree_crossover(cpu_counts: Sequence[int],
                                  episodes: int = 2,
                                  branchings: Sequence[int] = DEFAULT_BRANCHINGS,
                                  ) -> ExperimentResult:
    """Flat AMO vs best AMO+tree across machine sizes.

    "Determining whether or not tree-based AMO barriers can provide
    extra benefits on very large-scale systems is part of our future
    work."  This experiment produces the flat/tree ratio per size so the
    trend toward (or away from) a crossover is visible.
    """
    table = TableFormatter(
        ["CPUs", "flat AMO", "best AMO+tree", "best branching",
         "tree/flat"],
        title="Measured — flat AMO vs combining-tree AMO barriers")
    ratios = []
    for p in cpu_counts:
        flat = run_barrier_workload(p, Mechanism.AMO, episodes=episodes)
        best = None
        best_b = None
        for b in branchings:
            if b >= p:
                continue
            res = run_barrier_workload(p, Mechanism.AMO, episodes=episodes,
                                       tree_branching=b)
            if best is None or res.cycles_per_episode < best.cycles_per_episode:
                best, best_b = res, b
        assert best is not None
        ratio = best.cycles_per_episode / flat.cycles_per_episode
        ratios.append(ratio)
        table.add_row([p, flat.cycles_per_episode, best.cycles_per_episode,
                       best_b, ratio])
    small = [r for p, r in zip(cpu_counts, ratios) if p <= 64]
    checks = [
        Check("flat AMO wins at small-to-mid sizes (<= 64 CPUs), as the "
              "paper found",
              all(r > 1.0 for r in small),
              ", ".join(f"{r:.2f}" for r in ratios)),
        Check("tree/flat ratio decreases with P (the crossover the paper "
              "speculated about approaches)",
              all(a >= b for a, b in zip(ratios, ratios[1:]))
              or ratios[-1] < ratios[0],
              ", ".join(f"{r:.2f}" for r in ratios)),
    ]
    return ExperimentResult(
        exp_id="EXT/amo-tree", title="AMO combining-tree crossover search",
        table=table, checks=checks,
        notes="The paper leaves 'whether tree-based AMO barriers can "
              "provide extra benefits on very large-scale systems' to "
              "future work.  In this reproduction the crossover appears "
              "near 128 CPUs: our two-level tree spreads AMU work over "
              "the group leaders' home nodes, which pays off once the "
              "single home AMU's serialized op stream exceeds the "
              "tree's doubled fixed overhead.")
