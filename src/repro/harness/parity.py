"""Determinism-parity fingerprints.

A *fingerprint* reduces one workload run to the quantities that must be
bit-exact across kernel implementations and across repeated runs:
simulated cycle counts, per-kind message counts, and the number of
kernel events dispatched.  The golden files under
``tests/integration/golden/`` were captured from the seed (pre-two-tier)
kernel; :mod:`tests.integration.test_determinism_parity` re-runs every
mechanism and asserts equality, which is the gate any event-queue or
protocol data-structure change must pass.

Regenerate goldens (only when the *simulated behaviour* legitimately
changes, never to paper over a kernel bug)::

    PYTHONPATH=src python tools/capture_parity.py
"""

from __future__ import annotations

from typing import Optional

from repro.config.mechanism import Mechanism
from repro.network.stats import TrafficStats
from repro.workloads.barrier import run_barrier_workload
from repro.workloads.locks import run_lock_workload
from repro.workloads.qlocks import (QLOCK_TYPES, qlock_supported,
                                    run_qlock_workload)

#: workload shapes fingerprinted per mechanism (kept small: the goal is
#: protocol coverage, not statistical significance)
BARRIER_EPISODES = 2
LOCK_ACQUISITIONS = 2
QLOCK_ACQUISITIONS = 2


def _traffic_dict(traffic: TrafficStats) -> dict:
    return {
        "messages": {k.value: v for k, v in sorted(
            traffic.messages.items(), key=lambda kv: kv[0].value) if v},
        "local_messages": {k.value: v for k, v in sorted(
            traffic.local_messages.items(), key=lambda kv: kv[0].value) if v},
        "total_messages": traffic.total_messages,
        "total_bytes": traffic.total_bytes,
    }


def barrier_fingerprint(mechanism: Mechanism, n_processors: int,
                        episodes: int = BARRIER_EPISODES,
                        warm_cache=None, shards: int = 1,
                        metrics: bool = False,
                        backend: Optional[str] = None) -> dict:
    """Run one barrier configuration and reduce it to its fingerprint.

    Passing a :class:`repro.workloads.warm.WarmCache` routes the run
    through the snapshot/warm-start path; the fingerprint must come out
    identical either way — that equivalence *is* the parity claim the
    snapshot layer makes, and the golden suite pins it.  ``shards > 1``
    instead partitions the run across worker processes
    (:func:`repro.shard.session.run_sharded`); cycles and messages must
    again come out identical, ``events_dispatched`` excepted (compare
    with ``diff_documents(..., ignore=SHARD_EXEMPT_KEYS)``).
    ``metrics`` runs with the observability layer attached — it is
    timing-neutral by contract, so the fingerprint must still match the
    golden (this is how ``capture_parity.py --verify --metrics`` pins
    that contract, single-process and sharded alike).  ``backend``
    selects the event-kernel backend (:mod:`repro.sim.backends`) — the
    fingerprint must be byte-identical for every backend, which is the
    parity gate ``capture_parity.py --verify --backend accel`` enforces.
    """
    if shards > 1:
        if warm_cache is not None:
            raise ValueError("warm_cache and shards are mutually exclusive")
        from repro.shard.session import run_sharded
        res = run_sharded("barrier", dict(
            n_processors=n_processors, mechanism=mechanism,
            episodes=episodes, warmup_episodes=1, metrics=metrics,
            backend=backend), shards)
    else:
        res = run_barrier_workload(n_processors, mechanism,
                                   episodes=episodes,
                                   warmup_episodes=1, warm_cache=warm_cache,
                                   metrics=metrics, backend=backend)
    return {
        "workload": "barrier",
        "mechanism": mechanism.value,
        "n_processors": n_processors,
        "total_cycles": res.total_cycles,
        "events_dispatched": res.events_dispatched,
        **_traffic_dict(res.traffic),
    }


def lock_fingerprint(mechanism: Mechanism, n_processors: int,
                     acquisitions: int = LOCK_ACQUISITIONS,
                     warm_cache=None, shards: int = 1,
                     metrics: bool = False,
                     backend: Optional[str] = None) -> dict:
    """Run one ticket-lock configuration and reduce it to a fingerprint."""
    if shards > 1:
        if warm_cache is not None:
            raise ValueError("warm_cache and shards are mutually exclusive")
        from repro.shard.session import run_sharded
        res = run_sharded("lock", dict(
            n_processors=n_processors, mechanism=mechanism,
            acquisitions_per_cpu=acquisitions, warmup_per_cpu=1,
            metrics=metrics, backend=backend), shards)
    else:
        res = run_lock_workload(n_processors, mechanism,
                                acquisitions_per_cpu=acquisitions,
                                warmup_per_cpu=1, warm_cache=warm_cache,
                                metrics=metrics, backend=backend)
    return {
        "workload": "lock",
        "mechanism": mechanism.value,
        "n_processors": n_processors,
        "total_cycles": res.total_cycles,
        "events_dispatched": res.events_dispatched,
        **_traffic_dict(res.traffic),
    }


def qlock_fingerprint(mechanism: Mechanism, n_processors: int,
                      lock_type: str,
                      acquisitions: int = QLOCK_ACQUISITIONS,
                      warm_cache=None, shards: int = 1,
                      metrics: bool = False,
                      backend: Optional[str] = None) -> dict:
    """Run one queue-lock configuration and reduce it to a fingerprint.

    ``lock_type`` is one of :data:`repro.workloads.qlocks.QLOCK_TYPES`;
    unsupported (lock, mechanism) cells are the caller's problem —
    :func:`capture_all` consults ``qlock_supported`` so e.g. the rw
    lock is simply absent from the MAO fingerprints rather than refused
    mid-capture.
    """
    if shards > 1:
        if warm_cache is not None:
            raise ValueError("warm_cache and shards are mutually exclusive")
        from repro.shard.session import run_sharded
        res = run_sharded("qlock", dict(
            n_processors=n_processors, mechanism=mechanism,
            lock_type=lock_type, acquisitions_per_cpu=acquisitions,
            warmup_per_cpu=1, metrics=metrics, backend=backend), shards)
    else:
        res = run_qlock_workload(n_processors, mechanism,
                                 lock_type=lock_type,
                                 acquisitions_per_cpu=acquisitions,
                                 warmup_per_cpu=1, warm_cache=warm_cache,
                                 metrics=metrics, backend=backend)
    return {
        "workload": f"qlock_{lock_type}",
        "mechanism": mechanism.value,
        "n_processors": n_processors,
        "total_cycles": res.total_cycles,
        "events_dispatched": res.events_dispatched,
        **_traffic_dict(res.traffic),
    }


def capture_all(n_processors: int = 32,
                mechanisms: Optional[list[Mechanism]] = None,
                warm_cache=None, barrier_only: bool = False,
                shards: int = 1, metrics: bool = False,
                backend: Optional[str] = None) -> dict:
    """Fingerprint every mechanism (barrier + locks) at one machine size.

    With a ``warm_cache`` every run goes through snapshot warm-start;
    the document must be byte-identical to a cold capture (verified by
    ``tools/capture_parity.py --verify --warm``).  ``barrier_only``
    skips the lock fingerprints — on very large machines lock runs
    serialize P acquisitions and dominate capture time.  ``shards > 1``
    runs every fingerprint through sharded execution; the document is
    stamped with the shard count and must match the single-process
    golden up to :data:`SHARD_EXEMPT_KEYS`.  ``metrics`` attaches the
    observability layer to every run (timing-neutral by contract: the
    fingerprints must not move).  ``backend`` runs every fingerprint on
    the named event-kernel backend; the document must stay byte-identical
    to the ``reference`` golden (``events_dispatched`` included).

    Besides barrier and ticket lock, every supported queue lock
    (``qlock_mcs``/``qlock_cna``/``qlock_rw``) is fingerprinted per
    mechanism; unsupported cells (rw over MAO) are simply absent, and
    :func:`diff_documents` derives the workload list from the documents
    so older goldens without queue locks still verify cleanly.
    """
    mechs = mechanisms or list(Mechanism)
    fingerprints = {}
    for m in mechs:
        fp = {"barrier": barrier_fingerprint(m, n_processors,
                                             warm_cache=warm_cache,
                                             shards=shards,
                                             metrics=metrics,
                                             backend=backend)}
        if not barrier_only:
            fp["lock"] = lock_fingerprint(m, n_processors,
                                          warm_cache=warm_cache,
                                          shards=shards, metrics=metrics,
                                          backend=backend)
            for lt in QLOCK_TYPES:
                if qlock_supported(lt, m):
                    fp[f"qlock_{lt}"] = qlock_fingerprint(
                        m, n_processors, lt, warm_cache=warm_cache,
                        shards=shards, metrics=metrics, backend=backend)
        fingerprints[m.value] = fp
    doc = {
        "n_processors": n_processors,
        "barrier_episodes": BARRIER_EPISODES,
        "lock_acquisitions": LOCK_ACQUISITIONS,
        "fingerprints": fingerprints,
    }
    if barrier_only:
        doc["barrier_only"] = True
    else:
        doc["qlock_acquisitions"] = QLOCK_ACQUISITIONS
    if shards > 1:
        doc["shards"] = shards
    return doc


#: fingerprint keys a sharded run may legitimately change:
#: events_dispatched counts *host-side* kernel events — each shard runs
#: its own run_threads main, and a multicast fan-out group split across
#: shards costs one delivery event per shard instead of one total
SHARD_EXEMPT_KEYS = frozenset({"events_dispatched"})


def diff_documents(golden: dict, got: dict,
                   ignore: frozenset = frozenset()) -> list[str]:
    """Human-readable drift report between two parity documents.

    ``ignore`` names per-fingerprint keys excluded from the comparison
    (pass :data:`SHARD_EXEMPT_KEYS` when ``got`` is a sharded capture).
    """
    lines = []
    gf = golden.get("fingerprints", {})
    of = got.get("fingerprints", {})
    # a barrier-only capture legitimately lacks lock fingerprints, and a
    # golden predating a workload legitimately lacks its fingerprints —
    # but a capture missing a workload the golden records *is* drift, so
    # the workload list comes from each side's recorded keys, not a
    # hardcoded tuple
    barrier_only = golden.get("barrier_only") or got.get("barrier_only")
    for mech in sorted(set(gf) | set(of)):
        g_mech, o_mech = gf.get(mech, {}), of.get(mech, {})
        if barrier_only:
            workloads = ("barrier",)
        elif not g_mech or not o_mech:
            workloads = sorted(set(g_mech) | set(o_mech)) or ("barrier",)
        else:
            workloads = sorted(set(g_mech))
        for workload in workloads:
            g = g_mech.get(workload)
            o = o_mech.get(workload)
            if g == o:
                continue
            if g is None or o is None:
                lines.append(f"{mech}/{workload}: present in only one side")
                continue
            for key in sorted((set(g) | set(o)) - ignore):
                if g.get(key) != o.get(key):
                    lines.append(f"{mech}/{workload}.{key}: "
                                 f"golden={g.get(key)!r} got={o.get(key)!r}")
    return lines
