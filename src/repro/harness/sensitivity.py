"""Sensitivity analysis: do the paper's conclusions survive the knobs?

The reproduction calibrates a handful of free parameters (DESIGN.md §9).
A conclusion that only holds at the calibrated point would be an
artifact; this module sweeps each knob across a wide range and reports
how the headline ratio — AMO barrier speedup over LL/SC — responds.

Used by ``benchmarks/bench_sensitivity.py`` and importable for ad-hoc
exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.stats.report import TableFormatter
from repro.workloads.barrier import run_barrier_workload


@dataclass(frozen=True)
class Knob:
    """One calibration parameter and how to apply a value of it."""

    name: str
    values: tuple
    apply: Callable[[SystemConfig, object], SystemConfig]


KNOBS: dict[str, Knob] = {
    "hop_latency": Knob(
        name="network hop latency (cycles)",
        values=(50, 100, 200, 400),
        apply=lambda cfg, v: cfg.replace(
            network=replace(cfg.network, hop_latency_cycles=v))),
    "dram_occupancy": Knob(
        name="same-line DRAM channel occupancy (cycles)",
        values=(10, 20, 40, 80, 128),
        apply=lambda cfg, v: cfg.replace(
            dram=replace(cfg.dram, occupancy_cycles=v))),
    "am_invocation": Knob(
        name="ActMsg handler invocation overhead (cycles)",
        values=(100, 350, 700, 1400),
        apply=lambda cfg, v: cfg.replace(
            actmsg=replace(cfg.actmsg, invocation_overhead_cycles=v))),
    "egress": Knob(
        name="egress injection occupancy (hub cycles)",
        values=(1, 2, 4, 8),
        apply=lambda cfg, v: cfg.replace(
            hub=replace(cfg.hub, egress_occupancy_hub_cycles=v))),
}


def sweep_amo_speedup(knob: Knob, n_processors: int = 32,
                      episodes: int = 2) -> list[tuple[object, float]]:
    """AMO-over-LL/SC barrier speedup at each knob value."""
    points = []
    for value in knob.values:
        cfg = knob.apply(SystemConfig.table1(n_processors), value)
        base = run_barrier_workload(n_processors, Mechanism.LLSC,
                                    episodes=episodes, config=cfg)
        amo = run_barrier_workload(n_processors, Mechanism.AMO,
                                   episodes=episodes, config=cfg)
        points.append((value, amo.speedup_over(base)))
    return points


def sensitivity_report(knob_keys: Sequence[str] = tuple(KNOBS),
                       n_processors: int = 32,
                       episodes: int = 2) -> tuple[TableFormatter, bool]:
    """Sweep the requested knobs; returns (table, robust).

    ``robust`` is True when the AMO speedup stays above 2x at *every*
    swept point of every knob — the paper's qualitative claim surviving
    the calibration uncertainty.
    """
    table = TableFormatter(["knob", "value", "AMO speedup over LL/SC"],
                           title=f"Sensitivity at P={n_processors}")
    robust = True
    for key in knob_keys:
        knob = KNOBS[key]
        for value, speedup in sweep_amo_speedup(knob, n_processors,
                                                episodes):
            table.add_row([knob.name, value, speedup])
            if speedup < 2.0:
                robust = False
    return table, robust
