"""Experiment harness: regenerate every table and figure of the paper.

==========  =========================================================
experiment  contents
==========  =========================================================
table2      speedups of non-tree barriers over LL/SC (Table 2)
fig5        cycles-per-processor of non-tree barriers (Figure 5)
table3      speedups of tree-based barriers (Table 3)
fig6        cycles-per-processor of tree-based barriers (Figure 6)
table4      speedups of ticket/array locks over LL/SC ticket (Table 4)
fig7        normalized network traffic of ticket locks (Figure 7)
fig1        message anatomy of a 3-processor increment round (Figure 1)
amo_model   t_o + t_p*P fit of AMO barrier latency (§4.2.1 claim)
==========  =========================================================

Each experiment returns an :class:`~repro.harness.experiments.ExperimentResult`
holding the measured table, the paper's published numbers for
side-by-side comparison, and shape-check verdicts.  The ``repro-experiments``
CLI (:mod:`repro.harness.cli`) prints them and can regenerate
EXPERIMENTS.md.
"""

from repro.harness.experiments import (
    ExperimentResult,
    run_barrier_suite,
    run_lock_suite,
    run_tree_suite,
    experiment_table2,
    experiment_fig5,
    experiment_table3,
    experiment_fig6,
    experiment_table4,
    experiment_fig7,
    experiment_fig1,
    experiment_amo_model,
)

__all__ = [
    "ExperimentResult",
    "run_barrier_suite",
    "run_lock_suite",
    "run_tree_suite",
    "experiment_table2",
    "experiment_fig5",
    "experiment_table3",
    "experiment_fig6",
    "experiment_table4",
    "experiment_fig7",
    "experiment_fig1",
    "experiment_amo_model",
]
