"""Sharded parallel discrete-event execution of one machine.

One simulated machine is partitioned into contiguous node blocks
(:mod:`repro.shard.plan`); each block runs in its own worker process as
a full deterministic replica of the machine that simulates *only* its
own nodes' CPUs and hubs.  Workers advance in conservative time windows
derived from the minimum cross-shard hop latency and exchange
cross-shard messages at window boundaries (null-message style, see
:mod:`repro.shard.session`).  The result is **cycle- and
message-identical** to the single-process run — the same golden parity
fingerprints, minus ``events_dispatched`` which counts host-side kernel
events and legitimately differs when one fan-out group is split across
shards (see ``docs/performance.md``).
"""

from repro.shard.plan import PartitionPlan, lookahead_window
from repro.shard.session import SHARDABLE_KINDS, run_sharded

__all__ = ["PartitionPlan", "lookahead_window", "run_sharded",
           "SHARDABLE_KINDS"]
