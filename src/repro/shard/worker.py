"""Shard worker entry point: run the whole driver, simulate one block.

Each worker process activates a :class:`~repro.shard.context.ShardContext`
and then runs the *unmodified* workload driver.  The first
:class:`~repro.core.machine.Machine` the driver builds binds to the
context (see :func:`repro.shard.context.maybe_bind`); from then on the
machine's ``run_threads`` is the conservative-window loop and its
network exports cross-shard packets instead of delivering them.

Running the full driver everywhere (SPMD) rather than carving the
driver up is what keeps the replicas deterministic: every shard builds
the identical machine, performs the identical warm-up/measure phase
structure, and computes the identical global scalars — only the set of
CPUs it *simulates* differs.
"""

from __future__ import annotations

import traceback


def worker_main(conn, shard_id: int, plan, window: int, kind: str,
                kwargs: dict) -> None:
    """Process target: execute ``kind``'s driver as shard ``shard_id``."""
    try:
        # registers the builtin kinds on import — needed under "spawn"
        from repro.runner.spec import _KIND_REGISTRY
        from repro.shard.context import ShardContext, activate

        ctx = ShardContext(shard_id, plan, window, conn)
        activate(ctx)
        result = _KIND_REGISTRY[kind](**kwargs)
        if ctx.machine is None:
            raise RuntimeError(
                f"driver {kind!r} finished without building a Machine; "
                "nothing was sharded")
        aux = {"telemetry": ctx.telemetry()}
        tracer = getattr(ctx.machine, "tracer", None)
        if tracer is not None:
            # ship raw spans/instants so the parent can merge one
            # machine-wide timeline and recompute the critical path
            # (per-shard analysis would see only local episode markers)
            aux["spans"] = tracer.spans
            aux["instants"] = tracer.instants
        conn.send(("result", result, aux))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()
