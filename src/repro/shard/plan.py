"""Partitioning one machine's nodes across shards, and the lookahead.

A :class:`PartitionPlan` assigns each *node* (hub + its CPUs) to exactly
one shard as a contiguous block.  Contiguity matters twice over: it
keeps each shard's CPUs dense (the SPMD drivers spawn threads in CPU
order), and on the fat tree it maximizes the *lookahead* — the minimum
latency of any cross-shard message, which bounds how far a shard may
simulate ahead of its peers without risk of a late arrival (the
conservative-window guarantee).

For contiguous blocks the minimum cross-shard hop count is attained by
a boundary-adjacent node pair: any subtree of the fat tree covers a
contiguous node range, so a subtree containing nodes on both sides of a
boundary ``b`` also contains ``b - 1`` and ``b``.  The lookahead scan
is therefore O(shards), not O(nodes²); tests brute-force small machines
to pin this.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.network.topology import shared_topology


class ShardPlanError(ValueError):
    """An invalid shard count or partition for the given machine."""


@dataclass(frozen=True)
class PartitionPlan:
    """Contiguous assignment of ``n_nodes`` nodes to ``n_shards`` shards.

    ``bounds`` has ``n_shards + 1`` entries; shard ``s`` owns nodes
    ``range(bounds[s], bounds[s + 1])``.
    """

    n_nodes: int
    n_shards: int
    bounds: tuple[int, ...]

    @classmethod
    def contiguous(cls, n_nodes: int, n_shards: int) -> "PartitionPlan":
        """Even contiguous split (the first shards absorb any remainder)."""
        if n_shards < 1:
            raise ShardPlanError(f"need at least one shard, got {n_shards}")
        if n_shards > n_nodes:
            raise ShardPlanError(
                f"{n_shards} shards for {n_nodes} nodes: every shard "
                "must own at least one node (hub)")
        base, extra = divmod(n_nodes, n_shards)
        bounds = [0]
        for s in range(n_shards):
            bounds.append(bounds[-1] + base + (1 if s < extra else 0))
        return cls(n_nodes=n_nodes, n_shards=n_shards, bounds=tuple(bounds))

    def validate(self) -> None:
        b = self.bounds
        if (len(b) != self.n_shards + 1 or b[0] != 0
                or b[-1] != self.n_nodes
                or any(b[i] >= b[i + 1] for i in range(self.n_shards))):
            raise ShardPlanError(f"malformed bounds {b!r}")

    def shard_of_node(self, node: int) -> int:
        return bisect_right(self.bounds, node) - 1

    def nodes_of(self, shard: int) -> range:
        return range(self.bounds[shard], self.bounds[shard + 1])

    def cpus_of(self, shard: int, cpus_per_node: int) -> range:
        return range(self.bounds[shard] * cpus_per_node,
                     self.bounds[shard + 1] * cpus_per_node)

    def min_cross_shard_hops(self, radix: int) -> int:
        """Fewest hops any cross-shard message can travel.

        Boundary-adjacent pairs attain the minimum for contiguous
        blocks (see module docstring).
        """
        if self.n_shards == 1:
            return 0
        topo = shared_topology(self.n_nodes, radix=radix)
        return min(topo.hops(b - 1, b) for b in self.bounds[1:-1])


def lookahead_window(plan: PartitionPlan, network_config) -> int:
    """Conservative window width in cycles: the minimum latency of any
    cross-shard message.  A message injected at time ``t`` inside the
    window ``[T, T + W)`` arrives no earlier than ``t + W >= T + W``,
    i.e. never inside the window that produced it — so shards can run a
    whole window without hearing from each other.  Returns 0 for a
    single-shard plan (no cross traffic: windows are unbounded).
    """
    if plan.n_shards == 1:
        return 0
    hops = plan.min_cross_shard_hops(network_config.router_radix)
    window = hops * network_config.hop_latency_cycles
    if window < 1:
        raise ShardPlanError(
            "cross-shard lookahead is zero (hop latency "
            f"{network_config.hop_latency_cycles}); sharded execution "
            "needs a positive minimum cross-shard latency")
    return window
