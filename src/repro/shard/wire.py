"""Cross-shard message encoding: plain data travels, identities don't.

Messages crossing a shard boundary are pickled over a pipe, which is
fine for value-like fields (ints, strings, enums, word dicts,
:class:`~repro.amu.ops.AmoCommand`) but wrong for *identity-bearing*
objects: a :class:`~repro.sim.primitives.Signal` a requester is blocked
on, the ``AckLatch`` counting an invalidation wave's acks, the
``(requester_msg, done)`` pair riding an INTERVENTION.  Pickling those
would produce useless copies — firing a copy resumes nobody.

The codec therefore replaces any non-plain object with a
:class:`RemoteRef` tagged with its *origin shard* and an index into
that shard's export table (the table keeps the object alive, so the
index stays valid for the whole run).  Refs travel opaquely — a remote
shard can copy one into a reply's ``reply_to`` or forward it inside a
payload, exactly as the protocol copies the live objects — and are
resolved back to the original object only when a message carrying them
is decoded *at the origin shard*.  The protocol guarantees that is the
only place they are ever used: replies deliver where their signal
lives, INV_ACKs deliver at the wave's home, interventions' ``done``
fires at the home that created it.  A ref used anywhere else fails
loudly (``AttributeError`` on a ``RemoteRef``), never silently.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.amu.ops import AmoCommand
from repro.network.message import Message

#: types that cross the wire by value, as themselves
_PLAIN = (int, str, bool, float, bytes, type(None))


class RemoteRef:
    """Opaque stand-in for an identity-bearing object on another shard."""

    __slots__ = ("shard", "idx")

    def __init__(self, shard: int, idx: int) -> None:
        self.shard = shard
        self.idx = idx

    def __reduce__(self):
        return (RemoteRef, (self.shard, self.idx))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RemoteRef shard={self.shard} #{self.idx}>"


class ExportTable:
    """Per-shard registry of exported identity-bearing objects.

    Holds a strong reference to every exported object, so ``id()``
    keys stay unique and refs stay resolvable for the whole run.
    """

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self._objects: list[Any] = []
        self._index: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._objects)

    def ref(self, obj: Any) -> RemoteRef:
        idx = self._index.get(id(obj))
        if idx is None:
            idx = len(self._objects)
            self._objects.append(obj)
            self._index[id(obj)] = idx
        return RemoteRef(self.shard, idx)

    def resolve(self, ref: RemoteRef) -> Any:
        if ref.shard != self.shard:
            raise LookupError(
                f"{ref!r} belongs to shard {ref.shard}, not {self.shard}")
        return self._objects[ref.idx]


def encode_value(value: Any, table: ExportTable) -> Any:
    """Recursively replace identity-bearing objects with refs."""
    if isinstance(value, _PLAIN) or isinstance(value, enum.Enum):
        return value
    if isinstance(value, RemoteRef) or isinstance(value, AmoCommand):
        # already a ref (forwarded), or pure value data: travels as-is
        return value
    if isinstance(value, Message):
        return encode_message(value, table)
    if isinstance(value, tuple):
        return tuple(encode_value(v, table) for v in value)
    if isinstance(value, list):
        return [encode_value(v, table) for v in value]
    if isinstance(value, dict):
        return {k: encode_value(v, table) for k, v in value.items()}
    return table.ref(value)


def decode_value(value: Any, table: ExportTable) -> Any:
    """Resolve refs that originated *here*; foreign refs stay opaque."""
    if isinstance(value, _PLAIN) or isinstance(value, enum.Enum):
        return value
    if isinstance(value, RemoteRef):
        return table.resolve(value) if value.shard == table.shard else value
    if isinstance(value, AmoCommand):
        return value
    if isinstance(value, Message):
        return decode_message(value, table)
    if isinstance(value, tuple):
        return tuple(decode_value(v, table) for v in value)
    if isinstance(value, list):
        return [decode_value(v, table) for v in value]
    if isinstance(value, dict):
        return {k: decode_value(v, table) for k, v in value.items()}
    return value


def encode_message(msg: Message, table: ExportTable) -> Message:
    """A shallow copy of ``msg`` whose live-object fields became refs.

    ``msg_id`` is preserved (it is a host-side debug id; re-numbering
    would burn the global counter differently per shard).
    """
    out = Message.__new__(Message)
    out.kind = msg.kind
    out.src_node = msg.src_node
    out.dst_node = msg.dst_node
    out.addr = msg.addr
    out.value = encode_value(msg.value, table)
    out.payload = encode_value(msg.payload, table)
    out.reply_to = None if msg.reply_to is None \
        else encode_value(msg.reply_to, table)
    out.requester = msg.requester
    out.dst_cpu = msg.dst_cpu
    out.is_retransmit = msg.is_retransmit
    out.size_bytes = msg.size_bytes
    out.msg_id = msg.msg_id
    return out


def decode_message(msg: Message, table: ExportTable) -> Message:
    """In-place resolution of this shard's refs (the copy is private)."""
    msg.value = decode_value(msg.value, table)
    msg.payload = decode_value(msg.payload, table)
    if msg.reply_to is not None:
        msg.reply_to = decode_value(msg.reply_to, table)
    return msg
