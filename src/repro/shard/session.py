"""The parent-side shard session: spawn, route, synchronize, merge.

:func:`run_sharded` runs one workload driver (``barrier`` or ``lock``)
partitioned across ``shards`` worker processes.  Every worker executes
the *same* driver (SPMD) on a full deterministic replica of the machine
but simulates only its own contiguous node block; the parent is a pure
star router that never simulates anything:

1. gather one SYNC message per worker — its next local event time, its
   buffered cross-shard egress, and whether its thread group finished;
2. route each egress entry to the shard owning its destination node;
3. compute the next global window start ``T`` = min(next event times,
   in-flight arrival times) and broadcast RUN(T, deliveries) — each
   worker then simulates ``[T, T + W)`` without further coordination;
4. when no events remain anywhere: broadcast STOP with the global
   maximum clock/completion time (so every replica's next SPMD phase
   starts from single-process-identical state), or DEADLOCK if thread
   groups are still blocked.

One round trip per window, messages exchanged only at boundaries — the
classic conservative null-message discipline, with the lookahead ``W``
coming from the minimum cross-shard hop latency
(:func:`repro.shard.plan.lookahead_window`).

Workers' results are merged by summing per-shard traffic counters and
event counts (each packet is recorded exactly once, on its sender's
shard) and concatenating latency samples in shard order; global scalars
(cycles, episode counts) are asserted identical across shards — any
mismatch means the determinism contract broke and is raised loudly.
"""

from __future__ import annotations

import multiprocessing
from collections import Counter
from dataclasses import replace
from typing import Any, Optional

from repro.config.parameters import SystemConfig
from repro.network.stats import TrafficStats
from repro.shard.context import DEADLOCK, RUN, STOP, SYNC
from repro.shard.plan import PartitionPlan, ShardPlanError, lookahead_window
from repro.shard.worker import worker_main
from repro.sim.kernel import SimulationError
from repro.stats.collector import LatencyStats

#: run kinds whose drivers are SPMD-replicable (pure thread-spawning
#: drivers with no cross-CPU host-side state besides the merged stats)
SHARDABLE_KINDS = frozenset({"barrier", "lock"})

#: driver kwargs that cannot cross a process boundary or require
#: single-process execution (observers hold per-run host state; custom
#: configs may enable contention modelling mid-flight)
_UNSHARDABLE_KWARGS = ("metrics", "metrics_interval", "config",
                       "warm_cache", "max_events")


class ShardSessionError(SimulationError):
    """A sharded run broke its protocol or determinism contract."""


def _mp_context(name: Optional[str] = None):
    if name is not None:
        return multiprocessing.get_context(name)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_sharded(kind: str, kwargs: dict[str, Any], shards: int,
                mp_context: Optional[str] = None) -> Any:
    """Execute one driver run partitioned across ``shards`` processes.

    Returns the same result object the single-process driver returns,
    with cycle- and message-identical contents (``events_dispatched``
    excepted — it counts host-side kernel events, which legitimately
    differ when a multicast fan-out group is split across shards).
    """
    if kind not in SHARDABLE_KINDS:
        raise ShardSessionError(
            f"run kind {kind!r} is not shardable (supported: "
            f"{sorted(SHARDABLE_KINDS)})")
    for bad in _UNSHARDABLE_KWARGS:
        if kwargs.get(bad):
            raise ShardSessionError(
                f"driver option {bad!r} is not supported under sharded "
                "execution; run single-process")
    cfg = SystemConfig.table1(kwargs["n_processors"])
    try:
        plan = PartitionPlan.contiguous(cfg.n_nodes, shards)
        plan.validate()
        window = lookahead_window(plan, cfg.network)
    except ShardPlanError as exc:
        raise ShardSessionError(str(exc)) from exc

    ctx = _mp_context(mp_context)
    conns = []
    procs = []
    try:
        for s in range(shards):
            parent_end, child_end = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(child_end, s, plan, window, kind, kwargs),
                name=f"repro-shard-{s}", daemon=True)
            proc.start()
            child_end.close()
            conns.append(parent_end)
            procs.append(proc)
        results = _route(conns, plan)
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - cleanup path
                proc.terminate()
                proc.join()
    return _merge_results(kind, results)


# ----------------------------------------------------------------------
# the star router
# ----------------------------------------------------------------------
def _route(conns: list, plan: PartitionPlan) -> list:
    """Relay window-boundary rounds until every worker returns a result."""
    shards = len(conns)
    results: list = [None] * shards
    while True:
        msgs = [conn.recv() for conn in conns]
        tags = {m[0] for m in msgs}
        if "error" in tags:
            failed = [(s, m[1]) for s, m in enumerate(msgs)
                      if m[0] == "error"]
            detail = "\n".join(f"--- shard {s} ---\n{tb}"
                               for s, tb in failed)
            raise ShardSessionError(
                f"{len(failed)} shard worker(s) failed:\n{detail}")
        if tags == {"result"}:
            for s, m in enumerate(msgs):
                results[s] = m[1]
            return results
        if tags != {SYNC}:
            raise ShardSessionError(
                f"shards desynchronized: mixed round tags {sorted(tags)}")
        phases = {m[1] for m in msgs}
        if len(phases) > 1:
            raise ShardSessionError(
                f"shards desynchronized: run_threads phases {sorted(phases)}")

        # gather: next event times, in-flight arrivals, liveness
        next_t: Optional[int] = None
        all_done = True
        max_now = 0
        max_completion: Optional[int] = None
        deliveries: list[list] = [[] for _ in range(shards)]
        for _, _, local_next, egress, done, completion, now in msgs:
            if local_next is not None and (next_t is None
                                           or local_next < next_t):
                next_t = local_next
            all_done = all_done and done
            if now > max_now:
                max_now = now
            if completion is not None and (max_completion is None
                                           or completion > max_completion):
                max_completion = completion
            for entry in egress:
                # entry = (tag, arrival, src, seq, wire_msg)
                arrival = entry[1]
                if next_t is None or arrival < next_t:
                    next_t = arrival
                deliveries[plan.shard_of_node(entry[4].dst_node)]\
                    .append(entry)

        if next_t is None:
            if all_done:
                for conn in conns:
                    conn.send((STOP, max_now, max_completion))
            else:
                for conn in conns:
                    conn.send((DEADLOCK, sum(1 for m in msgs if not m[4])))
        else:
            for s, conn in enumerate(conns):
                conn.send((RUN, next_t, deliveries[s]))


# ----------------------------------------------------------------------
# result merging
# ----------------------------------------------------------------------
def _merge_traffic(parts: list[TrafficStats]) -> TrafficStats:
    out = TrafficStats()
    for part in parts:
        out.messages.update(part.messages)
        out.bytes.update(part.bytes)
        out.hop_bytes.update(part.hop_bytes)
        out.local_messages.update(part.local_messages)
        out.retransmits += part.retransmits
    # drop zero-count keys Counter.update may leave behind so the merged
    # counters compare equal to a single-process run's
    for counter in (out.messages, out.bytes, out.hop_bytes,
                    out.local_messages):
        for key in [k for k, v in counter.items() if not v]:
            del counter[key]
    return out


def _merge_results(kind: str, results: list) -> Any:
    base = results[0]
    if len(results) == 1:
        return base
    cycles = {r.total_cycles for r in results}
    if len(cycles) > 1:
        raise ShardSessionError(
            "shards disagree on total_cycles "
            f"({sorted(cycles)}): determinism contract violated")
    traffic = _merge_traffic([r.traffic for r in results])
    events = sum(r.events_dispatched for r in results)
    if kind == "barrier":
        return replace(base, traffic=traffic, events_dispatched=events)
    latency = LatencyStats(name=base.acquire_latency.name)
    for r in results:
        latency.extend(r.acquire_latency._samples)
    acquisitions = sum(
        len(r.acquire_latency._samples) for r in results)
    if acquisitions != base.acquisitions:
        raise ShardSessionError(
            f"sharded acquisition count {acquisitions} != expected "
            f"{base.acquisitions}: some CPU ran on no shard or twice")
    return replace(base, traffic=traffic, events_dispatched=events,
                   acquire_latency=latency)
