"""The parent-side shard session: spawn, route, synchronize, merge.

:func:`run_sharded` runs one workload driver (``barrier`` or ``lock``)
partitioned across ``shards`` worker processes.  Every worker executes
the *same* driver (SPMD) on a full deterministic replica of the machine
but simulates only its own contiguous node block; the parent is a pure
star router that never simulates anything:

1. gather one SYNC message per worker — its next local event time, its
   buffered cross-shard egress, and whether its thread group finished;
2. route each egress entry to the shard owning its destination node;
3. compute the next global window start ``T`` = min(next event times,
   in-flight arrival times) and broadcast RUN(T, deliveries) — each
   worker then simulates ``[T, T + W)`` without further coordination;
4. when no events remain anywhere: broadcast STOP with the global
   maximum clock/completion time (so every replica's next SPMD phase
   starts from single-process-identical state), or DEADLOCK if thread
   groups are still blocked.

One round trip per window, messages exchanged only at boundaries — the
classic conservative null-message discipline, with the lookahead ``W``
coming from the minimum cross-shard hop latency
(:func:`repro.shard.plan.lookahead_window`).

Workers' results are merged by summing per-shard traffic counters and
event counts (each packet is recorded exactly once, on its sender's
shard) and concatenating latency samples in shard order; global scalars
(cycles, episode counts) are asserted identical across shards — any
mismatch means the determinism contract broke and is raised loudly.

Observability composes with sharding: when the driver runs with
``metrics`` enabled, every worker attaches its own
:class:`~repro.obs.machine.MachineMetrics` to its machine replica —
remote CPUs and hubs never execute there, so their counters stay zero
and the per-shard snapshots sum to the single-process totals
(``kernel.events_dispatched`` excepted; see
:data:`repro.obs.snapshot.SHARD_EXEMPT_COUNTERS`).  The parent merges
the snapshots via :func:`repro.obs.snapshot.merge_snapshots`, rebuilds
one machine-wide trace timeline from the shipped per-shard spans
(:meth:`repro.trace.recorder.TraceRecorder.merged`, one lane per shard
plus a parent lane of sync-round windows) and recomputes the
critical-path attribution over it — per-shard analysis would only see
local episode markers.  The parent additionally records a native
``shard.*`` telemetry family (sync rounds, window sizes, blocked wall
time, wire volumes and codec wall time) in the same registry pipeline.
"""

from __future__ import annotations

import multiprocessing
from collections import Counter
from dataclasses import replace
from typing import Any, Optional

from repro.config.parameters import SystemConfig
from repro.network.stats import TrafficStats
from repro.shard.context import DEADLOCK, RUN, STOP, SYNC
from repro.shard.plan import PartitionPlan, ShardPlanError, lookahead_window
from repro.shard.worker import worker_main
from repro.sim.kernel import SimulationError
from repro.stats.collector import LatencyStats

#: run kinds whose drivers are SPMD-replicable (pure thread-spawning
#: drivers with no cross-CPU host-side state besides the merged stats;
#: the CNA lock keeps its cross-holder secondary-queue state in
#: simulated memory for exactly this reason)
SHARDABLE_KINDS = frozenset({"barrier", "lock", "qlock"})

#: driver kwargs that cannot cross a process boundary or require
#: single-process execution: custom configs may enable contention
#: modelling mid-flight, warm caches hold machine snapshots bound to
#: this process, and max_events is a host-side kernel budget that has
#: no global meaning across per-shard kernels
_UNSHARDABLE_KWARGS = ("config", "warm_cache", "max_events")


class ShardSessionError(SimulationError):
    """A sharded run broke its protocol or determinism contract."""


def _mp_context(name: Optional[str] = None):
    if name is not None:
        return multiprocessing.get_context(name)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_sharded(kind: str, kwargs: dict[str, Any], shards: int,
                mp_context: Optional[str] = None,
                telemetry: Optional[dict] = None) -> Any:
    """Execute one driver run partitioned across ``shards`` processes.

    Returns the same result object the single-process driver returns,
    with cycle- and message-identical contents (``events_dispatched``
    excepted — it counts host-side kernel events, which legitimately
    differ when a multicast fan-out group is split across shards).

    ``metrics``/``metrics_interval`` driver kwargs compose: the merged
    result carries one machine-wide metrics snapshot, counter-equal to
    a single-process run modulo
    :data:`repro.obs.snapshot.SHARD_EXEMPT_COUNTERS`, plus the native
    ``shard.*`` telemetry family and a recomputed critical path.

    ``telemetry``, when a dict is passed, is filled in place with the
    shard-runtime telemetry regardless of the metrics setting:
    ``"snapshot"`` (a registry snapshot of the ``shard.*`` family),
    ``"trace"`` (the merged :class:`TraceRecorder`, or None when the
    run recorded no spans) and ``"windows"`` (the ``[start, end)``
    sync-round windows in cycles).  This is how
    ``tools/bench_scale.py --shards`` reports sync behaviour without
    forcing metrics into the measured run.
    """
    if kind not in SHARDABLE_KINDS:
        raise ShardSessionError(
            f"run kind {kind!r} is not shardable (supported: "
            f"{sorted(SHARDABLE_KINDS)})")
    for bad in _UNSHARDABLE_KWARGS:
        # presence is what matters: falsy values (max_events=0, an
        # empty config) would still change driver behaviour
        if kwargs.get(bad) is not None:
            raise ShardSessionError(
                f"driver option {bad!r} is not supported under sharded "
                "execution; run single-process")
    cfg = SystemConfig.table1(kwargs["n_processors"])
    try:
        plan = PartitionPlan.contiguous(cfg.n_nodes, shards)
        plan.validate()
        window = lookahead_window(plan, cfg.network)
    except ShardPlanError as exc:
        raise ShardSessionError(str(exc)) from exc

    ctx = _mp_context(mp_context)
    conns = []
    procs = []
    try:
        for s in range(shards):
            parent_end, child_end = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(child_end, s, plan, window, kind, kwargs),
                name=f"repro-shard-{s}", daemon=True)
            proc.start()
            child_end.close()
            conns.append(parent_end)
            procs.append(proc)
        results, auxes, router = _route(conns, plan)
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - cleanup path
                proc.terminate()
                proc.join()
    return _merge_results(kind, results, auxes, router, cfg, window,
                          telemetry)


# ----------------------------------------------------------------------
# the star router
# ----------------------------------------------------------------------
def _route(conns: list, plan: PartitionPlan) -> tuple[list, list, dict]:
    """Relay window-boundary rounds until every worker returns a result.

    Returns ``(results, auxes, router)`` where ``auxes`` holds each
    worker's telemetry/trace payload and ``router`` the parent-side
    round accounting: ``rounds`` (sync round-trips served) and
    ``windows`` (``[start, end)`` pairs in cycles — a window ends where
    the next one starts, or at the phase's global drain point).
    """
    shards = len(conns)
    results: list = [None] * shards
    auxes: list = [None] * shards
    router: dict[str, Any] = {"rounds": 0, "windows": []}
    windows = router["windows"]
    while True:
        msgs = [conn.recv() for conn in conns]
        tags = {m[0] for m in msgs}
        if "error" in tags:
            failed = [(s, m[1]) for s, m in enumerate(msgs)
                      if m[0] == "error"]
            detail = "\n".join(f"--- shard {s} ---\n{tb}"
                               for s, tb in failed)
            raise ShardSessionError(
                f"{len(failed)} shard worker(s) failed:\n{detail}")
        if tags == {"result"}:
            for s, m in enumerate(msgs):
                results[s] = m[1]
                auxes[s] = m[2]
            return results, auxes, router
        if tags != {SYNC}:
            raise ShardSessionError(
                f"shards desynchronized: mixed round tags {sorted(tags)}")
        phases = {m[1] for m in msgs}
        if len(phases) > 1:
            raise ShardSessionError(
                f"shards desynchronized: run_threads phases {sorted(phases)}")

        # gather: next event times, in-flight arrivals, liveness
        next_t: Optional[int] = None
        all_done = True
        max_now = 0
        max_completion: Optional[int] = None
        deliveries: list[list] = [[] for _ in range(shards)]
        for _, _, local_next, egress, done, completion, now in msgs:
            if local_next is not None and (next_t is None
                                           or local_next < next_t):
                next_t = local_next
            all_done = all_done and done
            if now > max_now:
                max_now = now
            if completion is not None and (max_completion is None
                                           or completion > max_completion):
                max_completion = completion
            for entry in egress:
                # entry = (tag, arrival, src, seq, wire_msg)
                arrival = entry[1]
                if next_t is None or arrival < next_t:
                    next_t = arrival
                deliveries[plan.shard_of_node(entry[4].dst_node)]\
                    .append(entry)

        router["rounds"] += 1
        if next_t is None:
            if windows and windows[-1][1] is None:
                windows[-1][1] = max_now
            if all_done:
                for conn in conns:
                    conn.send((STOP, max_now, max_completion))
            else:
                for conn in conns:
                    conn.send((DEADLOCK, sum(1 for m in msgs if not m[4])))
        else:
            if windows and windows[-1][1] is None:
                windows[-1][1] = next_t
            windows.append([next_t, None])
            for s, conn in enumerate(conns):
                conn.send((RUN, next_t, deliveries[s]))


# ----------------------------------------------------------------------
# result merging
# ----------------------------------------------------------------------
def _merge_traffic(parts: list[TrafficStats]) -> TrafficStats:
    out = TrafficStats()
    for part in parts:
        out.messages.update(part.messages)
        out.bytes.update(part.bytes)
        out.hop_bytes.update(part.hop_bytes)
        out.local_messages.update(part.local_messages)
        out.retransmits += part.retransmits
    # drop zero-count keys Counter.update may leave behind so the merged
    # counters compare equal to a single-process run's
    for counter in (out.messages, out.bytes, out.hop_bytes,
                    out.local_messages):
        for key in [k for k, v in counter.items() if not v]:
            del counter[key]
    return out


#: per-shard telemetry keys accumulated by :class:`ShardContext`
_TELEMETRY_KEYS = ("blocked_seconds", "encode_seconds", "decode_seconds",
                   "egress_messages", "egress_bytes",
                   "ingress_messages", "ingress_bytes")


def _telemetry_registry(router: dict, auxes: list, window: int):
    """The parent's native ``shard.*`` registry: sync rounds, window
    sizes, and per-shard + aggregate wire/blocked accounting."""
    from repro.obs.registry import MetricsRegistry

    reg = MetricsRegistry()
    reg.counter("shard.sync_rounds").inc(router["rounds"])
    win_h = reg.histogram("shard.window_cycles")
    for start, end in router["windows"]:
        win_h.observe(end - start)
    reg.gauge("shard.shards").set(len(auxes))
    reg.gauge("shard.lookahead_cycles").set(window)
    totals = dict.fromkeys(_TELEMETRY_KEYS, 0)
    for s, aux in enumerate(auxes):
        tel = aux["telemetry"]
        for key in _TELEMETRY_KEYS:
            totals[key] += tel[key]
            reg.counter(f"shard.s{s}.{key}").inc(tel[key])
    for key, value in totals.items():
        reg.counter(f"shard.{key}").inc(value)
    return reg


def telemetry_summary(snapshot: dict) -> dict:
    """Compact, JSON-able digest of a ``shard.*`` telemetry snapshot —
    what ``tools/bench_scale.py --shards`` records per sharded cell."""
    counters = snapshot.get("counters", {})
    win = snapshot.get("histograms", {}).get("shard.window_cycles",
                                             {"count": 0})
    n_windows = win.get("count", 0)
    shards = int(snapshot.get("gauges", {}).get("shard.shards", 0))
    return {
        "sync_rounds": counters.get("shard.sync_rounds", 0),
        "windows": n_windows,
        "window_cycles": {
            "min": win.get("min", 0),
            "mean": (win.get("sum", 0) / n_windows) if n_windows else 0,
            "max": win.get("max", 0),
        },
        "egress_messages": counters.get("shard.egress_messages", 0),
        "egress_bytes": counters.get("shard.egress_bytes", 0),
        "encode_seconds": counters.get("shard.encode_seconds", 0.0),
        "decode_seconds": counters.get("shard.decode_seconds", 0.0),
        "blocked_seconds": counters.get("shard.blocked_seconds", 0.0),
        "blocked_seconds_per_shard": [
            counters.get(f"shard.s{s}.blocked_seconds", 0.0)
            for s in range(shards)],
    }


def _merged_trace(auxes: list, router: dict):
    """One timeline from the shards' shipped spans, or None when the
    run traced nothing.  Lane 0 is the parent's sync-round windows."""
    if not any(aux.get("spans") or aux.get("instants") for aux in auxes):
        return None
    from repro.trace.recorder import Span, TraceRecorder

    sync_spans = [Span(track="sync", name="window", start=start, end=end,
                       args={"round": i})
                  for i, (start, end) in enumerate(router["windows"])]
    parts = [("parent", sync_spans, [])]
    for s, aux in enumerate(auxes):
        parts.append((f"shard{s}", aux.get("spans", []),
                      aux.get("instants", [])))
    return TraceRecorder.merged(parts)


def _merge_metrics(results: list, reg, cfg: SystemConfig, trace) -> dict:
    """One machine-wide snapshot from the per-shard snapshots.

    Counter/gauge/histogram merge is
    :func:`repro.obs.snapshot.merge_snapshots`; each shard's
    ``critical_path`` and ``series`` sections are dropped first — the
    critical path needs episode markers from *every* CPU and is
    recomputed here over the merged trace with the config's own latency
    model, while sampler series stay per-shard (each shard's sampler
    watches only its local queues; see ``docs/observability.md``).  The
    parent's ``shard.*`` telemetry registry is folded into the same
    snapshot so it exports through the one pipeline.
    """
    from repro.obs.critical_path import CriticalPathAnalyzer
    from repro.obs.snapshot import merge_snapshots

    snaps = []
    for r in results:
        if r.metrics is None:
            raise ShardSessionError(
                "shards disagree on metrics capture: some snapshots "
                "missing")
        snaps.append({k: v for k, v in r.metrics.items()
                      if k not in ("critical_path", "series")})
    merged = merge_snapshots(snaps)
    if trace is not None:
        analyzer = CriticalPathAnalyzer.from_config(cfg)
        merged["critical_path"] = analyzer.summarize(
            analyzer.analyze(trace))
    tel = reg.snapshot()
    merged["counters"].update(tel["counters"])
    merged["gauges"].update(tel["gauges"])
    merged["histograms"].update(tel["histograms"])
    return merged


def _merge_results(kind: str, results: list, auxes: list, router: dict,
                   cfg: SystemConfig, window: int,
                   telemetry: Optional[dict]) -> Any:
    reg = _telemetry_registry(router, auxes, window)
    trace = _merged_trace(auxes, router)
    if telemetry is not None:
        telemetry["snapshot"] = reg.snapshot()
        telemetry["trace"] = trace
        telemetry["windows"] = [tuple(w) for w in router["windows"]]
    base = results[0]
    if len(results) == 1:
        # degenerate plan: the worker replayed the exact single-process
        # schedule; its result (metrics included) is already global
        return base
    cycles = {r.total_cycles for r in results}
    if len(cycles) > 1:
        raise ShardSessionError(
            "shards disagree on total_cycles "
            f"({sorted(cycles)}): determinism contract violated")
    traffic = _merge_traffic([r.traffic for r in results])
    events = sum(r.events_dispatched for r in results)
    fields: dict[str, Any] = dict(traffic=traffic,
                                  events_dispatched=events)
    if getattr(base, "metrics", None) is not None:
        fields["metrics"] = _merge_metrics(results, reg, cfg, trace)
    if kind == "barrier":
        return replace(base, **fields)
    latency = LatencyStats(name=base.acquire_latency.name)
    for r in results:
        latency.extend(r.acquire_latency._samples)
    acquisitions = sum(
        len(r.acquire_latency._samples) for r in results)
    if acquisitions != base.acquisitions:
        raise ShardSessionError(
            f"sharded acquisition count {acquisitions} != expected "
            f"{base.acquisitions}: some CPU ran on no shard or twice")
    return replace(base, acquire_latency=latency, **fields)
