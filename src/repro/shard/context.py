"""Per-worker shard state: ownership, egress buffering, window loop.

A :class:`ShardContext` binds to the worker's :class:`Machine` replica
(every worker builds the *full* machine deterministically — SPMD — but
simulates only its own nodes).  It intercepts the network fast path for
messages whose destination node lives on another shard
(:meth:`export_unicast` / :meth:`export_group_member`), and replaces
:meth:`Machine.run_threads` with the conservative-window loop
(:meth:`run_threads`): run the local kernel up to the window horizon,
hand buffered egress to the parent router, receive the arrivals routed
here, advance to the next globally-agreed window.

Egress entries carry their arrival time, injecting source node and the
delivery-phase key material (``seq`` / group id), so the receiving
shard replays each arrival through
:meth:`~repro.sim.kernel.Simulator._push_delivery` with *exactly* the
key the single-process kernel would have used — that, plus the keys
depending only on sender-local history, is the whole determinism
argument (see ``docs/performance.md``).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.shard.plan import PartitionPlan
from repro.shard.wire import (ExportTable, decode_message, encode_message)
from repro.sim.kernel import SimulationError
from repro.sim.primitives import all_of

#: worker -> parent message tags
SYNC = "sync"
#: parent -> worker message tags
RUN = "run"
STOP = "stop"
DEADLOCK = "deadlock"

#: context the next-constructed Machine in this process binds to
_ACTIVE: Optional["ShardContext"] = None


def activate(ctx: "ShardContext") -> None:
    global _ACTIVE
    _ACTIVE = ctx


def maybe_bind(machine) -> None:
    """Called from ``Machine.__init__``: adopt the machine being built
    by the active shard worker (no-op in ordinary processes)."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE.machine is None:
        ctx, _ACTIVE = _ACTIVE, None
        ctx.bind(machine)


class ShardContext:
    """One worker's view of a partitioned run."""

    def __init__(self, shard_id: int, plan: PartitionPlan, window: int,
                 conn) -> None:
        self.shard_id = shard_id
        self.plan = plan
        #: conservative window width (cycles); 0 = single shard, no cap
        self.window = window
        self.conn = conn
        self.exports = ExportTable(shard_id)
        self.machine = None
        self._lo = plan.bounds[shard_id]
        self._hi = plan.bounds[shard_id + 1]
        self._cpu_lo = self._cpu_hi = 0
        #: buffered cross-shard sends for the current window, in
        #: injection order: ("u", arrival, src, seq, msg) unicasts and
        #: ("g", arrival, src, gid, msg) multicast group members
        self._egress: list[tuple] = []
        #: run_threads invocations so far (lockstep check across shards)
        self.phase = 0
        # shard-runtime telemetry, shipped to the parent with the result
        # (wall-clock seconds are host-side measurements; message/byte
        # volumes count *simulated* packets and their simulated sizes,
        # so they stay deterministic across hosts)
        self.sync_rounds = 0
        self.blocked_seconds = 0.0
        self.encode_seconds = 0.0
        self.decode_seconds = 0.0
        self.egress_messages = 0
        self.egress_bytes = 0
        self.ingress_messages = 0
        self.ingress_bytes = 0

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------
    def owns_node(self, node: int) -> bool:
        return self._lo <= node < self._hi

    def owns_cpu(self, cpu_id: int) -> bool:
        return self._cpu_lo <= cpu_id < self._cpu_hi

    def bind(self, machine) -> None:
        if machine.config.network.model_link_contention or \
                machine.config.network.model_router_contention:
            raise SimulationError(
                "sharded execution supports only the latency-only "
                "network fast path (contention modelling is per-packet "
                "and order-dependent across shards)")
        self.machine = machine
        cpn = machine.config.cpus_per_node
        self._cpu_lo = self._lo * cpn
        self._cpu_hi = self._hi * cpn
        machine.shard = self
        machine.net.shard = self

    # ------------------------------------------------------------------
    # egress (called from Network.send / send_multicast fast paths)
    # ------------------------------------------------------------------
    def export_unicast(self, arrival: int, src: int, seq: int, msg) -> None:
        self.egress_messages += 1
        self.egress_bytes += msg.size_bytes
        t0 = perf_counter()
        wire_msg = encode_message(msg, self.exports)
        self.encode_seconds += perf_counter() - t0
        self._egress.append(("u", arrival, src, seq, wire_msg))

    def export_group_member(self, arrival: int, src: int, gid: int,
                            msg) -> None:
        self.egress_messages += 1
        self.egress_bytes += msg.size_bytes
        t0 = perf_counter()
        wire_msg = encode_message(msg, self.exports)
        self.encode_seconds += perf_counter() - t0
        self._egress.append(("g", arrival, src, gid, wire_msg))

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    def inject(self, entries: list[tuple]) -> None:
        """Replay arrivals routed here, reconstructing delivery-phase
        keys and multicast grouping exactly as the sender's kernel
        would have pushed them."""
        sim = self.machine.sim
        net = self.machine.net
        groups: dict[tuple[int, int, int], list] = {}
        t0 = perf_counter()
        for tag, arrival, src, seq, wire_msg in entries:
            msg = decode_message(wire_msg, self.exports)
            self.ingress_messages += 1
            self.ingress_bytes += msg.size_bytes
            if tag == "u":
                sim._push_delivery(arrival, (src, seq),
                                   (net._deliver, (msg,)))
            else:
                key = (arrival, src, seq)
                group = groups.get(key)
                if group is None:
                    groups[key] = group = []
                    sim._push_delivery(arrival, (src, seq),
                                       (net._deliver_group, (group,)))
                group.append(msg)
        self.decode_seconds += perf_counter() - t0

    # ------------------------------------------------------------------
    # the conservative-window loop
    # ------------------------------------------------------------------
    def run_threads(self, machine, thread_fn, cpus=None,
                    max_events=None) -> list:
        """Windowed replacement for :meth:`Machine.run_threads`.

        Spawns threads only on this shard's CPUs, then alternates
        *sync* rounds with the parent router and bounded kernel runs
        until every shard is drained.  On return, ``sim.now`` and
        ``machine.last_completion_time`` equal the single-process
        values (the parent broadcasts the global maxima), so the next
        phase of an SPMD driver starts from identical state.
        """
        if max_events is not None:
            raise SimulationError(
                "max_events is not supported under sharded execution")
        sim = machine.sim
        self.phase += 1
        targets = machine.cpus if cpus is None \
            else [machine.cpus[i] for i in cpus]
        targets = [p for p in targets if self.owns_cpu(p.cpu_id)]
        completion: dict[str, int] = {}

        def _main():
            procs = [sim.spawn(thread_fn(p), name=f"thread-cpu{p.cpu_id}")
                     for p in targets]
            results = yield from all_of(sim, procs)
            completion["t"] = sim.now
            return results

        proc = sim.spawn(_main(), name=f"run_threads[shard{self.shard_id}]")
        window = self.window
        while True:
            egress, self._egress = self._egress, []
            self.conn.send((SYNC, self.phase, sim.next_event_time(),
                            egress, proc.done, completion.get("t"),
                            sim.now))
            self.sync_rounds += 1
            t0 = perf_counter()
            tag, *rest = self.conn.recv()
            self.blocked_seconds += perf_counter() - t0
            if tag == RUN:
                start, deliveries = rest
                self.inject(deliveries)
                # single-shard plans have no cross traffic: no horizon
                sim.run(until=None if window == 0 else start + window - 1)
            elif tag == STOP:
                global_now, global_completion = rest
                # align the clock with the single-process drain point
                # (safe: every queue is empty at STOP)
                sim.now = max(sim.now, global_now)
                machine.last_completion_time = global_completion
                break
            else:  # DEADLOCK
                (live,) = rest
                raise SimulationError(
                    f"deadlock: {live} thread group(s) still blocked "
                    f"across shards at t={sim.now}")
        if not proc.done:
            raise SimulationError(
                f"shard {self.shard_id}: run_threads main still blocked "
                f"at t={sim.now}")
        return proc.result

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def telemetry(self) -> dict:
        """This worker's shard-runtime telemetry, as plain values.

        ``blocked_seconds`` is wall time spent waiting on the parent
        router at sync barriers (covers routing plus the lag of the
        slowest peer shard); encode/decode seconds are wall time in the
        wire codec; message/byte volumes are simulated-packet counts
        and therefore deterministic.
        """
        return {
            "sync_rounds": self.sync_rounds,
            "blocked_seconds": self.blocked_seconds,
            "encode_seconds": self.encode_seconds,
            "decode_seconds": self.decode_seconds,
            "egress_messages": self.egress_messages,
            "egress_bytes": self.egress_bytes,
            "ingress_messages": self.ingress_messages,
            "ingress_bytes": self.ingress_bytes,
        }
