"""Barrier microbenchmark driver.

Runs ``episodes`` back-to-back barrier episodes on every CPU after a
warm-up episode, and reports steady-state cycles per episode, cycles per
processor (the paper's Figure 5/6 metric: episode latency divided by the
processor count), and per-episode network traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.network.stats import TrafficStats
from repro.obs import CriticalPathAnalyzer, MachineMetrics
from repro.obs.critical_path import EPISODE_SPAN
from repro.sync.barrier import CentralizedBarrier
from repro.sync.tree_barrier import CombiningTreeBarrier
from repro.trace.recorder import TraceRecorder


@dataclass
class BarrierResult:
    """Steady-state measurements of one barrier configuration."""

    mechanism: Mechanism
    n_processors: int
    episodes: int
    tree_branching: Optional[int]
    total_cycles: int
    traffic: TrafficStats
    #: kernel events dispatched by the whole run (simulator-cost metric)
    events_dispatched: int = 0
    #: metrics snapshot (repro.obs) when the run was metered, else None
    metrics: Optional[dict] = None

    @property
    def cycles_per_episode(self) -> float:
        return self.total_cycles / self.episodes

    @property
    def cycles_per_processor(self) -> float:
        """The paper's Figures 5/6 metric."""
        return self.cycles_per_episode / self.n_processors

    @property
    def messages_per_episode(self) -> float:
        return self.traffic.total_messages / self.episodes

    @property
    def bytes_per_episode(self) -> float:
        return self.traffic.total_bytes / self.episodes

    def speedup_over(self, baseline: "BarrierResult") -> float:
        """Paper-style speedup: baseline time / this time."""
        return baseline.cycles_per_episode / self.cycles_per_episode


def run_barrier_workload(n_processors: int, mechanism: Mechanism,
                         episodes: int = 4, warmup_episodes: int = 1,
                         tree_branching: Optional[int] = None,
                         naive: bool = False,
                         config: Optional[SystemConfig] = None,
                         home_node: int = 0,
                         metrics: bool = False,
                         metrics_interval: int = 0,
                         warm_cache=None,
                         backend: Optional[str] = None) -> BarrierResult:
    """Measure one (mechanism, P[, branching]) barrier configuration.

    ``tree_branching`` selects the two-level combining tree;
    ``naive`` forces the Figure 3(a) coding for conventional mechanisms.
    ``metrics`` additionally attaches the observability layer
    (:mod:`repro.obs`) and a tracer, returning a metrics snapshot with a
    per-episode critical-path breakdown on the result;
    ``metrics_interval`` > 0 also samples gauges on that cycle period.
    ``warm_cache`` (a :class:`repro.workloads.warm.WarmCache`) amortizes
    machine construction and warm-up across calls: the first call for a
    shape builds, warms and checkpoints; later calls restore and replay
    the measured episodes only, with identical cycles and event counts.
    Metrics runs bypass the cache (observers hold per-run state).
    ``backend`` selects the event-kernel backend
    (:mod:`repro.sim.backends`); results are byte-identical across
    backends, so it never changes what is measured — only how fast.
    """
    cfg = config or SystemConfig.table1(n_processors)
    if cfg.n_processors != n_processors:
        cfg = cfg.replace(n_processors=n_processors)
    if backend is not None:
        cfg = cfg.replace(kernel_backend=backend)
    warm = warm_cache is not None and not metrics
    key = ("barrier", cfg, mechanism, tree_branching, naive, home_node,
           warmup_episodes) if warm else None
    ctx = warm_cache.lookup(key) if warm else None
    obs = tracer = None
    if ctx is not None:
        machine = ctx.machine
        barrier = ctx.sync
        machine.restore(ctx.snapshot)
        barrier.load_state(ctx.sync_state)
    else:
        machine = warm_cache.pool.acquire(cfg) if warm else Machine(cfg)
        if metrics:
            obs = MachineMetrics.attach(machine,
                                        sample_interval=metrics_interval)
            tracer = TraceRecorder.attach(machine, capture_messages=False)
        if tree_branching is not None:
            barrier = CombiningTreeBarrier(machine, mechanism,
                                           branching=tree_branching,
                                           root_home=home_node)
        else:
            barrier = CentralizedBarrier(machine, mechanism, naive=naive,
                                         home_node=home_node)

    def make_thread(count: int, measured: bool = False):
        def thread(proc):
            for _ in range(count):
                t0 = proc.sim.now
                yield from barrier.wait(proc)
                if measured and tracer is not None:
                    tracer.add_span(f"cpu{proc.cpu_id}", EPISODE_SPAN,
                                    t0, proc.sim.now)
        return thread

    if ctx is None:
        if warmup_episodes:
            machine.run_threads(make_thread(warmup_episodes))
        if warm and hasattr(barrier, "save_state"):
            warm_cache.store(key, machine, barrier, machine.snapshot(),
                             barrier.save_state())
    start = machine.last_completion_time
    before = machine.net.stats.snapshot()
    if obs is not None and obs.sampler is not None:
        obs.sampler.start()
    machine.run_threads(make_thread(episodes, measured=True))
    total = machine.last_completion_time - start
    traffic = machine.net.stats.delta_since(before)
    machine.check_coherence_invariants()
    snapshot = None
    if obs is not None:
        analyzer = CriticalPathAnalyzer(machine)
        obs.critical_path = analyzer.summarize(analyzer.analyze(tracer))
        snapshot = obs.snapshot()
    return BarrierResult(
        mechanism=mechanism, n_processors=n_processors, episodes=episodes,
        tree_branching=tree_branching, total_cycles=total, traffic=traffic,
        events_dispatched=machine.sim.events_dispatched,
        metrics=snapshot)
