"""Barrier microbenchmark driver.

Runs ``episodes`` back-to-back barrier episodes on every CPU after a
warm-up episode, and reports steady-state cycles per episode, cycles per
processor (the paper's Figure 5/6 metric: episode latency divided by the
processor count), and per-episode network traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.network.stats import TrafficStats
from repro.sync.barrier import CentralizedBarrier
from repro.sync.tree_barrier import CombiningTreeBarrier


@dataclass
class BarrierResult:
    """Steady-state measurements of one barrier configuration."""

    mechanism: Mechanism
    n_processors: int
    episodes: int
    tree_branching: Optional[int]
    total_cycles: int
    traffic: TrafficStats
    #: kernel events dispatched by the whole run (simulator-cost metric)
    events_dispatched: int = 0

    @property
    def cycles_per_episode(self) -> float:
        return self.total_cycles / self.episodes

    @property
    def cycles_per_processor(self) -> float:
        """The paper's Figures 5/6 metric."""
        return self.cycles_per_episode / self.n_processors

    @property
    def messages_per_episode(self) -> float:
        return self.traffic.total_messages / self.episodes

    @property
    def bytes_per_episode(self) -> float:
        return self.traffic.total_bytes / self.episodes

    def speedup_over(self, baseline: "BarrierResult") -> float:
        """Paper-style speedup: baseline time / this time."""
        return baseline.cycles_per_episode / self.cycles_per_episode


def run_barrier_workload(n_processors: int, mechanism: Mechanism,
                         episodes: int = 4, warmup_episodes: int = 1,
                         tree_branching: Optional[int] = None,
                         naive: bool = False,
                         config: Optional[SystemConfig] = None,
                         home_node: int = 0) -> BarrierResult:
    """Measure one (mechanism, P[, branching]) barrier configuration.

    ``tree_branching`` selects the two-level combining tree;
    ``naive`` forces the Figure 3(a) coding for conventional mechanisms.
    """
    cfg = config or SystemConfig.table1(n_processors)
    if cfg.n_processors != n_processors:
        cfg = cfg.replace(n_processors=n_processors)
    machine = Machine(cfg)
    if tree_branching is not None:
        barrier = CombiningTreeBarrier(machine, mechanism,
                                       branching=tree_branching,
                                       root_home=home_node)
    else:
        barrier = CentralizedBarrier(machine, mechanism, naive=naive,
                                     home_node=home_node)

    def make_thread(count: int):
        def thread(proc):
            for _ in range(count):
                yield from barrier.wait(proc)
        return thread

    if warmup_episodes:
        machine.run_threads(make_thread(warmup_episodes))
    start = machine.last_completion_time
    before = machine.net.stats.snapshot()
    machine.run_threads(make_thread(episodes))
    total = machine.last_completion_time - start
    traffic = machine.net.stats.delta_since(before)
    machine.check_coherence_invariants()
    return BarrierResult(
        mechanism=mechanism, n_processors=n_processors, episodes=episodes,
        tree_branching=tree_branching, total_cycles=total, traffic=traffic,
        events_dispatched=machine.sim.events_dispatched)
