"""Lock microbenchmark driver.

Every CPU performs ``acquisitions_per_cpu`` acquire/critical-section/
release/think iterations against one shared lock.  Mutual exclusion is
asserted live (a Python-level occupancy check costing zero simulated
time).  Reported metrics: cycles per lock acquisition in steady state
and network traffic (Figure 7's quantity, normalized by the harness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.network.stats import TrafficStats
from repro.obs import CriticalPathAnalyzer, MachineMetrics
from repro.obs.critical_path import EPISODE_SPAN
from repro.stats.collector import LatencyStats
from repro.trace.recorder import TraceRecorder
from repro.sync.array_lock import ArrayQueueLock
from repro.sync.mcs_lock import McsLock
from repro.sync.ticket_lock import TicketLock

#: critical-section and think-time defaults (CPU cycles) — short critical
#: sections maximize lock-passing pressure, the regime the paper studies
DEFAULT_CS_CYCLES = 100
DEFAULT_THINK_CYCLES = 200


@dataclass
class LockResult:
    """Steady-state measurements of one lock configuration."""

    mechanism: Mechanism
    lock_type: str
    n_processors: int
    acquisitions: int
    total_cycles: int
    traffic: TrafficStats
    cs_cycles: int
    think_cycles: int
    #: distribution of individual acquire() latencies (steady state)
    acquire_latency: Optional[LatencyStats] = None
    #: kernel events dispatched by the whole run (simulator-cost metric)
    events_dispatched: int = 0
    #: metrics snapshot (repro.obs) when the run was metered, else None
    metrics: Optional[dict] = None

    @property
    def cycles_per_acquisition(self) -> float:
        return self.total_cycles / self.acquisitions

    @property
    def bytes_per_acquisition(self) -> float:
        return self.traffic.total_bytes / self.acquisitions

    def speedup_over(self, baseline: "LockResult") -> float:
        """Paper-style speedup on the per-acquisition rate."""
        return (baseline.cycles_per_acquisition /
                self.cycles_per_acquisition)

    def traffic_relative_to(self, baseline: "LockResult") -> float:
        """Figure 7's quantity: network traffic normalized to baseline."""
        return self.bytes_per_acquisition / baseline.bytes_per_acquisition


def run_lock_workload(n_processors: int, mechanism: Mechanism,
                      lock_type: str = "ticket",
                      acquisitions_per_cpu: int = 4,
                      warmup_per_cpu: int = 1,
                      cs_cycles: int = DEFAULT_CS_CYCLES,
                      think_cycles: int = DEFAULT_THINK_CYCLES,
                      config: Optional[SystemConfig] = None,
                      home_node: int = 0,
                      metrics: bool = False,
                      metrics_interval: int = 0,
                      warm_cache=None,
                      backend: Optional[str] = None) -> LockResult:
    """Measure one (mechanism, P, lock algorithm) configuration.

    ``metrics`` attaches the observability layer (:mod:`repro.obs`); the
    returned result then carries a metrics snapshot whose critical-path
    section attributes each acquire→release episode's latency.
    ``warm_cache`` (a :class:`repro.workloads.warm.WarmCache`) amortizes
    machine construction and warm-up across calls; see the barrier
    driver.  Lock types without ``save_state`` support still share
    pooled machines but re-run their warm-up each call.
    ``backend`` selects the event-kernel backend
    (:mod:`repro.sim.backends`); byte-identical results, faster loop.
    """
    cfg = config or SystemConfig.table1(n_processors)
    if cfg.n_processors != n_processors:
        cfg = cfg.replace(n_processors=n_processors)
    if backend is not None:
        cfg = cfg.replace(kernel_backend=backend)
    warm = warm_cache is not None and not metrics
    key = ("lock", cfg, mechanism, lock_type, home_node, warmup_per_cpu,
           cs_cycles, think_cycles) if warm else None
    ctx = warm_cache.lookup(key) if warm else None
    obs = tracer = None
    if ctx is not None:
        machine = ctx.machine
        lock = ctx.sync
        machine.restore(ctx.snapshot)
        lock.load_state(ctx.sync_state)
    else:
        machine = warm_cache.pool.acquire(cfg) if warm else Machine(cfg)
        if metrics:
            obs = MachineMetrics.attach(machine,
                                        sample_interval=metrics_interval)
            tracer = TraceRecorder.attach(machine, capture_messages=False)
        if lock_type == "ticket":
            lock = TicketLock(machine, mechanism, home_node=home_node)
        elif lock_type == "array":
            lock = ArrayQueueLock(machine, mechanism, home_node=home_node)
        elif lock_type == "mcs":
            lock = McsLock(machine, mechanism, home_node=home_node)
        else:
            raise ValueError(f"unknown lock type {lock_type!r}")

    occupancy = {"n": 0}
    acquire_latency = LatencyStats(name=f"{lock_type}-acquire")

    def make_thread(count: int, measured: bool):
        def thread(proc):
            for _ in range(count):
                t0 = proc.sim.now
                yield from lock.acquire(proc)
                if measured:
                    acquire_latency.record(proc.sim.now - t0)
                occupancy["n"] += 1
                assert occupancy["n"] == 1, "mutual exclusion violated"
                yield from proc.delay(cs_cycles)
                occupancy["n"] -= 1
                yield from lock.release(proc)
                if measured and tracer is not None:
                    tracer.add_span(f"cpu{proc.cpu_id}", EPISODE_SPAN,
                                    t0, proc.sim.now)
                yield from proc.delay(think_cycles)
        return thread

    if ctx is None:
        if warmup_per_cpu:
            machine.run_threads(make_thread(warmup_per_cpu, False))
        if warm and hasattr(lock, "save_state"):
            warm_cache.store(key, machine, lock, machine.snapshot(),
                             lock.save_state())
    start = machine.last_completion_time
    before = machine.net.stats.snapshot()
    if obs is not None and obs.sampler is not None:
        obs.sampler.start()
    machine.run_threads(make_thread(acquisitions_per_cpu, True))
    total = machine.last_completion_time - start
    traffic = machine.net.stats.delta_since(before)
    machine.check_coherence_invariants()
    snapshot = None
    if obs is not None:
        analyzer = CriticalPathAnalyzer(machine)
        obs.critical_path = analyzer.summarize(analyzer.analyze(tracer))
        snapshot = obs.snapshot()
    return LockResult(
        mechanism=mechanism, lock_type=lock_type,
        n_processors=n_processors,
        acquisitions=acquisitions_per_cpu * n_processors,
        total_cycles=total, traffic=traffic,
        cs_cycles=cs_cycles, think_cycles=think_cycles,
        acquire_latency=acquire_latency,
        events_dispatched=machine.sim.events_dispatched,
        metrics=snapshot)
