"""Microbenchmark workloads (substrate S14): the paper's measurements.

* :mod:`repro.workloads.barrier` — repeated barrier episodes over all
  CPUs (Tables 2-3, Figures 5-6);
* :mod:`repro.workloads.locks` — contended acquire/release streams over
  ticket and array locks (Table 4, Figure 7);
* :mod:`repro.workloads.qlocks` — the modern queue locks (MCS, compact
  NUMA-aware, reader-writer) with offline grant-history verification
  (extension; ROADMAP item 3).

Each driver builds a fresh :class:`~repro.core.machine.Machine`, runs an
unmeasured warm-up pass (cold-miss epoch, as an execution-driven
simulator's measured region would exclude), then measures steady-state
cycles and traffic.
"""

from repro.workloads.barrier import BarrierResult, run_barrier_workload
from repro.workloads.locks import LockResult, run_lock_workload
from repro.workloads.qlocks import (
    QLOCK_SUPPORT,
    QLOCK_TYPES,
    qlock_supported,
    run_qlock_workload,
)

__all__ = [
    "BarrierResult",
    "run_barrier_workload",
    "LockResult",
    "run_lock_workload",
    "QLOCK_SUPPORT",
    "QLOCK_TYPES",
    "qlock_supported",
    "run_qlock_workload",
]
