"""Warm-start cache: amortize machine construction and warm-up.

A sweep point measures steady state, so every run pays for work that is
identical across repeats and across points sharing a machine shape:
building the :class:`~repro.core.machine.Machine` and simulating the
warm-up episodes.  :class:`WarmCache` removes both costs:

* a :class:`~repro.core.snapshot.MachinePool` memoizes machine
  construction per configuration;
* each distinct *(workload shape, mechanism)* keeps a **warm context** —
  the machine's post-warm-up :class:`~repro.core.snapshot.MachineSnapshot`
  plus the sync object's saved Python-level state — so a repeat restores
  the checkpoint and replays only the measured phase.

A warm-started run is cycle-for-cycle and event-count identical to a
fresh build+warm+measure of the same point; the scale benchmark asserts
this on every repeat and the parity suite pins it against golden
fingerprints.  Workload drivers take ``warm_cache=None`` and fall back
to fresh construction when it is absent, when metrics/tracing are
requested (observers hold per-run state), or when the sync object does
not implement ``save_state``/``load_state``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Optional

from repro.core.machine import Machine
from repro.core.snapshot import MachinePool, MachineSnapshot


@dataclass
class WarmContext:
    """One warmed machine checkpoint plus its sync object's state."""

    machine: Machine
    sync: Any
    snapshot: MachineSnapshot
    sync_state: dict


class WarmCache:
    """Keyed warm contexts over a shared machine pool.

    Contexts for different mechanisms on the same configuration share
    one pooled machine: each miss rewinds it to pristine, builds and
    warms its own sync object, and checkpoints; each hit rewinds to its
    own checkpoint.  Snapshots are independent data copies, so contexts
    never interfere.
    """

    def __init__(self, pool: Optional[MachinePool] = None) -> None:
        self.pool = pool if pool is not None else MachinePool()
        self._contexts: dict[Hashable, WarmContext] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._contexts)

    def lookup(self, key: Hashable) -> Optional[WarmContext]:
        ctx = self._contexts.get(key)
        if ctx is None:
            self.misses += 1
        else:
            self.hits += 1
        return ctx

    def store(self, key: Hashable, machine: Machine, sync: Any,
              snapshot: MachineSnapshot, sync_state: dict) -> None:
        self._contexts[key] = WarmContext(machine, sync, snapshot,
                                          sync_state)

    def clear(self) -> None:
        self._contexts.clear()
        self.pool.clear()
