"""Queue-lock microbenchmark driver: MCS, CNA, and reader-writer locks.

The modern-lock companion to :mod:`repro.workloads.locks` (ROADMAP item
3): every CPU performs ``acquisitions_per_cpu`` acquire/critical-
section/release/think iterations against one shared queue lock, over
any of the paper's five mechanisms *where the lock's word discipline
can be built on it* — the support matrix is explicit
(:data:`QLOCK_SUPPORT`) and unsupported cells refuse loudly with
:class:`~repro.sync.rw_lock.UnsupportedMechanismError` instead of
simulating something unbuildable.

Beyond the live mutual-exclusion occupancy assert the ticket/array
driver has, this driver records the full grant history (queue handles
and predecessor linkage for MCS/CNA, tickets and reader/writer kinds
for the rw lock) and verifies it offline against the matching
linearizability checker (:mod:`repro.check.linearize`) on every
single-process run — the same checkers the fuzzer drives, so a schedule
that breaks FIFO order or the CNA fairness bound fails here too, not
only under fuzzing.  Sharded runs skip the offline check (each worker
observes only its local CPUs' spans); the fuzz and parity suites cover
those paths single-process.

Results reuse :class:`~repro.workloads.locks.LockResult`, so sweeps,
caching, shard merging, and golden fingerprints treat queue locks
exactly like the paper's locks.
"""

from __future__ import annotations

from typing import Optional

from repro.check.linearize import (
    QueueLockSpan,
    RwSpan,
    check_cna_grant_order,
    check_mcs_fifo_order,
    check_rw_exclusion,
)
from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.obs import CriticalPathAnalyzer, MachineMetrics
from repro.obs.critical_path import EPISODE_SPAN
from repro.stats.collector import LatencyStats
from repro.sync.cna_lock import DEFAULT_BATCH_THRESHOLD, CnaLock
from repro.sync.mcs_lock import McsLock
from repro.sync.rw_lock import RwTicketLock, UnsupportedMechanismError
from repro.trace.recorder import TraceRecorder
from repro.workloads.locks import (
    DEFAULT_CS_CYCLES,
    DEFAULT_THINK_CYCLES,
    LockResult,
)

#: queue-lock algorithms this driver runs
QLOCK_TYPES = ("mcs", "cna", "rw")

#: lock algorithm -> mechanisms it can be built over.  MCS and CNA need
#: only swap/CAS on the tail plus coherent per-CPU words, which every
#: mechanism provides.  The rw ticket lock's ``write`` turnstile word
#: straddles the atomic and coherent-spin domains, which MAO separates
#: by construction — see :mod:`repro.sync.rw_lock`.
QLOCK_SUPPORT: dict[str, frozenset] = {
    "mcs": frozenset(Mechanism),
    "cna": frozenset(Mechanism),
    "rw": frozenset(m for m in Mechanism if m is not Mechanism.MAO),
}


def qlock_supported(lock_type: str, mechanism: Mechanism) -> bool:
    """True when ``lock_type`` can be built over ``mechanism``."""
    return mechanism in QLOCK_SUPPORT[lock_type]


class QlockHistoryViolation(AssertionError):
    """The recorded grant history failed its linearizability check."""


def _check_history(lock_type: str, spans: list, threshold: int) -> None:
    if lock_type == "mcs":
        problems = check_mcs_fifo_order(spans)
    elif lock_type == "cna":
        problems = check_cna_grant_order(spans, batch_threshold=threshold)
    else:
        problems = check_rw_exclusion(spans)
    if problems:
        raise QlockHistoryViolation(
            f"{lock_type} grant history failed verification:\n  "
            + "\n  ".join(problems))


def run_qlock_workload(n_processors: int, mechanism: Mechanism,
                       lock_type: str = "mcs",
                       acquisitions_per_cpu: int = 4,
                       warmup_per_cpu: int = 1,
                       cs_cycles: int = DEFAULT_CS_CYCLES,
                       think_cycles: int = DEFAULT_THINK_CYCLES,
                       batch_threshold: int = DEFAULT_BATCH_THRESHOLD,
                       config: Optional[SystemConfig] = None,
                       home_node: int = 0,
                       metrics: bool = False,
                       metrics_interval: int = 0,
                       warm_cache=None,
                       backend: Optional[str] = None) -> LockResult:
    """Measure one (mechanism, P, queue-lock algorithm) configuration.

    Mirrors :func:`repro.workloads.locks.run_lock_workload` — same
    result type, warm-start, metrics, and backend semantics — plus the
    offline grant-history verification described in the module
    docstring.  ``batch_threshold`` applies to the CNA lock only (it
    still enters the warm key for every type; it does not change the
    MCS/rw machines, merely fragments their warm pool by one value).
    """
    if lock_type not in QLOCK_TYPES:
        raise ValueError(
            f"unknown queue lock type {lock_type!r}; expected one of "
            f"{QLOCK_TYPES}")
    if not qlock_supported(lock_type, mechanism):
        raise UnsupportedMechanismError(
            f"queue lock {lock_type!r} cannot be built over "
            f"{mechanism.value}: see repro.workloads.qlocks.QLOCK_SUPPORT")
    cfg = config or SystemConfig.table1(n_processors)
    if cfg.n_processors != n_processors:
        cfg = cfg.replace(n_processors=n_processors)
    if backend is not None:
        cfg = cfg.replace(kernel_backend=backend)
    warm = warm_cache is not None and not metrics
    key = ("qlock", cfg, mechanism, lock_type, home_node, warmup_per_cpu,
           cs_cycles, think_cycles, batch_threshold) if warm else None
    ctx = warm_cache.lookup(key) if warm else None
    obs = tracer = None
    if ctx is not None:
        machine = ctx.machine
        lock = ctx.sync
        machine.restore(ctx.snapshot)
        lock.load_state(ctx.sync_state)
    else:
        machine = warm_cache.pool.acquire(cfg) if warm else Machine(cfg)
        if metrics:
            obs = MachineMetrics.attach(machine,
                                        sample_interval=metrics_interval)
            tracer = TraceRecorder.attach(machine, capture_messages=False)
        if lock_type == "mcs":
            lock = McsLock(machine, mechanism, home_node=home_node)
        elif lock_type == "cna":
            lock = CnaLock(machine, mechanism, home_node=home_node,
                           batch_threshold=batch_threshold)
        else:
            lock = RwTicketLock(machine, mechanism, home_node=home_node)

    occupancy = {"n": 0, "w": 0}
    acquire_latency = LatencyStats(name=f"{lock_type}-acquire")
    spans: list = []

    def make_queue_thread(count: int, measured: bool):
        def thread(proc):
            for _ in range(count):
                t0 = proc.sim.now
                handle, pred = yield from lock.acquire(proc)
                if measured:
                    acquire_latency.record(proc.sim.now - t0)
                t_acq = proc.sim.now
                occupancy["n"] += 1
                assert occupancy["n"] == 1, "mutual exclusion violated"
                yield from proc.delay(cs_cycles)
                occupancy["n"] -= 1
                if measured:
                    spans.append(QueueLockSpan(
                        cpu=proc.cpu_id,
                        node=machine.node_of_cpu(proc.cpu_id),
                        handle=handle, pred=pred,
                        acquired=t_acq, released=proc.sim.now))
                yield from lock.release(proc)
                if measured and tracer is not None:
                    tracer.add_span(f"cpu{proc.cpu_id}", EPISODE_SPAN,
                                    t0, proc.sim.now)
                yield from proc.delay(think_cycles)
        return thread

    def make_rw_thread(count: int, measured: bool):
        def thread(proc):
            writer = proc.cpu_id % 2 == 0
            for _ in range(count):
                t0 = proc.sim.now
                if writer:
                    ticket = yield from lock.acquire_write(proc)
                else:
                    ticket = yield from lock.acquire_read(proc)
                if measured:
                    acquire_latency.record(proc.sim.now - t0)
                t_acq = proc.sim.now
                if writer:
                    occupancy["w"] += 1
                    assert occupancy["w"] == 1 and occupancy["n"] == 0, \
                        "rw exclusion violated"
                else:
                    occupancy["n"] += 1
                    assert occupancy["w"] == 0, "rw exclusion violated"
                yield from proc.delay(cs_cycles)
                if writer:
                    occupancy["w"] -= 1
                else:
                    occupancy["n"] -= 1
                if measured:
                    spans.append(RwSpan(
                        cpu=proc.cpu_id, kind="w" if writer else "r",
                        ticket=ticket, acquired=t_acq,
                        released=proc.sim.now))
                if writer:
                    yield from lock.release_write(proc)
                else:
                    yield from lock.release_read(proc)
                if measured and tracer is not None:
                    tracer.add_span(f"cpu{proc.cpu_id}", EPISODE_SPAN,
                                    t0, proc.sim.now)
                yield from proc.delay(think_cycles)
        return thread

    make_thread = make_rw_thread if lock_type == "rw" else make_queue_thread

    if ctx is None:
        if warmup_per_cpu:
            machine.run_threads(make_thread(warmup_per_cpu, False))
        if warm:
            warm_cache.store(key, machine, lock, machine.snapshot(),
                             lock.save_state())
    start = machine.last_completion_time
    before = machine.net.stats.snapshot()
    if obs is not None and obs.sampler is not None:
        obs.sampler.start()
    machine.run_threads(make_thread(acquisitions_per_cpu, True))
    total = machine.last_completion_time - start
    traffic = machine.net.stats.delta_since(before)
    machine.check_coherence_invariants()
    if machine.net.shard is None:
        _check_history(lock_type, spans, batch_threshold)
    snapshot = None
    if obs is not None:
        analyzer = CriticalPathAnalyzer(machine)
        obs.critical_path = analyzer.summarize(analyzer.analyze(tracer))
        snapshot = obs.snapshot()
    return LockResult(
        mechanism=mechanism, lock_type=lock_type,
        n_processors=n_processors,
        acquisitions=acquisitions_per_cpu * n_processors,
        total_cycles=total, traffic=traffic,
        cs_cycles=cs_cycles, think_cycles=think_cycles,
        acquire_latency=acquire_latency,
        events_dispatched=machine.sim.events_dispatched,
        metrics=snapshot)
