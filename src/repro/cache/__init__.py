"""Processor cache models (substrate S4).

A two-level hierarchy per CPU: a small fast L1D in front of a large L2.
Coherence is kept at L2/line granularity (128 B) — the directory talks to
the L2 controller; the L1 is modelled as a latency filter that is kept
inclusive and is invalidated/updated alongside the L2.

The cache also plays the role of the paper's **remote access cache (RAC)**
for fine-grained updates: a :data:`~repro.network.message.MessageKind.WORD_UPDATE`
pushed by a home AMU patches the single word in place, leaving the line's
shared state intact — no invalidation, no reload.
"""

from repro.cache.state import LineState
from repro.cache.line import CacheLine
from repro.cache.cache import SetAssociativeCache

__all__ = ["LineState", "CacheLine", "SetAssociativeCache"]
