"""Set-associative cache with true-LRU replacement.

Pure data structure — no timing, no simulator dependency.  The cache
controller (:mod:`repro.coherence.client`) charges latencies and runs the
protocol; this class answers "is it here, in what state, and what gets
evicted if I bring this in".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.cache.line import CacheLine
from repro.cache.state import LineState
from repro.config.parameters import CacheConfig


class SetAssociativeCache:
    """A ``ways``-way set-associative cache of ``n_sets`` sets.

    Examples
    --------
    >>> from repro.config.parameters import CacheConfig
    >>> c = SetAssociativeCache(CacheConfig(1024, 2, 128, 1))
    >>> c.n_sets
    4
    """

    __slots__ = ("config", "name", "n_sets", "line_bytes", "_sets", "_stamp",
                 "hits", "misses", "evictions", "invalidations",
                 "word_updates")

    def __init__(self, config: CacheConfig, name: str = "") -> None:
        self.config = config
        self.name = name
        self.n_sets = config.n_sets
        self.line_bytes = config.line_bytes
        # set index -> {line_addr: CacheLine}; per-set dicts keep lookups
        # O(1).  Sets materialize lazily on first touch: a 256-CPU machine
        # holds ~half a million sets and a sync-heavy workload touches a
        # handful, so eager allocation used to dominate Machine() setup.
        self._sets: dict[int, dict[int, CacheLine]] = defaultdict(dict)
        # plain int LRU clock (not itertools.count: snapshot/restore
        # must capture and rewind it)
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.word_updates = 0

    # ------------------------------------------------------------------
    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.n_sets

    def line_base(self, addr: int) -> int:
        return (addr // self.line_bytes) * self.line_bytes

    # ------------------------------------------------------------------
    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """The resident, valid line containing ``addr``, or None.

        ``touch`` updates LRU; pass False for coherence probes so remote
        traffic does not perturb the local replacement order.
        """
        lb = self.line_bytes
        base = addr - addr % lb
        entry = self._sets.get((base // lb) % self.n_sets)
        line = entry.get(base) if entry is not None else None
        if line is None or line.state is LineState.INVALID:
            return None
        if touch:
            self._stamp += 1
            line.last_use = self._stamp
        return line

    def probe(self, addr: int) -> Optional[CacheLine]:
        """Non-LRU-touching lookup (coherence requests)."""
        return self.lookup(addr, touch=False)

    def install(self, addr: int, state: LineState,
                words: Optional[dict[int, int]] = None
                ) -> tuple[CacheLine, Optional[CacheLine]]:
        """Bring a line in (after a fill) and return ``(line, victim)``.

        ``victim`` is the evicted line (possibly dirty — the caller must
        write it back) or None when a way was free or the line was
        already resident.
        """
        base = self.line_base(addr)
        entry = self._sets[self._set_index(base)]
        line = entry.get(base)
        if line is not None:
            line.state = state
            if words is not None:
                line.words.update(words)
            self._stamp += 1
            line.last_use = self._stamp
            return line, None
        victim = None
        if len(entry) >= self.config.ways:
            victim_addr = min(entry, key=lambda a: entry[a].last_use)
            victim = entry.pop(victim_addr)
            self.evictions += 1
        self._stamp += 1
        line = CacheLine(line_addr=base, state=state,
                         words=dict(words or {}), last_use=self._stamp)
        entry[base] = line
        return line, victim

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Drop the line containing ``addr``; returns it if it was valid."""
        lb = self.line_bytes
        base = addr - addr % lb
        entry = self._sets.get((base // lb) % self.n_sets)
        line = entry.pop(base, None) if entry is not None else None
        if line is not None and line.state is not LineState.INVALID:
            self.invalidations += 1
            return line
        return None

    def downgrade(self, addr: int) -> Optional[CacheLine]:
        """EXCLUSIVE -> SHARED (intervention); returns the line if present."""
        line = self.probe(addr)
        if line is not None and line.state is LineState.EXCLUSIVE:
            line.state = LineState.SHARED
            line.dirty = False
        return line

    def apply_word_update(self, addr: int, value: int) -> bool:
        """Patch one word pushed by a fine-grained put; True if applied."""
        line = self.probe(addr)
        if line is None:
            return False
        line.patch_word(addr, value)
        self.word_updates += 1
        return True

    # ------------------------------------------------------------------
    def resident_lines(self) -> list[CacheLine]:
        """All valid lines (diagnostics / property tests)."""
        return [ln for s in self._sets.values() for ln in s.values()
                if ln.state is not LineState.INVALID]

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self) -> None:
        self.misses += 1
