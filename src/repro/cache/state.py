"""Cache line coherence states.

A conventional MESI-style state set, matching what the SN2-derived
directory protocol needs.  The directory never distinguishes E from M
(an exclusively-held line may be silently dirtied), so the simulator uses
a merged EXCLUSIVE state with a ``dirty`` bit on the line.
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """State of a line in a processor cache."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"   # exclusive, possibly dirty (E/M merged; see module doc)

    @property
    def readable(self) -> bool:
        """Can a load hit on this state without a coherence transaction?"""
        return self is not LineState.INVALID

    @property
    def writable(self) -> bool:
        """Can a store hit on this state without a coherence transaction?"""
        return self is LineState.EXCLUSIVE

    def __str__(self) -> str:
        return self.value
