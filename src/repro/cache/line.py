"""A single cache line: state + word values + bookkeeping."""

from __future__ import annotations

from typing import Optional

from repro.cache.state import LineState
from repro.mem.address import WORD_BYTES


class CacheLine:
    """One resident line.

    ``words`` maps word byte-addresses to values; absent words are zero
    (the backing store's default).  ``dirty`` marks lines modified since
    fill — only meaningful in EXCLUSIVE state.

    A hand-rolled ``__slots__`` class (not a dataclass): lines are
    created on every fill and their word map is probed on every cached
    load, so instance-dict elimination and inlined word-base arithmetic
    are measurable at 256-CPU scale.
    """

    __slots__ = ("line_addr", "state", "words", "dirty", "last_use")

    def __init__(self, line_addr: int, state: LineState = LineState.INVALID,
                 words: Optional[dict[int, int]] = None, dirty: bool = False,
                 last_use: int = 0) -> None:
        self.line_addr = line_addr           # base byte address of the line
        self.state = state
        self.words = {} if words is None else words
        self.dirty = dirty
        #: monotonically increasing LRU stamp, maintained by the cache
        self.last_use = last_use

    def read_word(self, addr: int) -> int:
        """Value of the word containing ``addr`` within this line."""
        return self.words.get(addr - addr % WORD_BYTES, 0)

    def write_word(self, addr: int, value: int) -> None:
        self.words[addr - addr % WORD_BYTES] = value

    def patch_word(self, addr: int, value: int) -> None:
        """Apply a fine-grained WORD_UPDATE push (does not dirty the line:
        the home's copy is the source of the new value)."""
        self.words[addr - addr % WORD_BYTES] = value

    def contains(self, addr: int, line_bytes: int = 128) -> bool:
        return self.line_addr <= addr < self.line_addr + line_bytes

    def snapshot_words(self) -> dict[int, int]:
        """Copy of the word map (for writebacks and replies)."""
        return dict(self.words)

    def __repr__(self) -> str:  # pragma: no cover
        flag = "*" if self.dirty else ""
        return f"<Line {self.line_addr:#x} {self.state}{flag}>"


WORD = WORD_BYTES  # re-export convenience for tests
