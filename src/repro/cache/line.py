"""A single cache line: state + word values + bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.state import LineState
from repro.mem.address import WORD_BYTES, word_base


@dataclass
class CacheLine:
    """One resident line.

    ``words`` maps word byte-addresses to values; absent words are zero
    (the backing store's default).  ``dirty`` marks lines modified since
    fill — only meaningful in EXCLUSIVE state.
    """

    line_addr: int                       # base byte address of the line
    state: LineState = LineState.INVALID
    words: dict[int, int] = field(default_factory=dict)
    dirty: bool = False
    #: monotonically increasing LRU stamp, maintained by the cache
    last_use: int = 0

    def read_word(self, addr: int) -> int:
        """Value of the word containing ``addr`` within this line."""
        return self.words.get(word_base(addr), 0)

    def write_word(self, addr: int, value: int) -> None:
        self.words[word_base(addr)] = value

    def patch_word(self, addr: int, value: int) -> None:
        """Apply a fine-grained WORD_UPDATE push (does not dirty the line:
        the home's copy is the source of the new value)."""
        self.words[word_base(addr)] = value

    def contains(self, addr: int, line_bytes: int = 128) -> bool:
        return self.line_addr <= addr < self.line_addr + line_bytes

    def snapshot_words(self) -> dict[int, int]:
        """Copy of the word map (for writebacks and replies)."""
        return dict(self.words)

    def __repr__(self) -> str:  # pragma: no cover
        flag = "*" if self.dirty else ""
        return f"<Line {self.line_addr:#x} {self.state}{flag}>"


WORD = WORD_BYTES  # re-export convenience for tests
