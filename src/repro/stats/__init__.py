"""Measurement collection and report formatting."""

from repro.stats.collector import LatencyStats, fairness_across_cpus, op_latency_stats
from repro.stats.report import TableFormatter, fit_linear
from repro.stats.runner import PointRecord, RunnerStats, stderr_progress

__all__ = [
    "TableFormatter",
    "fit_linear",
    "LatencyStats",
    "op_latency_stats",
    "fairness_across_cpus",
    "PointRecord",
    "RunnerStats",
    "stderr_progress",
]
