"""Observability for the sweep runner: per-point and aggregate counters.

The :class:`~repro.runner.executor.ParallelRunner` records one
:class:`PointRecord` per resolved spec (cache hit or fresh execution)
and aggregates them in :class:`RunnerStats` — runs completed, cache
hits, retries, per-point wall time, and simulator events dispatched per
second of worker wall time.  Progress hooks receive each record as it
lands, in completion order.

:class:`RunnerStats` is backed by a
:class:`~repro.obs.registry.MetricsRegistry` (counters named
``runner.*`` plus a per-point wall-time histogram), so the runner's own
accounting exports through the same snapshot pipeline as simulation
metrics; the original attribute API (``stats.executed`` etc.) is
preserved as property views over the registry.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.registry import MetricsRegistry


@dataclass
class PointRecord:
    """One resolved sweep point."""

    label: str
    cached: bool
    #: wall-clock seconds the simulation took (stored time for hits)
    wall_seconds: float
    #: simulator events the run dispatched
    sim_events: int
    attempts: int = 1
    failed: bool = False

    @property
    def events_per_second(self) -> float:
        return self.sim_events / self.wall_seconds if self.wall_seconds else 0.0


#: hook signature: (completed so far, total points, the record that landed)
ProgressHook = Callable[[int, int, PointRecord], None]


class RunnerStats:
    """Aggregate counters across every :meth:`ParallelRunner.run` call.

    All counts live in a :class:`MetricsRegistry` under ``runner.*``
    names; the public attributes are read-through properties, so code
    written against the original dataclass keeps working while
    ``--metrics-out`` exports the same numbers.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or MetricsRegistry()
        reg = self.registry
        self._total = reg.counter("runner.points_total")
        self._cache_hits = reg.counter("runner.cache_hits")
        self._executed = reg.counter("runner.executed")
        self._failures = reg.counter("runner.failures")
        self._retries = reg.counter("runner.retries")
        self._wall = reg.counter("runner.wall_seconds")
        self._elapsed = reg.counter("runner.elapsed_seconds")
        self._sim_events = reg.counter("runner.sim_events")
        #: per-point fresh-execution wall time distribution
        self.point_wall_ms = reg.histogram("runner.point_wall_ms")
        self.points: list[PointRecord] = []

    # ------------------------------------------------------------------
    def record(self, point: PointRecord) -> None:
        self._total.inc()
        self.points.append(point)
        self._sim_events.inc(point.sim_events)
        if point.attempts > 1:
            self._retries.inc(point.attempts - 1)
        if point.failed:
            self._failures.inc()
        elif point.cached:
            self._cache_hits.inc()
        else:
            self._executed.inc()
            self._wall.inc(point.wall_seconds)
            self.point_wall_ms.observe(point.wall_seconds * 1000.0)

    # ------------------------------------------------------------------
    # property views preserving the original dataclass-field API
    # ------------------------------------------------------------------
    @property
    def total_points(self) -> int:
        return self._total.value

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def executed(self) -> int:
        return self._executed.value

    @property
    def failures(self) -> int:
        return self._failures.value

    @property
    def retries(self) -> int:
        """Extra attempts beyond the first, summed over all points."""
        return self._retries.value

    @property
    def wall_seconds(self) -> float:
        """Sum of fresh-execution wall seconds (worker-side, overlaps
        when parallel — compare against :attr:`elapsed_seconds`)."""
        return self._wall.value

    @property
    def elapsed_seconds(self) -> float:
        """End-to-end seconds spent inside run() calls."""
        return self._elapsed.value

    def add_elapsed(self, seconds: float) -> None:
        self._elapsed.inc(seconds)

    @property
    def sim_events(self) -> int:
        return self._sim_events.value

    def snapshot(self) -> dict:
        """The runner's registry snapshot (for ``--metrics-out``)."""
        return self.registry.snapshot()

    @property
    def events_per_second(self) -> float:
        """Simulator events dispatched per second of worker wall time."""
        if self.wall_seconds == 0:
            return 0.0
        executed_events = sum(p.sim_events for p in self.points
                              if not p.cached and not p.failed)
        return executed_events / self.wall_seconds

    def summary(self) -> str:
        parts = [f"{self.total_points} points",
                 f"{self.cache_hits} cache hits",
                 f"{self.executed} executed"]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.failures:
            parts.append(f"{self.failures} FAILED")
        parts.append(f"{self.elapsed_seconds:.1f}s elapsed")
        if self.executed:
            parts.append(f"{self.events_per_second:,.0f} events/s")
        return ", ".join(parts)


def stderr_progress(done: int, total: int, point: PointRecord) -> None:
    """Default ``--progress`` hook: one line per resolved point."""
    origin = "cache" if point.cached else f"{point.wall_seconds:.2f}s"
    if point.failed:
        origin = "FAILED"
    rate = (f" {point.events_per_second:,.0f} ev/s"
            if not point.cached and not point.failed else "")
    print(f"# [{done}/{total}] {point.label}: {origin}{rate}",
          file=sys.stderr, flush=True)


def make_progress(enabled: bool) -> Optional[ProgressHook]:
    return stderr_progress if enabled else None
