"""Observability for the sweep runner: per-point and aggregate counters.

The :class:`~repro.runner.executor.ParallelRunner` records one
:class:`PointRecord` per resolved spec (cache hit or fresh execution)
and aggregates them in :class:`RunnerStats` — runs completed, cache
hits, retries, per-point wall time, and simulator events dispatched per
second of worker wall time.  Progress hooks receive each record as it
lands, in completion order.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class PointRecord:
    """One resolved sweep point."""

    label: str
    cached: bool
    #: wall-clock seconds the simulation took (stored time for hits)
    wall_seconds: float
    #: simulator events the run dispatched
    sim_events: int
    attempts: int = 1
    failed: bool = False

    @property
    def events_per_second(self) -> float:
        return self.sim_events / self.wall_seconds if self.wall_seconds else 0.0


#: hook signature: (completed so far, total points, the record that landed)
ProgressHook = Callable[[int, int, PointRecord], None]


@dataclass
class RunnerStats:
    """Aggregate counters across every :meth:`ParallelRunner.run` call."""

    total_points: int = 0
    cache_hits: int = 0
    executed: int = 0
    failures: int = 0
    #: extra attempts beyond the first, summed over all points
    retries: int = 0
    #: sum of fresh-execution wall seconds (worker-side, overlaps when
    #: parallel — compare against :attr:`elapsed_seconds` for speedup)
    wall_seconds: float = 0.0
    #: end-to-end seconds spent inside run() calls
    elapsed_seconds: float = 0.0
    sim_events: int = 0
    points: list[PointRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record(self, point: PointRecord) -> None:
        self.total_points += 1
        self.points.append(point)
        self.sim_events += point.sim_events
        self.retries += max(0, point.attempts - 1)
        if point.failed:
            self.failures += 1
        elif point.cached:
            self.cache_hits += 1
        else:
            self.executed += 1
            self.wall_seconds += point.wall_seconds

    @property
    def events_per_second(self) -> float:
        """Simulator events dispatched per second of worker wall time."""
        if self.wall_seconds == 0:
            return 0.0
        executed_events = sum(p.sim_events for p in self.points
                              if not p.cached and not p.failed)
        return executed_events / self.wall_seconds

    def summary(self) -> str:
        parts = [f"{self.total_points} points",
                 f"{self.cache_hits} cache hits",
                 f"{self.executed} executed"]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.failures:
            parts.append(f"{self.failures} FAILED")
        parts.append(f"{self.elapsed_seconds:.1f}s elapsed")
        if self.executed:
            parts.append(f"{self.events_per_second:,.0f} events/s")
        return ", ".join(parts)


def stderr_progress(done: int, total: int, point: PointRecord) -> None:
    """Default ``--progress`` hook: one line per resolved point."""
    origin = "cache" if point.cached else f"{point.wall_seconds:.2f}s"
    if point.failed:
        origin = "FAILED"
    rate = (f" {point.events_per_second:,.0f} ev/s"
            if not point.cached and not point.failed else "")
    print(f"# [{done}/{total}] {point.label}: {origin}{rate}",
          file=sys.stderr, flush=True)


def make_progress(enabled: bool) -> Optional[ProgressHook]:
    return stderr_progress if enabled else None
