"""Tabular report formatting and simple model fits.

:class:`TableFormatter` renders the paper-style tables (fixed-width text
and Markdown) used by the harness CLI and EXPERIMENTS.md.
:func:`fit_linear` performs the ``t_o + t_p * P`` fit the paper uses to
argue AMO barriers scale linearly (§4.2.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class TableFormatter:
    """Build a text/Markdown table row by row.

    >>> t = TableFormatter(["CPUs", "AMO"])
    >>> t.add_row([4, 2.10])
    >>> print(t.to_text())       # doctest: +NORMALIZE_WHITESPACE
    CPUs    AMO
       4   2.10
    """

    def __init__(self, columns: Sequence[str], float_format: str = "{:.2f}",
                 title: str = "") -> None:
        self.columns = list(columns)
        self.float_format = float_format
        self.title = title
        self.rows: list[list] = []

    def add_row(self, values: Sequence) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def _cell(self, value) -> str:
        if isinstance(value, float):
            return self.float_format.format(value)
        return str(value)

    def to_text(self) -> str:
        """Fixed-width table (right-aligned numeric style)."""
        cells = [[self._cell(v) for v in row] for row in self.rows]
        widths = [max(len(self.columns[i]),
                      max((len(r[i]) for r in cells), default=0))
                  for i in range(len(self.columns))]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(c.rjust(w)
                               for c, w in zip(self.columns, widths)))
        for row in cells:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown table."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---:" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._cell(v) for v in row) + " |")
        return "\n".join(lines)


def fit_linear(x: Sequence[float], y: Sequence[float]) -> tuple[float, float, float]:
    """Least-squares fit ``y ~ a + b*x``; returns ``(a, b, r_squared)``.

    Used for the paper's AMO-barrier cost model ``t_o + t_p * P``.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size < 2:
        raise ValueError("need at least two points")
    coeffs = np.polyfit(xa, ya, 1)
    b, a = float(coeffs[0]), float(coeffs[1])
    pred = a + b * xa
    ss_res = float(((ya - pred) ** 2).sum())
    ss_tot = float(((ya - ya.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return a, b, r2
