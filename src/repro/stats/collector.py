"""Latency distributions and trace-derived summaries.

:class:`LatencyStats` is a small reservoir of observations with
percentile queries — used to characterize per-operation latency spread
(e.g. lock-acquisition latency fairness across CPUs), complementing the
mean-centric tables of the paper.

:func:`op_latency_stats` lifts a :class:`~repro.trace.TraceRecorder`'s
spans into per-operation distributions.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np


class LatencyStats:
    """Streaming collection of latency samples with percentile queries."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: list[float] = []
        self._sorted: Optional[np.ndarray] = None

    def record(self, value: float) -> None:
        self._samples.append(float(value))
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(float(v) for v in values)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    def _view(self) -> np.ndarray:
        if self._sorted is None:
            self._sorted = np.sort(np.asarray(self._samples, dtype=float))
        return self._sorted

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples")
        return float(np.mean(self._samples))

    @property
    def minimum(self) -> float:
        return float(self._view()[0])

    @property
    def maximum(self) -> float:
        return float(self._view()[-1])

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100), nearest-rank interpolation."""
        if not self._samples:
            raise ValueError("no samples")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} out of range")
        return float(np.percentile(self._view(), q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def coefficient_of_variation(self) -> float:
        """Std/mean — the fairness/jitter figure of merit."""
        mean = self.mean
        if mean == 0:
            return 0.0
        return float(np.std(self._samples) / mean)

    def summary(self) -> str:
        if not self._samples:
            return f"{self.name or 'latency'}: no samples"
        return (f"{self.name or 'latency'}: n={len(self)} "
                f"mean={self.mean:.0f} p50={self.p50:.0f} "
                f"p99={self.p99:.0f} max={self.maximum:.0f}")


def op_latency_stats(tracer, op_name: str,
                     track: Optional[str] = None) -> LatencyStats:
    """Distribution of one operation's span durations from a trace.

    ``track`` restricts to one CPU ("cpu3"); default is machine-wide.
    """
    stats = LatencyStats(name=op_name)
    for span in tracer.spans_named(op_name):
        if track is None or span.track == track:
            stats.record(span.duration)
    return stats


def fairness_across_cpus(tracer, op_name: str, n_cpus: int) -> float:
    """Coefficient of variation of per-CPU *total* time in an op.

    0.0 = perfectly fair; large values indicate starvation (e.g. a
    non-FIFO lock under NUMA distance asymmetry).
    """
    totals = []
    for cpu in range(n_cpus):
        totals.append(tracer.total_time_in(f"cpu{cpu}", op_name))
    mean = sum(totals) / len(totals)
    if mean == 0:
        return 0.0
    var = sum((t - mean) ** 2 for t in totals) / len(totals)
    return math.sqrt(var) / mean
