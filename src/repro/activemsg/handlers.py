"""Built-in active-message handlers used by the synchronization library.

Handlers run on the home node's primary processor and use that CPU's
*coherent* cache controller — so a handler that releases waiters by
storing to a spin variable generates the same invalidation + reload wave
a processor-side release would (this is what keeps the ActMsg wake-up
path honest in the comparison).

Handlers are coroutine functions ``(machine, home_node, args)``.
"""

from __future__ import annotations

from repro.activemsg.endpoint import register_handler


def _home_controller(machine, home_node):
    """The cache controller of the home node's primary (handler) CPU."""
    cpu0 = home_node * machine.config.cpus_per_node
    return machine.cpus[cpu0].controller


@register_handler("fetchadd")
def am_fetchadd(machine, home_node, args):
    """Atomic fetch-and-add performed by the home processor.

    args = (addr, delta).  Atomicity comes from handler serialization on
    the home CPU — no LL/SC needed, the classic active-message trick.
    """
    addr, delta = args
    ctrl = _home_controller(machine, home_node)
    old = yield from ctrl.load(addr)
    yield from ctrl.store(addr, old + delta)
    return old


@register_handler("fetchadd_notify")
def am_fetchadd_notify(machine, home_node, args):
    """Fetch-and-add; on reaching ``target``, store to a notify variable.

    args = (addr, delta, target, notify_addr, notify_value).  The barrier
    handler: the release store wakes all spinners via normal coherence.
    """
    addr, delta, target, notify_addr, notify_value = args
    ctrl = _home_controller(machine, home_node)
    old = yield from ctrl.load(addr)
    new = old + delta
    yield from ctrl.store(addr, new)
    if new == target:
        yield from ctrl.store(notify_addr, notify_value)
    return old


@register_handler("read")
def am_read(machine, home_node, args):
    """Coherent read of one word (diagnostic handler)."""
    (addr,) = args
    ctrl = _home_controller(machine, home_node)
    value = yield from ctrl.load(addr)
    return value


@register_handler("write")
def am_write(machine, home_node, args):
    """Coherent write of one word. args = (addr, value)."""
    addr, value = args
    ctrl = _home_controller(machine, home_node)
    yield from ctrl.store(addr, value)
    return None


@register_handler("swap")
def am_swap(machine, home_node, args):
    """Atomic exchange on the home processor. args = (addr, value)."""
    addr, value = args
    ctrl = _home_controller(machine, home_node)
    old = yield from ctrl.load(addr)
    yield from ctrl.store(addr, value)
    return old


@register_handler("cas")
def am_cas(machine, home_node, args):
    """Compare-and-swap on the home processor.
    args = (addr, expected, new); returns the old value."""
    addr, expected, new = args
    ctrl = _home_controller(machine, home_node)
    old = yield from ctrl.load(addr)
    if old == expected:
        yield from ctrl.store(addr, new)
    return old
