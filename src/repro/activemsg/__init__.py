"""Active messages (substrate S9, von Eicken et al. style).

An active message names a user-level handler to run on the destination
node's *main processor* with the message body as arguments.  Gains over
pure shared-memory synchronization come from eliminating remote-memory
round trips; losses come from handler invocation overhead, serialization
on one processor, and timeout-driven retransmission under contention —
the paper's Figure 7 shows ActMsg generating the *most* network traffic
of all mechanisms at 128/256 processors for exactly this reason.
"""

from repro.activemsg.endpoint import ActiveMessageEndpoint, register_handler, HANDLERS

__all__ = ["ActiveMessageEndpoint", "register_handler", "HANDLERS"]
