"""Active-message endpoints: handler execution, dedup, retransmission.

Receive path (home side)
------------------------
Each node has one endpoint.  Handlers execute on the node's primary
processor, modelled as a FIFO :class:`~repro.sim.primitives.Resource`:
one handler at a time, each paying the invocation overhead (interrupt +
user-level dispatch) before its body runs.  Handlers are coroutines and
may use the home CPU's cache controller — e.g. a barrier-release handler
performs a *coherent* store to the spin variable, generating the same
invalidate + reload wave a processor-side release would.

At-most-once execution
----------------------
Requesters time out and retransmit (with exponential backoff).  The
endpoint deduplicates by ``(requester, sequence)``: duplicates of an
in-flight request only refresh the reply destination; duplicates of a
completed request resend the cached result.  Retransmissions therefore
inflate *traffic* (the paper's observation) without corrupting state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.network.message import Message, MessageKind
from repro.sim.primitives import Resource, Signal, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Hub

#: handler registry: name -> coroutine function(machine, home_node, args)
HANDLERS: dict[str, Callable] = {}


def register_handler(name: str, fn: Optional[Callable] = None):
    """Register an active-message handler (usable as a decorator).

    The handler is a coroutine function ``fn(machine, home_node, args)``
    whose return value is shipped back in the AM_REPLY.
    """
    def _install(f: Callable):
        if name in HANDLERS and HANDLERS[name] is not f:
            raise ValueError(f"handler {name!r} already registered")
        HANDLERS[name] = f
        return f
    return _install(fn) if fn is not None else _install


@dataclass(slots=True)
class _PendingCall:
    """Home-side state for one logical (requester, seq) call."""

    reply_to: Signal           # most recent attempt's signal
    src_node: int
    done: bool = False
    result: Any = None


class ActiveMessageEndpoint:
    """Per-node active-message engine."""

    __slots__ = ("hub", "sim", "node", "config", "handler_cpu", "_calls",
                 "invocations", "duplicates_dropped", "replies_resent")

    def __init__(self, hub: "Hub") -> None:
        self.hub = hub
        self.sim = hub.sim
        self.node = hub.node
        self.config = hub.config.actmsg
        #: the home node's main processor, serializing handler execution
        self.handler_cpu = Resource(name=f"am-handler[{hub.node}]")
        self._calls: dict[tuple[int, int], _PendingCall] = {}
        self.invocations = 0
        self.duplicates_dropped = 0
        self.replies_resent = 0

    # ------------------------------------------------------------------
    # home side
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        """Hub delivery path for AM_REQUEST messages."""
        key = (msg.requester, msg.value)      # value carries the sequence
        call = self._calls.get(key)
        if call is not None:
            # duplicate (a retransmission)
            call.reply_to = msg.reply_to      # reply to the latest attempt
            call.src_node = msg.src_node
            if call.done:
                self.replies_resent += 1
                self.sim.spawn(self._resend(call, msg),
                               name=f"am-resend[{self.node}]")
            else:
                self.duplicates_dropped += 1
            return
        call = _PendingCall(reply_to=msg.reply_to, src_node=msg.src_node)
        self._calls[key] = call
        self.sim.spawn(self._execute(call, msg), name=f"am-exec[{self.node}]")

    def _execute(self, call: _PendingCall, msg: Message):
        handler_name, args = msg.payload
        handler = HANDLERS[handler_name]
        yield self.handler_cpu.acquire()
        try:
            yield Timeout(self.config.invocation_overhead_cycles)
            self.invocations += 1
            result = yield from handler(self.hub.machine, self.node, args)
            yield Timeout(self.config.handler_body_cycles)
        finally:
            self.handler_cpu.release()
        call.done = True
        call.result = result
        yield from self._send_reply(call, msg.addr)

    def _resend(self, call: _PendingCall, msg: Message):
        # a completed call being re-acked: small demux cost, no handler
        yield Timeout(self.hub.config.hub.hub_to_cpu(
            self.hub.config.hub.ingress_occupancy_hub_cycles))
        yield from self._send_reply(call, msg.addr)

    def _send_reply(self, call: _PendingCall, addr):
        yield from self.hub.egress_send(Message(
            kind=MessageKind.AM_REPLY, src_node=self.node,
            dst_node=call.src_node, addr=addr, value=call.result,
            reply_to=call.reply_to))

    # ------------------------------------------------------------------
    # requester side
    # ------------------------------------------------------------------
    def call_remote(self, requester_cpu: int, seq: int, home_node: int,
                    handler: str, args: Any):
        """Coroutine: invoke ``handler`` at ``home_node``; returns result.

        Retries with exponential backoff on timeout; raises after
        ``max_retransmits`` attempts go unanswered.
        """
        if handler not in HANDLERS:
            raise ValueError(f"unknown active-message handler {handler!r}")
        timeout = self.config.timeout_cycles
        _TIMED_OUT = object()
        for attempt in range(self.config.max_retransmits + 1):
            race = Signal(name=f"am-call[{requester_cpu}#{seq}]")
            yield from self.hub.egress_send(Message(
                kind=MessageKind.AM_REQUEST, src_node=self.node,
                dst_node=home_node, value=seq, payload=(handler, args),
                reply_to=race, requester=requester_cpu,
                is_retransmit=attempt > 0))
            self.sim.schedule(timeout, race.try_fire, self.sim, _TIMED_OUT)
            reply = yield race.wait()
            if reply is not _TIMED_OUT:
                return reply.value
            timeout *= 2
        raise RuntimeError(
            f"active message {handler!r} from cpu{requester_cpu} to node "
            f"{home_node} unanswered after "
            f"{self.config.max_retransmits + 1} attempts")
