"""The trace recorder and its Chrome-trace exporter.

Span capture is zero-cost when no recorder is attached: the processor's
traced methods check ``machine.tracer`` once per call.  Message capture
subscribes to the fabric's send hooks (``Network.subscribe_send``).

Chrome trace format notes: we emit "X" (complete) events with ``ts`` and
``dur`` in simulated CPU cycles (one cycle rendered as one microsecond —
the viewer's unit label is cosmetic), one "process" per machine and one
"thread" per track (cpu0..N, net).

Sharded runs merge per-shard recorders into one timeline
(:meth:`TraceRecorder.merged`): each shard's spans keep their simulated
timestamps (the determinism contract makes them globally comparable)
and land in their own *lane* — rendered as one Chrome process per lane
(pid = lane + 1) — with lane 0 reserved for the parent router's
sync-round windows.  Single-machine recorders have no lanes and export
exactly as before (every event pid 1, no process metadata).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine


@dataclass
class Span:
    """One completed operation on some track."""

    track: str
    name: str
    start: int
    end: int
    args: dict = field(default_factory=dict)
    #: merge lane (0 = single machine / parent; shard *s* = ``s + 1``)
    lane: int = 0

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Instant:
    """A point event (message injection)."""

    track: str
    name: str
    time: int
    args: dict = field(default_factory=dict)
    #: merge lane (0 = single machine / parent; shard *s* = ``s + 1``)
    lane: int = 0


class TraceRecorder:
    """Collects spans/instants from an attached machine."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.message_capture = True
        #: lane id -> lane name; empty for single-machine recorders
        self.lanes: dict[int, str] = {}

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, machine: "Machine",
               capture_messages: bool = True) -> "TraceRecorder":
        """Create a recorder and hook it into ``machine``."""
        tracer = cls()
        tracer.message_capture = capture_messages
        machine.tracer = tracer
        if capture_messages:
            def on_send(msg, hops):
                tracer.instants.append(Instant(
                    track="net",
                    name=msg.kind.value,
                    time=machine.sim.now,
                    args={"src": msg.src_node, "dst": msg.dst_node,
                          "hops": hops,
                          "addr": None if msg.addr is None
                          else hex(msg.addr)}))
            machine.net.subscribe_send(on_send)
        return tracer

    # ------------------------------------------------------------------
    @classmethod
    def merged(cls, parts: list[tuple[str, list[Span], list[Instant]]],
               ) -> "TraceRecorder":
        """One timeline from per-shard recorders plus a parent lane.

        ``parts`` is ``[(lane_name, spans, instants), ...]``; part 0 is
        the parent router (sync-round windows, may be empty), parts
        1..N are the shards in shard order.  Span/instant objects are
        re-labelled in place with their lane id — the caller hands over
        ownership.  Per-track span order is preserved (each track lives
        entirely on one lane), so analyzers that iterate
        :meth:`spans_on` see single-process-identical sequences.
        """
        out = cls()
        for lane, (name, spans, instants) in enumerate(parts):
            out.lanes[lane] = name
            for span in spans:
                span.lane = lane
                out.spans.append(span)
            for inst in instants:
                inst.lane = lane
                out.instants.append(inst)
        return out

    # ------------------------------------------------------------------
    def add_span(self, track: str, name: str, start: int, end: int,
                 **args: Any) -> None:
        self.spans.append(Span(track=track, name=name, start=start,
                               end=end, args=dict(args)))

    def spans_on(self, track: str) -> list[Span]:
        return [s for s in self.spans if s.track == track]

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def total_time_in(self, track: str, name: Optional[str] = None) -> int:
        """Sum of span durations on a track (optionally one op kind)."""
        return sum(s.duration for s in self.spans
                   if s.track == track and (name is None or s.name == name))

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The trace as a chrome://tracing-compatible dict.

        Lane-less recorders (the single-machine case) render as one
        process (pid 1).  Merged recorders render one process per lane
        — pid = lane + 1 — named from :attr:`lanes`, with thread ids
        assigned per (lane, track).
        """
        events = []
        if not self.lanes:
            pid_of = {0: 1}
        else:
            pid_of = {lane: lane + 1 for lane in self.lanes}
            for lane in sorted(self.lanes):
                events.append({
                    "name": "process_name", "ph": "M", "pid": lane + 1,
                    "tid": 0, "args": {"name": self.lanes[lane]},
                })
        keys = sorted({(s.lane, s.track) for s in self.spans}
                      | {(i.lane, i.track) for i in self.instants})
        tid_of: dict[tuple[int, str], int] = {}
        next_tid: dict[int, int] = {}
        for lane, track in keys:
            tid = next_tid.get(lane, 0)
            next_tid[lane] = tid + 1
            tid_of[(lane, track)] = tid
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid_of[lane],
                "tid": tid, "args": {"name": track},
            })
        for span in self.spans:
            events.append({
                "name": span.name, "ph": "X", "pid": pid_of[span.lane],
                "tid": tid_of[(span.lane, span.track)], "ts": span.start,
                "dur": max(span.duration, 1), "cat": "op",
                "args": span.args,
            })
        for inst in self.instants:
            events.append({
                "name": inst.name, "ph": "i", "s": "t",
                "pid": pid_of[inst.lane],
                "tid": tid_of[(inst.lane, inst.track)], "ts": inst.time,
                "cat": "msg", "args": inst.args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)

    def summary(self) -> str:
        """Per-track op-time accounting (quick look without the viewer)."""
        lines = [f"{'track':<10}{'spans':>8}{'busy cycles':>14}"]
        for track in sorted({s.track for s in self.spans}):
            spans = self.spans_on(track)
            busy = sum(s.duration for s in spans)
            lines.append(f"{track:<10}{len(spans):>8}{busy:>14}")
        lines.append(f"messages traced: {len(self.instants)}")
        return "\n".join(lines)


def traced_op(fn):
    """Decorator for Processor coroutine methods: records a span when a
    tracer is attached, with zero overhead otherwise.

    The untraced path returns the wrapped generator *directly* (the
    wrapper itself is not a generator function), so ``yield from`` chains
    through traced methods pay no extra frame per resume when tracing is
    off — the common case on performance runs.
    """
    name = fn.__name__

    def _traced(self, tracer, args, kwargs):
        start = self.sim.now
        result = yield from fn(self, *args, **kwargs)
        addr = args[0] if args else None
        tracer.add_span(
            f"cpu{self.cpu_id}", name, start, self.sim.now,
            addr=hex(addr) if isinstance(addr, int) else None)
        return result

    def wrapper(self, *args, **kwargs):
        tracer = getattr(self.machine, "tracer", None)
        if tracer is None:
            return fn(self, *args, **kwargs)
        return _traced(self, tracer, args, kwargs)

    wrapper.__name__ = name
    wrapper.__doc__ = fn.__doc__
    wrapper.__qualname__ = fn.__qualname__
    return wrapper
