"""The trace recorder and its Chrome-trace exporter.

Span capture is zero-cost when no recorder is attached: the processor's
traced methods check ``machine.tracer`` once per call.  Message capture
subscribes to the fabric's send hooks (``Network.subscribe_send``).

Chrome trace format notes: we emit "X" (complete) events with ``ts`` and
``dur`` in simulated CPU cycles (one cycle rendered as one microsecond —
the viewer's unit label is cosmetic), one "process" per machine and one
"thread" per track (cpu0..N, net).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine


@dataclass
class Span:
    """One completed operation on some track."""

    track: str
    name: str
    start: int
    end: int
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Instant:
    """A point event (message injection)."""

    track: str
    name: str
    time: int
    args: dict = field(default_factory=dict)


class TraceRecorder:
    """Collects spans/instants from an attached machine."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.message_capture = True

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, machine: "Machine",
               capture_messages: bool = True) -> "TraceRecorder":
        """Create a recorder and hook it into ``machine``."""
        tracer = cls()
        tracer.message_capture = capture_messages
        machine.tracer = tracer
        if capture_messages:
            def on_send(msg, hops):
                tracer.instants.append(Instant(
                    track="net",
                    name=msg.kind.value,
                    time=machine.sim.now,
                    args={"src": msg.src_node, "dst": msg.dst_node,
                          "hops": hops,
                          "addr": None if msg.addr is None
                          else hex(msg.addr)}))
            machine.net.subscribe_send(on_send)
        return tracer

    # ------------------------------------------------------------------
    def add_span(self, track: str, name: str, start: int, end: int,
                 **args: Any) -> None:
        self.spans.append(Span(track=track, name=name, start=start,
                               end=end, args=dict(args)))

    def spans_on(self, track: str) -> list[Span]:
        return [s for s in self.spans if s.track == track]

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def total_time_in(self, track: str, name: Optional[str] = None) -> int:
        """Sum of span durations on a track (optionally one op kind)."""
        return sum(s.duration for s in self.spans
                   if s.track == track and (name is None or s.name == name))

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The trace as a chrome://tracing-compatible dict."""
        events = []
        tracks = sorted({s.track for s in self.spans}
                        | {i.track for i in self.instants})
        for tid, track in enumerate(tracks):
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": track},
            })
        tid_of = {track: tid for tid, track in enumerate(tracks)}
        for span in self.spans:
            events.append({
                "name": span.name, "ph": "X", "pid": 1,
                "tid": tid_of[span.track], "ts": span.start,
                "dur": max(span.duration, 1), "cat": "op",
                "args": span.args,
            })
        for inst in self.instants:
            events.append({
                "name": inst.name, "ph": "i", "s": "t", "pid": 1,
                "tid": tid_of[inst.track], "ts": inst.time,
                "cat": "msg", "args": inst.args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)

    def summary(self) -> str:
        """Per-track op-time accounting (quick look without the viewer)."""
        lines = [f"{'track':<10}{'spans':>8}{'busy cycles':>14}"]
        for track in sorted({s.track for s in self.spans}):
            spans = self.spans_on(track)
            busy = sum(s.duration for s in spans)
            lines.append(f"{track:<10}{len(spans):>8}{busy:>14}")
        lines.append(f"messages traced: {len(self.instants)}")
        return "\n".join(lines)


def traced_op(fn):
    """Decorator for Processor coroutine methods: records a span when a
    tracer is attached, with zero overhead otherwise.

    The untraced path returns the wrapped generator *directly* (the
    wrapper itself is not a generator function), so ``yield from`` chains
    through traced methods pay no extra frame per resume when tracing is
    off — the common case on performance runs.
    """
    name = fn.__name__

    def _traced(self, tracer, args, kwargs):
        start = self.sim.now
        result = yield from fn(self, *args, **kwargs)
        addr = args[0] if args else None
        tracer.add_span(
            f"cpu{self.cpu_id}", name, start, self.sim.now,
            addr=hex(addr) if isinstance(addr, int) else None)
        return result

    def wrapper(self, *args, **kwargs):
        tracer = getattr(self.machine, "tracer", None)
        if tracer is None:
            return fn(self, *args, **kwargs)
        return _traced(self, tracer, args, kwargs)

    wrapper.__name__ = name
    wrapper.__doc__ = fn.__doc__
    wrapper.__qualname__ = fn.__qualname__
    return wrapper
