"""Execution tracing: per-CPU operation timelines and message events.

Attach a :class:`~repro.trace.recorder.TraceRecorder` to a machine and
every processor-issued operation (loads, stores, LL/SC loops, AMOs,
active-message calls, spins) is recorded as a timed span, and every
network packet as an instant event.  Export to the Chrome trace format
(``chrome://tracing`` / Perfetto) to *see* the paper's mechanisms: the
LL/SC retry storms, the ActMsg handler serialization, the AMO barrier's
flat wake-up.

>>> from repro import Machine
>>> from repro.trace import TraceRecorder
>>> m = Machine()
>>> tracer = TraceRecorder.attach(m)
>>> # ... run a workload ...
>>> _ = tracer.to_chrome_trace()     # dict; tracer.save(path) writes JSON
"""

from repro.trace.recorder import Span, TraceRecorder

__all__ = ["TraceRecorder", "Span"]
