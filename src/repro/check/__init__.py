"""Runtime correctness checking: coherence sanitizer + schedule fuzzer.

Three layers, all off by default and zero-cost until attached:

* :class:`CoherenceSanitizer` — an observer that subscribes to the
  network's send hooks and to lightweight call-sites in the coherence
  client, AMU, and home engine (each guarded by a single
  ``machine.sanitizer is None`` test), asserting SWMR, directory/cache
  agreement, put delivery, and data-value integrity against a
  sequentially-replayed :class:`MemoryOracle`.
* :mod:`repro.check.linearize` — offline verifiers for recorded
  fetch-and-add, lock, and barrier histories.
* :mod:`repro.check.fuzz` — seeded schedule exploration: run workloads
  under :class:`~repro.network.faults.DelayInjector` timing universes
  with the sanitizer armed, and shrink failures to minimal reproducers.

See ``docs/checking.md`` for usage, and ``tools/fuzz_schedules.py`` for
the sweep driver CI runs.
"""

from repro.check.fuzz import (
    FUZZ_WORKLOADS,
    load_artifact,
    repro_command,
    run_fuzz_schedule,
    shrink_failure,
    write_artifact,
)
from repro.check.linearize import (
    BarrierRecord,
    FetchAddEvent,
    LockSpan,
    QueueLockSpan,
    RwSpan,
    check_barrier_epochs,
    check_cna_grant_order,
    check_fetchadd_history,
    check_mcs_fifo_order,
    check_mutual_exclusion,
    check_rw_exclusion,
)
from repro.check.oracle import MemoryOracle
from repro.check.sanitizer import CoherenceSanitizer, CoherenceViolation

__all__ = [
    "BarrierRecord",
    "CoherenceSanitizer",
    "CoherenceViolation",
    "FUZZ_WORKLOADS",
    "FetchAddEvent",
    "LockSpan",
    "MemoryOracle",
    "QueueLockSpan",
    "RwSpan",
    "check_barrier_epochs",
    "check_cna_grant_order",
    "check_fetchadd_history",
    "check_mcs_fifo_order",
    "check_mutual_exclusion",
    "check_rw_exclusion",
    "load_artifact",
    "repro_command",
    "run_fuzz_schedule",
    "shrink_failure",
    "write_artifact",
]
