"""Linearizability verifiers for recorded synchronization histories.

The fuzz workloads (:mod:`repro.check.fuzz`) record what each thread
*observed* — fetch-and-add return values, lock hold intervals, barrier
entry/exit times — at zero simulated cost, and these functions decide
offline whether a valid linearization exists.  They are deliberately
history-shape-specific (fetch-and-add with known deltas, mutual
exclusion, barrier epochs) rather than a general linearizability
checker: for these shapes the check is exact and linear-ish, not
exponential.

All verifiers return a list of human-readable violation strings (empty
means the history linearizes).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FetchAddEvent:
    """One fetch-and-add invocation: real-time interval + observed old."""

    cpu: int
    start: int
    end: int
    old: int
    delta: int = 1


@dataclass(frozen=True)
class LockSpan:
    """One critical section: ``[acquired, released]`` in simulated time."""

    cpu: int
    ticket: int
    acquired: int
    released: int


@dataclass(frozen=True)
class BarrierRecord:
    """One thread's passage through one barrier episode."""

    cpu: int
    episode: int
    entered: int
    exited: int


# ----------------------------------------------------------------------
def check_fetchadd_history(
    events: list[FetchAddEvent],
    initial: int = 0,
    final: int | None = None,
) -> list[str]:
    """Verify a fetch-and-add history linearizes.

    The only valid linearization order of fetch-and-adds is ascending
    observed-old-value order, so the check is: the olds chain exactly
    (``next.old == prev.old + prev.delta`` starting from ``initial``),
    the chain ends at ``final`` when given, and the order respects
    real time (an op that finished before another started must have
    observed the smaller old value).
    """
    problems: list[str] = []
    if not events:
        return problems
    order = sorted(events, key=lambda e: e.old)
    expect = initial
    for ev in order:
        if ev.old != expect:
            problems.append(
                f"fetchadd chain broken: cpu{ev.cpu} observed old={ev.old}, "
                f"the linearization requires {expect}"
            )
            expect = ev.old  # resynchronize to report further breaks once
        expect += ev.delta
    if final is not None and expect != final:
        problems.append(f"fetchadd chain ends at {expect}, final value should be {final}")
    olds = [e.old for e in events]
    if len(set(olds)) != len(olds):
        problems.append("fetchadd returned duplicate old values (lost update)")
    for i, a in enumerate(events):
        for b in events[i + 1 :]:
            if a.end < b.start and a.old > b.old:
                problems.append(
                    f"real-time order violated: cpu{a.cpu}'s op finished at "
                    f"t={a.end} before cpu{b.cpu}'s started at t={b.start}, "
                    f"yet observed the larger old ({a.old} > {b.old})"
                )
            elif b.end < a.start and b.old > a.old:
                problems.append(
                    f"real-time order violated: cpu{b.cpu}'s op finished at "
                    f"t={b.end} before cpu{a.cpu}'s started at t={a.start}, "
                    f"yet observed the larger old ({b.old} > {a.old})"
                )
    return problems


def check_mutual_exclusion(spans: list[LockSpan]) -> list[str]:
    """Verify lock hold intervals never overlap and grant in ticket order."""
    problems: list[str] = []
    by_time = sorted(spans, key=lambda s: s.acquired)
    for prev, cur in zip(by_time, by_time[1:]):
        if cur.acquired < prev.released:
            problems.append(
                f"mutual exclusion violated: cpu{cur.cpu} acquired at "
                f"t={cur.acquired} while cpu{prev.cpu} held the lock until "
                f"t={prev.released}"
            )
    tickets = [s.ticket for s in by_time]
    if tickets != sorted(tickets):
        problems.append(
            f"ticket order violated: grants in acquisition-time order "
            f"carried tickets {tickets}"
        )
    if len(set(tickets)) != len(tickets):
        problems.append(f"duplicate tickets granted: {tickets}")
    return problems


def check_barrier_epochs(
    records: list[BarrierRecord],
    n_cpus: int,
) -> list[str]:
    """Verify barrier semantics: no thread exits an episode before every
    thread has entered it, and each thread's episodes are ordered."""
    problems: list[str] = []
    episodes: dict[int, list[BarrierRecord]] = {}
    per_cpu: dict[int, list[BarrierRecord]] = {}
    for rec in records:
        episodes.setdefault(rec.episode, []).append(rec)
        per_cpu.setdefault(rec.cpu, []).append(rec)
    for episode, recs in sorted(episodes.items()):
        if len(recs) != n_cpus:
            problems.append(f"episode {episode} has {len(recs)} records for {n_cpus} CPUs")
            continue
        first_exit = min(recs, key=lambda r: r.exited)
        last_enter = max(recs, key=lambda r: r.entered)
        if first_exit.exited < last_enter.entered:
            problems.append(
                f"episode {episode}: cpu{first_exit.cpu} exited at "
                f"t={first_exit.exited} before cpu{last_enter.cpu} entered "
                f"at t={last_enter.entered}"
            )
    for cpu, recs in sorted(per_cpu.items()):
        recs = sorted(recs, key=lambda r: r.episode)
        for prev, cur in zip(recs, recs[1:]):
            if cur.entered < prev.exited:
                problems.append(
                    f"cpu{cpu} entered episode {cur.episode} at "
                    f"t={cur.entered} before exiting episode "
                    f"{prev.episode} at t={prev.exited}"
                )
    return problems
