"""Linearizability verifiers for recorded synchronization histories.

The fuzz workloads (:mod:`repro.check.fuzz`) record what each thread
*observed* — fetch-and-add return values, lock hold intervals, barrier
entry/exit times — at zero simulated cost, and these functions decide
offline whether a valid linearization exists.  They are deliberately
history-shape-specific (fetch-and-add with known deltas, mutual
exclusion, barrier epochs) rather than a general linearizability
checker: for these shapes the check is exact and linear-ish, not
exponential.

All verifiers return a list of human-readable violation strings (empty
means the history linearizes).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FetchAddEvent:
    """One fetch-and-add invocation: real-time interval + observed old."""

    cpu: int
    start: int
    end: int
    old: int
    delta: int = 1


@dataclass(frozen=True)
class LockSpan:
    """One critical section: ``[acquired, released]`` in simulated time."""

    cpu: int
    ticket: int
    acquired: int
    released: int


@dataclass(frozen=True)
class BarrierRecord:
    """One thread's passage through one barrier episode."""

    cpu: int
    episode: int
    entered: int
    exited: int


@dataclass(frozen=True)
class QueueLockSpan:
    """One queue-lock critical section with its enqueue linkage.

    ``handle`` is the acquisition's unique queue-node handle and
    ``pred`` the handle the enqueueing tail-swap returned (0 = the
    queue was empty) — together they let the checkers reconstruct the
    *enqueue* order offline, even though swap replies arrive in
    arbitrary order.  ``node`` is the CPU's NUMA node (the CNA
    checker's locality dimension).
    """

    cpu: int
    node: int
    handle: int
    pred: int
    acquired: int
    released: int


@dataclass(frozen=True)
class RwSpan:
    """One reader-writer critical section (``kind`` is 'r' or 'w')."""

    cpu: int
    kind: str
    ticket: int
    acquired: int
    released: int


# ----------------------------------------------------------------------
def check_fetchadd_history(
    events: list[FetchAddEvent],
    initial: int = 0,
    final: int | None = None,
) -> list[str]:
    """Verify a fetch-and-add history linearizes.

    The only valid linearization order of fetch-and-adds is ascending
    observed-old-value order, so the check is: the olds chain exactly
    (``next.old == prev.old + prev.delta`` starting from ``initial``),
    the chain ends at ``final`` when given, and the order respects
    real time (an op that finished before another started must have
    observed the smaller old value).
    """
    problems: list[str] = []
    if not events:
        return problems
    order = sorted(events, key=lambda e: e.old)
    expect = initial
    for ev in order:
        if ev.old != expect:
            problems.append(
                f"fetchadd chain broken: cpu{ev.cpu} observed old={ev.old}, "
                f"the linearization requires {expect}"
            )
            expect = ev.old  # resynchronize to report further breaks once
        expect += ev.delta
    if final is not None and expect != final:
        problems.append(f"fetchadd chain ends at {expect}, final value should be {final}")
    olds = [e.old for e in events]
    if len(set(olds)) != len(olds):
        problems.append("fetchadd returned duplicate old values (lost update)")
    for i, a in enumerate(events):
        for b in events[i + 1 :]:
            if a.end < b.start and a.old > b.old:
                problems.append(
                    f"real-time order violated: cpu{a.cpu}'s op finished at "
                    f"t={a.end} before cpu{b.cpu}'s started at t={b.start}, "
                    f"yet observed the larger old ({a.old} > {b.old})"
                )
            elif b.end < a.start and b.old > a.old:
                problems.append(
                    f"real-time order violated: cpu{b.cpu}'s op finished at "
                    f"t={b.end} before cpu{a.cpu}'s started at t={a.start}, "
                    f"yet observed the larger old ({b.old} > {a.old})"
                )
    return problems


def check_mutual_exclusion(spans: list[LockSpan]) -> list[str]:
    """Verify lock hold intervals never overlap and grant in ticket order."""
    problems: list[str] = []
    by_time = sorted(spans, key=lambda s: s.acquired)
    for prev, cur in zip(by_time, by_time[1:]):
        if cur.acquired < prev.released:
            problems.append(
                f"mutual exclusion violated: cpu{cur.cpu} acquired at "
                f"t={cur.acquired} while cpu{prev.cpu} held the lock until "
                f"t={prev.released}"
            )
    tickets = [s.ticket for s in by_time]
    if tickets != sorted(tickets):
        problems.append(
            f"ticket order violated: grants in acquisition-time order "
            f"carried tickets {tickets}"
        )
    if len(set(tickets)) != len(tickets):
        problems.append(f"duplicate tickets granted: {tickets}")
    return problems


def _check_queue_exclusion(spans: list[QueueLockSpan]) -> list[str]:
    """Shared core: hold intervals disjoint, handles unique."""
    problems: list[str] = []
    by_time = sorted(spans, key=lambda s: s.acquired)
    for prev, cur in zip(by_time, by_time[1:]):
        if cur.acquired < prev.released:
            problems.append(
                f"mutual exclusion violated: cpu{cur.cpu} acquired at "
                f"t={cur.acquired} while cpu{prev.cpu} held the lock until "
                f"t={prev.released}"
            )
    handles = [s.handle for s in spans]
    if len(set(handles)) != len(handles):
        problems.append(f"duplicate queue-node handles granted: {sorted(handles)}")
    return problems


def check_mcs_fifo_order(spans: list[QueueLockSpan]) -> list[str]:
    """Verify an MCS history: mutual exclusion plus strict FIFO grants.

    In grant (acquire-time) order, every span that linked behind a
    predecessor must have been granted *immediately after* that
    predecessor — MCS hands the lock down the queue chain, so any other
    pattern means a waiter was overtaken or the queue was corrupted.
    """
    problems = _check_queue_exclusion(spans)
    by_time = sorted(spans, key=lambda s: s.acquired)
    for prev, cur in zip(by_time, by_time[1:]):
        if cur.pred != 0 and cur.pred != prev.handle:
            problems.append(
                f"FIFO violated: cpu{cur.cpu} (handle {cur.handle}) enqueued "
                f"behind handle {cur.pred} but was granted after handle "
                f"{prev.handle}"
            )
    if by_time and by_time[0].pred != 0:
        problems.append(
            f"first grant (handle {by_time[0].handle}) claims predecessor "
            f"{by_time[0].pred} — it cannot have entered an empty queue"
        )
    return problems


def check_cna_grant_order(spans: list[QueueLockSpan],
                          batch_threshold: int) -> list[str]:
    """Verify a CNA history: exclusion plus *bounded NUMA-local* overtaking.

    CNA may grant out of enqueue order, but only in one shape: a grant
    that overtakes an older waiter must be on the granting holder's own
    NUMA node (that is the entire point of the secondary queue), and at
    most ``batch_threshold`` consecutive grants may overtake before the
    parked waiters are flushed.  Everything else — remote overtaking,
    unbounded batching — is a fairness bug.

    Unlike MCS, no *total* enqueue order is reconstructible here: the
    promote path CASes a previously-seen handle back into the tail, so
    a later enqueuer can record the same ``pred`` as an earlier one and
    the linkage legitimately forks.  The pred chain still gives a sound
    happens-before: every handle on a span's pred chain enqueued before
    it.  A grant *overtakes* iff some chain ancestor is still ungranted
    — exactly the parked-waiter shape — which is all the locality and
    fairness checks need.
    """
    problems = _check_queue_exclusion(spans)
    by_handle = {s.handle: s for s in spans}
    dangling = False
    for s in spans:
        if s.pred != 0 and s.pred not in by_handle:
            dangling = True
            problems.append(
                f"cpu{s.cpu}'s span (handle {s.handle}) links behind unknown "
                f"handle {s.pred} — history incomplete or linkage corrupt"
            )
    if dangling:
        return problems          # ancestor walks below would be partial
    by_time = sorted(spans, key=lambda s: s.acquired)
    granted: set[int] = set()
    run = 0                      # consecutive overtaking grants
    for i, cur in enumerate(by_time):
        ungranted_ancestors = 0
        p = cur.pred
        walked: set[int] = set()
        while p != 0 and p not in walked:
            walked.add(p)
            if p not in granted:
                ungranted_ancestors += 1
            p = by_handle[p].pred
        if ungranted_ancestors:
            run += 1
            granter = by_time[i - 1] if i else None
            if granter is None:
                problems.append(
                    f"first grant (handle {cur.handle}) overtakes "
                    f"{ungranted_ancestors} earlier enqueuer(s) with no "
                    f"holder to batch for"
                )
            elif granter.node != cur.node:
                problems.append(
                    f"non-local overtake: cpu{cur.cpu} (node {cur.node}, "
                    f"handle {cur.handle}) overtook "
                    f"{ungranted_ancestors} older waiter(s) but the granting "
                    f"holder cpu{granter.cpu} is on node {granter.node}"
                )
            if run > batch_threshold:
                problems.append(
                    f"fairness bound violated: {run} consecutive overtaking "
                    f"grants (threshold {batch_threshold}) ending with "
                    f"handle {cur.handle}"
                )
        else:
            run = 0
        granted.add(cur.handle)
    return problems


def check_rw_exclusion(spans: list[RwSpan]) -> list[str]:
    """Verify a reader-writer history: writers exclusive, readers
    shared, grants in ticket order, tickets unique."""
    problems: list[str] = []
    # readers are admitted concurrently and may share an acquire cycle;
    # the ticket tiebreak keeps same-cycle grants from producing a
    # spurious order violation
    by_time = sorted(spans, key=lambda s: (s.acquired, s.ticket))
    active_writer: RwSpan | None = None
    active_readers: list[RwSpan] = []
    for cur in by_time:
        active_readers = [r for r in active_readers if r.released > cur.acquired]
        if active_writer is not None and active_writer.released <= cur.acquired:
            active_writer = None
        if active_writer is not None:
            problems.append(
                f"rw exclusion violated: cpu{cur.cpu} ({cur.kind}) acquired "
                f"at t={cur.acquired} while writer cpu{active_writer.cpu} "
                f"held until t={active_writer.released}"
            )
        elif cur.kind == "w" and active_readers:
            cpus = [r.cpu for r in active_readers]
            problems.append(
                f"rw exclusion violated: writer cpu{cur.cpu} acquired at "
                f"t={cur.acquired} while readers {cpus} were inside"
            )
        if cur.kind == "w":
            active_writer = cur
        else:
            active_readers.append(cur)
    tickets = [s.ticket for s in by_time]
    if tickets != sorted(tickets):
        problems.append(
            f"ticket order violated: grants in acquisition-time order "
            f"carried tickets {tickets}"
        )
    if len(set(tickets)) != len(tickets):
        problems.append(f"duplicate tickets granted: {sorted(tickets)}")
    return problems


def check_barrier_epochs(
    records: list[BarrierRecord],
    n_cpus: int,
) -> list[str]:
    """Verify barrier semantics: no thread exits an episode before every
    thread has entered it, and each thread's episodes are ordered."""
    problems: list[str] = []
    episodes: dict[int, list[BarrierRecord]] = {}
    per_cpu: dict[int, list[BarrierRecord]] = {}
    for rec in records:
        episodes.setdefault(rec.episode, []).append(rec)
        per_cpu.setdefault(rec.cpu, []).append(rec)
    for episode, recs in sorted(episodes.items()):
        if len(recs) != n_cpus:
            problems.append(f"episode {episode} has {len(recs)} records for {n_cpus} CPUs")
            continue
        first_exit = min(recs, key=lambda r: r.exited)
        last_enter = max(recs, key=lambda r: r.entered)
        if first_exit.exited < last_enter.entered:
            problems.append(
                f"episode {episode}: cpu{first_exit.cpu} exited at "
                f"t={first_exit.exited} before cpu{last_enter.cpu} entered "
                f"at t={last_enter.entered}"
            )
    for cpu, recs in sorted(per_cpu.items()):
        recs = sorted(recs, key=lambda r: r.episode)
        for prev, cur in zip(recs, recs[1:]):
            if cur.entered < prev.exited:
                problems.append(
                    f"cpu{cpu} entered episode {cur.episode} at "
                    f"t={cur.entered} before exiting episode "
                    f"{prev.episode} at t={prev.exited}"
                )
    return problems
