"""Sequential replay oracle for memory values.

Every serialized mutation of a shared word — a coherent store to an
EXCLUSIVE line, a successful store-conditional, a processor atomic, an
AMU read-modify-write (AMO or MAO), an uncached write served at the home
— reports to the oracle at its serialization point.  The oracle replays
those mutations sequentially; because each report happens inside the
event that performs the hardware write (no intervening yield), the
oracle's order is exactly the machine's serialization order.

Two checks fall out:

* **chain integrity** — an RMW's observed old value must equal the
  oracle's current value (a stale read here means a processor or the AMU
  operated on a value that was never the latest serialized one);
* **final-state integrity** — at quiescence, the machine's
  coherent-best-effort view of every tracked word
  (:meth:`repro.core.machine.Machine.peek`) must equal the oracle.

Words are seeded lazily from the backing store on first touch, so
workload initialization via :meth:`~repro.core.machine.Machine.poke`
needs no special handling beyond the ``note_poke`` hook.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.mem.address import word_base

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine


class MemoryOracle:
    """Sequentially-replayed value of every tracked word."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self._words: dict[int, int] = {}
        self.writes = 0
        self.rmws = 0

    # ------------------------------------------------------------------
    def tracked_words(self) -> list[int]:
        """Word addresses the oracle has seen, ascending."""
        return sorted(self._words)

    def tracks(self, addr: int) -> bool:
        return word_base(addr) in self._words

    def value(self, addr: int) -> int:
        """Current oracle value (lazily seeded from the backing store)."""
        word = word_base(addr)
        v = self._words.get(word)
        if v is None:
            v = self.machine.backing.read_word(word)
            self._words[word] = v
        return v

    # ------------------------------------------------------------------
    def write(self, addr: int, value: int) -> None:
        """A blind serialized store (plain store, AM handler store)."""
        self._words[word_base(addr)] = value
        self.writes += 1

    def rmw(self, addr: int, old: int, new: int, site: str = "") -> Optional[str]:
        """A serialized read-modify-write; returns a violation or None.

        ``old`` is what the hardware observed; it must equal the oracle's
        current value, else some earlier serialized write was lost.
        """
        word = word_base(addr)
        expect = self.value(word)
        self._words[word] = new
        self.rmws += 1
        if old != expect:
            return (
                f"{site}: RMW at {word:#x} observed old value {old}, "
                f"but the last serialized value was {expect}"
            )
        return None

    def final_check(self) -> list[str]:
        """Compare every tracked word against the machine's final view."""
        problems = []
        for word in self.tracked_words():
            actual = self.machine.peek(word)
            expect = self._words[word]
            if actual != expect:
                problems.append(
                    f"final value of {word:#x} is {actual}, oracle replay "
                    f"says {expect}"
                )
        return problems
