"""Runtime coherence sanitizer.

An always-available, off-by-default observer.  :meth:`CoherenceSanitizer.attach`
subscribes to the network's multi-hook send observation
(:meth:`repro.network.fabric.Network.subscribe_send`) and sets
``machine.sanitizer``; product code carries five lightweight call-sites
(coherent store, SC success, processor atomic, AMU op, home coherent
write) each guarded by a single ``machine.sanitizer is None`` test, so an
unattached machine pays one attribute load per store-class operation and
nothing per load, spin, or event.

Checked invariants
------------------
* **SWMR** — at any instant, at most one cache holds a line EXCLUSIVE,
  and never concurrently with SHARED copies elsewhere.  This holds
  instantaneously in this protocol (owners invalidate/downgrade before
  the new copy installs), so it is checked on every observed message.
* **Directory/cache agreement** — whenever a line's directory entry is
  *not* mid-transaction (its ``busy`` resource is free): the entry's own
  state invariants hold (:meth:`DirectoryEntry.check`), an EXCLUSIVE
  cache copy implies the directory records exactly that owner, and every
  SHARED cache copy is tracked as a sharer.  The directory may legally
  *over*-track (silent SHARED drops leave stale sharers); a cached copy
  the directory does not know about is always a violation.
* **Put delivery** — when the AMU decides an op triggers a put (always-
  push op, forced push, or §3.2 test-value match), exactly one coherent
  word write with pushes enabled must follow, carrying exactly the op's
  result; WORD_UPDATE packets must carry the word's latest serialized
  value at injection time; at quiescence no triggered put may remain
  undelivered.
* **Data-value integrity** — the :class:`~repro.check.oracle.MemoryOracle`
  chain check at every RMW serialization point, plus final memory vs
  sequential replay, plus (at quiescence) freshness of every SHARED
  cache copy of a tracked word not currently under AMU caching.

``mode="raise"`` raises :class:`CoherenceViolation` at the first
violation (unit tests); ``mode="collect"`` records violations and lets
the run continue (the fuzzer, which wants the full list plus the final
sweep even after a mid-run failure).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.cache.state import LineState
from repro.check.oracle import MemoryOracle
from repro.coherence.directory import DirState
from repro.mem.address import home_of, line_base, word_base
from repro.network.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Machine


class CoherenceViolation(AssertionError):
    """A checked protocol invariant was broken."""


#: message kinds whose address names a line participating in the
#: block-grained protocol — each observed send triggers a line check
_LINE_KINDS = frozenset(
    {
        MessageKind.GET_S,
        MessageKind.GET_X,
        MessageKind.DATA_S,
        MessageKind.DATA_X,
        MessageKind.INVALIDATE,
        MessageKind.INV_ACK,
        MessageKind.INTERVENTION,
        MessageKind.INTERVENTION_REPLY,
        MessageKind.SHARING_WRITEBACK,
        MessageKind.WRITEBACK,
        MessageKind.WRITEBACK_ACK,
        MessageKind.WORD_UPDATE,
    }
)


class CoherenceSanitizer:
    """Runtime invariant checker for one :class:`Machine`."""

    def __init__(
        self,
        machine: "Machine",
        mode: str = "raise",
        full_sweep_every: int = 0,
        max_violations: int = 64,
    ) -> None:
        if mode not in ("raise", "collect"):
            raise ValueError(f"unknown sanitizer mode {mode!r}")
        self.machine = machine
        self.mode = mode
        self.full_sweep_every = full_sweep_every
        self.max_violations = max_violations
        self.oracle = MemoryOracle(machine)
        #: violations collected in ``collect`` mode (time-stamped strings)
        self.violations: list[str] = []
        #: total violations seen (may exceed ``len(violations)``)
        self.violation_count = 0
        self.messages_checked = 0
        self.line_checks = 0
        self.full_sweeps = 0
        #: word -> queue of values whose put was triggered but not yet
        #: delivered to the home's coherent write path
        self._expected_puts: dict[int, deque[int]] = {}
        self._controllers = [p.controller for p in machine.cpus]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        machine: "Machine",
        mode: str = "raise",
        full_sweep_every: int = 0,
    ) -> "CoherenceSanitizer":
        """Arm the sanitizer on ``machine`` and return it."""
        san = cls(machine, mode=mode, full_sweep_every=full_sweep_every)
        machine.sanitizer = san
        machine.net.subscribe_send(san._on_send)
        return san

    def detach(self) -> None:
        """Disarm: unhook from the network and clear ``machine.sanitizer``."""
        self.machine.net.unsubscribe_send(self._on_send)
        if self.machine.sanitizer is self:
            self.machine.sanitizer = None

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    # ------------------------------------------------------------------
    def _violation(self, text: str) -> None:
        self.violation_count += 1
        stamped = f"t={self.machine.sim.now}: {text}"
        if self.mode == "raise":
            raise CoherenceViolation(stamped)
        if len(self.violations) < self.max_violations:
            self.violations.append(stamped)

    # ------------------------------------------------------------------
    # product-code hooks (all guarded by ``machine.sanitizer is None``)
    # ------------------------------------------------------------------
    def note_store(self, cpu: Optional[int], addr: int, value: int) -> None:
        """A coherent store serialized (line held EXCLUSIVE at ``cpu``)."""
        self.oracle.write(addr, value)

    def note_rmw(self, cpu: int, addr: int, old: int, new: int, site: str) -> None:
        """A processor-side RMW serialized (SC success / atomic)."""
        problem = self.oracle.rmw(addr, old, new, site=f"cpu{cpu} {site}")
        if problem is not None:
            self._violation(problem)

    def note_amu_op(
        self,
        node: int,
        addr: int,
        old: int,
        new: int,
        coherent: bool,
        will_push: bool,
    ) -> None:
        """An AMU read-modify-write executed (AMO or MAO)."""
        label = "amo" if coherent else "mao"
        problem = self.oracle.rmw(addr, old, new, site=f"amu[{node}] {label}")
        if problem is not None:
            self._violation(problem)
        if will_push:
            word = word_base(addr)
            queue = self._expected_puts.get(word)
            if queue is None:
                queue = self._expected_puts[word] = deque()
            queue.append(new)

    def note_coherent_write(self, addr: int, value: int, pushed: bool) -> None:
        """The home wrote one word coherently (put, eviction, uncached)."""
        word = word_base(addr)
        queue = self._expected_puts.get(word)
        if queue:
            expect = queue.popleft()
            if expect != value:
                self._violation(
                    f"put for {word:#x} delivered value {value}, the "
                    f"triggering op produced {expect}"
                )
            if not pushed:
                self._violation(
                    f"triggered put for {word:#x} reached the home write "
                    f"path with pushes disabled"
                )
        elif self.oracle.value(word) != value:
            # not an AMU-originated write: an uncached write serializes here
            self.oracle.write(word, value)

    def note_poke(self, addr: int, value: int) -> None:
        """Zero-time debug/init write bypassing the protocol."""
        if self.oracle.tracks(addr):
            self.oracle.write(addr, value)

    # ------------------------------------------------------------------
    # network observation
    # ------------------------------------------------------------------
    def _on_send(self, msg: Message, hops: int) -> None:
        self.messages_checked += 1
        kind = msg.kind
        if kind is MessageKind.WORD_UPDATE:
            word = word_base(msg.addr)
            if self.oracle.tracks(word) and msg.value != self.oracle.value(word):
                self._violation(
                    f"WORD_UPDATE for {word:#x} carries {msg.value}, the "
                    f"latest serialized value is {self.oracle.value(word)}"
                )
        if msg.addr is not None and kind in _LINE_KINDS:
            self._check_line(line_base(msg.addr))
        if self.full_sweep_every and self.messages_checked % self.full_sweep_every == 0:
            self.check_now()

    # ------------------------------------------------------------------
    # state checks
    # ------------------------------------------------------------------
    def _check_line(self, line: int) -> None:
        """SWMR always; directory agreement when the entry is not busy."""
        self.line_checks += 1
        exclusive = []
        shared = []
        for ctrl in self._controllers:
            cached = ctrl.l2.probe(line)
            if cached is None:
                continue
            if cached.state is LineState.EXCLUSIVE:
                exclusive.append(ctrl.cpu_id)
            else:
                shared.append(ctrl.cpu_id)
        if len(exclusive) > 1:
            self._violation(f"SWMR: line {line:#x} EXCLUSIVE in caches {exclusive}")
        if exclusive and shared:
            self._violation(
                f"SWMR: line {line:#x} EXCLUSIVE at cpu{exclusive[0]} "
                f"concurrent with SHARED copies at {shared}"
            )
        home = self.machine.hubs[home_of(line)]
        ent = home.home_engine.directory._entries.get(line)
        if ent is None:
            if exclusive or shared:
                self._violation(
                    f"line {line:#x} cached at {exclusive + shared} but the "
                    f"home directory has no entry for it"
                )
            return
        if ent.busy.busy:
            return  # mid-transaction: agreement is only a retirement invariant
        try:
            ent.check()
        except AssertionError as err:
            self._violation(f"directory self-check: {err}")
        if exclusive:
            if ent.state is not DirState.EXCLUSIVE or ent.owner != exclusive[0]:
                self._violation(
                    f"line {line:#x} EXCLUSIVE in cpu{exclusive[0]}'s cache "
                    f"but the directory says {ent!r}"
                )
        for cpu in shared:
            if ent.state is DirState.EXCLUSIVE and ent.owner == cpu:
                # upgrade grant in flight: the home already recorded the
                # new owner, whose old SHARED copy survives until the
                # DATA_X arrives and installs EXCLUSIVE
                continue
            if not (ent.has_sharer(cpu) and ent.state is DirState.SHARED):
                self._violation(
                    f"line {line:#x} SHARED in cpu{cpu}'s cache but "
                    f"untracked by the directory: {ent!r}"
                )

    def check_now(self) -> None:
        """Full sweep: every known line (directory entries + cache residents)."""
        self.full_sweeps += 1
        lines = set()
        for hub in self.machine.hubs:
            lines.update(hub.home_engine.directory._entries)
        for ctrl in self._controllers:
            for cached in ctrl.l2.resident_lines():
                lines.add(cached.line_addr)
        for line in sorted(lines):
            self._check_line(line)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """End-of-run checks, to be called at simulator quiescence."""
        for hub in self.machine.hubs:
            for ent in hub.home_engine.directory.known_entries():
                if ent.busy.busy:
                    self._violation(
                        f"directory entry {ent.line_addr:#x} still busy at "
                        f"quiescence"
                    )
        self.check_now()
        for word, queue in sorted(self._expected_puts.items()):
            if queue:
                self._violation(
                    f"{len(queue)} triggered put(s) for {word:#x} never "
                    f"reached the home write path (lost values {list(queue)})"
                )
        for problem in self.oracle.final_check():
            self._violation(problem)
        self._check_shared_freshness()

    def _check_shared_freshness(self) -> None:
        """At quiescence, SHARED copies of tracked words match memory.

        Release consistency makes sharer caches legally stale *while the
        AMU holds a word* (§3.2 deferred visibility) — those words are
        skipped.  Everything else must have been invalidated or patched.
        """
        backing = self.machine.backing
        for ctrl in self._controllers:
            for cached in ctrl.l2.resident_lines():
                if cached.state is not LineState.SHARED:
                    continue
                home = self.machine.hubs[home_of(cached.line_addr)]
                for word, value in sorted(cached.words.items()):
                    if not self.oracle.tracks(word):
                        continue
                    if home.amu.peek(word) is not None:
                        continue  # deferred-visibility window: stale is legal
                    mem = backing.read_word(word)
                    if value != mem:
                        self._violation(
                            f"cpu{ctrl.cpu_id} holds SHARED copy of "
                            f"{word:#x} with stale value {value} "
                            f"(memory has {mem}) at quiescence"
                        )
