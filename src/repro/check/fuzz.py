"""Seeded schedule-exploration fuzzing.

One fuzz point = one (workload, mechanism, CPU count, seed, delay bound,
kind filter) tuple: the workload runs under a
:class:`~repro.network.faults.DelayInjector` timing universe with the
:class:`~repro.check.sanitizer.CoherenceSanitizer` armed in ``collect``
mode, its synchronization history is verified with
:mod:`repro.check.linearize`, and the outcome is a plain picklable dict
(so points sweep through :class:`~repro.runner.ParallelRunner` and cache
like any other run kind — registered as kind ``"fuzz"``).

On failure, :func:`shrink_failure` reduces the schedule to a minimal
reproducer: binary-search the smallest failing delay bound, then
delta-debug the message-kind subset.  :func:`repro_command` renders any
point as a one-line ``repro-experiments fuzz`` invocation, and
:func:`write_artifact`/:func:`load_artifact` round-trip the JSON repro
artifact CI uploads.

``inject_bug`` deliberately breaks the protocol (for testing the
checker, never the default): ``"skip_invalidation"`` acknowledges one
INVALIDATE without invalidating (leaving a stale cached copy — the
classic directory-protocol bug class), ``"drop_word_update"`` silently
drops one AMO put packet.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.check.linearize import (
    BarrierRecord,
    FetchAddEvent,
    LockSpan,
    check_barrier_epochs,
    check_fetchadd_history,
    check_mutual_exclusion,
)
from repro.check.sanitizer import CoherenceSanitizer
from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.network.faults import DelayInjector
from repro.network.message import MessageKind
from repro.sim.kernel import SimulationError
from repro.sync.barrier import CentralizedBarrier
from repro.sync.rmw import fetch_add
from repro.sync.ticket_lock import TicketLock

FUZZ_WORKLOADS = ("counter", "barrier", "lock")

INJECTABLE_BUGS = ("skip_invalidation", "drop_word_update")

ARTIFACT_SCHEMA = 1

#: simulated cycles inside / after the critical section in the lock workload
_CS_CYCLES = 50
_THINK_CYCLES = 120


def _normalize_mechanism(mechanism: Any) -> Mechanism:
    if isinstance(mechanism, Mechanism):
        return mechanism
    return Mechanism.from_name(str(mechanism))


def _normalize_kinds(kinds: Any) -> Optional[tuple[str, ...]]:
    """Canonical kind filter: None (all kinds) or a sorted value tuple."""
    if kinds is None:
        return None
    values = []
    for k in kinds:
        values.append(k.value if isinstance(k, MessageKind) else str(k))
    for v in values:
        MessageKind(v)  # validate early, before a worker process chokes
    return tuple(sorted(set(values)))


def _arm_bug(machine: Machine, bug: str) -> None:
    """Deliberately sabotage the protocol once (checker self-test)."""
    if bug not in INJECTABLE_BUGS:
        raise ValueError(f"unknown injectable bug {bug!r}; have {INJECTABLE_BUGS}")
    net = machine.net
    original_send = net.send
    state = {"armed": True}
    if bug == "skip_invalidation":

        def send(msg):
            if state["armed"] and msg.kind is MessageKind.INVALIDATE:
                state["armed"] = False
                # ack the home without touching the sharer's cache: the
                # stale copy survives the invalidation wave
                machine.sim.schedule(
                    net.latency(msg.src_node, msg.dst_node),
                    msg.payload.ack,
                    machine.sim,
                )
                return
            original_send(msg)

    else:  # drop_word_update

        def send(msg):
            if state["armed"] and msg.kind is MessageKind.WORD_UPDATE:
                state["armed"] = False
                return  # the put silently vanishes; one spinner stays stale
            original_send(msg)

    net.send = send


# ----------------------------------------------------------------------
def run_fuzz_schedule(
    n_processors: int = 8,
    mechanism: Any = Mechanism.AMO,
    workload: str = "counter",
    seed: int = 0,
    max_extra: int = 200,
    kinds: Any = None,
    episodes: int = 2,
    ops_per_cpu: int = 3,
    inject_bug: Optional[str] = None,
    sanitize: bool = True,
    max_events: Optional[int] = None,
    backend: Optional[str] = None,
) -> dict:
    """Run one fuzz point; returns a plain-dict outcome (picklable).

    The outcome's ``"ok"`` is True iff the run completed without a
    simulation error, sanitizer violation, or linearizability violation.
    ``backend`` selects the event-kernel backend (byte-identical
    results; exercises the sanitizer stack on an accelerated core).
    """
    mech = _normalize_mechanism(mechanism)
    kind_values = _normalize_kinds(kinds)
    if workload not in FUZZ_WORKLOADS:
        raise ValueError(f"unknown fuzz workload {workload!r}; have {FUZZ_WORKLOADS}")
    machine = Machine(SystemConfig.table1(n_processors,
                                          kernel_backend=backend))
    sanitizer = None
    if sanitize:
        sanitizer = CoherenceSanitizer.attach(machine, mode="collect")
    kind_set = None if kind_values is None else {MessageKind(v) for v in kind_values}
    DelayInjector.install(machine, seed, max_extra_cycles=max_extra, kinds=kind_set)
    if inject_bug is not None:
        _arm_bug(machine, inject_bug)

    violations: list[str] = []
    error: Optional[str] = None
    try:
        if workload == "counter":
            violations += _run_counter(machine, mech, ops_per_cpu, max_events)
        elif workload == "barrier":
            violations += _run_barrier(machine, mech, episodes, max_events)
        else:
            violations += _run_lock(machine, mech, ops_per_cpu, max_events)
    except (SimulationError, RuntimeError, AssertionError) as err:
        error = f"{type(err).__name__}: {err}"
    if sanitizer is not None:
        if error is None:
            sanitizer.finalize()
        violations += sanitizer.violations
        sanitizer.detach()
    return {
        "ok": error is None and not violations,
        "workload": workload,
        "mechanism": mech.value,
        "n_processors": n_processors,
        "seed": seed,
        "max_extra": max_extra,
        "kinds": None if kind_values is None else list(kind_values),
        "episodes": episodes,
        "ops_per_cpu": ops_per_cpu,
        "inject_bug": inject_bug,
        "error": error,
        "violations": violations,
        "events_dispatched": machine.sim.events_dispatched,
        "cycles": machine.last_completion_time,
    }


# ----------------------------------------------------------------------
# fuzz workloads: tiny drivers that record verifiable histories
# ----------------------------------------------------------------------
def _run_counter(machine, mech, ops_per_cpu, max_events) -> list[str]:
    var = machine.alloc("fuzz.counter", home_node=0)
    events: list[FetchAddEvent] = []

    def thread(proc):
        for _ in range(ops_per_cpu):
            t0 = proc.sim.now
            old = yield from fetch_add(proc, mech, var.addr, 1)
            events.append(FetchAddEvent(proc.cpu_id, t0, proc.sim.now, old, 1))

    machine.run_threads(thread, max_events=max_events)
    total = machine.n_processors * ops_per_cpu
    problems = check_fetchadd_history(events, initial=0, final=total)
    final = machine.peek(var.addr)
    if final != total:
        problems.append(f"counter ended at {final}, expected {total}")
    return problems


def _run_barrier(machine, mech, episodes, max_events) -> list[str]:
    barrier = CentralizedBarrier(machine, mech)
    records: list[BarrierRecord] = []

    def thread(proc):
        for episode in range(episodes):
            t0 = proc.sim.now
            yield from barrier.wait(proc)
            records.append(BarrierRecord(proc.cpu_id, episode, t0, proc.sim.now))

    machine.run_threads(thread, max_events=max_events)
    return check_barrier_epochs(records, machine.n_processors)


def _run_lock(machine, mech, ops_per_cpu, max_events) -> list[str]:
    lock = TicketLock(machine, mech)
    spans: list[LockSpan] = []

    def thread(proc):
        for _ in range(ops_per_cpu):
            ticket = yield from lock.acquire(proc)
            acquired = proc.sim.now
            yield from proc.delay(_CS_CYCLES)
            spans.append(LockSpan(proc.cpu_id, ticket, acquired, proc.sim.now))
            yield from lock.release(proc)
            yield from proc.delay(_THINK_CYCLES)

    machine.run_threads(thread, max_events=max_events)
    problems = check_mutual_exclusion(spans)
    expected = machine.n_processors * ops_per_cpu
    if len(spans) != expected:
        problems.append(f"{len(spans)} acquisitions recorded, expected {expected}")
    return problems


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def _point_params(outcome_or_params: dict) -> dict:
    """Extract the run parameters from an outcome dict (or pass through)."""
    keys = (
        "n_processors",
        "mechanism",
        "workload",
        "seed",
        "max_extra",
        "kinds",
        "episodes",
        "ops_per_cpu",
        "inject_bug",
    )
    return {k: outcome_or_params[k] for k in keys if k in outcome_or_params}


def _fails(params: dict) -> bool:
    return not run_fuzz_schedule(**params)["ok"]


def shrink_failure(params: dict, log=None) -> tuple[dict, dict]:
    """Shrink a failing fuzz point to a minimal reproducer.

    Phase 1 binary-searches the smallest failing ``max_extra`` (0 means
    the failure needs no timing perturbation at all); phase 2
    delta-debugs the message-kind subset down to the kinds whose delays
    actually matter.  Returns ``(shrunk_params, shrunk_outcome)``; the
    returned parameters are re-verified to fail.
    """
    params = _point_params(params)

    def note(text):
        if log is not None:
            log(text)

    if not _fails(params):
        raise ValueError(f"shrink_failure called on a passing point: {params}")
    zero = dict(params, max_extra=0, kinds=[])
    if _fails(zero):
        note("fails with no delay injection at all")
        params = zero
    else:
        lo, hi = 1, int(params["max_extra"])
        while lo < hi:
            mid = (lo + hi) // 2
            if _fails(dict(params, max_extra=mid)):
                hi = mid
            else:
                lo = mid + 1
        candidate = dict(params, max_extra=hi)
        if _fails(candidate):  # guard: failure need not be monotone in bound
            note(f"smallest failing delay bound: {hi}")
            params = candidate
        kinds = params.get("kinds") or [k.value for k in MessageKind]
        kinds = list(kinds)
        shrunk = True
        while shrunk:
            shrunk = False
            for kind in list(kinds):
                trial = [v for v in kinds if v != kind]
                if _fails(dict(params, kinds=trial)):
                    kinds = trial
                    shrunk = True
        note(f"minimal kind set: {kinds}")
        params = dict(params, kinds=sorted(kinds))
    outcome = run_fuzz_schedule(**params)
    if outcome["ok"]:  # pragma: no cover - shrink steps re-verify above
        raise RuntimeError(f"shrunk point no longer fails: {params}")
    return _point_params(outcome), outcome


# ----------------------------------------------------------------------
# reproducers
# ----------------------------------------------------------------------
def repro_command(params: dict) -> str:
    """One-line ``repro-experiments`` invocation replaying a fuzz point."""
    params = _point_params(params)
    mech = _normalize_mechanism(params.get("mechanism", Mechanism.AMO))
    parts = [
        "repro-experiments fuzz",
        f"--workload {params.get('workload', 'counter')}",
        f"--mechanism {mech.value}",
        f"--cpus {params.get('n_processors', 8)}",
        f"--fuzz-seed {params.get('seed', 0)}",
        f"--fuzz-max-extra {params.get('max_extra', 0)}",
        f"--episodes {params.get('episodes', 2)}",
        f"--ops-per-cpu {params.get('ops_per_cpu', 3)}",
    ]
    kinds = params.get("kinds")
    if kinds is not None:
        parts.append(f"--fuzz-kinds {','.join(kinds) if kinds else 'none'}")
    if params.get("inject_bug"):
        parts.append(f"--inject-bug {params['inject_bug']}")
    return " ".join(parts)


def write_artifact(path, found: dict, shrunk: dict, outcome: dict) -> None:
    """Write the JSON repro artifact for one shrunk failure."""
    doc = {
        "schema": ARTIFACT_SCHEMA,
        "command": repro_command(shrunk),
        "found": _jsonable(_point_params(found)),
        "shrunk": _jsonable(_point_params(shrunk)),
        "error": outcome.get("error"),
        "violations": outcome.get("violations", []),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def load_artifact(path) -> dict:
    """Load a repro artifact; returns the shrunk point's parameters."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(f"unsupported fuzz artifact schema {doc.get('schema')!r}")
    return _point_params(doc["shrunk"])


def _jsonable(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, Mechanism):
            value = value.value
        elif isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out
