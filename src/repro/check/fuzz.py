"""Seeded schedule-exploration fuzzing.

One fuzz point = one (workload, mechanism, CPU count, seed, timing
universe) tuple: the workload runs under a
:class:`~repro.network.faults.DelayInjector` timing universe —
optionally relaxed further by a
:class:`~repro.network.faults.ReorderInjector` (``reorder_window > 0``),
which weakens per-(src, dst) FIFO delivery to per-cache-line order —
with the :class:`~repro.check.sanitizer.CoherenceSanitizer` armed in
``collect`` mode, its synchronization history is verified with
:mod:`repro.check.linearize`, and the outcome is a plain picklable dict
(so points sweep through :class:`~repro.runner.ParallelRunner` and cache
like any other run kind — registered as kind ``"fuzz"``).

Workloads: ``counter``/``barrier``/``lock`` (the original trio) plus the
queue locks ``qlock_mcs``/``qlock_cna``/``qlock_rw``, whose grant
histories go through the queue-order checkers
(:func:`~repro.check.linearize.check_mcs_fifo_order`,
:func:`~repro.check.linearize.check_cna_grant_order`,
:func:`~repro.check.linearize.check_rw_exclusion`).

On failure, :func:`shrink_failure` reduces the schedule to a minimal
reproducer: binary-search the smallest failing delay bound, then the
smallest failing reorder window, then delta-debug both message-kind
subsets — so the artifact names the exact timing universe that matters.
:func:`repro_command` renders any point as a one-line
``repro-experiments fuzz`` invocation, and
:func:`write_artifact`/:func:`load_artifact` round-trip the JSON repro
artifact CI uploads.

``inject_bug`` deliberately breaks the protocol (for testing the
checkers, never the default).  Network-level, any workload:
``"skip_invalidation"`` acknowledges one INVALIDATE without
invalidating (leaving a stale cached copy — the classic
directory-protocol bug class); ``"drop_word_update"`` silently drops
one AMO put packet.  Lock-level, matching qlock workload only:
``"qlock_skip_wait"`` has one contended waiter barge into its critical
section without awaiting the grant; ``"cna_skip_flush"`` builds the CNA
lock with an effectively infinite batch threshold while the checker
holds it to the declared bound; ``"rw_early_release"`` has one writer
release the lock on entry yet linger in its recorded critical section.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.check.linearize import (
    BarrierRecord,
    FetchAddEvent,
    LockSpan,
    QueueLockSpan,
    RwSpan,
    check_barrier_epochs,
    check_cna_grant_order,
    check_fetchadd_history,
    check_mcs_fifo_order,
    check_mutual_exclusion,
    check_rw_exclusion,
)
from repro.check.sanitizer import CoherenceSanitizer
from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.network.faults import DelayInjector, ReorderInjector
from repro.network.message import MessageKind
from repro.sim.kernel import SimulationError
from repro.sync.barrier import CentralizedBarrier
from repro.sync.cna_lock import CnaLock
from repro.sync.mcs_lock import GO, NIL, WAIT, McsLock
from repro.sync.rmw import fetch_add, swap
from repro.sync.rw_lock import RwTicketLock
from repro.sync.ticket_lock import TicketLock

FUZZ_WORKLOADS = ("counter", "barrier", "lock",
                  "qlock_mcs", "qlock_cna", "qlock_rw")

#: protocol-level sabotage: valid under every workload
_NETWORK_BUGS = ("skip_invalidation", "drop_word_update")
#: lock-level sabotage: valid only under the matching qlock workload(s)
_WORKLOAD_BUGS: dict[str, tuple[str, ...]] = {
    "qlock_skip_wait": ("qlock_mcs", "qlock_cna"),
    "cna_skip_flush": ("qlock_cna",),
    "rw_early_release": ("qlock_rw",),
}
INJECTABLE_BUGS = _NETWORK_BUGS + tuple(_WORKLOAD_BUGS)


def bug_compatible(bug: Optional[str], workload: str) -> bool:
    """True when ``inject_bug=bug`` is valid under ``workload``.

    Network-level bugs corrupt the protocol under any workload;
    lock-level sabotage needs the matching queue-lock workload (sweep
    tools use this to filter their grids instead of tripping the
    :func:`run_fuzz_schedule` ValueError point by point).
    """
    return (
        bug is None
        or bug in _NETWORK_BUGS
        or workload in _WORKLOAD_BUGS.get(bug, ())
    )

ARTIFACT_SCHEMA = 1

#: simulated cycles inside / after the critical section in the lock workloads
_CS_CYCLES = 50
_THINK_CYCLES = 120

#: CNA batch bound the fuzz workload builds with and checks against —
#: small enough that 8-CPU schedules actually exercise flushes
_FUZZ_BATCH_THRESHOLD = 2


def _normalize_mechanism(mechanism: Any) -> Mechanism:
    if isinstance(mechanism, Mechanism):
        return mechanism
    return Mechanism.from_name(str(mechanism))


def _normalize_kinds(kinds: Any) -> Optional[tuple[str, ...]]:
    """Canonical kind filter: None (all kinds) or a sorted value tuple."""
    if kinds is None:
        return None
    values = []
    for k in kinds:
        values.append(k.value if isinstance(k, MessageKind) else str(k))
    for v in values:
        MessageKind(v)  # validate early, before a worker process chokes
    return tuple(sorted(set(values)))


def _arm_bug(machine: Machine, bug: str) -> None:
    """Deliberately sabotage the protocol once (checker self-test)."""
    if bug not in _NETWORK_BUGS:
        raise ValueError(f"unknown injectable bug {bug!r}; have {INJECTABLE_BUGS}")
    net = machine.net
    original_send = net.send
    state = {"armed": True}
    if bug == "skip_invalidation":

        def send(msg):
            if state["armed"] and msg.kind is MessageKind.INVALIDATE:
                state["armed"] = False
                # ack the home without touching the sharer's cache: the
                # stale copy survives the invalidation wave
                machine.sim.schedule(
                    net.latency(msg.src_node, msg.dst_node),
                    msg.payload.ack,
                    machine.sim,
                )
                return
            original_send(msg)

    else:  # drop_word_update

        def send(msg):
            if state["armed"] and msg.kind is MessageKind.WORD_UPDATE:
                state["armed"] = False
                return  # the put silently vanishes; one spinner stays stale
            original_send(msg)

    net.send = send


# ----------------------------------------------------------------------
def run_fuzz_schedule(
    n_processors: int = 8,
    mechanism: Any = Mechanism.AMO,
    workload: str = "counter",
    seed: int = 0,
    max_extra: int = 200,
    kinds: Any = None,
    reorder_window: int = 0,
    reorder_kinds: Any = None,
    episodes: int = 2,
    ops_per_cpu: int = 3,
    inject_bug: Optional[str] = None,
    sanitize: bool = True,
    max_events: Optional[int] = None,
    backend: Optional[str] = None,
) -> dict:
    """Run one fuzz point; returns a plain-dict outcome (picklable).

    The outcome's ``"ok"`` is True iff the run completed without a
    simulation error, sanitizer violation, or linearizability violation.
    ``reorder_window > 0`` additionally installs a
    :class:`~repro.network.faults.ReorderInjector`: delivery order is
    then FIFO only per (src, dst, cache line), with up to
    ``reorder_window`` cycles of seeded jitter on the kinds in
    ``reorder_kinds`` (None = all).  ``reorder_window == 0`` leaves the
    fabric's strict-FIFO path untouched.  ``backend`` selects the
    event-kernel backend (byte-identical results; exercises the
    sanitizer stack on an accelerated core).
    """
    mech = _normalize_mechanism(mechanism)
    kind_values = _normalize_kinds(kinds)
    reorder_values = _normalize_kinds(reorder_kinds)
    if workload not in FUZZ_WORKLOADS:
        raise ValueError(f"unknown fuzz workload {workload!r}; have {FUZZ_WORKLOADS}")
    if inject_bug is not None and inject_bug in _WORKLOAD_BUGS \
            and workload not in _WORKLOAD_BUGS[inject_bug]:
        raise ValueError(
            f"injectable bug {inject_bug!r} requires workload in "
            f"{_WORKLOAD_BUGS[inject_bug]}, not {workload!r}")
    machine = Machine(SystemConfig.table1(n_processors,
                                          kernel_backend=backend))
    sanitizer = None
    if sanitize:
        sanitizer = CoherenceSanitizer.attach(machine, mode="collect")
    kind_set = None if kind_values is None else {MessageKind(v) for v in kind_values}
    DelayInjector.install(machine, seed, max_extra_cycles=max_extra, kinds=kind_set)
    if reorder_window:
        reorder_set = None if reorder_values is None \
            else {MessageKind(v) for v in reorder_values}
        ReorderInjector.install(machine, seed, window_cycles=reorder_window,
                                kinds=reorder_set)
    if inject_bug is not None and inject_bug not in _WORKLOAD_BUGS:
        _arm_bug(machine, inject_bug)

    violations: list[str] = []
    error: Optional[str] = None
    try:
        if workload == "counter":
            violations += _run_counter(machine, mech, ops_per_cpu, max_events)
        elif workload == "barrier":
            violations += _run_barrier(machine, mech, episodes, max_events)
        elif workload == "lock":
            violations += _run_lock(machine, mech, ops_per_cpu, max_events)
        else:
            violations += _run_qlock(machine, mech,
                                     workload[len("qlock_"):],
                                     ops_per_cpu, max_events, inject_bug)
    except (SimulationError, RuntimeError, AssertionError) as err:
        error = f"{type(err).__name__}: {err}"
    if sanitizer is not None:
        if error is None:
            sanitizer.finalize()
        violations += sanitizer.violations
        sanitizer.detach()
    return {
        "ok": error is None and not violations,
        "workload": workload,
        "mechanism": mech.value,
        "n_processors": n_processors,
        "seed": seed,
        "max_extra": max_extra,
        "kinds": None if kind_values is None else list(kind_values),
        "reorder_window": reorder_window,
        "reorder_kinds": None if reorder_values is None else list(reorder_values),
        "episodes": episodes,
        "ops_per_cpu": ops_per_cpu,
        "inject_bug": inject_bug,
        "error": error,
        "violations": violations,
        "events_dispatched": machine.sim.events_dispatched,
        "cycles": machine.last_completion_time,
    }


# ----------------------------------------------------------------------
# fuzz workloads: tiny drivers that record verifiable histories
# ----------------------------------------------------------------------
def _run_counter(machine, mech, ops_per_cpu, max_events) -> list[str]:
    var = machine.alloc("fuzz.counter", home_node=0)
    events: list[FetchAddEvent] = []

    def thread(proc):
        for _ in range(ops_per_cpu):
            t0 = proc.sim.now
            old = yield from fetch_add(proc, mech, var.addr, 1)
            events.append(FetchAddEvent(proc.cpu_id, t0, proc.sim.now, old, 1))

    machine.run_threads(thread, max_events=max_events)
    total = machine.n_processors * ops_per_cpu
    problems = check_fetchadd_history(events, initial=0, final=total)
    final = machine.peek(var.addr)
    if final != total:
        problems.append(f"counter ended at {final}, expected {total}")
    return problems


def _run_barrier(machine, mech, episodes, max_events) -> list[str]:
    barrier = CentralizedBarrier(machine, mech)
    records: list[BarrierRecord] = []

    def thread(proc):
        for episode in range(episodes):
            t0 = proc.sim.now
            yield from barrier.wait(proc)
            records.append(BarrierRecord(proc.cpu_id, episode, t0, proc.sim.now))

    machine.run_threads(thread, max_events=max_events)
    return check_barrier_epochs(records, machine.n_processors)


def _run_lock(machine, mech, ops_per_cpu, max_events) -> list[str]:
    lock = TicketLock(machine, mech)
    spans: list[LockSpan] = []

    def thread(proc):
        for _ in range(ops_per_cpu):
            ticket = yield from lock.acquire(proc)
            acquired = proc.sim.now
            yield from proc.delay(_CS_CYCLES)
            spans.append(LockSpan(proc.cpu_id, ticket, acquired, proc.sim.now))
            yield from lock.release(proc)
            yield from proc.delay(_THINK_CYCLES)

    machine.run_threads(thread, max_events=max_events)
    problems = check_mutual_exclusion(spans)
    expected = machine.n_processors * ops_per_cpu
    if len(spans) != expected:
        problems.append(f"{len(spans)} acquisitions recorded, expected {expected}")
    return problems


def _arm_skip_wait(lock, occupancy: dict) -> None:
    """Sabotage: one contended acquire barges into the critical section
    without awaiting its grant (MCS enqueue protocol otherwise intact).
    ``occupancy`` is the runner's live critical-section counter: the
    barge fires only while another CPU is strictly inside its CS, so the
    recorded spans provably overlap (a barge during a handoff-in-flight
    would be indistinguishable from the handoff itself)."""
    state = {"armed": True}

    def acquire(proc):
        me = proc.cpu_id
        my_handle = lock._new_handle(me)
        yield from proc.store(lock._next[me].addr, NIL)
        pred_handle = yield from swap(proc, lock.mechanism,
                                      lock.tail.addr, my_handle)
        if pred_handle != NIL:
            pred = lock._qnode_of(pred_handle)
            yield from proc.store(lock._locked[me].addr, WAIT)
            yield from proc.store(lock._next[pred].addr, my_handle)
            barged = False
            if state["armed"]:
                # lurk until somebody is strictly inside their CS, then
                # enter on top of them; bail out if our own grant
                # arrives first (a granted entry is not a barge)
                while occupancy["n"] == 0:
                    if lock.machine.peek(lock._locked[me].addr) == GO:
                        break
                    yield from proc.delay(2)
                if occupancy["n"] > 0:
                    state["armed"] = False
                    barged = True
            if not barged:
                yield proc.spin_until(lock._locked[me].addr,
                                      lambda v: v == GO)
        lock._held_by.add(me)
        lock.acquisitions += 1
        return my_handle, pred_handle

    lock.acquire = acquire


def _arm_rw_early_release(lock, admissions: dict) -> None:
    """Sabotage: one writer releases the lock on entry, waits for the
    next ticket holder to be admitted, then lingers in its recorded
    critical section on top of them (turnstile protocol otherwise intact
    — the victim behaves like a zero-length writer to everyone else, so
    the run still terminates).  ``admissions`` is the runner's count of
    entries; lurking until it advances makes the span overlap
    deterministic instead of a race against admission latency."""
    state = {"victim": None}
    real_acquire = lock.acquire_write
    real_release = lock.release_write

    def acquire_write(proc):
        ticket = yield from real_acquire(proc)
        # fire once a later ticket is already issued: that waiter is
        # blocked on our turnstile and the early release admits them
        if state["victim"] is None and \
                lock.machine.peek(lock.users.addr) > ticket + 1:
            state["victim"] = proc.cpu_id
            before = admissions["n"]
            yield from real_release(proc)
            t0 = proc.sim.now
            while admissions["n"] == before and proc.sim.now - t0 < 5000:
                yield from proc.delay(5)
        return ticket

    def release_write(proc):
        if state["victim"] == proc.cpu_id:
            state["victim"] = -1            # spent; later releases real
        else:
            yield from real_release(proc)

    lock.acquire_write = acquire_write
    lock.release_write = release_write


def _run_qlock(machine, mech, lock_type, ops_per_cpu, max_events,
               bug) -> list[str]:
    if lock_type == "rw":
        return _run_rw(machine, mech, ops_per_cpu, max_events, bug)
    if lock_type == "cna":
        # cna_skip_flush builds with an effectively infinite threshold;
        # the checker below still holds the lock to the declared bound
        built = 2**30 if bug == "cna_skip_flush" else _FUZZ_BATCH_THRESHOLD
        lock = CnaLock(machine, mech, batch_threshold=built)
    else:
        lock = McsLock(machine, mech)
    occupancy = {"n": 0}
    if bug == "qlock_skip_wait":
        _arm_skip_wait(lock, occupancy)
    spans: list[QueueLockSpan] = []

    def thread(proc):
        for _ in range(ops_per_cpu):
            handle, pred = yield from lock.acquire(proc)
            acquired = proc.sim.now
            occupancy["n"] += 1
            yield from proc.delay(_CS_CYCLES)
            occupancy["n"] -= 1
            spans.append(QueueLockSpan(
                cpu=proc.cpu_id, node=machine.node_of_cpu(proc.cpu_id),
                handle=handle, pred=pred, acquired=acquired,
                released=proc.sim.now))
            yield from lock.release(proc)
            yield from proc.delay(_THINK_CYCLES)

    machine.run_threads(thread, max_events=max_events)
    if lock_type == "cna":
        problems = check_cna_grant_order(spans, _FUZZ_BATCH_THRESHOLD)
    else:
        problems = check_mcs_fifo_order(spans)
    expected = machine.n_processors * ops_per_cpu
    if len(spans) != expected:
        problems.append(f"{len(spans)} acquisitions recorded, expected {expected}")
    return problems


def _run_rw(machine, mech, ops_per_cpu, max_events, bug) -> list[str]:
    lock = RwTicketLock(machine, mech)
    admissions = {"n": 0}
    if bug == "rw_early_release":
        _arm_rw_early_release(lock, admissions)
    spans: list[RwSpan] = []

    def thread(proc):
        writer = proc.cpu_id % 2 == 0
        for _ in range(ops_per_cpu):
            if writer:
                ticket = yield from lock.acquire_write(proc)
            else:
                ticket = yield from lock.acquire_read(proc)
            admissions["n"] += 1
            acquired = proc.sim.now
            yield from proc.delay(_CS_CYCLES)
            spans.append(RwSpan(cpu=proc.cpu_id,
                                kind="w" if writer else "r",
                                ticket=ticket, acquired=acquired,
                                released=proc.sim.now))
            if writer:
                yield from lock.release_write(proc)
            else:
                yield from lock.release_read(proc)
            yield from proc.delay(_THINK_CYCLES)

    machine.run_threads(thread, max_events=max_events)
    problems = check_rw_exclusion(spans)
    expected = machine.n_processors * ops_per_cpu
    if len(spans) != expected:
        problems.append(f"{len(spans)} acquisitions recorded, expected {expected}")
    return problems


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def _point_params(outcome_or_params: dict) -> dict:
    """Extract the run parameters from an outcome dict (or pass through)."""
    keys = (
        "n_processors",
        "mechanism",
        "workload",
        "seed",
        "max_extra",
        "kinds",
        "reorder_window",
        "reorder_kinds",
        "episodes",
        "ops_per_cpu",
        "inject_bug",
    )
    return {k: outcome_or_params[k] for k in keys if k in outcome_or_params}


def _fails(params: dict) -> bool:
    return not run_fuzz_schedule(**params)["ok"]


def shrink_failure(params: dict, log=None) -> tuple[dict, dict]:
    """Shrink a failing fuzz point to a minimal reproducer.

    Phase 1 binary-searches the smallest failing ``max_extra`` (0 means
    the failure needs no timing perturbation at all); phase 2
    binary-searches the smallest failing ``reorder_window`` (0 means
    strict-FIFO delivery already fails); later phases delta-debug the
    delay and reorder message-kind subsets down to the kinds that
    actually matter — so the artifact names the exact timing universe
    that produced the failure.  Returns ``(shrunk_params,
    shrunk_outcome)``; the returned parameters are re-verified to fail.
    """
    params = _point_params(params)

    def note(text):
        if log is not None:
            log(text)

    if not _fails(params):
        raise ValueError(f"shrink_failure called on a passing point: {params}")
    zero = dict(params, max_extra=0, kinds=[], reorder_window=0,
                reorder_kinds=None)
    if _fails(zero):
        note("fails with no timing perturbation at all")
        params = zero
    else:
        lo, hi = 1, int(params["max_extra"])
        while lo < hi:
            mid = (lo + hi) // 2
            if _fails(dict(params, max_extra=mid)):
                hi = mid
            else:
                lo = mid + 1
        candidate = dict(params, max_extra=hi)
        if _fails(candidate):  # guard: failure need not be monotone in bound
            note(f"smallest failing delay bound: {hi}")
            params = candidate
        window = int(params.get("reorder_window") or 0)
        if window:
            strict = dict(params, reorder_window=0, reorder_kinds=None)
            if _fails(strict):
                note("reordering unnecessary: fails under strict FIFO")
                params = strict
            else:
                lo, hi = 1, window
                while lo < hi:
                    mid = (lo + hi) // 2
                    if _fails(dict(params, reorder_window=mid)):
                        hi = mid
                    else:
                        lo = mid + 1
                candidate = dict(params, reorder_window=hi)
                if _fails(candidate):
                    note(f"smallest failing reorder window: {hi}")
                    params = candidate
        kinds = params.get("kinds") or [k.value for k in MessageKind]
        kinds = list(kinds)
        shrunk = True
        while shrunk:
            shrunk = False
            for kind in list(kinds):
                trial = [v for v in kinds if v != kind]
                if _fails(dict(params, kinds=trial)):
                    kinds = trial
                    shrunk = True
        note(f"minimal kind set: {kinds}")
        params = dict(params, kinds=sorted(kinds))
        if params.get("reorder_window"):
            rkinds = list(params.get("reorder_kinds")
                          or [k.value for k in MessageKind])
            shrunk = True
            while shrunk:
                shrunk = False
                for kind in list(rkinds):
                    trial = [v for v in rkinds if v != kind]
                    if _fails(dict(params, reorder_kinds=trial)):
                        rkinds = trial
                        shrunk = True
            note(f"minimal reorder kind set: {rkinds}")
            params = dict(params, reorder_kinds=sorted(rkinds))
    outcome = run_fuzz_schedule(**params)
    if outcome["ok"]:  # pragma: no cover - shrink steps re-verify above
        raise RuntimeError(f"shrunk point no longer fails: {params}")
    return _point_params(outcome), outcome


# ----------------------------------------------------------------------
# reproducers
# ----------------------------------------------------------------------
def repro_command(params: dict) -> str:
    """One-line ``repro-experiments`` invocation replaying a fuzz point."""
    params = _point_params(params)
    mech = _normalize_mechanism(params.get("mechanism", Mechanism.AMO))
    parts = [
        "repro-experiments fuzz",
        f"--workload {params.get('workload', 'counter')}",
        f"--mechanism {mech.value}",
        f"--cpus {params.get('n_processors', 8)}",
        f"--fuzz-seed {params.get('seed', 0)}",
        f"--fuzz-max-extra {params.get('max_extra', 0)}",
        f"--episodes {params.get('episodes', 2)}",
        f"--ops-per-cpu {params.get('ops_per_cpu', 3)}",
    ]
    kinds = params.get("kinds")
    if kinds is not None:
        parts.append(f"--fuzz-kinds {','.join(kinds) if kinds else 'none'}")
    window = params.get("reorder_window") or 0
    if window:
        parts.append(f"--fuzz-reorder {window}")
        rkinds = params.get("reorder_kinds")
        if rkinds is not None:
            parts.append(
                f"--fuzz-reorder-kinds {','.join(rkinds) if rkinds else 'none'}")
    if params.get("inject_bug"):
        parts.append(f"--inject-bug {params['inject_bug']}")
    return " ".join(parts)


def write_artifact(path, found: dict, shrunk: dict, outcome: dict) -> None:
    """Write the JSON repro artifact for one shrunk failure."""
    doc = {
        "schema": ARTIFACT_SCHEMA,
        "command": repro_command(shrunk),
        "found": _jsonable(_point_params(found)),
        "shrunk": _jsonable(_point_params(shrunk)),
        "error": outcome.get("error"),
        "violations": outcome.get("violations", []),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def load_artifact(path) -> dict:
    """Load a repro artifact; returns the shrunk point's parameters."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(f"unsupported fuzz artifact schema {doc.get('schema')!r}")
    return _point_params(doc["shrunk"])


def _jsonable(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, Mechanism):
            value = value.value
        elif isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out
