"""Functional backing store: the canonical memory image.

Holds the value of every word *as seen by memory* (DRAM).  Dirty cached
copies may be newer; the coherence protocol is responsible for writing
them back (and the test suite checks it does).  Values default to zero —
matching the zero-initialized data segment the paper's microbenchmarks
assume.
"""

from __future__ import annotations

from typing import Iterator

from repro.mem.address import WORD_BYTES, home_of, word_base


class BackingStore:
    """Word-granular value store for one machine (all homes)."""

    def __init__(self) -> None:
        self._words: dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read_word(self, addr: int) -> int:
        """Value of the word containing ``addr`` (0 if never written)."""
        self.reads += 1
        return self._words.get(word_base(addr), 0)

    def write_word(self, addr: int, value: int) -> None:
        self.writes += 1
        self._words[word_base(addr)] = value

    def read_line(self, line_addr: int, line_bytes: int = 128) -> dict[int, int]:
        """All (word_addr -> value) pairs in the line, omitting zeros."""
        self.reads += 1
        base = word_base(line_addr)
        out = {}
        for off in range(0, line_bytes, WORD_BYTES):
            w = base + off
            if w in self._words:
                out[w] = self._words[w]
        return out

    def write_line(self, line_addr: int, words: dict[int, int]) -> None:
        """Write back a set of (word_addr -> value) pairs."""
        self.writes += 1
        for addr, value in words.items():
            self._words[word_base(addr)] = value

    def nonzero_words(self) -> Iterator[tuple[int, int]]:
        """All words ever written, for end-of-run verification."""
        return iter(sorted(self._words.items()))

    def home_audit(self) -> dict[int, int]:
        """Count of written words per home node (placement diagnostics)."""
        counts: dict[int, int] = {}
        for addr in self._words:
            node = home_of(addr)
            counts[node] = counts.get(node, 0) + 1
        return counts
