"""DRAM timing model: per-home access latency and channel occupancy.

The paper's backend is 16 DDR channels delivering an 80-bit burst every
two hub cycles with a 60-CPU-cycle access latency.  We model each home's
DRAM as a FIFO-served resource: an access holds the resource for its
*occupancy* (serialization under storms — e.g. 255 reload requests hitting
the home after a spin-variable invalidation) and then waits the remaining
*latency*.  Word-grained accesses (AMU fills/writebacks) occupy the
channels for far less time than line transfers, one of the asymmetries
that makes AMO wake-up pushes cheaper than MAO reload storms.
"""

from __future__ import annotations

from repro.config.parameters import DramConfig
from repro.sim.kernel import Simulator
from repro.sim.primitives import Resource, Timeout


class Dram:
    """One home node's DRAM backend."""

    __slots__ = ("sim", "node", "config", "_channel", "line_accesses",
                 "word_accesses", "_t_line_occ", "_t_word_occ",
                 "_line_residual", "_word_residual", "_t_line_res",
                 "_t_word_res")

    def __init__(self, sim: Simulator, node: int,
                 config: DramConfig | None = None) -> None:
        self.sim = sim
        self.node = node
        self.config = config or DramConfig()
        self._channel = Resource(name=f"dram[{node}]")
        self.line_accesses = 0
        self.word_accesses = 0
        # fixed delays: Timeout is stateless, reuse one instance per value
        cfg = self.config
        self._t_line_occ = Timeout(cfg.occupancy_cycles)
        self._t_word_occ = Timeout(cfg.word_occupancy_cycles)
        self._line_residual = cfg.latency_cycles - cfg.occupancy_cycles
        self._word_residual = cfg.latency_cycles - cfg.word_occupancy_cycles
        self._t_line_res = Timeout(self._line_residual)
        self._t_word_res = Timeout(self._word_residual)

    # Each access method is a coroutine charging occupancy then latency.
    def access_line(self):
        """Coroutine: one line-sized (128 B) read or write."""
        self.line_accesses += 1
        yield self._channel.acquire()
        try:
            yield self._t_line_occ
        finally:
            self._channel.release()
        if self._line_residual > 0:
            yield self._t_line_res

    def access_word(self):
        """Coroutine: one word-sized (8 B) read or write."""
        self.word_accesses += 1
        yield self._channel.acquire()
        try:
            yield self._t_word_occ
        finally:
            self._channel.release()
        if self._word_residual > 0:
            yield self._t_word_res

    @property
    def busy_cycles(self) -> int:
        """Total cycles the channel group was occupied."""
        return self._channel.busy_cycles

    def utilization(self) -> float:
        """Fraction of elapsed time the DRAM was busy."""
        now = self.sim.now
        return self._channel.busy_cycles / now if now else 0.0
