"""Physical address map and placement-aware allocator.

Layout
------
Node ``i`` owns the 4 GiB region ``[(i+1) << NODE_SHIFT, (i+2) << NODE_SHIFT)``
(region 0 is left unmapped so a null address is always invalid).  The home
node of an address is therefore a shift and a subtract — cheap enough to
sit on every transaction's fast path.

Granularities
-------------
* **word** — 8 bytes, the unit of AMO/MAO operations and fine-grained
  get/put updates;
* **line** — 128 bytes (the L2/coherence granularity), 16 words.

:class:`AddressSpace` is the allocator workloads use to place variables:
``alloc("barrier", home_node=0)`` returns a :class:`Variable` aligned to a
line boundary (the paper's "optimized" conventional barrier requires the
spin variable and barrier variable in *different* lines; tests verify the
allocator guarantees this by default).
"""

from __future__ import annotations

from dataclasses import dataclass

WORD_BYTES = 8
LINE_BYTES = 128
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES
NODE_SHIFT = 32
NODE_REGION_BYTES = 1 << NODE_SHIFT


def home_of(addr: int) -> int:
    """Home node of a physical address."""
    node = (addr >> NODE_SHIFT) - 1
    if node < 0:
        raise ValueError(f"address {addr:#x} is in the unmapped null region")
    return node


def line_of(addr: int) -> int:
    """Line number (global) containing ``addr``."""
    return addr // LINE_BYTES


def line_base(addr: int) -> int:
    """First byte address of the line containing ``addr``."""
    return (addr // LINE_BYTES) * LINE_BYTES


def word_of(addr: int) -> int:
    """Word number (global) containing ``addr``."""
    return addr // WORD_BYTES


def word_base(addr: int) -> int:
    return (addr // WORD_BYTES) * WORD_BYTES


def word_index_in_line(addr: int) -> int:
    """0..15 position of the word within its line."""
    return (addr % LINE_BYTES) // WORD_BYTES


@dataclass(frozen=True)
class Variable:
    """A named, placed shared variable (one or more words).

    Attributes
    ----------
    addr:
        Byte address of word 0.
    home_node:
        The node whose directory/DRAM/AMU own this address.
    words:
        Number of consecutive words (arrays allocate > 1).
    """

    name: str
    addr: int
    home_node: int
    words: int = 1

    def word_addr(self, index: int = 0) -> int:
        """Byte address of the ``index``-th word."""
        if not 0 <= index < self.words:
            raise IndexError(f"{self.name}[{index}]: out of {self.words} words")
        return self.addr + index * WORD_BYTES

    def element_line_stride(self) -> bool:
        """True when consecutive elements sit in distinct lines."""
        return self.words <= 1 or WORD_BYTES >= LINE_BYTES

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Variable({self.name!r}, addr={self.addr:#x}, "
                f"home={self.home_node}, words={self.words})")


class AddressSpace:
    """Placement-aware allocator over the node-interleaved address map.

    Parameters
    ----------
    n_nodes:
        Machine size; allocations validate their placement against it.

    By default each allocation is aligned to (and padded to) a whole
    number of lines, so two variables never share a line — false sharing
    is then an *opt-in* (``pack_with=``) used by tests that demonstrate
    the naive-barrier pathology the paper describes in §3.3.1.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be positive")
        self.n_nodes = n_nodes
        self._next_free: dict[int, int] = {
            node: (node + 1) * NODE_REGION_BYTES for node in range(n_nodes)
        }
        self.symbols: dict[str, Variable] = {}

    def alloc(self, name: str, home_node: int, words: int = 1,
              line_aligned: bool = True,
              stride_lines: bool = False) -> Variable:
        """Allocate ``words`` consecutive words homed at ``home_node``.

        Parameters
        ----------
        line_aligned:
            Start at a fresh line and pad to a line multiple (default).
        stride_lines:
            Place each word in its *own* line (for flag arrays: the
            Anderson lock requires per-element lines to avoid false
            sharing among spinners — paper §3.3.2).
        """
        if not 0 <= home_node < self.n_nodes:
            raise ValueError(f"home_node {home_node} out of range")
        if words < 1:
            raise ValueError("words must be >= 1")
        if name in self.symbols:
            raise ValueError(f"symbol {name!r} already allocated")
        base = self._next_free[home_node]
        if line_aligned or stride_lines:
            base = (base + LINE_BYTES - 1) // LINE_BYTES * LINE_BYTES
        if stride_lines:
            # reserve one line per word; the Variable reports the stride
            size = words * LINE_BYTES
            var = StridedVariable(name=name, addr=base, home_node=home_node,
                                  words=words)
        else:
            size = words * WORD_BYTES
            if line_aligned:
                size = (size + LINE_BYTES - 1) // LINE_BYTES * LINE_BYTES
            var = Variable(name=name, addr=base, home_node=home_node,
                           words=words)
        end = base + size
        if end > (home_node + 2) * NODE_REGION_BYTES:
            raise MemoryError(f"node {home_node} region exhausted")
        self._next_free[home_node] = end
        self.symbols[name] = var
        return var

    def alloc_packed(self, name: str, with_var: Variable) -> Variable:
        """Allocate a single word in the *same line* as ``with_var``.

        Used only to reproduce the false-sharing pathology of the naive
        conventional barrier (§3.3.1).  Raises if the line is full.
        """
        if name in self.symbols:
            raise ValueError(f"symbol {name!r} already allocated")
        base_line = line_base(with_var.addr)
        used = {word_index_in_line(with_var.word_addr(i))
                for i in range(with_var.words)}
        for slot in range(WORDS_PER_LINE):
            candidate = base_line + slot * WORD_BYTES
            if slot not in used and not any(
                line_base(v.addr) == base_line
                and any(v.word_addr(i) == candidate for i in range(v.words))
                for v in self.symbols.values()
            ):
                var = Variable(name=name, addr=candidate,
                               home_node=with_var.home_node, words=1)
                self.symbols[name] = var
                return var
        raise MemoryError(f"line at {base_line:#x} has no free word")

    def lookup(self, name: str) -> Variable:
        return self.symbols[name]


@dataclass(frozen=True, repr=False)
class StridedVariable(Variable):
    """Array variable with one line per element (anti-false-sharing)."""

    def word_addr(self, index: int = 0) -> int:
        if not 0 <= index < self.words:
            raise IndexError(f"{self.name}[{index}]: out of {self.words} words")
        return self.addr + index * LINE_BYTES
