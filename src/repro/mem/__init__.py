"""Memory substrate (S12): address map, placement, backing store, DRAM.

CC-NUMA address layout: each node owns a contiguous physical region and is
the *home* (directory + DRAM) for every address in it.  Synchronization
variables are allocated with explicit placement so workloads can pin them
to a chosen home node, exactly as the paper's microbenchmarks do.
"""

from repro.mem.address import AddressSpace, Variable, home_of, line_of, word_of
from repro.mem.backing import BackingStore
from repro.mem.dram import Dram

__all__ = [
    "AddressSpace",
    "Variable",
    "home_of",
    "line_of",
    "word_of",
    "BackingStore",
    "Dram",
]
