"""Processor-side MAO port.

Thin façade that encodes MAO requests for the home AMU (shared function
unit, ``coherent=False``) and exposes the uncached polling loop that MAO
software must use when it *does* spin on the MAO variable itself (the
unoptimized variant the paper mentions before recommending the separate
spin variable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.amu.ops import AmoCommand
from repro.mem.address import home_of
from repro.network.message import Message, MessageKind
from repro.sim.primitives import Signal, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine import Hub


class MaoPort:
    """Issues memory-side atomic operations from one CPU."""

    __slots__ = ("cpu_id", "hub", "sim", "ops_issued")

    def __init__(self, cpu_id: int, hub: "Hub") -> None:
        self.cpu_id = cpu_id
        self.hub = hub
        self.sim = hub.sim
        self.ops_issued = 0

    def rmw(self, addr: int, op: str, operand=1):
        """Coroutine: uncached atomic RMW at the home MC; returns the old
        value (a full network round trip, serialized at the home FU)."""
        self.ops_issued += 1
        sig = Signal()
        yield from self.hub.egress_send(Message(
            kind=MessageKind.MAO_REQUEST, src_node=self.hub.node,
            dst_node=home_of(addr), addr=addr,
            payload=AmoCommand(op=op, operand=operand, coherent=False),
            reply_to=sig, requester=self.cpu_id))
        reply = yield sig.wait()
        return reply.value

    def poll_until(self, controller, addr: int, predicate,
                   backoff_cycles: int = 200):
        """Coroutine: unoptimized MAO spin — uncached read per poll.

        Every poll is a remote round trip ("each load request must bypass
        the cache and load data directly from the home node", §2); a
        fixed backoff separates polls.  The home-side read consults the
        AMU cache first, since the MAO value lives there.
        """
        while True:
            value = yield from controller.uncached_read(addr)
            if predicate(value):
                return value
            yield Timeout(backoff_cycles)
