"""Conventional memory-side atomic operations (substrate S10).

Origin 2000 / Cray T3E style: a processor triggers an atomic op by an
uncached access to a special IO-space alias of the target address; the
home memory controller performs the operation.  MAOs share the AMU's
function unit and word cache (the paper's evaluation setup) but:

* they do **not** participate in coherence — no sharer updates, no
  invalidations; software must spin on a *separate* coherent variable
  (or poll uncached, paying a remote round trip per poll);
* there is no test value and no push — completion is invisible to
  waiting processors.

These two gaps are precisely what the paper's AMO design fixes, and the
4x AMO-over-MAO barrier gap at 256 processors comes from the wake-up
path: MAO releases invalidate-and-reload full lines through the home
directory/DRAM, AMOs push word updates through the egress port.
"""

from repro.mao.unit import MaoPort

__all__ = ["MaoPort"]
