"""Shared result type and helpers for application kernels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.mechanism import Mechanism
from repro.network.stats import TrafficStats


@dataclass
class AppResult:
    """Outcome of one application-kernel run."""

    app: str
    mechanism: Mechanism
    n_processors: int
    total_cycles: int
    #: pure-compute cycles charged (identical across mechanisms), so
    #: ``sync_overhead_cycles`` isolates the synchronization cost
    work_cycles_per_cpu: int
    traffic: TrafficStats
    verified: bool
    detail: Optional[dict] = None

    @property
    def sync_overhead_cycles(self) -> int:
        """Everything beyond the fixed per-CPU compute time."""
        return self.total_cycles - self.work_cycles_per_cpu

    @property
    def sync_fraction(self) -> float:
        """Fraction of runtime not spent computing (the paper's concern)."""
        if self.total_cycles == 0:
            return 0.0
        return self.sync_overhead_cycles / self.total_cycles

    def speedup_over(self, baseline: "AppResult") -> float:
        return baseline.total_cycles / self.total_cycles


#: fixed-point scale for carrying fractional values in integer words
FIXED_POINT = 1 << 16


def to_fixed(x: float) -> int:
    return int(round(x * FIXED_POINT))


def from_fixed(v: int) -> float:
    return v / FIXED_POINT
