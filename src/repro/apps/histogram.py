"""Parallel histogram: contended atomic increments over many buckets.

Every CPU classifies a private slice of synthetic data into ``n_buckets``
shared counters.  Two strategies:

* ``strategy="atomic"`` — one mechanism-dispatched fetch-and-add per
  sample straight into the bucket word (with AMOs, this is the
  shipped-computation pattern: the data never enters a processor cache);
* ``strategy="lock"`` — a ticket lock per bucket protecting an ordinary
  load+store pair (the conventional coding when no suitable atomic op
  exists).

Counts are verified exactly against a NumPy reference.  Buckets are
distributed round-robin across home nodes so the AMU work spreads over
the machine (each home's 8-word AMU cache covers its share of hot
buckets).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.base import AppResult
from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.rmw import fetch_add
from repro.sync.ticket_lock import TicketLock

#: charged classification cost per sample
CYCLES_PER_SAMPLE = 6


def run_histogram(n_processors: int, mechanism: Mechanism,
                  samples_per_cpu: int = 32, n_buckets: int = 8,
                  strategy: str = "atomic",
                  config: Optional[SystemConfig] = None) -> AppResult:
    """Run the kernel; counts are verified exactly."""
    if strategy not in ("atomic", "lock"):
        raise ValueError(f"unknown strategy {strategy!r}")
    cfg = config or SystemConfig.table1(n_processors)
    machine = Machine(cfg)

    buckets = []
    locks = []
    for b in range(n_buckets):
        home = b % machine.config.n_nodes
        buckets.append(machine.alloc(f"hist.bucket{b}", home))
        if strategy == "lock":
            locks.append(TicketLock(machine, mechanism, home_node=home))

    rng = np.random.default_rng(seed=7)
    data = rng.integers(0, n_buckets,
                        size=(n_processors, samples_per_cpu))
    expected = np.bincount(data.ravel(), minlength=n_buckets)

    def thread(proc):
        for sample in data[proc.cpu_id]:
            yield from proc.delay(CYCLES_PER_SAMPLE)
            b = int(sample)
            if strategy == "atomic":
                yield from fetch_add(proc, mechanism,
                                     buckets[b].addr, 1)
            else:
                yield from locks[b].acquire(proc)
                v = yield from proc.load(buckets[b].addr)
                yield from proc.store(buckets[b].addr, v + 1)
                yield from locks[b].release(proc)

    machine.run_threads(thread, max_events=30_000_000)
    machine.check_coherence_invariants()
    measured = np.array([machine.peek(buckets[b].addr)
                         for b in range(n_buckets)])
    verified = bool(np.array_equal(measured, expected))
    return AppResult(
        app=f"histogram-{strategy}", mechanism=mechanism,
        n_processors=n_processors,
        total_cycles=machine.last_completion_time,
        work_cycles_per_cpu=samples_per_cpu * CYCLES_PER_SAMPLE,
        traffic=machine.net.stats.snapshot(), verified=verified,
        detail={"buckets": n_buckets,
                "total_samples": int(n_processors * samples_per_cpu)})
