"""1D Jacobi relaxation: the canonical barrier-per-sweep BSP kernel.

A vector of ``n_points`` values is block-partitioned across the CPUs;
each sweep computes ``new[i] = (old[i-1] + old[i+1]) / 2`` over the
local block.  Interior arithmetic is charged as compute delay and kept
in Python locals; the *halo* values cross CPU boundaries through
simulated shared memory — each CPU publishes its edge values with
coherent stores and reads its neighbours' edges with coherent loads,
with a barrier separating the publish and read phases of every sweep
(two barriers per sweep, the classic BSP structure).

Values travel as 16.16 fixed-point integers (the machine word is an
integer); the final state is verified against a NumPy reference to
fixed-point tolerance — an end-to-end proof that the coherence protocol
delivers the right *data*, not just the right timing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.base import FIXED_POINT, AppResult, from_fixed, to_fixed
from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.barrier import CentralizedBarrier

#: charged cost of one averaging update (two adds + shift, pipelined)
CYCLES_PER_POINT = 4


def _reference(initial: np.ndarray, sweeps: int) -> np.ndarray:
    state = initial.astype(np.float64).copy()
    for _ in range(sweeps):
        nxt = state.copy()
        nxt[1:-1] = (state[:-2] + state[2:]) / 2.0
        state = nxt
    return state


def run_jacobi(n_processors: int, mechanism: Mechanism,
               n_points: int = 64, sweeps: int = 4,
               config: Optional[SystemConfig] = None) -> AppResult:
    """Run the kernel; returns an :class:`AppResult` (verified=True when
    the distributed result matches the NumPy reference)."""
    if n_points % n_processors:
        raise ValueError("n_points must divide evenly across CPUs")
    block = n_points // n_processors
    if block < 2:
        raise ValueError("need at least two points per CPU")
    cfg = config or SystemConfig.table1(n_processors)
    machine = Machine(cfg)
    barrier = CentralizedBarrier(machine, mechanism)

    # Edge words: each CPU publishes its block's two boundary values,
    # homed on the publisher's node (readers come to it).
    left_edge = []
    right_edge = []
    for cpu in range(n_processors):
        node = machine.node_of_cpu(cpu)
        left_edge.append(machine.alloc(f"jacobi.L{cpu}", node))
        right_edge.append(machine.alloc(f"jacobi.R{cpu}", node))

    rng = np.random.default_rng(seed=42)
    initial = rng.uniform(0.0, 1.0, size=n_points)
    final_blocks: dict[int, list[float]] = {}

    def thread(proc):
        me = proc.cpu_id
        lo = me * block
        local = [to_fixed(x) for x in initial[lo:lo + block]]
        for _ in range(sweeps):
            # publish my edges, then synchronize
            yield from proc.store(left_edge[me].addr, local[0])
            yield from proc.store(right_edge[me].addr, local[-1])
            yield from barrier.wait(proc)
            # read neighbour halos through the coherence protocol
            halo_lo = halo_hi = None
            if me > 0:
                halo_lo = yield from proc.load(right_edge[me - 1].addr)
            if me < n_processors - 1:
                halo_hi = yield from proc.load(left_edge[me + 1].addr)
            # compute the sweep over the local block
            yield from proc.delay(block * CYCLES_PER_POINT)
            old = ([halo_lo] if halo_lo is not None else [None]) \
                + local \
                + ([halo_hi] if halo_hi is not None else [None])
            new = list(local)
            for i in range(block):
                left, right = old[i], old[i + 2]
                if left is None or right is None:
                    continue           # global boundary: fixed value
                new[i] = (left + right) // 2
            local = new
            # second barrier: nobody republishes edges until all read
            yield from barrier.wait(proc)
        final_blocks[me] = [from_fixed(v) for v in local]

    machine.run_threads(thread, max_events=30_000_000)
    machine.check_coherence_invariants()

    measured = np.concatenate([np.asarray(final_blocks[cpu])
                               for cpu in range(n_processors)])
    expected = _reference(initial, sweeps)
    # fixed-point rounding drifts ~sweeps / FIXED_POINT
    verified = bool(np.allclose(measured, expected,
                                atol=(sweeps + 1) * 4.0 / FIXED_POINT))
    work = block * CYCLES_PER_POINT * sweeps
    return AppResult(
        app="jacobi", mechanism=mechanism, n_processors=n_processors,
        total_cycles=machine.last_completion_time,
        work_cycles_per_cpu=work,
        traffic=machine.net.stats.snapshot(), verified=verified,
        detail={"n_points": n_points, "sweeps": sweeps,
                "max_error": float(np.max(np.abs(measured - expected)))})
