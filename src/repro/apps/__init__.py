"""Application kernels: real parallel programs on the simulated machine.

The paper's introduction motivates AMOs with whole-application impact
("a 32-processor barrier costs 5.76 MFLOPS of lost work").  This package
runs small but *real* parallel kernels — the data lives in simulated
shared memory, every load/store/atomic goes through the coherence
protocol, and the numerical results are verified against sequential
references:

* :mod:`repro.apps.jacobi` — BSP-style 1D Jacobi relaxation with halo
  exchange and a barrier per sweep (barrier-bound);
* :mod:`repro.apps.histogram` — parallel histogram with per-bucket
  atomic increments (atomic-throughput-bound), lock-based or direct;
* :mod:`repro.apps.task_farm` — self-scheduling task farm claiming work
  with fetch-and-add (dynamic load balancing).

Each kernel runs under any :class:`~repro.config.Mechanism`, so the
paper's comparison extends from microbenchmarks to application level.
"""

from repro.apps.base import AppResult
from repro.apps.jacobi import run_jacobi
from repro.apps.histogram import run_histogram
from repro.apps.task_farm import run_task_farm

__all__ = ["AppResult", "run_jacobi", "run_histogram", "run_task_farm"]
