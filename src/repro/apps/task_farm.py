"""Self-scheduling task farm: dynamic load balancing over fetch-and-add.

``n_tasks`` tasks with (deterministically) heterogeneous durations sit
behind a shared claim counter; every CPU loops "claim the next chunk,
run it" until the counter passes the end — the classic guided
self-scheduling loop, whose claim counter is exactly the kind of hot
word the paper's AMU accelerates.

Correctness: every task must execute exactly once (tracked in Python).
Quality metric: *imbalance* — the spread of per-CPU finish times — plus
the usual cycle/traffic accounting.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import AppResult
from repro.config.mechanism import Mechanism
from repro.config.parameters import SystemConfig
from repro.core.machine import Machine
from repro.sync.rmw import fetch_add


def task_cost(index: int) -> int:
    """Deterministic heterogeneous task durations, 40..1000 cycles."""
    return 40 + (index * 193) % 961


def run_task_farm(n_processors: int, mechanism: Mechanism,
                  n_tasks: int = 64, chunk: int = 2,
                  config: Optional[SystemConfig] = None) -> AppResult:
    """Run the farm; verified = every task ran exactly once."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    cfg = config or SystemConfig.table1(n_processors)
    machine = Machine(cfg)
    claim = machine.alloc("farm.claim", home_node=0)
    executed: list[int] = []
    finish_time: dict[int, int] = {}

    def thread(proc):
        while True:
            start = yield from fetch_add(proc, mechanism, claim.addr,
                                         chunk)
            if start >= n_tasks:
                break
            for task in range(start, min(start + chunk, n_tasks)):
                executed.append(task)
                yield from proc.delay(task_cost(task))
        finish_time[proc.cpu_id] = proc.sim.now

    machine.run_threads(thread, max_events=30_000_000)
    machine.check_coherence_invariants()
    verified = sorted(executed) == list(range(n_tasks))
    finishes = [finish_time[c] for c in range(n_processors)]
    imbalance = (max(finishes) - min(finishes)) / max(finishes)
    total_work = sum(task_cost(t) for t in range(n_tasks))
    return AppResult(
        app="task-farm", mechanism=mechanism,
        n_processors=n_processors,
        total_cycles=machine.last_completion_time,
        work_cycles_per_cpu=total_work // n_processors,
        traffic=machine.net.stats.snapshot(), verified=verified,
        detail={"n_tasks": n_tasks, "chunk": chunk,
                "imbalance": imbalance,
                "claims": machine.peek(claim.addr)})
